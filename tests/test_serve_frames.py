"""Tests for the binary frame protocol: codec round trips, malformed-frame
handling, and the TCP server speaking JSON lines and binary frames on one
port."""

import asyncio
import json
import struct

import numpy as np
import pytest

from repro.artifacts import save_result
from repro.core.sgl import learn_graph
from repro.graphs.generators import grid_2d
from repro.linalg.pseudoinverse import effective_resistance
from repro.measurements.generator import simulate_measurements
from repro.serve import GraphService, serve_forever
from repro.serve.frames import (
    ENCODING_JSON,
    ENCODING_MSGPACK,
    FRAME_MAGIC,
    FrameError,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)


@pytest.fixture(scope="module")
def learned():
    data = simulate_measurements(grid_2d(7, 7), n_measurements=30, seed=0)
    return learn_graph(data, beta=0.05)


@pytest.fixture(scope="module")
def artifact_path(learned, tmp_path_factory):
    path = tmp_path_factory.mktemp("frames") / "model.npz"
    save_result(learned, path)
    return path


# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_meta_only_round_trip(self):
        payload = encode_frame({"kind": "stats"}, encoding=ENCODING_JSON)
        meta, array, consumed = decode_frame(payload)
        assert meta == {"kind": "stats"}
        assert array is None
        assert consumed == len(payload)

    @pytest.mark.parametrize(
        "dtype", [np.float64, np.int64, np.float32, np.int32]
    )
    def test_array_round_trip(self, dtype):
        values = np.arange(12, dtype=dtype).reshape(3, 4)
        payload = encode_frame({"ok": True}, array=values, encoding=ENCODING_JSON)
        meta, array, _ = decode_frame(payload)
        assert meta["ok"] is True
        assert array.dtype == np.dtype(dtype).newbyteorder("<")
        np.testing.assert_array_equal(array, values)

    def test_big_endian_normalised_on_the_wire(self):
        values = np.arange(4, dtype=">f8")
        payload = encode_frame({}, array=values, encoding=ENCODING_JSON)
        meta, array, _ = decode_frame(payload)
        assert meta["array"]["dtype"] == "<f8"
        np.testing.assert_array_equal(array.astype(float), values.astype(float))

    def test_two_frames_in_one_buffer(self):
        first = encode_frame({"id": 1}, encoding=ENCODING_JSON)
        second = encode_frame(
            {"id": 2}, array=np.ones(2), encoding=ENCODING_JSON
        )
        buffer = first + second
        meta1, _, consumed = decode_frame(buffer)
        meta2, array2, _ = decode_frame(buffer[consumed:])
        assert meta1["id"] == 1 and meta2["id"] == 2
        np.testing.assert_array_equal(array2, [1.0, 1.0])

    def test_bad_magic_rejected(self):
        payload = bytearray(encode_frame({}, encoding=ENCODING_JSON))
        payload[0:2] = b"ZZ"
        with pytest.raises(FrameError, match="magic"):
            decode_frame(bytes(payload))

    def test_bad_version_rejected(self):
        payload = bytearray(encode_frame({}, encoding=ENCODING_JSON))
        payload[2] = 99
        with pytest.raises(FrameError, match="version"):
            decode_frame(bytes(payload))

    def test_unknown_encoding_rejected(self):
        payload = bytearray(encode_frame({}, encoding=ENCODING_JSON))
        payload[3] = 42
        with pytest.raises(FrameError, match="encoding"):
            decode_frame(bytes(payload))

    def test_truncated_body_rejected(self):
        payload = encode_frame({}, array=np.ones(8), encoding=ENCODING_JSON)
        with pytest.raises(FrameError, match="truncated"):
            decode_frame(payload[:-4])

    def test_oversized_segment_rejected(self):
        header = struct.pack(">2sBBII", FRAME_MAGIC, 1, ENCODING_JSON,
                             2, 1 << 31)
        with pytest.raises(FrameError, match="too large"):
            decode_frame(header + b"{}")

    def test_corrupt_array_spec_rejected(self):
        payload = encode_frame(
            {"array": {"dtype": "<f8", "shape": [5]}}, encoding=ENCODING_JSON
        )
        with pytest.raises(FrameError, match="does not match"):
            decode_frame(payload)

    def test_msgpack_gated_on_availability(self):
        from repro.serve import frames

        if frames.msgpack is None:
            with pytest.raises(FrameError, match="msgpack"):
                encode_frame({}, encoding=ENCODING_MSGPACK)
        else:
            payload = encode_frame({"x": 1}, encoding=ENCODING_MSGPACK)
            meta, _, _ = decode_frame(payload)
            assert meta == {"x": 1}


# ----------------------------------------------------------------------
class TestTCPBinaryProtocol:
    def _run_server(self, coroutine):
        async def run():
            service = GraphService(max_batch_size=16, max_delay_s=0.001)
            ready = asyncio.Event()
            bound: list = []
            server = asyncio.create_task(
                serve_forever(service, "127.0.0.1", 0, ready=ready,
                              bound_addresses=bound)
            )
            await asyncio.wait_for(ready.wait(), timeout=5)
            host, port = bound[0]
            reader, writer = await asyncio.open_connection(host, port)
            try:
                return await coroutine(service, reader, writer)
            finally:
                writer.close()
                await writer.wait_closed()
                server.cancel()
                try:
                    await server
                except asyncio.CancelledError:
                    pass
                service.close()

        return asyncio.run(run())

    def test_binary_resistance_round_trip(self, learned, artifact_path):
        pairs = [[0, 48], [3, 9], [5, 5]]
        expected = effective_resistance(learned.graph, np.asarray(pairs[:2]))

        async def scenario(service, reader, writer):
            write_frame(writer, {
                "id": 11, "kind": "resistance",
                "artifact": str(artifact_path), "pairs": pairs,
            }, encoding=ENCODING_JSON)
            await writer.drain()
            return await asyncio.wait_for(read_frame(reader), timeout=10)

        meta, array = self._run_server(scenario)
        assert meta["ok"] and meta["id"] == 11
        assert array.dtype == np.dtype("<f8")
        np.testing.assert_allclose(array[:2], expected, rtol=1e-8)
        assert array[2] == pytest.approx(0.0)

    def test_binary_neighbors_and_stats(self, artifact_path):
        async def scenario(service, reader, writer):
            write_frame(writer, {
                "kind": "neighbors", "artifact": str(artifact_path),
                "nodes": [0, 1], "k": 3,
            }, encoding=ENCODING_JSON)
            await writer.drain()
            nbr = await asyncio.wait_for(read_frame(reader), timeout=10)
            write_frame(writer, {"kind": "stats"}, encoding=ENCODING_JSON)
            await writer.drain()
            stats = await asyncio.wait_for(read_frame(reader), timeout=10)
            return nbr, stats

        (nbr_meta, nbr_array), (stats_meta, stats_array) = self._run_server(
            scenario
        )
        assert nbr_meta["ok"] and nbr_array.shape == (2, 3)
        assert 0 not in nbr_array[0]
        assert stats_meta["ok"] and stats_array is None
        assert stats_meta["result"]["sessions"]["loaded"] == 1
        counters = stats_meta["result"]["metrics"]["counters"]
        assert counters["serve.tcp.binary_frames"] >= 1

    def test_protocols_interleave_on_one_connection(self, artifact_path):
        async def scenario(service, reader, writer):
            # JSON line first...
            writer.write(json.dumps({
                "id": 1, "kind": "resistance",
                "artifact": str(artifact_path), "pairs": [[0, 48]],
            }).encode() + b"\n")
            await writer.drain()
            json_reply = json.loads(
                await asyncio.wait_for(reader.readline(), timeout=10)
            )
            # ...then a binary frame on the same socket...
            write_frame(writer, {
                "id": 2, "kind": "resistance",
                "artifact": str(artifact_path), "pairs": [[0, 48]],
            }, encoding=ENCODING_JSON)
            await writer.drain()
            frame_meta, frame_array = await asyncio.wait_for(
                read_frame(reader), timeout=10
            )
            # ...then JSON again.
            writer.write(json.dumps({"id": 3, "kind": "stats"}).encode() + b"\n")
            await writer.drain()
            stats_reply = json.loads(
                await asyncio.wait_for(reader.readline(), timeout=10)
            )
            return json_reply, frame_meta, frame_array, stats_reply

        json_reply, frame_meta, frame_array, stats_reply = self._run_server(
            scenario
        )
        assert json_reply["ok"] and json_reply["id"] == 1
        assert frame_meta["ok"] and frame_meta["id"] == 2
        np.testing.assert_allclose(frame_array, json_reply["result"], rtol=1e-12)
        assert stats_reply["ok"] and stats_reply["id"] == 3

    def test_malformed_frame_gets_error_frame(self, artifact_path):
        async def scenario(service, reader, writer):
            # Correct magic, bogus version: the server must answer with an
            # error frame instead of dying.
            writer.write(FRAME_MAGIC + bytes([99, 0]) + struct.pack(">II", 0, 0))
            await writer.drain()
            return await asyncio.wait_for(read_frame(reader), timeout=10)

        meta, array = self._run_server(scenario)
        assert not meta["ok"]
        assert "bad frame" in meta["error"]

    def test_binary_error_response_for_bad_request(self, artifact_path):
        async def scenario(service, reader, writer):
            write_frame(writer, {"kind": "nope"}, encoding=ENCODING_JSON)
            await writer.drain()
            return await asyncio.wait_for(read_frame(reader), timeout=10)

        meta, array = self._run_server(scenario)
        assert not meta["ok"] and "unknown request kind" in meta["error"]
        assert array is None
