"""Tests for the stream benchmark: records, artifact schema, CLI, traces."""

import json

import pytest

from repro.artifacts import ModelRegistry
from repro.bench import make_artifact, validate_artifact
from repro.bench.cli import main as bench_main
from repro.bench.streaming import run_stream_bench, stream_records_for_scenario


class TestStreamBench:
    @pytest.fixture(scope="class")
    def records(self, tmp_path_factory):
        registry_dir = tmp_path_factory.mktemp("stream-registry")
        return stream_records_for_scenario(
            "grid_2d/tiny", n_batches=3, mode="drift", drift_rate=0.02,
            registry_dir=registry_dir,
        )

    def test_three_methods(self, records):
        assert [r.method for r in records] == [
            "stream_fit", "stream_update", "stream_refit",
        ]
        assert all(r.scenario == "grid_2d/tiny" for r in records)

    def test_update_record_carries_the_acceptance_numbers(self, records):
        update = records[1]
        assert update.quality["speedup_vs_refit"] > 0
        assert 0 < update.quality["resistance_correlation"] <= 1
        assert update.info["n_updates"] == 3
        assert update.info["n_incremental"] + update.info["n_refits"] == 3
        assert len(update.info["reasons"]) == 3
        assert update.info["latest_version"] == 4  # fit + 3 updates

    def test_lineage_reaches_the_initial_fit(self, records):
        update = records[1]
        assert update.info["lineage"][-1] == 1
        assert update.info["lineage"][0] == update.info["latest_version"]
        registry = ModelRegistry(update.info["registry"])
        assert registry.get("grid_2d_tiny@latest").version == 4

    def test_stream_stage_seconds_present(self, records):
        update = records[1]
        assert "drift_check" in update.stage_seconds
        assert "publish" in update.stage_seconds
        # The schema demands the {seconds, calls} shape, not flat floats.
        assert set(update.stage_seconds["drift_check"]) == {"seconds", "calls"}

    def test_records_form_a_valid_artifact(self, records):
        validate_artifact(make_artifact("stream-test", records))

    def test_quality_within_tolerance_of_refit(self, records):
        update, refit = records[1], records[2]
        assert update.quality["resistance_correlation"] >= (
            refit.quality["resistance_correlation"] - 0.05
        )

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            run_stream_bench(["no/such"], n_batches=2)

    def test_cli_writes_gateable_artifact_with_trace(self, tmp_path, capsys):
        out = tmp_path / "BENCH_streaming_test.json"
        code = bench_main([
            "stream", "--scenario", "grid_2d/tiny", "--batches", "3",
            "--registry-dir", str(tmp_path / "registry"),
            "--out", str(out), "--trace", str(tmp_path / "traces"),
        ])
        assert code == 0
        artifact = validate_artifact(json.loads(out.read_text()))
        assert len(artifact["results"]) == 3
        assert artifact["run_config"]["batches"] == 3
        assert bench_main(["compare", str(out), str(out)]) == 0

        from repro.obs import load_spans

        spans = load_spans(tmp_path / "traces" / "stream_grid_2d_tiny.jsonl")
        names = [s.name for s in spans]
        assert names.count("stream.update") == 3
        assert "stream.fit" in names

    def test_cli_unknown_scenario(self, capsys):
        assert bench_main(["stream", "--scenario", "no/such"]) == 2
