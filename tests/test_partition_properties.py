"""Property-based invariants of :class:`repro.partition.GraphPartitioner`.

Randomised (hypothesis, derandomised) checks of the partition contract the
sharded learner and the sharded artifact format both build on: partitions
are a disjoint cover of the vertex set, every edge is interior to exactly
one shard or in the cut set exactly once, halos are symmetric, the balance
factor respects the configured tolerance, and the whole pipeline is
deterministic under a fixed seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.graph import WeightedGraph
from repro.graphs.generators import grid_2d
from repro.partition import GraphPartition, GraphPartitioner

SETTINGS = settings(max_examples=40, deadline=None, derandomize=True)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def connected_graphs(draw, min_nodes=8, max_nodes=60, max_extra_edges=80):
    """A connected WeightedGraph: a random-weight path plus random extra edges."""
    n = draw(st.integers(min_nodes, max_nodes))
    m = draw(st.integers(0, max_extra_edges))
    rows = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    cols = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    extra_w = draw(
        st.lists(
            st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False),
            min_size=m,
            max_size=m,
        )
    )
    path = np.arange(n - 1)
    path_w = draw(
        st.lists(
            st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False),
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    return WeightedGraph(
        n,
        np.concatenate([path, np.array(rows, dtype=np.int64)]),
        np.concatenate([path + 1, np.array(cols, dtype=np.int64)]),
        np.concatenate([np.array(path_w), np.array(extra_w)]),
    )


@st.composite
def graph_and_parts(draw):
    graph = draw(connected_graphs())
    num_parts = draw(st.integers(1, max(1, graph.n_nodes // 3)))
    seed = draw(st.integers(0, 5))
    return graph, num_parts, seed


def _partition(graph, num_parts, seed) -> GraphPartition:
    return GraphPartitioner(num_parts, min_part_size=3, seed=seed).partition(graph)


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------
@SETTINGS
@given(graph_and_parts())
def test_partition_is_disjoint_cover(case):
    graph, num_parts, seed = case
    part = _partition(graph, num_parts, seed)
    # Every node has exactly one part, every part id is in range, no part
    # is empty and part_nodes() tiles the vertex set.
    assert part.assignment.shape == (graph.n_nodes,)
    assert part.assignment.min() >= 0 and part.assignment.max() < part.n_parts
    sizes = part.part_sizes
    assert int(sizes.sum()) == graph.n_nodes
    assert sizes.min() >= 3
    all_nodes = np.concatenate([part.part_nodes(p) for p in range(part.n_parts)])
    assert np.array_equal(np.sort(all_nodes), np.arange(graph.n_nodes))


@SETTINGS
@given(graph_and_parts())
def test_every_edge_interior_or_cut_exactly_once(case):
    graph, num_parts, seed = case
    part = _partition(graph, num_parts, seed)
    crossing = part.assignment[graph.rows] != part.assignment[graph.cols]
    # Cut set == the crossing edges, in canonical order, each exactly once.
    assert np.array_equal(part.cut_rows, graph.rows[crossing])
    assert np.array_equal(part.cut_cols, graph.cols[crossing])
    assert np.array_equal(part.cut_weights, graph.weights[crossing])
    cut_keys = set(zip(part.cut_rows.tolist(), part.cut_cols.tolist()))
    assert len(cut_keys) == part.n_cut_edges  # no duplicates
    # Interior edges of all shards + cut edges tile the edge set.
    n_interior = int((~crossing).sum())
    assert n_interior + part.n_cut_edges == graph.n_edges
    for p in range(part.n_parts):
        interior_p = (
            (part.assignment[graph.rows] == p) & (part.assignment[graph.cols] == p)
        )
        assert not np.any(interior_p & crossing)


@SETTINGS
@given(graph_and_parts())
def test_halo_symmetry(case):
    graph, num_parts, seed = case
    part = _partition(graph, num_parts, seed)
    halos = [set(part.halo_nodes(p).tolist()) for p in range(part.n_parts)]
    for u, v in zip(part.cut_rows.tolist(), part.cut_cols.tolist()):
        pu = int(part.assignment[u])
        pv = int(part.assignment[v])
        # u is ghosted by v's owner and vice versa.
        assert u in halos[pv]
        assert v in halos[pu]
    # Halo nodes are always foreign.
    for p, halo in enumerate(halos):
        assert all(part.assignment[node] != p for node in halo)


@SETTINGS
@given(graph_and_parts())
def test_balance_within_tolerance(case):
    graph, num_parts, seed = case
    tolerance = 1.2
    part = GraphPartitioner(
        num_parts, balance_tolerance=tolerance, min_part_size=3, seed=seed
    ).partition(graph)
    ideal = -(-graph.n_nodes // num_parts)
    assert part.part_sizes.max() <= int(tolerance * ideal)
    assert part.balance_factor <= tolerance + 1e-9


@SETTINGS
@given(graph_and_parts())
def test_deterministic_under_fixed_seed(case):
    graph, num_parts, seed = case
    first = _partition(graph, num_parts, seed)
    second = _partition(graph, num_parts, seed)
    assert np.array_equal(first.assignment, second.assignment)
    assert np.array_equal(first.cut_rows, second.cut_rows)
    assert np.array_equal(first.cut_cols, second.cut_cols)
    assert np.array_equal(first.cut_weights, second.cut_weights)


# ----------------------------------------------------------------------
# Direct edge cases
# ----------------------------------------------------------------------
def test_single_part_is_trivial():
    part = GraphPartitioner(1).partition(grid_2d(5, 5))
    assert part.n_parts == 1
    assert np.array_equal(part.assignment, np.zeros(25, dtype=np.int64))
    assert part.n_cut_edges == 0
    assert part.balance_factor == 1.0


def test_too_few_nodes_rejected():
    with pytest.raises(ValueError, match="cannot split"):
        GraphPartitioner(4, min_part_size=3).partition(grid_2d(3, 3))


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError, match="num_parts"):
        GraphPartitioner(0)
    with pytest.raises(ValueError, match="balance_tolerance"):
        GraphPartitioner(2, balance_tolerance=0.9)
    with pytest.raises(ValueError, match="oversample"):
        GraphPartitioner(2, oversample=1)
    with pytest.raises(ValueError, match="min_part_size"):
        GraphPartitioner(2, min_part_size=0)


def test_part_lookup_bounds():
    part = GraphPartitioner(2, seed=0).partition(grid_2d(6, 6))
    with pytest.raises(ValueError, match="part must be in"):
        part.part_nodes(2)
    with pytest.raises(ValueError, match="part must be in"):
        part.halo_nodes(-1)


def test_grid_partition_is_local():
    """On a mesh, a good partition cuts far fewer edges than it keeps."""
    graph = grid_2d(24, 24)
    part = GraphPartitioner(4, seed=0).partition(graph)
    assert part.n_cut_edges < graph.n_edges // 4
