"""Tests for the previously untested embedding extras: spectral drawing
(embedding/drawing.py) and the k-means implementation (embedding/kmeans.py)."""

import numpy as np
import pytest

from repro.embedding import kmeans, spectral_layout
from repro.embedding.clustering import clustering_agreement
from repro.graphs.generators import grid_2d
from repro.graphs.graph import WeightedGraph


class TestSpectralLayout:
    def test_default_shape_and_finiteness(self):
        coords = spectral_layout(grid_2d(6, 6))
        assert coords.shape == (36, 2)
        assert np.all(np.isfinite(coords))

    def test_grid_layout_recovers_geometry(self):
        # On a path graph u_2 is monotone along the path, so 1-D spectral
        # coordinates sort the nodes in path order (up to direction).
        path = WeightedGraph(10, range(9), range(1, 10))
        coords = spectral_layout(path, dimensions=1).ravel()
        order = np.argsort(coords)
        assert order.tolist() in [list(range(10)), list(range(9, -1, -1))]

    def test_higher_dimensions(self):
        coords = spectral_layout(grid_2d(5, 5), dimensions=4)
        assert coords.shape == (25, 4)
        # Columns are orthogonal eigenvectors: no duplicated axes.
        gram = coords.T @ coords
        off = gram - np.diag(np.diag(gram))
        assert np.abs(off).max() < 1e-6

    def test_padding_when_graph_too_small(self):
        # A triangle has only 2 nontrivial eigenvectors; asking for 5
        # coordinates pads the remaining columns with zeros.
        triangle = WeightedGraph(3, [0, 1, 0], [1, 2, 2])
        coords = spectral_layout(triangle, dimensions=5)
        assert coords.shape == (3, 5)
        assert np.allclose(coords[:, 2:], 0.0)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError, match="dimensions"):
            spectral_layout(grid_2d(3, 3), dimensions=0)

    def test_deterministic_under_seed(self):
        a = spectral_layout(grid_2d(5, 5), seed=0)
        b = spectral_layout(grid_2d(5, 5), seed=0)
        np.testing.assert_array_equal(a, b)


class TestKMeans:
    def test_separated_blobs_recovered(self):
        rng = np.random.default_rng(0)
        blobs = np.vstack([
            rng.normal(0.0, 0.05, size=(20, 2)),
            rng.normal(5.0, 0.05, size=(20, 2)),
            rng.normal([0.0, 9.0], 0.05, size=(20, 2)),
        ])
        result = kmeans(blobs, 3, seed=0)
        labels = result.labels
        assert result.converged
        for start in (0, 20, 40):
            assert len(set(labels[start:start + 20])) == 1
        assert len(set(labels[::20])) == 3

    def test_inertia_is_within_cluster_sse(self):
        points = np.array([[0.0], [1.0], [10.0], [11.0]])
        result = kmeans(points, 2, seed=0)
        expected = sum(
            np.sum((points[result.labels == c] - result.centers[c]) ** 2)
            for c in range(2)
        )
        assert result.inertia == pytest.approx(expected)

    def test_k_equals_n(self):
        points = np.arange(5, dtype=float)[:, None]
        result = kmeans(points, 5, seed=0)
        assert sorted(result.labels.tolist()) == [0, 1, 2, 3, 4]
        assert result.inertia == pytest.approx(0.0)

    def test_k_one(self):
        points = np.random.default_rng(1).standard_normal((12, 3))
        result = kmeans(points, 1, seed=0)
        assert set(result.labels) == {0}
        np.testing.assert_allclose(result.centers[0], points.mean(axis=0))

    def test_duplicate_points_do_not_crash(self):
        # All-coincident points exercise the degenerate k-means++ branch.
        points = np.ones((8, 2))
        result = kmeans(points, 3, seed=0)
        assert result.labels.shape == (8,)
        assert result.inertia == pytest.approx(0.0)

    def test_validation_errors(self):
        points = np.zeros((4, 2))
        with pytest.raises(ValueError, match="k must satisfy"):
            kmeans(points, 0)
        with pytest.raises(ValueError, match="k must satisfy"):
            kmeans(points, 5)
        with pytest.raises(ValueError, match="2-D"):
            kmeans(np.zeros(4), 2)

    def test_seed_determinism(self):
        points = np.random.default_rng(2).standard_normal((40, 2))
        a = kmeans(points, 4, seed=7)
        b = kmeans(points, 4, seed=7)
        np.testing.assert_array_equal(a.labels, b.labels)
        assert a.inertia == b.inertia

    def test_more_restarts_never_worse(self):
        points = np.random.default_rng(3).standard_normal((60, 2))
        single = kmeans(points, 5, seed=0, n_init=1)
        multi = kmeans(points, 5, seed=0, n_init=8)
        assert multi.inertia <= single.inertia + 1e-12


class TestClusteringAgreement:
    def test_identical_labelings(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert clustering_agreement(labels, labels) == 1.0

    def test_permuted_labels_still_agree(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([2, 2, 0, 0, 1, 1])
        assert clustering_agreement(a, b) == 1.0

    def test_partial_agreement(self):
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 1, 1])
        assert clustering_agreement(a, b) == pytest.approx(5 / 6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            clustering_agreement(np.zeros(3), np.zeros(4))
