"""Tests for the serve benchmark and the --jobs parallel suite runner."""

import json

import numpy as np
import pytest

from repro.bench import make_artifact, registry, validate_artifact
from repro.bench.cli import main as bench_main
from repro.bench.runner import run_suite
from repro.bench.serving import run_serve_bench, serve_records_for_scenario


class TestServeBench:
    @pytest.fixture(scope="class")
    def records(self, tmp_path_factory):
        artifact_dir = tmp_path_factory.mktemp("serve-bench")
        return serve_records_for_scenario(
            "grid_2d/tiny", n_queries=60, batch_size=16,
            artifact_dir=artifact_dir,
        )

    def test_three_methods(self, records):
        assert [r.method for r in records] == [
            "serve_naive", "serve_batched", "serve_service",
        ]
        assert all(r.scenario == "grid_2d/tiny" for r in records)

    def test_quality_metrics_present(self, records):
        for record in records:
            assert record.quality["qps"] > 0
            assert record.quality["p99_ms"] >= record.quality["p50_ms"] >= 0
            assert record.wall_seconds[0] > 0

    def test_batched_speedup_recorded(self, records):
        batched = records[1]
        assert batched.info["speedup_vs_naive"] > 1.0
        assert batched.info["resistance_engine"] in ("woodbury", "grouped")
        assert batched.info["n_queries"] == 60

    def test_records_form_a_valid_artifact(self, records):
        artifact = make_artifact("serving-test", records)
        validate_artifact(artifact)

    def test_artifact_persisted_in_dir(self, records, tmp_path):
        # The learned model was written where we asked and survives a load.
        from repro.artifacts import load_result

        loaded = load_result(records[0].info["artifact"])
        assert loaded.checksum == records[0].info["checksum"]

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            run_serve_bench(["no/such"], n_queries=5)

    def test_cli_writes_gateable_artifact(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serving_test.json"
        code = bench_main([
            "serve", "--scenario", "grid_2d/tiny", "--queries", "40",
            "--batch-size", "16", "--out", str(out),
            "--artifact-dir", str(tmp_path / "models"),
        ])
        assert code == 0
        artifact = validate_artifact(json.loads(out.read_text()))
        assert len(artifact["results"]) == 3
        assert artifact["run_config"]["queries"] == 40
        # Self-compare passes the regression gate.
        assert bench_main(["compare", str(out), str(out)]) == 0

    def test_cli_unknown_scenario(self, capsys):
        assert bench_main(["serve", "--scenario", "no/such"]) == 2


class TestServeLoadSweep:
    @pytest.fixture(scope="class")
    def records(self, tmp_path_factory):
        artifact_dir = tmp_path_factory.mktemp("serve-load")
        return serve_records_for_scenario(
            "grid_2d/tiny", n_queries=96, batch_size=16,
            artifact_dir=artifact_dir, load_concurrency=[2, 8],
        )

    def test_one_record_per_concurrency_level(self, records):
        methods = [r.method for r in records]
        assert methods == [
            "serve_naive", "serve_batched", "serve_service",
            "serve_load_c2", "serve_load_c8",
        ]

    def test_load_records_carry_qps_and_latency(self, records):
        for record in records:
            if not record.method.startswith("serve_load_c"):
                continue
            assert record.quality["qps"] > 0
            assert record.quality["p99_ms"] >= record.quality["p50_ms"] > 0
            assert record.quality["concurrency"] == record.info["concurrency"]

    def test_load_workload_is_mixed(self, records):
        load = next(r for r in records if r.method == "serve_load_c2")
        mix = load.info["mix"]
        assert set(mix) == {"resistance", "neighbors", "labels"}
        assert sum(mix.values()) == 96
        assert mix["resistance"] > 0 and mix["labels"] > 0
        # grid_2d/tiny artifacts include an embedding, so neighbors ran too.
        assert mix["neighbors"] > 0

    def test_load_records_form_a_valid_artifact(self, records):
        validate_artifact(make_artifact("serving-load-test", records))

    def test_mixed_workload_spellings_coalesce(self):
        # Explicit defaults (k=5 / n_clusters=8) and omitted options must
        # produce identical batch signatures — the sweep depends on it.
        from repro.bench.serving import _mixed_workload

        requests = _mixed_workload(100, 200, seed=0)
        kinds = {kind for kind, _, _ in requests}
        assert kinds == {"resistance", "neighbors", "labels"}
        explicit = [o for k, _, o in requests if k == "neighbors" and o]
        implicit = [o for k, _, o in requests if k == "neighbors" and not o]
        assert explicit and implicit  # both spellings present
        assert all(o == {"k": 5} for o in explicit)

    def test_mixed_workload_without_embedding_drops_neighbors(self):
        from repro.bench.serving import _mixed_workload

        requests = _mixed_workload(100, 120, seed=0, with_neighbors=False)
        assert not any(kind == "neighbors" for kind, _, _ in requests)

    def test_cli_load_flag(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serving_load.json"
        code = bench_main([
            "serve", "--scenario", "grid_2d/tiny", "--queries", "48",
            "--batch-size", "16", "--load", "--concurrency", "4",
            "--out", str(out), "--artifact-dir", str(tmp_path / "models"),
        ])
        assert code == 0
        artifact = validate_artifact(json.loads(out.read_text()))
        assert len(artifact["results"]) == 4
        assert artifact["run_config"]["load_concurrency"] == [4]
        stdout = capsys.readouterr().out
        assert "load c=4" in stdout

    def test_cli_bad_concurrency(self, capsys):
        assert bench_main([
            "serve", "--scenario", "grid_2d/tiny", "--load",
            "--concurrency", "0,abc",
        ]) == 2


class TestJobsRunner:
    def _specs(self):
        return [registry.get_scenario(n) for n in ("grid_2d/tiny", "circuit/tiny")]

    def test_parallel_matches_serial(self):
        specs = self._specs()
        serial = run_suite(specs, n_quality_pairs=40)
        parallel = run_suite(specs, n_quality_pairs=40, jobs=2)
        assert [(r.scenario, r.method) for r in serial] == [
            (r.scenario, r.method) for r in parallel
        ]
        for a, b in zip(serial, parallel):
            # Learner outputs are deterministic; only wall times may differ.
            assert a.quality == b.quality
            assert a.n_nodes == b.n_nodes
            assert a.info["n_iterations"] == b.info["n_iterations"]

    def test_progress_fires_once_per_scenario(self):
        seen = []
        run_suite(
            self._specs(), n_quality_pairs=40, jobs=2,
            progress=lambda spec, records: seen.append(spec.name),
        )
        assert sorted(seen) == ["circuit/tiny", "grid_2d/tiny"]

    def test_jobs_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            run_suite(self._specs(), jobs=0)

    def test_cli_jobs_flag(self, tmp_path, capsys):
        out = tmp_path / "BENCH_jobs.json"
        code = bench_main([
            "run", "--scenario", "grid_2d/tiny", "--scenario", "circuit/tiny",
            "--jobs", "2", "--baselines", "none", "--no-memory",
            "--out", str(out), "--tag", "jobs-test",
        ])
        assert code == 0
        artifact = validate_artifact(json.loads(out.read_text()))
        assert [r["scenario"] for r in artifact["results"]] == [
            "grid_2d/tiny", "circuit/tiny",
        ]
