"""Tests for repro.artifacts: round-trip exactness, validation, checksums."""

import json
import struct
import zipfile

import numpy as np
import pytest

from repro.artifacts import (
    ARTIFACT_SCHEMA,
    ARTIFACT_VERSION,
    ArtifactFormatError,
    artifact_checksum,
    load_result,
    payload_checksum,
    save_artifact,
    save_result,
)
from repro.core.config import SGLConfig
from repro.core.instrumentation import StageTimings
from repro.core.sgl import SGLearner, learn_graph
from repro.graphs.generators import grid_2d
from repro.graphs.graph import WeightedGraph
from repro.measurements.generator import simulate_measurements


@pytest.fixture(scope="module")
def learned():
    data = simulate_measurements(grid_2d(7, 7), n_measurements=30, seed=0)
    return learn_graph(data, beta=0.05)


def _tampered_npz(path, out, mutate):
    """Rewrite an npz with one entry replaced by ``mutate(name, data)``."""
    with np.load(path, allow_pickle=False) as data:
        arrays = {name: data[name] for name in data.files}
    arrays = mutate(arrays)
    with open(out, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    return out


class TestRoundTrip:
    def test_graph_round_trip_is_exact(self, learned, tmp_path):
        path = save_result(learned, tmp_path / "model.npz")
        artifact = load_result(path)
        assert artifact.graph == learned.graph
        # Stronger than __eq__ (which allows allclose weights): bit-exact.
        assert np.array_equal(artifact.graph.rows, learned.graph.rows)
        assert np.array_equal(artifact.graph.cols, learned.graph.cols)
        assert np.array_equal(artifact.graph.weights, learned.graph.weights)
        assert artifact.n_nodes == learned.graph.n_nodes

    def test_config_engine_stats_timings_round_trip(self, learned, tmp_path):
        path = save_result(learned, tmp_path / "model.npz")
        artifact = load_result(path)
        assert artifact.config == learned.config
        assert np.isinf(artifact.config.sigma_sq)
        assert artifact.engine_stats == learned.engine_stats
        assert artifact.timings.as_dict() == learned.timings.as_dict()

    def test_embedding_round_trip_exact(self, learned, tmp_path):
        rng = np.random.default_rng(3)
        embedding = rng.standard_normal((learned.graph.n_nodes, 4))
        path = save_result(learned, tmp_path / "model.npz", embedding=embedding)
        artifact = load_result(path)
        assert np.array_equal(artifact.embedding, embedding)

    def test_default_embedding_is_computed(self, learned, tmp_path):
        path = save_result(learned, tmp_path / "model.npz")
        artifact = load_result(path)
        assert artifact.has_embedding
        assert artifact.embedding.shape == (learned.graph.n_nodes, learned.config.r - 1)

    def test_no_embedding_mode(self, learned, tmp_path):
        path = save_result(learned, tmp_path / "m.npz", include_embedding=False)
        artifact = load_result(path)
        assert not artifact.has_embedding and artifact.embedding is None

    def test_checkpoint_path_hook(self, tmp_path):
        data = simulate_measurements(grid_2d(6, 6), n_measurements=25, seed=1)
        path = tmp_path / "ckpt" / "model.npz"
        result = SGLearner(beta=0.05).fit(data, checkpoint_path=path)
        artifact = load_result(path)
        assert artifact.graph == result.graph
        assert "checkpoint" in result.timings.stages
        assert artifact.meta["source"] == "SGLearner.fit"

    def test_custom_config_round_trip(self, tmp_path):
        config = SGLConfig(k=7, r=4, sigma_sq=2.5, embedding_engine="stateless")
        graph = grid_2d(4, 4)
        path = save_artifact(graph, config, tmp_path / "m.npz")
        artifact = load_result(path)
        assert artifact.config == config
        assert artifact.config.sigma_sq == 2.5


class TestMmapLoads:
    def test_uncompressed_round_trip_equivalence(self, learned, tmp_path):
        # The zero-copy path must be byte-for-byte equivalent to the eager
        # loader, embedding and metadata included.
        path = save_result(learned, tmp_path / "raw.npz", compress=False)
        eager = load_result(path)
        lazy = load_result(path, mmap_mode="r")
        assert lazy.mmapped and not eager.mmapped
        assert lazy.graph == eager.graph
        assert np.array_equal(lazy.graph.rows, eager.graph.rows)
        assert np.array_equal(lazy.graph.cols, eager.graph.cols)
        assert np.array_equal(lazy.graph.weights, eager.graph.weights)
        assert np.array_equal(lazy.embedding, eager.embedding)
        assert lazy.checksum == eager.checksum
        assert lazy.config == eager.config

    def test_mmap_arrays_are_memory_mapped(self, learned, tmp_path):
        path = save_result(learned, tmp_path / "raw.npz", compress=False)
        artifact = load_result(path, mmap_mode="r")
        assert isinstance(artifact.graph.weights, np.memmap)

    def test_compressed_artifact_falls_back_to_eager(self, learned, tmp_path):
        # Compressed (deflated) members cannot be mapped: the loader must
        # degrade gracefully rather than fail or return garbage.
        path = save_result(learned, tmp_path / "packed.npz", compress=True)
        artifact = load_result(path, mmap_mode="r")
        assert not artifact.mmapped
        assert artifact.graph == learned.graph

    def test_mmap_checksum_still_validated(self, learned, tmp_path):
        path = save_result(learned, tmp_path / "raw.npz", compress=False)

        def corrupt(arrays):
            arrays["graph_weights"] = arrays["graph_weights"].copy()
            arrays["graph_weights"][0] *= 2.0
            return arrays

        bad = _tampered_npz(path, tmp_path / "bad.npz", corrupt)
        with pytest.raises(ArtifactFormatError, match="checksum"):
            load_result(bad, mmap_mode="r")


class TestChecksum:
    def test_payload_checksum_deterministic_and_sensitive(self):
        a = {"x": np.arange(5, dtype=np.int64), "y": np.ones(3)}
        assert payload_checksum(a) == payload_checksum(dict(reversed(a.items())))
        mutated = {"x": np.arange(5, dtype=np.int64), "y": np.ones(3) * 2}
        assert payload_checksum(a) != payload_checksum(mutated)

    def test_artifact_checksum_matches_load(self, learned, tmp_path):
        path = save_result(learned, tmp_path / "m.npz")
        assert artifact_checksum(path) == load_result(path).checksum

    def test_same_model_same_checksum(self, learned, tmp_path):
        a = save_result(learned, tmp_path / "a.npz", include_embedding=False)
        b = save_result(learned, tmp_path / "b.npz", include_embedding=False)
        assert artifact_checksum(a) == artifact_checksum(b)

    def test_value_tamper_detected(self, learned, tmp_path):
        path = save_result(learned, tmp_path / "m.npz")

        def corrupt(arrays):
            arrays["graph_weights"] = arrays["graph_weights"].copy()
            arrays["graph_weights"][0] *= 1.5
            return arrays

        bad = _tampered_npz(path, tmp_path / "bad.npz", corrupt)
        with pytest.raises(ArtifactFormatError, match="checksum"):
            load_result(bad)

    def test_bitflip_tamper_detected(self, learned, tmp_path):
        path = save_result(learned, tmp_path / "m.npz")
        raw = bytearray(path.read_bytes())
        # Flip a byte provably inside a payload member's compressed
        # stream (a flip landing in redundant zip structure — e.g. the
        # local-header copy of a CRC — changes no stored data and is
        # legitimately invisible to the loader).
        with zipfile.ZipFile(path) as archive:
            info = archive.getinfo("graph_weights.npy")
        name_len, extra_len = struct.unpack_from("<HH", raw, info.header_offset + 26)
        data_start = info.header_offset + 30 + name_len + extra_len
        raw[data_start + info.compress_size // 2] ^= 0xFF
        bad = tmp_path / "flip.npz"
        bad.write_bytes(bytes(raw))
        with pytest.raises(ArtifactFormatError):
            load_result(bad)


class TestValidation:
    def _with_meta(self, path, out, update):
        def mutate(arrays):
            meta = json.loads(bytes(arrays["meta_json"].tobytes()))
            meta = update(meta)
            arrays["meta_json"] = np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            )
            return arrays

        return _tampered_npz(path, out, mutate)

    def test_unknown_schema_version_rejected(self, learned, tmp_path):
        path = save_result(learned, tmp_path / "m.npz")
        bad = self._with_meta(
            path, tmp_path / "v99.npz", lambda m: {**m, "schema_version": 99}
        )
        with pytest.raises(ArtifactFormatError, match="schema_version"):
            load_result(bad)

    def test_wrong_schema_name_rejected(self, learned, tmp_path):
        path = save_result(learned, tmp_path / "m.npz")
        bad = self._with_meta(
            path, tmp_path / "name.npz", lambda m: {**m, "schema": "other"}
        )
        with pytest.raises(ArtifactFormatError, match="schema"):
            load_result(bad)

    def test_wrong_dtype_rejected(self, learned, tmp_path):
        path = save_result(learned, tmp_path / "m.npz")

        def corrupt(arrays):
            arrays["graph_weights"] = arrays["graph_weights"].astype(np.float32)
            return arrays

        bad = _tampered_npz(path, tmp_path / "f32.npz", corrupt)
        with pytest.raises(ArtifactFormatError, match="dtype"):
            load_result(bad)

    def test_missing_array_rejected(self, learned, tmp_path):
        path = save_result(learned, tmp_path / "m.npz")

        def corrupt(arrays):
            del arrays["graph_cols"]
            return arrays

        bad = _tampered_npz(path, tmp_path / "miss.npz", corrupt)
        with pytest.raises(ArtifactFormatError, match="graph_cols"):
            load_result(bad)

    def test_non_canonical_edges_rejected(self, learned, tmp_path):
        path = save_result(learned, tmp_path / "m.npz")

        def corrupt(arrays):
            rows = arrays["graph_rows"].copy()
            cols = arrays["graph_cols"].copy()
            rows[0], cols[0] = cols[0], rows[0]  # break rows < cols
            meta = json.loads(bytes(arrays["meta_json"].tobytes()))
            arrays["graph_rows"], arrays["graph_cols"] = rows, cols
            meta["checksum"] = payload_checksum(
                {k: v for k, v in arrays.items() if k != "meta_json"}
            )
            arrays["meta_json"] = np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            )
            return arrays

        bad = _tampered_npz(path, tmp_path / "canon.npz", corrupt)
        with pytest.raises(ArtifactFormatError, match="canonical"):
            load_result(bad)

    def test_not_an_npz_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"definitely not a zip archive")
        with pytest.raises(ArtifactFormatError):
            load_result(path)

    def test_plain_npz_without_meta_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, x=np.arange(3))
        with pytest.raises(ArtifactFormatError, match="meta_json"):
            load_result(path)

    def test_schema_constants(self):
        assert ARTIFACT_SCHEMA == "repro.model"
        assert ARTIFACT_VERSION == 1

    def test_embedding_shape_mismatch_rejected(self, tmp_path):
        graph = grid_2d(4, 4)
        with pytest.raises(ValueError, match="embedding"):
            save_artifact(
                graph, SGLConfig(), tmp_path / "m.npz",
                embedding=np.zeros((3, 2)),
            )

    def test_artifact_is_a_valid_zip(self, learned, tmp_path):
        # The format is a plain npz: standard tools can at least list it.
        path = save_result(learned, tmp_path / "m.npz")
        names = set(zipfile.ZipFile(path).namelist())
        assert {"meta_json.npy", "graph_rows.npy", "graph_weights.npy"} <= names


class TestLowLevel:
    def test_save_artifact_type_checks(self, tmp_path):
        with pytest.raises(TypeError, match="WeightedGraph"):
            save_artifact("nope", SGLConfig(), tmp_path / "m.npz")
        with pytest.raises(TypeError, match="SGLConfig"):
            save_artifact(grid_2d(3, 3), {"k": 5}, tmp_path / "m.npz")

    def test_empty_graph_round_trip(self, tmp_path):
        graph = WeightedGraph(5)
        path = save_artifact(graph, SGLConfig(), tmp_path / "empty.npz")
        artifact = load_result(path)
        assert artifact.graph.n_nodes == 5 and artifact.graph.n_edges == 0

    def test_timings_round_trip(self, tmp_path):
        timings = StageTimings()
        timings.add("embedding", 1.25)
        timings.add("embedding", 0.75)
        path = save_artifact(
            grid_2d(3, 3), SGLConfig(), tmp_path / "m.npz", timings=timings
        )
        loaded = load_result(path).timings
        assert loaded.seconds("embedding") == 2.0
        assert loaded.stages["embedding"].calls == 2
