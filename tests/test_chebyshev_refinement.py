"""Chebyshev-filtered refinement, linalg backends, locking and sketching.

Covers the mixed-precision refinement stack end to end:

* :mod:`repro.linalg.backends` -- protocol conformance, availability
  reporting, graceful degradation when cupy is absent;
* :func:`chebyshev_filter` / :func:`chebyshev_refine` -- filtering accuracy,
  the polynomial-intractable window bypass, residual acceptance semantics;
* eigenpair locking in :func:`laplacian_eigenpairs` and the PINVIT sweep;
* the Hutchinson-style stochastic sensitivity estimator;
* the mixed-precision acceptance gates: the chebyshev engine's embedding
  agrees with the stateless reference (subspace angle), and float32 /
  float64 filtering land within 0.01 resistance correlation of each other
  on all five medium scenario families.
"""

import dataclasses

import numpy as np
import pytest
import scipy.linalg

from repro.bench.registry import get_scenario
from repro.core.config import SGLConfig
from repro.core.sensitivity import edge_sensitivities
from repro.core.sgl import SGLearner
from repro.embedding import MultilevelEmbeddingEngine, spectral_embedding_matrix
from repro.embedding.spectral import SpectralEmbedding
from repro.graphs.generators import grid_2d
from repro.linalg import MultilevelEigensolver, laplacian_eigenpairs
from repro.linalg.backends import (
    BACKEND_NAMES,
    LinalgBackend,
    LinalgBackendError,
    available_backends,
    get_backend,
)
from repro.linalg.chebyshev import (
    chebyshev_filter,
    chebyshev_refine,
    lanczos_spectral_bound,
)
from repro.metrics.resistance import resistance_correlation


def _near_tree_graph():
    """MST of a weighted grid plus a few off-tree edges (the SGL regime)."""
    rng = np.random.default_rng(0)
    grid = grid_2d(16, 16)
    weighted = grid.with_weights(rng.random(grid.n_edges) + 0.5)
    from repro.knn.mst import maximum_spanning_tree

    tree = maximum_spanning_tree(weighted)
    return tree.add_edges([(0, 255), (17, 200), (40, 120)], [1.0, 1.0, 1.0])


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
def test_numpy_backend_always_available_and_default():
    assert available_backends()["numpy"] is True
    assert get_backend("numpy").name == "numpy"
    assert set(available_backends()) <= set(BACKEND_NAMES)


def test_unknown_backend_raises_with_available_names():
    with pytest.raises(LinalgBackendError, match="numpy"):
        get_backend("tpu")


def test_cupy_absence_degrades_gracefully():
    availability = available_backends()
    assert "cupy" in availability
    if availability["cupy"]:
        assert get_backend("cupy").name == "cupy"
    else:
        # Explicit requests fail loudly with an actionable message...
        with pytest.raises(LinalgBackendError, match="cupy"):
            get_backend("cupy")
    # ...while "auto" always resolves to something usable.
    assert get_backend("auto").name in {"numpy", "cupy"}


def test_numpy_backend_satisfies_protocol_and_primitives():
    backend = get_backend("numpy")
    assert isinstance(backend, LinalgBackend)
    rng = np.random.default_rng(0)
    block = rng.standard_normal((20, 3))
    q, r = backend.qr(backend.asarray(block))
    np.testing.assert_allclose(q @ r, block, atol=1e-12)
    sym = block.T @ block
    values, vectors = backend.eigh(sym)
    np.testing.assert_allclose(vectors @ np.diag(values) @ vectors.T, sym, atol=1e-10)
    rhs = rng.standard_normal(3)
    np.testing.assert_allclose(sym @ backend.solve(sym, rhs), rhs, atol=1e-10)
    graph = grid_2d(5, 5)
    native = backend.sparse(graph.laplacian(), dtype=np.float32)
    assert native.dtype == np.float32
    out = backend.spmm(native, backend.asarray(np.ones((25, 2)), dtype=np.float32))
    np.testing.assert_allclose(backend.to_numpy(out), 0.0, atol=1e-6)


# ----------------------------------------------------------------------
# Chebyshev filter and refinement
# ----------------------------------------------------------------------
def test_lanczos_bound_brackets_lambda_max():
    graph = grid_2d(12, 12)
    exact = float(np.linalg.eigvalsh(graph.laplacian().toarray()).max())
    bound = lanczos_spectral_bound(graph, steps=8, seed=0)
    assert exact <= bound <= 2.0 * exact


def test_chebyshev_filter_amplifies_wanted_modes():
    graph = grid_2d(10, 10)
    lap = graph.laplacian()
    _, exact = laplacian_eigenpairs(graph, 1, method="dense")
    rng = np.random.default_rng(0)
    noisy = exact + 0.2 * rng.standard_normal(exact.shape)
    noisy -= noisy.mean(axis=0)
    bound = lanczos_spectral_bound(graph)

    def cosine(block):
        return abs(exact[:, 0] @ block[:, 0]) / np.linalg.norm(block[:, 0])

    filtered = chebyshev_filter(lap, noisy, 8, 0.5, bound)
    assert cosine(filtered) > cosine(noisy)
    assert cosine(filtered) > 0.98
    # More degrees, more damping of the unwanted interval.
    assert cosine(chebyshev_filter(lap, noisy, 16, 0.5, bound)) > cosine(filtered)


def test_chebyshev_filter_validation():
    graph = grid_2d(5, 5)
    block = np.ones((25, 1))
    with pytest.raises(ValueError, match="degree"):
        chebyshev_filter(graph.laplacian(), block, 0, 0.5, 2.0)
    with pytest.raises(ValueError, match="upper"):
        chebyshev_filter(graph.laplacian(), block, 4, 2.0, 0.5)


def test_chebyshev_refine_accepts_on_mesh_in_float32():
    graph = grid_2d(14, 14)
    exact_vals, exact_vecs = laplacian_eigenpairs(graph, 3, method="dense")
    rng = np.random.default_rng(1)
    start = exact_vecs + 0.05 * rng.standard_normal(exact_vecs.shape)
    outcome = chebyshev_refine(graph, start, 3, steps=2, degree=8)
    assert outcome.accepted and outcome.reason == "ok"
    assert outcome.dtype == "float32"
    assert outcome.residual <= 5e-2
    np.testing.assert_allclose(outcome.eigenvalues, exact_vals, atol=5e-3)


def test_chebyshev_refine_detects_intractable_window_up_front():
    graph = _near_tree_graph()
    _, vecs = laplacian_eigenpairs(graph, 3, method="dense")
    outcome = chebyshev_refine(graph, vecs, 3, steps=2, max_degree=4, degree_headroom=1.0)
    assert not outcome.accepted
    assert outcome.reason == "window"
    # The bypass is decided before any filtering: no spmm cost was paid.
    assert outcome.degree == 0 and outcome.steps == 0
    assert not np.isfinite(outcome.residual)


def test_chebyshev_refine_rejects_on_residual():
    graph = grid_2d(14, 14)
    rng = np.random.default_rng(2)
    start = rng.standard_normal((196, 3))
    outcome = chebyshev_refine(graph, start, 3, steps=1, degree=2, accept_tol=1e-12)
    assert not outcome.accepted
    assert outcome.reason == "residual"
    assert np.isfinite(outcome.residual)


def test_chebyshev_refine_float64_path():
    graph = grid_2d(14, 14)
    exact_vals, exact_vecs = laplacian_eigenpairs(graph, 3, method="dense")
    rng = np.random.default_rng(3)
    start = exact_vecs + 0.05 * rng.standard_normal(exact_vecs.shape)
    outcome = chebyshev_refine(graph, start, 3, steps=2, degree=8, dtype=np.float64)
    assert outcome.accepted and outcome.dtype == "float64"
    np.testing.assert_allclose(outcome.eigenvalues, exact_vals, atol=5e-3)


def test_chebyshev_refine_validation():
    graph = grid_2d(5, 5)
    with pytest.raises(ValueError, match="k"):
        chebyshev_refine(graph, np.ones((25, 2)), 0)
    with pytest.raises(ValueError, match="columns"):
        chebyshev_refine(graph, np.ones((25, 1)), 2)


def test_solver_chebyshev_matches_dense_on_mesh():
    graph = grid_2d(16, 16)
    solver = MultilevelEigensolver(
        coarse_size=32, refinement="chebyshev", refinement_steps=20
    )
    result = solver.solve(graph, 3)
    exact_values, _ = laplacian_eigenpairs(graph, 3, method="dense")
    np.testing.assert_allclose(result.eigenvalues, exact_values, rtol=2e-2)
    assert result.refine_stats["backend"] == "chebyshev"
    assert result.refine_stats.get("accepts", 0) >= 1


def test_solver_chebyshev_bypasses_intractable_spectrum_without_losing_accuracy():
    # A long uniform path: the wanted eigenvalues sit ~6 orders below the
    # spectral bound (the tree-like SGL regime), so the finest levels need
    # a polynomial degree beyond the affordable cap and must bypass.
    n = 2000
    graph = grid_2d(1, n)
    solver = MultilevelEigensolver(
        coarse_size=32,
        refinement="chebyshev",
        preconditioner="spanning-tree",
        refinement_steps=20,
    )
    # Paper-scale budget regime: the per-level degree cap sits at its floor
    # (at 150k nodes the work budget divides down to it), which is what
    # makes the tiny spectral ratio infeasible for any affordable filter.
    solver.CHEBYSHEV_WORK_BUDGET = 0
    result = solver.solve(graph, 2)
    exact_values = 4.0 * np.sin(np.pi * np.arange(1, 3) / (2 * n)) ** 2
    # The refinement must reroute to preconditioned LOBPCG (an explained
    # bypass, not a quality fallback) and still deliver the float64 answer.
    assert result.refine_stats.get("bypasses", 0) >= 1
    assert result.refine_stats.get("fallbacks", 0) == 0
    np.testing.assert_allclose(result.eigenvalues, exact_values, rtol=1e-3)


# ----------------------------------------------------------------------
# Eigenpair locking (laplacian_eigenpairs + PINVIT)
# ----------------------------------------------------------------------
def test_locked_vectors_stay_frozen_and_complete_the_block():
    # Rectangular grid: square grids have degenerate eigenvalues, which
    # makes the individual eigenvectors (and hence locking order) ill-posed.
    graph = grid_2d(19, 17)
    exact_values, exact_vectors = laplacian_eigenpairs(graph, 3, method="dense")
    values, vectors = laplacian_eigenpairs(
        graph, 3, locked_vectors=exact_vectors[:, :2]
    )
    # Sign-invariant: the locked block passes through an orthonormalisation.
    overlap = np.abs(vectors[:, :2].T @ exact_vectors[:, :2])
    np.testing.assert_allclose(overlap, np.eye(2), atol=1e-8)
    np.testing.assert_allclose(values, exact_values, atol=1e-5)


def test_fully_locked_block_skips_the_solver():
    graph = grid_2d(13, 11)
    exact_values, exact_vectors = laplacian_eigenpairs(graph, 2, method="dense")
    values, vectors = laplacian_eigenpairs(graph, 2, locked_vectors=exact_vectors)
    np.testing.assert_allclose(values, exact_values, atol=1e-10)
    overlap = np.abs(vectors.T @ exact_vectors)
    np.testing.assert_allclose(overlap, np.eye(2), atol=1e-8)


def test_locking_requires_drop_trivial():
    graph = grid_2d(8, 8)
    _, vectors = laplacian_eigenpairs(graph, 2, method="dense")
    with pytest.raises(ValueError, match="drop_trivial"):
        laplacian_eigenpairs(graph, 2, locked_vectors=vectors, drop_trivial=False)


def test_pinvit_locks_converged_ritz_vectors():
    graph = _near_tree_graph()
    solver = MultilevelEigensolver(
        coarse_size=32,
        refinement="inverse-power",
        preconditioner="spanning-tree",
        refinement_steps=20,
        lock_tol=1e-4,
    )
    result = solver.solve(graph, 3)
    exact_values, _ = laplacian_eigenpairs(graph, 3, method="dense")
    np.testing.assert_allclose(result.eigenvalues, exact_values, rtol=1e-3)
    # The tree preconditioner is near-exact here, so sweeps must converge
    # and freeze columns (each locked column saves a preconditioner apply).
    assert result.refine_stats.get("locked", 0) > 0


def test_pinvit_lock_tol_zero_never_locks():
    graph = _near_tree_graph()
    solver = MultilevelEigensolver(
        coarse_size=32,
        refinement="inverse-power",
        preconditioner="spanning-tree",
        refinement_steps=10,
        lock_tol=0.0,
    )
    result = solver.solve(graph, 3)
    assert result.refine_stats.get("locked", 0) == 0


# ----------------------------------------------------------------------
# Hutchinson sensitivity estimator
# ----------------------------------------------------------------------
def _toy_embedding(coords):
    return SpectralEmbedding(
        eigenvalues=np.ones(coords.shape[1]),
        eigenvectors=coords,
        coordinates=coords,
        sigma_sq=float("inf"),
    )


def test_sketched_sensitivities_exact_when_samples_cover_columns():
    rng = np.random.default_rng(0)
    coords = rng.standard_normal((40, 4))
    voltages = rng.standard_normal((40, 16))
    pairs = np.array([[0, 1], [2, 3], [10, 30]])
    exact = edge_sensitivities(_toy_embedding(coords), voltages, pairs)
    # n_samples >= column count of both matrices: the sketch is the identity.
    full = edge_sensitivities(
        _toy_embedding(coords), voltages, pairs, n_samples=16
    )
    np.testing.assert_array_equal(exact, full)


def test_sketched_sensitivities_concentrate_around_exact():
    rng = np.random.default_rng(1)
    coords = rng.standard_normal((60, 4))
    voltages = rng.standard_normal((60, 256))
    pairs = rng.integers(0, 60, size=(40, 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    exact = edge_sensitivities(_toy_embedding(coords), voltages, pairs)
    estimates = np.stack(
        [
            edge_sensitivities(
                _toy_embedding(coords), voltages, pairs, n_samples=64, seed=seed
            )
            for seed in range(20)
        ]
    )
    # Unbiased: the probe average approaches the exact sensitivities.
    np.testing.assert_allclose(estimates.mean(axis=0), exact, atol=1.5)
    # And the estimator preserves the ranking signal it exists to provide.
    corr = np.corrcoef(estimates.mean(axis=0), exact)[0, 1]
    assert corr > 0.95


def test_sketched_sensitivities_validation():
    rng = np.random.default_rng(2)
    coords = rng.standard_normal((10, 3))
    voltages = rng.standard_normal((10, 8))
    with pytest.raises(ValueError, match="n_samples"):
        edge_sensitivities(
            _toy_embedding(coords), voltages, np.array([[0, 1]]), n_samples=0
        )


def test_config_sensitivity_samples_validation():
    assert SGLConfig().sensitivity_samples is None
    assert SGLConfig(sensitivity_samples=32).sensitivity_samples == 32
    with pytest.raises(ValueError, match="sensitivity_samples"):
        SGLConfig(sensitivity_samples=0)


def test_fit_with_stochastic_sensitivities_tracks_exact_path():
    from repro.measurements import simulate_measurements

    truth = grid_2d(12, 12)
    data = simulate_measurements(truth, n_measurements=40, seed=0)
    exact = SGLearner(SGLConfig(beta=0.03)).fit(data)
    sketched = SGLearner(SGLConfig(beta=0.03, sensitivity_samples=32)).fit(data)
    corr_exact = resistance_correlation(truth, exact.graph, n_pairs=200, seed=0)
    corr_sketched = resistance_correlation(truth, sketched.graph, n_pairs=200, seed=0)
    assert abs(corr_exact - corr_sketched) <= 0.05
    assert sketched.density == pytest.approx(exact.density, rel=0.2)


# ----------------------------------------------------------------------
# Mixed-precision acceptance gates
# ----------------------------------------------------------------------
def test_chebyshev_engine_matches_stateless_subspace():
    graph = grid_2d(19, 17)
    engine = MultilevelEmbeddingEngine(r=5, coarse_size=64, refinement="chebyshev")
    cold = engine.refresh(graph)
    # Cold refreshes are seeded with the float64 LOBPCG reference path,
    # so the filter counters stay untouched until the first warm refresh.
    assert engine.stats.chebyshev_accepts == 0
    denser = graph.add_edges([(0, graph.n_nodes - 1)], [1e-3])
    candidate = engine.refresh(denser, added_edges=[(0, graph.n_nodes - 1)])
    reference = spectral_embedding_matrix(denser, 5)
    angles = scipy.linalg.subspace_angles(
        reference.eigenvectors, candidate.eigenvectors
    )
    assert float(np.max(angles)) < 0.15
    np.testing.assert_allclose(
        candidate.eigenvalues, reference.eigenvalues, rtol=5e-2
    )
    # The warm filter must actually have run (mesh spectra are tractable).
    assert engine.stats.chebyshev_accepts >= 1


MEDIUM_FAMILIES = ("grid_2d", "circuit", "airfoil", "crack", "fem")


def _medium_fit_correlation(family: str, refine_dtype: str) -> float:
    spec = get_scenario(f"{family}/medium")
    truth = spec.build_graph()
    data = spec.build_measurements(truth)
    config = dataclasses.replace(
        spec.make_config(truth.n_nodes),
        embedding_engine="multilevel",
        refinement_backend="chebyshev",
        refine_dtype=refine_dtype,
    )
    result = SGLearner(config).fit(data)
    return resistance_correlation(truth, result.graph, n_pairs=120, seed=0)


@pytest.mark.parametrize("family", MEDIUM_FAMILIES)
def test_medium_families_float32_matches_float64_correlation(family):
    low = _medium_fit_correlation(family, "float32")
    high = _medium_fit_correlation(family, "float64")
    assert abs(low - high) <= 0.01, (family, low, high)
