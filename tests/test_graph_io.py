"""Round-trip tests for the graphs/io readers and writers."""

import io

import numpy as np
import pytest

from repro.graphs.generators import grid_2d
from repro.graphs.graph import WeightedGraph
from repro.graphs.io.edgelist import read_edgelist, write_edgelist
from repro.graphs.io.matrix_market import (
    read_matrix_market,
    read_matrix_market_matrix,
    write_matrix_market,
)


@pytest.fixture
def weighted_graph():
    return WeightedGraph(6, [0, 1, 2, 0], [1, 2, 3, 5], [1.5, 2.0, 0.25, 3.0])


# ----------------------------------------------------------------------
# edge list
# ----------------------------------------------------------------------
def test_edgelist_round_trip_via_path(tmp_path, weighted_graph):
    path = tmp_path / "graph.edges"
    write_edgelist(path, weighted_graph)
    assert read_edgelist(path) == weighted_graph


def test_edgelist_round_trip_preserves_isolated_nodes(tmp_path):
    graph = WeightedGraph(10, [0], [1], [2.0])  # nodes 2..9 isolated
    path = tmp_path / "isolated.edges"
    write_edgelist(path, graph)
    assert read_edgelist(path).n_nodes == 10


def test_edgelist_headerless_and_weightless_files():
    # No header (a leading two-integer line would be read as one), default
    # weight for the two-column edge line.
    text = "0 1 0.5\n1 2\n# trailing comment\n"
    graph = read_edgelist(io.StringIO(text))
    assert graph.n_nodes == 3 and graph.n_edges == 2
    assert graph.edge_weight(0, 1) == pytest.approx(0.5)
    assert graph.edge_weight(1, 2) == pytest.approx(1.0)  # default weight
    assert read_edgelist(io.StringIO("")).n_nodes == 0


def test_edgelist_file_object_round_trip(weighted_graph):
    buffer = io.StringIO()
    write_edgelist(buffer, weighted_graph, header=True)
    buffer.seek(0)
    assert read_edgelist(buffer) == weighted_graph


# ----------------------------------------------------------------------
# matrix market
# ----------------------------------------------------------------------
@pytest.mark.parametrize("representation", ["laplacian", "adjacency"])
def test_matrix_market_round_trip(tmp_path, weighted_graph, representation):
    # Use a connected graph so both representations are canonical.
    graph = grid_2d(4, 4)
    path = tmp_path / f"{representation}.mtx"
    write_matrix_market(path, graph, representation=representation, comment="test")
    assert read_matrix_market(path) == graph


def test_matrix_market_matrix_reader_symmetric_pattern():
    text = (
        "%%MatrixMarket matrix coordinate pattern symmetric\n"
        "% a triangle\n"
        "3 3 3\n"
        "2 1\n"
        "3 1\n"
        "3 2\n"
    )
    matrix = read_matrix_market_matrix(io.StringIO(text))
    assert matrix.shape == (3, 3)
    assert matrix.nnz == 6  # mirrored off-diagonals
    graph = read_matrix_market(io.StringIO(text))
    assert graph.n_edges == 3
    assert bool((graph.weights == 1.0).all())


def test_matrix_market_reader_rejects_malformed_input():
    with pytest.raises(ValueError, match="MatrixMarket"):
        read_matrix_market_matrix(io.StringIO("not a header\n1 1 0\n"))
    with pytest.raises(ValueError, match="coordinate"):
        read_matrix_market_matrix(
            io.StringIO("%%MatrixMarket matrix array real general\n")
        )
    with pytest.raises(ValueError, match="field"):
        read_matrix_market_matrix(
            io.StringIO("%%MatrixMarket matrix coordinate complex general\n")
        )
    with pytest.raises(ValueError, match="square"):
        read_matrix_market(
            io.StringIO("%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n")
        )


def test_matrix_market_laplacian_detection(weighted_graph):
    # A Laplacian file (negative off-diagonals) is detected and inverted.
    buffer = io.StringIO()
    write_matrix_market(buffer, weighted_graph, representation="laplacian")
    buffer.seek(0)
    assert read_matrix_market(buffer) == weighted_graph


def test_matrix_market_adjacency_of_disconnected_graph(tmp_path):
    graph = WeightedGraph(5, [0, 3], [1, 4], [1.0, 2.0])
    path = tmp_path / "disc.mtx"
    write_matrix_market(path, graph, representation="adjacency")
    assert read_matrix_market(path) == graph


def test_matrix_market_rejects_unknown_representation(weighted_graph):
    with pytest.raises(ValueError, match="representation"):
        write_matrix_market(io.StringIO(), weighted_graph, representation="incidence")
