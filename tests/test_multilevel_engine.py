"""Unit tests of the multilevel embedding engine and its solver substrate."""

import numpy as np
import pytest

from repro.core.config import SGLConfig
from repro.core.instrumentation import StageTimings
from repro.embedding import MultilevelEmbeddingEngine, spectral_embedding_matrix
from repro.graphs.generators import grid_2d
from repro.linalg import (
    MultilevelEigensolver,
    coarsening_hierarchy,
    laplacian_eigenpairs,
)


def _dense_reference(graph, k):
    return laplacian_eigenpairs(graph, k, method="dense")


# ----------------------------------------------------------------------
# MultilevelEigensolver
# ----------------------------------------------------------------------
def _near_tree_graph():
    """MST of a randomly weighted grid plus a few off-tree edges.

    This is the SGL densification regime, where the spanning-tree
    preconditioner is near-exact (on meshes its stretch makes it weak)."""
    rng = np.random.default_rng(0)
    grid = grid_2d(16, 16)
    weighted = grid.with_weights(rng.random(grid.n_edges) + 0.5)
    from repro.knn.mst import maximum_spanning_tree

    tree = maximum_spanning_tree(weighted)
    return tree.add_edges([(0, 255), (17, 200), (40, 120)], [1.0, 1.0, 1.0])


@pytest.mark.parametrize(
    "refinement, preconditioner, graph_kind, rtol",
    [
        ("lobpcg", "jacobi", "grid", 2e-2),
        ("lobpcg", "spanning-tree", "grid", 2e-2),
        ("inverse-power", "jacobi", "grid", 2e-2),
        # PINVIT leans on the preconditioner quality, so it is checked in
        # the tree preconditioner's design regime (near-tree graphs).
        ("inverse-power", "spanning-tree", "near-tree", 1e-3),
        ("lobpcg", "spanning-tree", "near-tree", 1e-3),
    ],
)
def test_solver_matches_dense_reference(refinement, preconditioner, graph_kind, rtol):
    graph = grid_2d(16, 16) if graph_kind == "grid" else _near_tree_graph()
    solver = MultilevelEigensolver(
        coarse_size=32,
        refinement=refinement,
        preconditioner=preconditioner,
        refinement_steps=20,
    )
    result = solver.solve(graph, 3)
    exact_values, _ = _dense_reference(graph, 3)
    np.testing.assert_allclose(result.eigenvalues, exact_values, rtol=rtol)
    assert result.level_sizes[0] == 256


def test_solver_accepts_prebuilt_hierarchy_and_preconditioners():
    graph = grid_2d(16, 16)
    solver = MultilevelEigensolver(coarse_size=32, preconditioner="spanning-tree")
    hierarchy = solver.build_hierarchy(graph)
    preconds = solver.build_preconditioners(graph, hierarchy)
    assert len(preconds) == hierarchy.n_levels  # fine + all but the coarsest
    fresh = solver.solve(graph, 2)
    reused = solver.solve(graph, 2, hierarchy=hierarchy, preconditioners=preconds)
    np.testing.assert_allclose(reused.eigenvalues, fresh.eigenvalues, rtol=1e-6)


def test_solver_rejects_mismatched_hierarchy():
    solver = MultilevelEigensolver(coarse_size=32)
    hierarchy = solver.build_hierarchy(grid_2d(16, 16))
    with pytest.raises(ValueError, match="hierarchy"):
        solver.solve(grid_2d(18, 18), 2, hierarchy=hierarchy)


def test_solver_per_level_refinement_budgets():
    graph = grid_2d(16, 16)
    solver = MultilevelEigensolver(coarse_size=32)
    exact_values, exact_vectors = _dense_reference(graph, 2)
    # A starved uniform budget is measurably worse than spending the sweeps
    # at the finest level (last-entry-repeats semantics for deeper levels).
    warm = solver.solve(
        graph, 2, initial_vectors=exact_vectors, refinement_steps=[10, 1]
    )
    np.testing.assert_allclose(warm.eigenvalues, exact_values, rtol=1e-3)


def test_solver_validation_errors():
    with pytest.raises(ValueError):
        MultilevelEigensolver(coarse_size=2)
    with pytest.raises(ValueError):
        MultilevelEigensolver(refinement_steps=-1)
    with pytest.raises(ValueError):
        MultilevelEigensolver(refinement="gauss-seidel")
    with pytest.raises(ValueError):
        MultilevelEigensolver(preconditioner="ilu")
    with pytest.raises(ValueError):
        MultilevelEigensolver().solve(grid_2d(4, 4), 0)


# ----------------------------------------------------------------------
# MultilevelEmbeddingEngine
# ----------------------------------------------------------------------
def test_engine_first_refresh_builds_then_reprojects():
    graph = grid_2d(20, 20)
    engine = MultilevelEmbeddingEngine(r=4, coarse_size=64)
    engine.refresh(graph)
    assert engine.last_mode == "build"
    assert engine.has_hierarchy
    denser = graph.add_edges([(0, 399), (5, 217)], [1.0, 2.0])
    engine.refresh(denser)
    assert engine.last_mode == "reproject"
    stats = engine.stats
    assert stats.hierarchy_builds == 1
    assert stats.reprojections == 1
    assert stats.churn_rebuilds == 0
    assert stats.n_levels >= 1


def test_engine_same_graph_object_reuses_hierarchy():
    graph = grid_2d(20, 20)
    engine = MultilevelEmbeddingEngine(r=4, coarse_size=64)
    first = engine.refresh(graph)
    second = engine.refresh(graph)
    assert engine.last_mode == "reuse"
    assert engine.stats.reprojections == 0
    # Same hierarchy, warm-started refinement: the embedding stays put (the
    # warm sweep keeps polishing, so allow a few percent of drift).
    np.testing.assert_allclose(
        first.pair_distances_squared([(0, 399)]),
        second.pair_distances_squared([(0, 399)]),
        rtol=5e-2,
    )


def test_engine_rebuilds_on_churn_overflow():
    rng = np.random.default_rng(1)
    graph = grid_2d(20, 20)
    engine = MultilevelEmbeddingEngine(r=4, coarse_size=64, churn_threshold=0.01)
    engine.refresh(graph)
    existing = graph.edge_set()
    batch = []
    while len(batch) < 30:  # ~4% churn, above the 1% threshold
        s, t = (int(v) for v in rng.integers(0, graph.n_nodes, size=2))
        key = (min(s, t), max(s, t))
        if s != t and key not in existing:
            existing.add(key)
            batch.append(key)
    denser = graph.add_edges(np.array(batch), np.ones(len(batch)))
    engine.refresh(denser)
    assert engine.last_mode == "rebuild"
    assert engine.stats.churn_rebuilds == 1
    assert engine.stats.hierarchy_builds == 2


def test_engine_churn_accumulates_across_small_batches():
    """Many sub-threshold batches must still add up to a re-matching.

    Regression test: reprojection must not reset the churn baseline, or a
    loop that only ever adds small batches would reuse the first matching
    forever.
    """
    rng = np.random.default_rng(2)
    graph = grid_2d(20, 20)
    engine = MultilevelEmbeddingEngine(r=4, coarse_size=64, churn_threshold=0.05)
    engine.refresh(graph)
    existing = graph.edge_set()
    for _ in range(8):  # 8 batches of 5 edges: ~5% churn in total
        batch = []
        while len(batch) < 5:
            s, t = (int(v) for v in rng.integers(0, graph.n_nodes, size=2))
            key = (min(s, t), max(s, t))
            if s != t and key not in existing:
                existing.add(key)
                batch.append(key)
        graph = graph.add_edges(np.array(batch), np.ones(len(batch)))
        engine.refresh(graph)
    assert engine.stats.churn_rebuilds >= 1
    assert engine.stats.hierarchy_builds >= 2


def test_engine_zero_churn_threshold_always_rebuilds():
    graph = grid_2d(20, 20)
    engine = MultilevelEmbeddingEngine(r=4, coarse_size=64, churn_threshold=0.0)
    engine.refresh(graph)
    engine.refresh(graph.add_edges([(0, 399)], [1.0]))
    assert engine.stats.hierarchy_builds == 2
    assert engine.stats.reprojections == 0


def test_engine_small_graph_uses_dense_path():
    graph = grid_2d(5, 5)
    engine = MultilevelEmbeddingEngine(r=3, coarse_size=64)
    embedding = engine.refresh(graph)
    assert engine.last_mode == "dense"
    assert engine.stats.dense_solves == 1
    assert not engine.has_hierarchy
    reference = spectral_embedding_matrix(graph, 3)
    np.testing.assert_allclose(embedding.eigenvalues, reference.eigenvalues, rtol=1e-9)


def test_engine_embedding_matches_stateless():
    graph = grid_2d(20, 20)
    engine = MultilevelEmbeddingEngine(r=5, coarse_size=64)
    embedding = engine.refresh(graph)
    reference = spectral_embedding_matrix(graph, 5)
    np.testing.assert_allclose(embedding.eigenvalues, reference.eigenvalues, rtol=5e-2)
    assert embedding.n_nodes == 400 and embedding.dimension == 4


def test_engine_records_stage_timings():
    graph = grid_2d(20, 20)
    engine = MultilevelEmbeddingEngine(r=4, coarse_size=64)
    timings = StageTimings()
    engine.refresh(graph, timings=timings)
    assert timings.stages["coarsen"].calls == 1
    assert timings.stages["refine"].calls == 1
    assert timings.seconds("refine") > 0


def test_engine_reset_forgets_state():
    graph = grid_2d(20, 20)
    engine = MultilevelEmbeddingEngine(r=4, coarse_size=64)
    engine.refresh(graph)
    engine.reset()
    assert not engine.has_hierarchy and engine.last_mode is None
    engine.refresh(graph)
    assert engine.last_mode == "build"
    assert engine.stats.hierarchy_builds == 2


def test_engine_validation_errors():
    with pytest.raises(ValueError):
        MultilevelEmbeddingEngine(r=1)
    with pytest.raises(ValueError):
        MultilevelEmbeddingEngine(churn_threshold=-0.1)
    with pytest.raises(ValueError):
        MultilevelEmbeddingEngine(guard_vectors=-1)
    with pytest.raises(ValueError):
        MultilevelEmbeddingEngine(warm_refinement_steps=-2)
    with pytest.raises(ValueError):
        MultilevelEmbeddingEngine(r=3).refresh(grid_2d(1, 1))


def test_engine_stats_dict_round_trip():
    engine = MultilevelEmbeddingEngine(r=3, coarse_size=64)
    engine.refresh(grid_2d(12, 12))
    as_dict = engine.stats.as_dict()
    assert as_dict["refreshes"] == 1
    assert set(as_dict) == {
        "refreshes",
        "hierarchy_builds",
        "churn_rebuilds",
        "reprojections",
        "dense_solves",
        "n_levels",
        "chebyshev_accepts",
        "chebyshev_fallbacks",
        "chebyshev_bypasses",
        "refresh_skips",
    }


# ----------------------------------------------------------------------
# Config / learner wiring
# ----------------------------------------------------------------------
def test_config_accepts_multilevel_engine():
    config = SGLConfig(embedding_engine="multilevel", multilevel_churn_threshold=0.25)
    assert config.embedding_engine == "multilevel"
    with pytest.raises(ValueError):
        SGLConfig(embedding_engine="galerkin")
    with pytest.raises(ValueError):
        SGLConfig(multilevel_churn_threshold=-1.0)


def test_hierarchy_slicing_and_sequence_protocol():
    hierarchy = coarsening_hierarchy(grid_2d(16, 16), target_size=32)
    assert hierarchy.n_levels == len(hierarchy) > 0
    assert list(hierarchy)[-1] is hierarchy[-1]
    assert [level.graph.n_nodes for level in hierarchy[:-1]] == [
        level.graph.n_nodes for level in list(hierarchy)[:-1]
    ]
    assert hierarchy.coarsest.n_nodes <= 32
    with pytest.raises(ValueError):
        hierarchy.edge_churn(grid_2d(5, 5))
    with pytest.raises(ValueError):
        hierarchy.reproject(grid_2d(5, 5))
