"""Property-based invariants of the graph substrate.

Randomised (hypothesis) checks of the contracts everything else builds on:
the canonical edge storage of :class:`~repro.graphs.graph.WeightedGraph`,
the algebraic identities of graph Laplacians, and the weight/connectivity
preservation of the Galerkin coarsening used by the multilevel engine.

All tests run derandomised (hypothesis replays a fixed example sequence) so
CI and local runs see identical cases.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.graphs.graph import WeightedGraph
from repro.linalg.coarsening import (
    coarsen_graph,
    coarsening_hierarchy,
    contract_graph,
    heavy_edge_matching,
)

SETTINGS = settings(max_examples=40, deadline=None, derandomize=True)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def raw_edge_lists(draw, min_nodes=2, max_nodes=24, max_edges=60):
    """(n_nodes, rows, cols, weights) with duplicates, loops and both orientations."""
    n = draw(st.integers(min_nodes, max_nodes))
    m = draw(st.integers(0, max_edges))
    rows = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    cols = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    weights = draw(
        st.lists(
            st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False),
            min_size=m,
            max_size=m,
        )
    )
    return n, np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64), np.array(weights)


@st.composite
def connected_graphs(draw, min_nodes=3, max_nodes=24, max_extra_edges=40):
    """A connected WeightedGraph: a random-weight path plus random extra edges."""
    n, rows, cols, weights = draw(raw_edge_lists(min_nodes, max_nodes, max_extra_edges))
    path = np.arange(n - 1)
    path_w = draw(
        st.lists(
            st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False),
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    return WeightedGraph(
        n,
        np.concatenate([path, rows]),
        np.concatenate([path + 1, cols]),
        np.concatenate([np.array(path_w), weights]),
    )


def _brute_weights(n, rows, cols, weights):
    """Reference canonicalisation: dict of summed weights per undirected edge."""
    merged = {}
    for s, t, w in zip(rows.tolist(), cols.tolist(), weights.tolist()):
        if s == t:
            continue
        key = (min(s, t), max(s, t))
        merged[key] = merged.get(key, 0.0) + w
    return merged


# ----------------------------------------------------------------------
# WeightedGraph canonical storage
# ----------------------------------------------------------------------
@SETTINGS
@given(raw_edge_lists())
def test_canonical_form_matches_brute_force_merge(data):
    n, rows, cols, weights = data
    graph = WeightedGraph(n, rows, cols, weights)
    merged = _brute_weights(n, rows, cols, weights)
    assert graph.n_edges == len(merged)
    for (s, t), w in merged.items():
        assert graph.has_edge(s, t) and graph.has_edge(t, s)
        assert graph.edge_weight(s, t) == pytest.approx(w)
    # Canonical invariant: rows < cols, lexsorted, duplicate-free.
    assert bool((graph.rows < graph.cols).all())
    keys = graph.rows * np.int64(n) + graph.cols
    assert bool((np.diff(keys) > 0).all()) if keys.size > 1 else True


@SETTINGS
@given(raw_edge_lists())
def test_edges_round_trip_through_from_edges(data):
    n, rows, cols, weights = data
    graph = WeightedGraph(n, rows, cols, weights)
    rebuilt = WeightedGraph.from_edges(n, graph.edges, graph.weights)
    assert rebuilt == graph
    # Reversed orientation and shuffled order land on the same canonical form.
    reversed_graph = WeightedGraph(n, graph.cols, graph.rows, graph.weights)
    assert reversed_graph == graph


@SETTINGS
@given(raw_edge_lists())
def test_bulk_queries_match_scalar_queries(data):
    n, rows, cols, weights = data
    graph = WeightedGraph(n, rows, cols, weights)
    queries = np.array(
        [[s, t] for s in range(min(n, 6)) for t in range(min(n, 6))], dtype=np.int64
    )
    found = graph.has_edges(queries)
    for (s, t), hit in zip(queries.tolist(), found.tolist()):
        assert hit == graph.has_edge(s, t)
    present = queries[found]
    if present.size:
        looked_up = graph.edge_weights(present)
        for (s, t), w in zip(present.tolist(), looked_up.tolist()):
            assert w == pytest.approx(graph.edge_weight(s, t))


# ----------------------------------------------------------------------
# Laplacian identities
# ----------------------------------------------------------------------
@SETTINGS
@given(raw_edge_lists())
def test_laplacian_psd_and_zero_row_sums(data):
    n, rows, cols, weights = data
    graph = WeightedGraph(n, rows, cols, weights)
    lap = graph.laplacian().toarray()
    np.testing.assert_allclose(lap, lap.T)
    np.testing.assert_allclose(lap.sum(axis=1), 0.0, atol=1e-9 * max(graph.total_weight, 1.0))
    eigenvalues = np.linalg.eigvalsh(lap)
    assert eigenvalues.min() >= -1e-8 * max(graph.total_weight, 1.0)


@SETTINGS
@given(raw_edge_lists())
def test_laplacian_nullspace_dimension_counts_components(data):
    n, rows, cols, weights = data
    graph = WeightedGraph(n, rows, cols, weights)
    n_components, _ = graph.connected_components()
    eigenvalues = np.linalg.eigvalsh(graph.laplacian().toarray())
    scale = max(float(eigenvalues.max(initial=0.0)), 1.0)
    assert int((eigenvalues < 1e-9 * scale).sum()) == n_components


# ----------------------------------------------------------------------
# Coarsening invariants
# ----------------------------------------------------------------------
@SETTINGS
@given(connected_graphs(), st.integers(0, 3))
def test_prolongation_columns_partition_nodes(graph, seed):
    level = coarsen_graph(graph, seed=seed)
    p = level.prolongation.toarray()
    # Every fine node belongs to exactly one aggregate, with unit weight.
    np.testing.assert_allclose(p.sum(axis=1), 1.0)
    assert bool(((p == 0.0) | (p == 1.0)).all())
    # Every aggregate is non-empty.
    assert bool((p.sum(axis=0) >= 1.0).all())
    assert np.array_equal(np.argmax(p, axis=1), level.aggregates)


@SETTINGS
@given(connected_graphs(), st.integers(0, 3))
def test_galerkin_coarse_laplacian_identity(graph, seed):
    level = coarsen_graph(graph, seed=seed)
    p = level.prolongation
    galerkin = (p.T @ graph.laplacian() @ p).toarray()
    np.testing.assert_allclose(
        galerkin, level.graph.laplacian().toarray(), atol=1e-9 * max(graph.total_weight, 1.0)
    )


@SETTINGS
@given(connected_graphs(), st.integers(0, 3))
def test_coarsening_preserves_weight_and_connectivity(graph, seed):
    level = coarsen_graph(graph, seed=seed)
    # Weight preservation: no conductance is invented or lost — the coarse
    # total equals the fine total minus exactly the contracted
    # intra-aggregate weight.
    intra = level.aggregates[graph.rows] == level.aggregates[graph.cols]
    intra_weight = float(graph.weights[intra].sum())
    assert level.graph.total_weight == pytest.approx(graph.total_weight - intra_weight)
    # Contraction preserves the component structure.
    assert level.graph.is_connected() == graph.is_connected()
    fine_components, _ = graph.connected_components()
    coarse_components, _ = level.graph.connected_components()
    assert coarse_components == fine_components


@SETTINGS
@given(connected_graphs(min_nodes=12, max_nodes=40), st.integers(2, 6))
def test_hierarchy_levels_shrink_and_stop(graph, target):
    hierarchy = coarsening_hierarchy(graph, target_size=max(target, 2))
    sizes = hierarchy.level_sizes
    assert sizes[0] == graph.n_nodes
    assert bool((np.diff(sizes) < 0).all()) if len(sizes) > 1 else True
    if hierarchy.n_levels:
        last = hierarchy[-1].graph.n_nodes
        if last > max(target, 2):
            # Stopped early: coarsening one more level (with the seed the
            # builder would have used) fails the shrink-ratio control.
            next_level = coarsen_graph(hierarchy[-1].graph, seed=hierarchy.n_levels)
            assert next_level.graph.n_nodes >= int(0.9 * last)


@SETTINGS
@given(connected_graphs(min_nodes=12, max_nodes=40))
def test_reproject_matches_fresh_galerkin_after_edge_addition(graph):
    hierarchy = coarsening_hierarchy(graph, target_size=4)
    if not hierarchy.n_levels:
        return
    denser = graph.add_edges([(0, graph.n_nodes - 1)], [2.5])
    refreshed = hierarchy.reproject(denser)
    current = denser
    for level in refreshed:
        expected = contract_graph(current, level.aggregates, level.prolongation.shape[1])
        assert level.graph == expected
        # Galerkin identity holds against the *updated* finer graph too.
        p = level.prolongation
        np.testing.assert_allclose(
            (p.T @ current.laplacian() @ p).toarray(),
            level.graph.laplacian().toarray(),
            atol=1e-9 * max(current.total_weight, 1.0),
        )
        current = level.graph
    # Reprojection keeps the matching-build churn baseline, so churn keeps
    # accumulating across small batches instead of resetting to zero.
    assert refreshed.edge_churn(denser) == hierarchy.edge_churn(denser)
    assert refreshed.fine_n_edges == hierarchy.fine_n_edges


@SETTINGS
@given(connected_graphs(min_nodes=4, max_nodes=24), st.integers(0, 3))
def test_heavy_edge_matching_is_a_valid_aggregation(graph, seed):
    aggregates = heavy_edge_matching(graph, seed=seed)
    assert aggregates.shape == (graph.n_nodes,)
    ids = np.unique(aggregates)
    # Contiguous aggregate ids, each holding one or two nodes (matching).
    assert ids.min() == 0 and ids.max() == ids.size - 1
    counts = np.bincount(aggregates)
    assert bool((counts >= 1).all()) and bool((counts <= 2).all())
