"""Differential quality tests: online updates vs full refit on medium graphs.

The acceptance contract of the streaming subsystem (ROADMAP item 3): a chain
of warm incremental updates must stay within 0.05 resistance correlation of
a full refit on the same final window — across graph families, and both when
the stream merely adds fresh measurements (``additive``) and when the truth
is drifting underneath it (``drift``).
"""

import numpy as np
import pytest

from repro.bench.registry import get_scenario
from repro.bench.runner import quality_metrics
from repro.core.sgl import SGLearner
from repro.stream import DriftDetector, MeasurementStream, OnlineSGLearner

FAMILIES = ["circuit/medium", "grid_2d/medium", "fem/medium"]
MODES = ["additive", "drift"]


def run_stream(scenario: str, mode: str, n_batches: int = 3, seed: int = 0):
    spec = get_scenario(scenario)
    truth = spec.build_graph()
    initial = spec.build_measurements(truth)
    config = spec.make_config(initial.n_nodes)
    stream = MeasurementStream(
        truth,
        batch_size=max(4, initial.n_measurements // 5),
        mode=mode,
        drift_rate=0.02,
        seed=seed + 1,
    )
    learner = OnlineSGLearner(config, drift=DriftDetector())
    learner.fit(initial)
    updates = [learner.update(batch) for batch in stream.batches(n_batches)]
    return spec, stream, learner, updates


@pytest.mark.parametrize("scenario", FAMILIES)
@pytest.mark.parametrize("mode", MODES)
def test_online_quality_within_tolerance_of_refit(scenario, mode):
    spec, stream, learner, updates = run_stream(scenario, mode)
    window = learner.window
    final_truth = stream.truth

    online = quality_metrics(final_truth, learner.graph, window.voltages, seed=0)
    refit_graph = SGLearner(spec.make_config(window.n_nodes)).fit(window).graph
    refit = quality_metrics(final_truth, refit_graph, window.voltages, seed=0)

    assert online["resistance_correlation"] >= (
        refit["resistance_correlation"] - 0.05
    ), (
        f"{scenario} [{mode}]: online corr {online['resistance_correlation']:.3f} "
        f"vs refit {refit['resistance_correlation']:.3f}"
    )
    # The learned graph must stay a usable model, not just a correlated one.
    assert online["resistance_correlation"] > 0.5
    assert learner.graph.n_nodes == final_truth.n_nodes


@pytest.mark.parametrize("scenario", FAMILIES)
def test_additive_stream_prefers_incremental_updates(scenario):
    _, _, _, updates = run_stream(scenario, "additive")
    modes = [u.mode for u in updates]
    # A stationary stream must not degenerate into refitting every batch —
    # that is the latency story the stream bench's >=3x speedup rests on.
    assert modes.count("incremental") >= len(modes) - 1, modes


def test_drifting_stream_keeps_scaling_factor_in_range():
    _, stream, learner, updates = run_stream("circuit/medium", "drift")
    for update in updates:
        assert np.isfinite(update.scaling_factor) and update.scaling_factor > 0
    # Step-5 rescaling tracks the drifting conductance scale: effective
    # resistances of the learned graph stay within an order of magnitude of
    # the truth (edge weights are not comparable — the learned topology is
    # sparser, so individual conductances compensate).
    from repro.metrics.resistance import (
        effective_resistance_batched,
        sample_node_pairs,
    )

    truth = stream.truth
    pairs = sample_node_pairs(truth.n_nodes, 64, seed=0)
    truth_r = effective_resistance_batched(truth, pairs)
    learned_r = effective_resistance_batched(learner.graph, pairs)
    ratio = np.median(learned_r / truth_r)
    assert 0.1 < ratio < 10.0
