"""Tests for repro.serve: sessions, the resistance oracle, micro-batching,
the LRU service, the TCP front end and the repro-serve CLI."""

import asyncio
import json
import threading
import time

import numpy as np
import pytest

from repro.artifacts import save_artifact, save_result
from repro.core.config import SGLConfig
from repro.core.sgl import learn_graph
from repro.graphs.generators import grid_2d
from repro.graphs.graph import WeightedGraph
from repro.linalg.pseudoinverse import effective_resistance
from repro.measurements.generator import simulate_measurements
from repro.metrics.resistance import sample_node_pairs
from repro.serve import (
    GraphService,
    GraphSession,
    MicroBatcher,
    ResistanceOracle,
    ShardedGraphSession,
    serve_forever,
)
from repro.serve.cli import main as serve_main
from repro.serve.service import ServiceClosedError, jsonable


@pytest.fixture(scope="module")
def learned():
    data = simulate_measurements(grid_2d(7, 7), n_measurements=30, seed=0)
    return learn_graph(data, beta=0.05)


@pytest.fixture(scope="module")
def artifact_path(learned, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "model.npz"
    save_result(learned, path)
    return path


# ----------------------------------------------------------------------
class TestResistanceOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_on_tree_plus_random_edges(self, seed):
        # A random tree plus a handful of random off-tree edges — exactly
        # the structure SGL emits, with weights spanning two decades.
        rng = np.random.default_rng(seed)
        n = 120
        rows = list(range(1, n))
        cols = [int(rng.integers(0, i)) for i in range(1, n)]
        extra = rng.choice(n, size=(12, 2), replace=True)
        extra = extra[extra[:, 0] != extra[:, 1]]
        graph = WeightedGraph(
            n,
            np.concatenate([rows, extra[:, 0]]),
            np.concatenate([cols, extra[:, 1]]),
            rng.uniform(0.1, 10.0, len(rows) + extra.shape[0]),
        )
        assert ResistanceOracle.eligible(graph)
        oracle = ResistanceOracle(graph)
        assert oracle.n_off_tree > 0
        pairs = sample_node_pairs(graph.n_nodes, 150, seed=seed)
        expected = effective_resistance(graph, pairs)
        np.testing.assert_allclose(oracle.query(pairs), expected, rtol=1e-8)

    def test_exact_on_pure_tree(self):
        rng = np.random.default_rng(5)
        parents = [rng.integers(0, i) for i in range(1, 40)]
        tree = WeightedGraph(
            40, list(range(1, 40)), parents, rng.uniform(0.5, 2.0, 39)
        )
        oracle = ResistanceOracle(tree)
        assert oracle.n_off_tree == 0
        pairs = sample_node_pairs(40, 100, seed=0)
        np.testing.assert_allclose(
            oracle.query(pairs), effective_resistance(tree, pairs), rtol=1e-9
        )

    def test_tree_resistance_is_path_sum(self):
        path = WeightedGraph(4, [0, 1, 2], [1, 2, 3], [1.0, 0.5, 0.25])
        oracle = ResistanceOracle(path)
        np.testing.assert_allclose(
            oracle.query([(0, 3), (1, 2), (2, 2)]), [1 + 2 + 4, 2.0, 0.0]
        )

    def test_self_pairs_are_zero(self):
        oracle = ResistanceOracle(grid_2d(4, 4))
        assert oracle.query([(3, 3), (0, 0)]).tolist() == [0.0, 0.0]

    def test_rejects_out_of_range(self):
        oracle = ResistanceOracle(grid_2d(3, 3))
        with pytest.raises(ValueError, match="out of range"):
            oracle.query([(0, 9)])

    def test_rejects_disconnected(self):
        graph = WeightedGraph(4, [0, 2], [1, 3])
        with pytest.raises(ValueError, match="connected"):
            ResistanceOracle(graph)

    def test_eligibility_dense_graph(self):
        dense = WeightedGraph.from_adjacency(
            np.ones((40, 40)) - np.eye(40)
        )
        assert not ResistanceOracle.eligible(dense)


# ----------------------------------------------------------------------
class TestGraphSession:
    def test_resistance_matches_per_pair_solves(self, learned, artifact_path):
        session = GraphSession.from_file(artifact_path)
        assert session.resistance_engine == "woodbury"
        pairs = sample_node_pairs(session.n_nodes, 100, seed=2)
        expected = effective_resistance(learned.graph, pairs)
        np.testing.assert_allclose(
            session.effective_resistance(pairs), expected, rtol=1e-8
        )

    def test_grouped_engine_matches(self, learned, artifact_path):
        session = GraphSession.from_file(
            artifact_path, resistance_engine="grouped", resistance_block=16
        )
        assert session.resistance_engine == "grouped"
        pairs = sample_node_pairs(session.n_nodes, 50, seed=3)
        expected = effective_resistance(learned.graph, pairs)
        np.testing.assert_allclose(
            session.effective_resistance(pairs), expected, rtol=1e-10
        )

    def test_woodbury_engine_forced_on_ineligible_graph_raises(self, tmp_path):
        dense = WeightedGraph.from_adjacency(np.ones((30, 30)) - np.eye(30))
        path = save_artifact(dense, SGLConfig(), tmp_path / "dense.npz")
        with pytest.raises(ValueError, match="tree-like"):
            GraphSession.from_file(path, resistance_engine="woodbury")
        session = GraphSession.from_file(path)  # auto falls back
        assert session.resistance_engine == "grouped"

    def test_invalid_engine_name(self, artifact_path):
        with pytest.raises(ValueError, match="resistance_engine"):
            GraphSession.from_file(artifact_path, resistance_engine="nope")

    def test_nearest_neighbors_contract(self, artifact_path):
        session = GraphSession.from_file(artifact_path)
        distances, indices = session.nearest_neighbors([0, 5, 48], k=4)
        assert distances.shape == (3, 4) and indices.shape == (3, 4)
        for row, node in zip(indices, [0, 5, 48]):
            assert node not in row  # self excluded
        assert np.all(np.diff(distances, axis=1) >= -1e-12)

    def test_nearest_nodes_free_vectors(self, artifact_path):
        session = GraphSession.from_file(artifact_path)
        query = session.artifact.embedding[:2]
        distances, indices = session.nearest_nodes(query, k=1)
        assert indices.ravel().tolist() == [0, 1]
        np.testing.assert_allclose(distances.ravel(), 0.0, atol=1e-12)

    def test_neighbors_require_embedding(self, learned, tmp_path):
        path = tmp_path / "noemb.npz"
        save_result(learned, path, include_embedding=False)
        session = GraphSession.from_file(path)
        with pytest.raises(ValueError, match="without an embedding"):
            session.nearest_neighbors([0])
        # Resistance queries still work.
        assert session.effective_resistance([(0, 1)])[0] > 0

    def test_cluster_labels_cached_and_consistent(self, artifact_path):
        session = GraphSession.from_file(artifact_path)
        full = session.cluster_labels(n_clusters=4)
        assert full.shape == (session.n_nodes,)
        assert set(np.unique(full)) <= set(range(4))
        subset = session.cluster_labels([3, 7, 11], n_clusters=4)
        assert subset.tolist() == full[[3, 7, 11]].tolist()
        assert session.stats()["cluster_cache"] == [4]

    def test_node_range_checks(self, artifact_path):
        session = GraphSession.from_file(artifact_path)
        with pytest.raises(ValueError, match="out of range"):
            session.nearest_neighbors([999])
        with pytest.raises(ValueError, match="out of range"):
            session.cluster_labels([999])

    def test_stats_counters(self, artifact_path):
        session = GraphSession.from_file(artifact_path)
        session.effective_resistance([(0, 1), (2, 3)])
        session.nearest_neighbors([0], k=2)
        stats = session.stats()
        assert stats["queries"]["resistance"] == 2
        assert stats["queries"]["neighbors"] == 1
        assert stats["n_nodes"] == 49


# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_coalesces_concurrent_requests(self):
        calls = []

        def handler(key, payloads):
            calls.append(list(payloads))
            return [p * 10 for p in payloads]

        async def run():
            batcher = MicroBatcher(handler, max_batch_size=4, max_delay_s=0.01)
            return await asyncio.gather(*(batcher.submit("k", i) for i in range(10)))

        results = asyncio.run(run())
        assert results == [i * 10 for i in range(10)]
        assert all(len(call) <= 4 for call in calls)
        assert len(calls) <= 4  # 10 requests in at most ceil(10/4)+1 batches

    def test_distinct_keys_do_not_share_batches(self):
        seen = []

        def handler(key, payloads):
            seen.append((key, len(payloads)))
            return payloads

        async def run():
            batcher = MicroBatcher(handler, max_batch_size=8, max_delay_s=0.005)
            return await asyncio.gather(
                batcher.submit("a", 1), batcher.submit("b", 2), batcher.submit("a", 3)
            )

        assert asyncio.run(run()) == [1, 2, 3]
        assert sorted(key for key, _ in seen) == ["a", "b"]

    def test_deadline_flush(self):
        def handler(key, payloads):
            return payloads

        async def run():
            # adaptive=False: the classic batcher, where a lone request
            # always waits out the deadline (adaptive mode would flush it
            # on the next tick because a worker is idle).
            batcher = MicroBatcher(
                handler, max_batch_size=1000, max_delay_s=0.002, adaptive=False
            )
            result = await batcher.submit("k", 42)  # alone: must flush on deadline
            return result, batcher.stats.n_deadline_flushes

        result, deadline_flushes = asyncio.run(run())
        assert result == 42 and deadline_flushes == 1

    def test_handler_errors_propagate_to_waiters(self):
        def handler(key, payloads):
            raise RuntimeError("boom")

        async def run():
            batcher = MicroBatcher(handler, max_batch_size=2, max_delay_s=0.001)
            return await asyncio.gather(
                batcher.submit("k", 1), batcher.submit("k", 2),
                return_exceptions=True,
            )

        results = asyncio.run(run())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_result_count_mismatch_detected(self):
        def handler(key, payloads):
            return payloads[:-1]

        async def run():
            batcher = MicroBatcher(handler, max_batch_size=2, max_delay_s=0.001)
            return await asyncio.gather(
                batcher.submit("k", 1), batcher.submit("k", 2),
                return_exceptions=True,
            )

        results = asyncio.run(run())
        assert any("results" in str(r) for r in results)

    def test_stats_accounting(self):
        def handler(key, payloads):
            return payloads

        async def run():
            batcher = MicroBatcher(handler, max_batch_size=5, max_delay_s=0.005)
            await asyncio.gather(*(batcher.submit("k", i) for i in range(5)))
            await batcher.drain()
            return batcher.stats

        stats = asyncio.run(run())
        assert stats.n_requests == 5
        assert stats.n_full_flushes >= 1
        assert stats.max_batch_size == 5
        summary = stats.as_dict()
        assert summary["mean_batch_size"] == pytest.approx(5.0)
        assert "p50_ms" in summary and summary["p99_ms"] >= summary["p50_ms"]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda k, p: p, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda k, p: p, max_delay_s=-1)
        with pytest.raises(ValueError):
            MicroBatcher(lambda k, p: p, concurrency=0)

    def test_adaptive_flush_skips_deadline_when_idle(self):
        # The adaptive flusher must answer a lone request on the next loop
        # tick — if it waited out the (absurd) deadline this test would
        # take minutes instead of milliseconds.
        def handler(key, payloads):
            return payloads

        async def run():
            batcher = MicroBatcher(handler, max_batch_size=1000, max_delay_s=60.0)
            start = time.perf_counter()
            result = await batcher.submit("k", 42)
            return result, time.perf_counter() - start, batcher.stats

        result, elapsed, stats = asyncio.run(run())
        assert result == 42
        assert elapsed < 5.0  # loop-tick scale, nowhere near the 60 s deadline
        assert stats.n_idle_flushes == 1 and stats.n_deadline_flushes == 0

    def test_adaptive_kick_flushes_waiters_when_worker_frees(self):
        # With one worker slot busy, the next bucket arms the deadline — but
        # the finishing batch must kick it out immediately instead of letting
        # it wait out the (absurd) 60 s deadline.
        release = threading.Event()
        calls = []

        def handler(key, payloads):
            calls.append(list(payloads))
            if payloads == [1]:
                release.wait(timeout=10)
            return payloads

        async def run():
            batcher = MicroBatcher(
                handler, max_batch_size=1000, max_delay_s=60.0, concurrency=1
            )
            first = batcher.submit_nowait("k", 1)   # flushes; occupies the slot
            await asyncio.sleep(0.05)               # let the batch start
            second = batcher.submit_nowait("k", 2)  # saturated: deadline armed
            await asyncio.sleep(0.05)
            assert not second.done()
            release.set()
            start = time.perf_counter()
            results = await asyncio.gather(first, second)
            return results, time.perf_counter() - start, batcher.stats

        results, elapsed, stats = asyncio.run(run())
        assert results == [1, 2]
        assert elapsed < 5.0  # kicked by the freed worker, not the deadline
        assert calls == [[1], [2]]
        assert stats.n_deadline_flushes == 0

    def test_shutdown_fails_pending_requests(self):
        def handler(key, payloads):
            return payloads

        async def run():
            batcher = MicroBatcher(
                handler, max_batch_size=1000, max_delay_s=60.0, adaptive=False
            )
            future = batcher.submit_nowait("k", 1)
            failed = batcher.shutdown(RuntimeError("going away"))
            with pytest.raises(RuntimeError, match="going away"):
                await future
            return failed, batcher.metrics.snapshot()["counters"]

        failed, counters = asyncio.run(run())
        assert failed == 1
        assert counters["batcher.errors"] == 1
        assert counters["batcher.failed_requests"] == 1

    def test_handler_errors_are_counted(self):
        def handler(key, payloads):
            raise RuntimeError("boom")

        async def run():
            batcher = MicroBatcher(handler, max_batch_size=2, max_delay_s=0.001)
            await asyncio.gather(
                batcher.submit("k", 1), batcher.submit("k", 2),
                return_exceptions=True,
            )
            return batcher.metrics.snapshot()["counters"]

        counters = asyncio.run(run())
        assert counters["batcher.errors"] == 1
        assert counters["batcher.failed_requests"] == 2


# ----------------------------------------------------------------------
class TestGraphService:
    def test_query_kinds_end_to_end(self, learned, artifact_path):
        service = GraphService(max_batch_size=8, max_delay_s=0.002)
        pairs = sample_node_pairs(learned.graph.n_nodes, 30, seed=4)
        expected = effective_resistance(learned.graph, pairs)

        async def run():
            resistances = await asyncio.gather(
                *(
                    service.query(artifact_path, "resistance", tuple(pair))
                    for pair in pairs
                )
            )
            neighbors = await service.query(artifact_path, "neighbors", 0, k=3)
            label = await service.query(artifact_path, "labels", 0, n_clusters=3)
            await service.drain()
            return resistances, neighbors, label

        resistances, neighbors, label = asyncio.run(run())
        np.testing.assert_allclose(resistances, expected, rtol=1e-8)
        assert len(neighbors) == 3 and 0 not in neighbors
        assert 0 <= label < 3
        batching = service.stats()["batching"]
        assert batching["n_requests"] == 32
        assert batching["n_batches"] < 32  # coalescing actually happened
        service.close()

    def test_unknown_kind_rejected(self, artifact_path):
        service = GraphService()

        async def run():
            await service.query(artifact_path, "sorcery", 0)

        with pytest.raises(ValueError, match="unknown query kind"):
            asyncio.run(run())
        service.close()

    def test_lru_eviction_by_checksum(self, learned, tmp_path):
        paths = []
        for idx in range(3):
            data = simulate_measurements(
                grid_2d(5 + idx, 5), n_measurements=20, seed=idx
            )
            result = learn_graph(data, beta=0.05)
            path = tmp_path / f"m{idx}.npz"
            save_result(result, path, include_embedding=False)
            paths.append(path)
        service = GraphService(max_sessions=2)
        for path in paths:
            service.warm(path)
        stats = service.stats()["sessions"]
        assert stats["loaded"] == 2
        assert stats["loads"] == 3
        assert stats["evictions"] == 1
        # Re-warming the evicted artifact loads it again.
        service.warm(paths[0])
        assert service.stats()["sessions"]["loads"] == 4
        service.close()

    def test_same_checksum_shares_session(self, learned, tmp_path):
        a = tmp_path / "a.npz"
        b = tmp_path / "b.npz"
        save_result(learned, a, include_embedding=False)
        save_result(learned, b, include_embedding=False)
        service = GraphService()
        first = service.warm(a)
        second = service.warm(b)
        assert first is second
        assert service.stats()["sessions"]["loads"] == 1
        service.close()

    def test_session_cache_hit_path(self, artifact_path):
        service = GraphService()
        first = service.session(artifact_path)
        second = service.session(artifact_path)
        assert first is second
        service.close()

    def test_default_options_share_a_batch(self, artifact_path):
        # Regression: an explicit default (k=5) and an omitted option used
        # to hash to different batch keys, splitting identical queries
        # into separate batches.
        service = GraphService(max_batch_size=64, max_delay_s=0.01)
        service.warm(artifact_path)

        async def run():
            await asyncio.gather(
                service.query(artifact_path, "neighbors", 0, k=5),
                service.query(artifact_path, "neighbors", 1),
                service.query(artifact_path, "neighbors", 2, k=5),
                service.query(artifact_path, "neighbors", 3),
            )
            return service.stats()["batching"]

        batching = asyncio.run(run())
        assert batching["n_requests"] == 4
        assert batching["n_batches"] == 1  # one signature, one batch
        service.close()

    def test_non_default_options_batch_separately(self, artifact_path):
        service = GraphService(max_batch_size=64, max_delay_s=0.01)
        service.warm(artifact_path)

        async def run():
            await asyncio.gather(
                service.query(artifact_path, "neighbors", 0, k=2),
                service.query(artifact_path, "neighbors", 1, k=3),
            )
            return service.stats()["batching"]

        batching = asyncio.run(run())
        assert batching["n_batches"] == 2
        service.close()

    def test_unknown_option_rejected(self, artifact_path):
        service = GraphService()
        service.warm(artifact_path)

        async def run():
            service.query(artifact_path, "neighbors", 0, q=3)

        with pytest.raises(ValueError, match="unknown option"):
            asyncio.run(run())
        service.close()

    def test_close_fails_pending_queries_instead_of_hanging(self, artifact_path):
        # Regression: close() used to shut the executor down without
        # draining the batcher, so requests submitted just before close
        # hung forever on futures nobody would resolve.
        service = GraphService(
            max_batch_size=1000, max_delay_s=60.0, adaptive_flush=False
        )
        service.warm(artifact_path)

        async def run():
            pending = [
                service.query(artifact_path, "resistance", (0, 1)),
                service.query(artifact_path, "resistance", (2, 3)),
            ]
            service.close()
            results = await asyncio.gather(*pending, return_exceptions=True)
            return results

        results = asyncio.run(run())
        assert all(isinstance(r, ServiceClosedError) for r in results)
        counters = service.metrics.snapshot()["counters"]
        assert counters["batcher.errors"] >= 1
        assert counters["batcher.failed_requests"] == 2

    def test_query_after_close_raises(self, artifact_path):
        service = GraphService()
        service.warm(artifact_path)
        service.close()

        async def run():
            service.query(artifact_path, "resistance", (0, 1))

        with pytest.raises(ServiceClosedError):
            asyncio.run(run())

    def test_aclose_drains_before_shutdown(self, artifact_path):
        service = GraphService(max_batch_size=1000, max_delay_s=60.0)
        service.warm(artifact_path)

        async def run():
            futures = [
                service.query(artifact_path, "resistance", (0, 1)),
                service.query(artifact_path, "resistance", (2, 3)),
            ]
            await service.aclose()
            return await asyncio.gather(*futures)

        results = asyncio.run(run())
        assert all(float(r) > 0 for r in results)

    def test_stats_is_json_dumpable(self, artifact_path):
        # Regression: session.stats() carries numpy scalars, and
        # json.dumps raises on np.int64 — stats() must coerce to builtins
        # at the boundary.
        service = GraphService()

        async def run():
            await service.query(artifact_path, "resistance", (0, 1))
            await service.query(artifact_path, "labels", 0)

        asyncio.run(run())
        stats = service.stats()
        encoded = json.dumps(stats)  # must not raise
        assert json.loads(encoded)["sessions"]["loaded"] == 1
        service.close()

    def test_jsonable_coerces_numpy(self):
        raw = {
            "i": np.int64(3),
            "f": np.float64(0.5),
            "b": np.bool_(True),
            "a": np.arange(3, dtype=np.int64),
            "nested": [np.int32(1), (np.float32(2.0),)],
        }
        out = jsonable(raw)
        assert out == {"i": 3, "f": 0.5, "b": True, "a": [0, 1, 2],
                       "nested": [1, [2.0]]}
        json.dumps(out)
        assert isinstance(out["i"], int) and isinstance(out["f"], float)

    def test_cache_gauge_updated_on_every_path(self, learned, tmp_path):
        # Regression: warm()'s early-return (cache hit) used to skip the
        # serve.cache.sessions gauge, so it went stale after
        # evict-then-rewarm sequences.
        paths = []
        for idx in range(2):
            data = simulate_measurements(
                grid_2d(5 + idx, 5), n_measurements=20, seed=idx
            )
            path = tmp_path / f"g{idx}.npz"
            save_result(learn_graph(data, beta=0.05), path, include_embedding=False)
            paths.append(path)
        service = GraphService(max_sessions=1)
        gauge = service.metrics.gauge("serve.cache.sessions")
        service.warm(paths[0])
        assert gauge.value == 1
        service.warm(paths[1])  # evicts paths[0]
        assert gauge.value == 1
        # Poison the gauge, then take the cache-hit early-return path: the
        # hit must refresh the gauge, not leave the stale value in place.
        gauge.set(99)
        service.warm(paths[1])
        assert gauge.value == 1
        # Evict-then-rewarm: reload of paths[0] evicts paths[1], and the
        # gauge must track the mutation.
        service.warm(paths[0])
        assert gauge.value == 1
        assert service.stats()["sessions"]["evictions"] == 2
        service.close()


# ----------------------------------------------------------------------
class TestServiceConcurrency:
    """The service-path concurrency regression suite (ISSUE 9 satellite)."""

    def test_service_throughput_floor_vs_naive(self, learned, artifact_path):
        # At fixed concurrency the batched service path must beat per-pair
        # solves by a comfortable margin; the floor is deliberately loose
        # (the real gap is >3x) so a loaded CI runner does not flake.
        n = 512
        pairs = sample_node_pairs(learned.graph.n_nodes, n, seed=7)
        session = GraphSession.from_file(artifact_path)
        naive_start = time.perf_counter()
        for pair in pairs:
            effective_resistance(learned.graph, pair[None, :], solver=session.solver)
        naive_seconds = time.perf_counter() - naive_start

        service = GraphService(max_batch_size=64, max_delay_s=0.002)
        service.warm(artifact_path)

        async def run():
            start = time.perf_counter()
            await asyncio.gather(
                *(
                    service.query(artifact_path, "resistance", tuple(pair))
                    for pair in pairs
                )
            )
            return time.perf_counter() - start

        # Warm once (index/label caches), then measure.
        asyncio.run(run())
        service_seconds = asyncio.run(run())
        service.close()
        assert service_seconds < naive_seconds * 0.85, (
            f"service path ({n / service_seconds:.0f} q/s) is not beating "
            f"naive per-pair solves ({n / naive_seconds:.0f} q/s)"
        )

    def test_loader_pool_does_not_starve_compute(
        self, learned, artifact_path, tmp_path, monkeypatch
    ):
        # A multi-second cold artifact load must run on the loader pool:
        # hot queries against an already-warm session keep flowing while
        # the cold load is blocked.
        import repro.serve.service as service_module

        cold_path = tmp_path / "cold.npz"
        save_result(learned, cold_path, include_embedding=False)

        service = GraphService(max_batch_size=16, max_delay_s=0.001)
        service.warm(artifact_path)

        gate = threading.Event()
        real_load = service_module.load_result

        def gated_load(path, **kwargs):
            if str(path) == str(cold_path):
                assert gate.wait(timeout=30), "test gate never opened"
            return real_load(path, **kwargs)

        monkeypatch.setattr(service_module, "load_result", gated_load)

        async def run():
            cold = asyncio.ensure_future(
                service.query(cold_path, "resistance", (0, 1))
            )
            await asyncio.sleep(0.05)  # let the loader thread block on the gate
            start = time.perf_counter()
            hot = await asyncio.gather(
                *(
                    service.query(artifact_path, "resistance", (0, i))
                    for i in range(1, 33)
                )
            )
            hot_seconds = time.perf_counter() - start
            assert not cold.done()  # still stuck in the (gated) load
            gate.set()
            cold_value = await asyncio.wait_for(cold, timeout=30)
            return hot, hot_seconds, cold_value

        hot, hot_seconds, cold_value = asyncio.run(run())
        service.close()
        assert len(hot) == 32 and all(float(v) >= 0 for v in hot)
        # Hot queries finished while the cold load was still blocked — they
        # cannot have been queued behind it.
        assert hot_seconds < 5.0
        assert float(cold_value) > 0

    def test_mixed_kinds_interleave_without_blocking(self, artifact_path):
        service = GraphService(max_batch_size=8, max_delay_s=0.002)
        service.warm(artifact_path)

        async def run():
            queries = []
            for idx in range(24):
                if idx % 3 == 0:
                    queries.append(
                        service.query(artifact_path, "resistance", (0, idx % 49))
                    )
                elif idx % 3 == 1:
                    queries.append(
                        service.query(artifact_path, "neighbors", idx % 49)
                    )
                else:
                    queries.append(
                        service.query(artifact_path, "labels", idx % 49)
                    )
            return await asyncio.gather(*queries)

        results = asyncio.run(run())
        assert len(results) == 24
        batching = service.stats()["batching"]
        assert batching["n_requests"] == 24
        assert batching["n_batches"] <= 6  # three signatures, coalesced
        service.close()


# ----------------------------------------------------------------------
class TestTCPServer:
    def test_json_lines_round_trip(self, learned, artifact_path):
        pairs = [[0, 48], [3, 9]]
        expected = effective_resistance(learned.graph, np.asarray(pairs))

        async def run():
            service = GraphService(max_batch_size=16, max_delay_s=0.001)
            ready = asyncio.Event()
            bound: list = []
            server = asyncio.create_task(
                serve_forever(service, "127.0.0.1", 0, ready=ready,
                              bound_addresses=bound)
            )
            await asyncio.wait_for(ready.wait(), timeout=5)
            host, port = bound[0]
            reader, writer = await asyncio.open_connection(host, port)

            async def ask(request):
                writer.write(json.dumps(request).encode() + b"\n")
                await writer.drain()
                return json.loads(await asyncio.wait_for(reader.readline(), 10))

            ok = await ask({
                "id": 7, "kind": "resistance",
                "artifact": str(artifact_path), "pairs": pairs,
            })
            nbr = await ask({
                "kind": "neighbors", "artifact": str(artifact_path),
                "nodes": [0], "k": 2,
            })
            stats = await ask({"kind": "stats"})
            warm = await ask({"kind": "warm", "artifact": str(artifact_path)})
            bad = await ask({"kind": "nope"})
            not_json = None
            writer.write(b"this is not json\n")
            await writer.drain()
            not_json = json.loads(await asyncio.wait_for(reader.readline(), 10))
            writer.close()
            await writer.wait_closed()
            server.cancel()
            try:
                await server
            except asyncio.CancelledError:
                pass
            service.close()
            return ok, nbr, stats, warm, bad, not_json

        ok, nbr, stats, warm, bad, not_json = asyncio.run(run())
        assert ok["ok"] and ok["id"] == 7
        np.testing.assert_allclose(ok["result"], expected, rtol=1e-8)
        assert nbr["ok"] and len(nbr["result"][0]) == 2
        assert stats["ok"] and stats["result"]["sessions"]["loaded"] == 1
        # The stats response carries a live metrics snapshot: the two query
        # requests above already went through the batcher and the TCP
        # serializer by the time the stats request is answered.
        snapshot = stats["result"]["metrics"]
        assert snapshot["counters"]["serve.tcp.requests"] >= 2
        assert snapshot["counters"]["batcher.requests"] >= 3
        assert snapshot["histograms"]["batcher.latency_ms"]["count"] >= 3
        assert snapshot["histograms"]["batcher.resistance.latency_ms"]["count"] == 2
        assert warm["ok"] and warm["result"]["n_nodes"] == 49
        assert not bad["ok"] and "unknown request kind" in bad["error"]
        assert not not_json["ok"]


# ----------------------------------------------------------------------
class TestServeCLI:
    def test_warm(self, artifact_path, capsys):
        assert serve_main(["warm", "--artifact", str(artifact_path)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["n_nodes"] == 49 and out["resistance_engine"] == "woodbury"

    def test_warm_missing_artifact(self, tmp_path, capsys):
        code = serve_main(["warm", "--artifact", str(tmp_path / "nope.npz")])
        assert code == 2

    def test_query_pairs(self, learned, artifact_path, capsys):
        code = serve_main([
            "query", "--artifact", str(artifact_path),
            "--kind", "resistance", "--pairs", "0:48,3:9",
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        expected = effective_resistance(learned.graph, [(0, 48), (3, 9)])
        values = [float(line.split("\t")[1]) for line in lines]
        np.testing.assert_allclose(values, expected, rtol=1e-8)

    def test_query_random_pairs_summary(self, artifact_path, capsys):
        code = serve_main([
            "query", "--artifact", str(artifact_path),
            "--kind", "resistance", "--random-pairs", "50", "--summary",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_queries"] == 50 and summary["qps"] > 0
        assert summary["batching"]["n_requests"] == 50

    def test_query_neighbors_and_labels(self, artifact_path, capsys):
        assert serve_main([
            "query", "--artifact", str(artifact_path),
            "--kind", "neighbors", "--nodes", "0,1", "--k", "2",
        ]) == 0
        assert serve_main([
            "query", "--artifact", str(artifact_path),
            "--kind", "labels", "--nodes", "0,1", "--clusters", "3",
        ]) == 0

    def test_query_requires_inputs(self, artifact_path, capsys):
        assert serve_main([
            "query", "--artifact", str(artifact_path), "--kind", "resistance",
        ]) == 2
        assert serve_main([
            "query", "--artifact", str(artifact_path), "--kind", "labels",
        ]) == 2

    def test_bad_pairs_syntax(self, artifact_path):
        with pytest.raises(SystemExit):
            serve_main([
                "query", "--artifact", str(artifact_path),
                "--kind", "resistance", "--pairs", "zero:one",
            ])

    def test_query_explain_and_trace(self, artifact_path, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        code = serve_main([
            "query", "--artifact", str(artifact_path),
            "--kind", "resistance", "--pairs", "0:48,3:9",
            "--explain", "--trace", str(trace_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        # One breakdown row per query, with the batcher's stage columns.
        assert "queue_ms" in out and "exec_ms" in out
        assert "(0, 48)" in out and "(3, 9)" in out
        trace_path = trace_dir / "query_resistance.jsonl"
        assert trace_path.exists()
        from repro.obs import load_spans

        spans = load_spans(trace_path)
        names = {span.name for span in spans}
        assert {"query", "batch.request", "batch.execute", "serialize"} <= names
        queries = [span for span in spans if span.name == "query"]
        assert len(queries) == 2
        metrics = json.loads((trace_dir / "query_resistance_metrics.json").read_text())
        assert metrics["histograms"]["batcher.resistance.latency_ms"]["count"] == 2


# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sharded_session(tmp_path_factory):
    from repro.artifacts import save_sharded_result
    from repro.partition import ShardedSGLearner

    data = simulate_measurements(grid_2d(10, 10), n_measurements=30, seed=0)
    result = ShardedSGLearner(beta=0.05, num_parts=2).fit(data)
    directory = save_sharded_result(
        result, tmp_path_factory.mktemp("sharded") / "model"
    )
    return ShardedGraphSession.from_directory(directory)


class TestShardedGraphSession:
    def test_loads_and_reports_shape(self, sharded_session):
        assert sharded_session.n_parts == 2
        assert sharded_session.n_nodes == 100
        stats = sharded_session.stats()
        assert stats["n_parts"] == 2
        assert len(stats["shard_engines"]) == 2
        assert stats["boundary_engine"] in ("woodbury", "grouped")
        assert stats["boundary_nodes"] > 0

    def test_same_shard_resistance_is_exact(self, sharded_session):
        # Same-shard pairs route to the owning shard's session, which must
        # agree with direct per-pair solves on that shard's graph.
        nodes = sharded_session.shard_nodes[0]
        pairs = np.column_stack([nodes[:10], nodes[10:20]])
        got = sharded_session.effective_resistance(pairs)
        shard_graph = sharded_session.artifact.shards[0].graph
        expected = effective_resistance(
            shard_graph, np.searchsorted(nodes, pairs)
        )
        np.testing.assert_allclose(got, expected, rtol=1e-8)

    def test_cross_shard_resistance_is_finite_and_symmetric(self, sharded_session):
        pairs = np.column_stack(
            [sharded_session.shard_nodes[0][:5], sharded_session.shard_nodes[1][:5]]
        )
        res = sharded_session.effective_resistance(pairs)
        assert np.all(np.isfinite(res)) and np.all(res > 0)
        swapped = sharded_session.effective_resistance(pairs[:, ::-1].copy())
        np.testing.assert_allclose(res, swapped, rtol=1e-9)
        assert sharded_session.stats()["queries"]["cross_resistance"] >= 10

    def test_cross_shard_estimate_lower_bounds_whole_graph(self, sharded_session):
        # The boundary bridge shorts each shard's interior into a supernode;
        # by Rayleigh monotonicity, shorting can only lower the effective
        # resistance, so the bridge estimate lower-bounds the whole-graph
        # value.
        art = sharded_session.artifact
        rows, cols, weights = [art.cut_rows], [art.cut_cols], [art.cut_weights]
        for nodes, shard in zip(art.shard_nodes, art.shards):
            rows.append(nodes[shard.graph.rows])
            cols.append(nodes[shard.graph.cols])
            weights.append(shard.graph.weights)
        whole = WeightedGraph(
            art.n_nodes,
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(weights),
        )
        pairs = np.column_stack([art.shard_nodes[0][:8], art.shard_nodes[1][:8]])
        exact = effective_resistance(whole, pairs)
        approx = sharded_session.effective_resistance(pairs)
        assert np.all(approx <= exact * (1 + 1e-9))

    def test_nearest_neighbors_stay_in_owning_shard(self, sharded_session):
        nodes = np.array(
            [sharded_session.shard_nodes[0][0], sharded_session.shard_nodes[1][0]]
        )
        distances, ids = sharded_session.nearest_neighbors(nodes, k=4)
        assert distances.shape == (2, 4) and ids.shape == (2, 4)
        parts = sharded_session.assignment[ids]
        assert (parts[0] == 0).all() and (parts[1] == 1).all()

    def test_cluster_labels_are_namespaced_by_shard(self, sharded_session):
        labels = sharded_session.cluster_labels(n_clusters=4)
        assert labels.shape == (100,)
        for part in range(2):
            shard_labels = labels[sharded_session.shard_nodes[part]]
            assert shard_labels.min() >= part * 4
            assert shard_labels.max() < (part + 1) * 4

    def test_rejects_out_of_range_nodes(self, sharded_session):
        with pytest.raises(ValueError, match="out of range"):
            sharded_session.effective_resistance([(0, 100)])
        with pytest.raises(ValueError, match="out of range"):
            sharded_session.nearest_neighbors([-1])
