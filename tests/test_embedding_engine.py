"""Warm-start correctness of the incremental spectral engine.

The contract under test: across any number of edge-addition rounds, the
engine's embedding must match the stateless path's within the engine's
documented accuracy — and when the warm ladder fails, the engine must fall
back to a cold solve rather than return a degraded embedding.
"""

import numpy as np
import pytest

from repro import SGLearner, simulate_measurements
from repro.core.config import SGLConfig
from repro.embedding.engine import EmbeddingEngine, _IncrementalLaplacianInverse
from repro.embedding.spectral import spectral_embedding_matrix
from repro.graphs.generators import grid_2d
from repro.linalg.solvers import LaplacianSolver


def _edge_rounds(graph, n_rounds, per_round=8, seed=0):
    """Deterministic rounds of random new edges (no duplicates, no loops)."""
    rng = np.random.default_rng(seed)
    existing = graph.edge_set()
    rounds = []
    for _ in range(n_rounds):
        batch = []
        while len(batch) < per_round:
            s, t = rng.integers(0, graph.n_nodes, size=2)
            key = (min(int(s), int(t)), max(int(s), int(t)))
            if s != t and key not in existing:
                existing.add(key)
                batch.append(key)
        rounds.append((np.array(batch), rng.random(per_round) + 0.5))
    return rounds


def _pair_sample(n_nodes, n_pairs=300, seed=1):
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, n_nodes, size=(n_pairs, 2))
    return pairs[pairs[:, 0] != pairs[:, 1]]


@pytest.mark.parametrize("n_rounds", [1, 5, 12])
def test_incremental_matches_stateless_after_rounds(n_rounds):
    graph = grid_2d(18, 18)  # 324 nodes: above warm_min_nodes with margin
    engine = EmbeddingEngine(r=5, warm_min_nodes=16)
    engine.refresh(graph)
    for edges, weights in _edge_rounds(graph, n_rounds):
        graph = graph.add_edges(edges, weights)
        warm = engine.refresh(graph, added_edges=edges)
    cold = spectral_embedding_matrix(graph, 5)

    # Eigenvalues agree to the engine's advertised accuracy (drift_tol).
    np.testing.assert_allclose(warm.eigenvalues, cold.eigenvalues, rtol=engine.drift_tol)

    # Embedding geometry: squared pair distances are what the sensitivity
    # ranking consumes, so compare those rather than raw eigenvectors (which
    # have sign/rotation freedom).  Accumulated cluster-edge rotation after
    # many rounds leaves individual small distances off by more than the
    # eigenvalues, so the long-horizon contract is ranking fidelity:
    # near-perfect correlation and a bounded mean relative error.
    pairs = _pair_sample(graph.n_nodes)
    warm_d = warm.pair_distances_squared(pairs)
    cold_d = cold.pair_distances_squared(pairs)
    assert np.corrcoef(warm_d, cold_d)[0, 1] >= 0.98
    assert np.abs(warm_d - cold_d).mean() <= 0.1 * cold_d.mean()
    if n_rounds <= 5:
        np.testing.assert_allclose(warm_d, cold_d, rtol=5e-2, atol=1e-12)
    assert engine.stats.warm_refreshes >= 1


def test_engine_reports_modes_and_counts():
    graph = grid_2d(16, 16)
    engine = EmbeddingEngine(r=4, warm_min_nodes=16)
    engine.refresh(graph)
    assert engine.last_mode == "cold"
    (edges, weights), = _edge_rounds(graph, 1)
    engine.refresh(graph.add_edges(edges, weights), added_edges=edges)
    assert engine.last_mode in ("warm-rr", "warm-inverse", "fallback")
    stats = engine.stats
    assert stats.refreshes == 2
    assert stats.refreshes == stats.cold_solves + stats.warm_refreshes
    as_dict = stats.as_dict()
    assert as_dict["refreshes"] == 2
    assert set(as_dict) >= {"cold_solves", "warm_rayleigh_ritz", "warm_inverse", "fallbacks"}


def test_unchanged_graph_refresh_is_warm():
    graph = grid_2d(16, 16)
    engine = EmbeddingEngine(r=4, warm_min_nodes=16)
    first = engine.refresh(graph)
    second = engine.refresh(graph, added_edges=np.empty((0, 2), dtype=np.int64))
    assert engine.last_mode == "warm-rr"
    np.testing.assert_allclose(first.coordinates, second.coordinates)


def test_fallback_on_warm_failure(monkeypatch):
    graph = grid_2d(16, 16)
    engine = EmbeddingEngine(r=4, warm_min_nodes=16)
    engine.refresh(graph)

    # Sabotage the warm ladder: every incremental solve raises, so the engine
    # must fall back to a cold solve and still return a correct embedding.
    def boom(self, block, **kwargs):
        raise RuntimeError("injected warm-solver failure")

    monkeypatch.setattr(_IncrementalLaplacianInverse, "solve", boom)
    (edges, weights), = _edge_rounds(graph, 1)
    denser = graph.add_edges(edges, weights)
    refreshed = engine.refresh(denser, added_edges=edges)
    assert engine.last_mode == "fallback"
    assert engine.stats.fallbacks == 1

    cold = spectral_embedding_matrix(denser, 4)
    np.testing.assert_allclose(refreshed.eigenvalues, cold.eigenvalues, rtol=1e-8)


def test_repeated_fallbacks_disable_warm_path(monkeypatch):
    graph = grid_2d(16, 16)
    engine = EmbeddingEngine(r=4, warm_min_nodes=16, max_consecutive_fallbacks=2)
    engine.refresh(graph)

    monkeypatch.setattr(
        _IncrementalLaplacianInverse,
        "solve",
        lambda self, block, **kwargs: (_ for _ in ()).throw(RuntimeError("boom")),
    )
    for edges, weights in _edge_rounds(graph, 3):
        graph = graph.add_edges(edges, weights)
        engine.refresh(graph, added_edges=edges)
    # Two failures trip the breaker; the third refresh goes straight to cold.
    assert engine.stats.fallbacks == 2
    assert engine.last_mode == "cold"


def test_warm_started_shift_invert_matches_dense():
    from repro.linalg.eigen import laplacian_eigenpairs

    graph = grid_2d(20, 20)
    exact_values, exact_vectors = laplacian_eigenpairs(graph, 4, method="dense")
    # Warm start from the exact nontrivial eigenvectors: the trivial pair is
    # orthogonal to them, and must still be resolved (and dropped) correctly.
    warm_values, warm_vectors = laplacian_eigenpairs(
        graph, 4, method="shift-invert", initial_vectors=exact_vectors
    )
    np.testing.assert_allclose(warm_values, exact_values, rtol=1e-8)
    overlap = np.abs(warm_vectors.T @ exact_vectors)
    np.testing.assert_allclose(np.linalg.norm(overlap, axis=1), 1.0, atol=1e-6)


def test_edge_weights_empty_graph_raises_keyerror():
    from repro.graphs.graph import WeightedGraph

    empty = WeightedGraph(3)
    with pytest.raises(KeyError):
        empty.edge_weights([(0, 1)])


def test_woodbury_solver_is_exact_across_updates():
    graph = grid_2d(15, 15)
    inverse = _IncrementalLaplacianInverse(graph)
    rng = np.random.default_rng(3)
    for edges, weights in _edge_rounds(graph, 4, per_round=6, seed=7):
        graph = graph.add_edges(edges, weights)
        inverse.update(graph)
        rhs = rng.standard_normal((graph.n_nodes, 2))
        got = inverse.solve(rhs)
        want = LaplacianSolver(graph).solve(rhs)
        np.testing.assert_allclose(got, want, atol=1e-9)
    assert inverse.n_corrections > 0


def test_woodbury_refactorizes_past_correction_budget():
    graph = grid_2d(15, 15)
    inverse = _IncrementalLaplacianInverse(graph, max_corrections=10)
    for edges, weights in _edge_rounds(graph, 3, per_round=6, seed=11):
        graph = graph.add_edges(edges, weights)
        inverse.update(graph)
    assert inverse.n_factorizations >= 2
    rhs = np.random.default_rng(5).standard_normal(graph.n_nodes)
    np.testing.assert_allclose(
        inverse.solve(rhs).ravel(), LaplacianSolver(graph).solve(rhs), atol=1e-9
    )


def test_learner_engines_agree_end_to_end():
    truth = grid_2d(14, 14)
    data = simulate_measurements(truth, n_measurements=40, seed=0)
    results = {}
    for engine in ("stateless", "incremental"):
        config = SGLConfig(beta=0.05, embedding_engine=engine)
        results[engine] = SGLearner(config).fit(data)
    stateless, incremental = results["stateless"], results["incremental"]
    assert incremental.engine_stats is not None
    assert stateless.engine_stats is None
    # The learned graphs must be equivalent in size and quality terms.
    assert abs(incremental.graph.density - stateless.graph.density) <= 0.1
    assert incremental.graph.is_connected()
    assert "embedding" in incremental.timings.stages


def test_stateless_config_never_builds_engine():
    truth = grid_2d(10, 10)
    data = simulate_measurements(truth, n_measurements=30, seed=0)
    result = SGLearner(SGLConfig(beta=0.05, embedding_engine="stateless")).fit(data)
    assert result.engine_stats is None
    assert "embedding_warm" not in result.timings.stages
