"""Tests for the baseline estimators: graphical Lasso, Kron reduction,
spectral sparsification."""

import numpy as np
import pytest

from repro.baselines.glasso import gsp_graphical_lasso
from repro.baselines.kron import kron_reduction
from repro.baselines.spectral_sparsify import spectral_sparsify
from repro.graphs.generators import grid_2d
from repro.graphs.graph import WeightedGraph
from repro.linalg.pseudoinverse import effective_resistance
from repro.linalg.solvers import LaplacianSolver
from repro.measurements import simulate_measurements


# ----------------------------------------------------------------------
# gsp_graphical_lasso
# ----------------------------------------------------------------------
def test_glasso_objective_is_monotone_and_converges():
    truth = grid_2d(5, 5)
    data = simulate_measurements(truth, n_measurements=60, seed=0)
    result = gsp_graphical_lasso(data.voltages, max_iterations=40, seed=0)
    history = result.objective_history
    assert result.n_iterations == history.size
    finite = history[np.isfinite(history)]
    assert bool((np.diff(finite) >= -1e-9 * np.abs(finite[:-1])).all())
    assert result.graph.n_nodes == truth.n_nodes
    assert result.graph.n_edges > 0


def test_glasso_recovers_strong_edges_of_a_path():
    # A 4-node path: voltages from its Laplacian should put most estimated
    # conductance on the three true edges.
    truth = WeightedGraph(4, [0, 1, 2], [1, 2, 3], [2.0, 2.0, 2.0])
    data = simulate_measurements(truth, n_measurements=200, seed=1)
    result = gsp_graphical_lasso(data.voltages, max_iterations=100, seed=1)
    learned = result.graph
    true_weight = sum(
        learned.edge_weight(s, t) for s, t in [(0, 1), (1, 2), (2, 3)] if learned.has_edge(s, t)
    )
    assert true_weight >= 0.6 * learned.total_weight


def test_glasso_candidate_edge_restriction():
    truth = grid_2d(4, 4)
    data = simulate_measurements(truth, n_measurements=50, seed=0)
    candidates = truth.edges  # restrict to the true support
    result = gsp_graphical_lasso(data.voltages, candidate_edges=candidates, seed=0)
    learned_set = result.graph.edge_set()
    allowed = {(int(s), int(t)) for s, t in candidates}
    assert learned_set <= allowed


def test_glasso_input_validation():
    with pytest.raises(ValueError, match="voltages"):
        gsp_graphical_lasso(np.zeros(5))
    with pytest.raises(ValueError, match="few hundred"):
        gsp_graphical_lasso(np.zeros((601, 3)))


# ----------------------------------------------------------------------
# kron_reduction
# ----------------------------------------------------------------------
def test_kron_reduction_preserves_effective_resistance():
    truth = grid_2d(5, 5)
    keep = np.array([0, 4, 12, 20, 24])
    reduced = kron_reduction(truth, keep)
    assert reduced.n_nodes == keep.size
    pairs_full = np.array([[0, 4], [0, 24], [12, 20]])
    pairs_reduced = np.array([[0, 1], [0, 4], [2, 3]])
    r_full = effective_resistance(truth, pairs_full, solver=LaplacianSolver(truth))
    r_reduced = effective_resistance(
        reduced, pairs_reduced, solver=LaplacianSolver(reduced)
    )
    np.testing.assert_allclose(r_reduced, r_full, rtol=1e-8)


def test_kron_reduction_of_a_path_is_a_series_resistor():
    # Eliminating the middle of a 1-1 ohm series leaves a single 0.5-conductance edge.
    path = WeightedGraph(3, [0, 1], [1, 2], [1.0, 1.0])
    reduced = kron_reduction(path, [0, 2])
    assert reduced.n_edges == 1
    assert reduced.edge_weight(0, 1) == pytest.approx(0.5)


def test_kron_reduction_validation():
    graph = grid_2d(3, 3)
    with pytest.raises(ValueError, match="two"):
        kron_reduction(graph, [0])
    with pytest.raises(ValueError, match="unique"):
        kron_reduction(graph, [0, 0, 1])
    with pytest.raises(ValueError, match="range"):
        kron_reduction(graph, [0, 99])


# ----------------------------------------------------------------------
# spectral_sparsify
# ----------------------------------------------------------------------
@pytest.mark.parametrize("exact", [True, False])
def test_sparsifier_approximates_the_spectrum(exact):
    graph = grid_2d(8, 8)
    sparsifier = spectral_sparsify(
        graph, epsilon=0.4, exact_resistances=exact, seed=0
    )
    assert sparsifier.n_nodes == graph.n_nodes
    assert sparsifier.n_edges <= graph.n_edges
    # Total weight is preserved in expectation; allow a generous band.
    assert sparsifier.total_weight == pytest.approx(graph.total_weight, rel=0.5)
    pairs = np.array([[0, 63], [0, 7], [28, 35]])
    r_orig = effective_resistance(graph, pairs, solver=LaplacianSolver(graph))
    if sparsifier.is_connected():
        r_sparse = effective_resistance(
            sparsifier, pairs, solver=LaplacianSolver(sparsifier)
        )
        np.testing.assert_allclose(r_sparse, r_orig, rtol=0.75)


def test_sparsifier_sample_budget_and_determinism():
    graph = grid_2d(6, 6)
    few = spectral_sparsify(graph, n_samples=10, exact_resistances=True, seed=0)
    again = spectral_sparsify(graph, n_samples=10, exact_resistances=True, seed=0)
    assert few.n_edges <= 10
    assert few == again  # same seed, same sparsifier
    other = spectral_sparsify(graph, n_samples=10, exact_resistances=True, seed=1)
    assert few != other or few.n_edges == 0


def test_sparsifier_edge_cases():
    empty = WeightedGraph(3)
    assert spectral_sparsify(empty).n_edges == 0
    with pytest.raises(ValueError, match="epsilon"):
        spectral_sparsify(grid_2d(3, 3), epsilon=0.0)
