"""Experiment-harness tests: the package imports and the drivers run."""

import numpy as np
import pytest

import repro.experiments as experiments
from repro.experiments import (
    default_workload,
    fig01_convergence,
    fig08_reduced_networks,
    fig11_runtime_scalability,
    format_table,
    summarize_learning_result,
)
from repro.experiments.figures import _learn_case


def test_package_exports_exist():
    # The seed shipped an __init__ promising modules that did not exist;
    # every name in __all__ must now resolve.
    for name in experiments.__all__:
        assert hasattr(experiments, name), name


@pytest.fixture(scope="module")
def tiny_workload():
    return default_workload("2d_mesh", scale="tiny")


def test_fig01_convergence(tiny_workload):
    result = fig01_convergence(tiny_workload)
    assert result.converged
    assert len(result.iterations) == len(result.max_sensitivities)
    # Edge counts never decrease along the densification.
    assert (np.diff(result.n_edges) >= 0).all()


def test_learning_result_summary(tiny_workload):
    result = _learn_case(tiny_workload, n_pairs=100)
    # SGL learns a much sparser graph than the kNN comparator.
    assert result.sgl_density < result.baseline_density
    summary = summarize_learning_result(result)
    assert "SGL" in summary and "kNN" in summary


def test_fig08_reduced_networks(tiny_workload):
    result = fig08_reduced_networks(tiny_workload, fraction=0.3)
    assert result.learned.graph.n_nodes == result.kept_nodes.size
    assert result.size_reduction == pytest.approx(
        result.n_original_nodes / result.kept_nodes.size
    )
    assert result.correlation_vs_kron > 0.5


def test_fig11_delegates_to_bench(tiny_workload):
    result = fig11_runtime_scalability(scenarios=["grid_2d/tiny"])
    assert result.scenarios == ("grid_2d/tiny",)
    assert result.seconds[0] > 0
    assert result.stage_seconds("embedding")[0] > 0


def test_format_table_alignment():
    table = format_table(["name", "value"], [["a", 1.5], ["long-name", 0.25]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert len({len(line) for line in lines[:2]}) <= 2
    assert "long-name" in table
