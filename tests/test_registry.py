"""Tests for repro.artifacts.registry: publish/resolve/lineage/tag/gc."""

import json

import numpy as np
import pytest

from repro.artifacts import (
    ModelRegistry,
    RegistryError,
    is_model_ref,
    load_result,
    parse_model_ref,
    save_result,
)
from repro.core.sgl import learn_graph
from repro.graphs.generators import grid_2d
from repro.measurements.generator import simulate_measurements


@pytest.fixture(scope="module")
def learned():
    data = simulate_measurements(grid_2d(6, 6), n_measurements=25, seed=0)
    return learn_graph(data, beta=0.05)


@pytest.fixture(scope="module")
def learned_alt():
    data = simulate_measurements(grid_2d(6, 6), n_measurements=25, seed=1)
    return learn_graph(data, beta=0.1)


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestRefs:
    def test_is_model_ref(self):
        assert is_model_ref("grid@latest")
        assert is_model_ref("grid@3")
        assert is_model_ref("power-net.v2@prod")
        # Plain paths must never be mistaken for registry references.
        assert not is_model_ref("models/grid.npz")
        assert not is_model_ref("/abs/path.npz")
        assert not is_model_ref("grid")
        assert not is_model_ref(42)

    def test_parse_model_ref(self):
        assert parse_model_ref("grid@3") == ("grid", "3")
        assert parse_model_ref("grid@prod") == ("grid", "prod")
        assert parse_model_ref("grid") == ("grid", "latest")

    def test_parse_rejects_garbage(self):
        for bad in ("", "@", "grid@", "@latest", "a b@1", "grid@a b"):
            with pytest.raises(RegistryError):
                parse_model_ref(bad)


class TestPublish:
    def test_versions_are_monotonic_with_lineage(self, registry, learned):
        v1 = registry.publish(learned, "grid")
        v2 = registry.publish(learned, "grid", parent=v1)
        v3 = registry.publish(learned, "grid", parent=v2)
        assert (v1.version, v2.version, v3.version) == (1, 2, 3)
        assert v1.parent is None and v2.parent == 1 and v3.parent == 2
        assert [v.version for v in registry.lineage("grid@latest")] == [3, 2, 1]

    def test_resolve_loads_the_published_model(self, registry, learned):
        registry.publish(learned, "grid")
        artifact = load_result(registry.resolve("grid@1"))
        assert artifact.graph == learned.graph
        assert artifact.checksum == registry.get("grid@1").checksum

    def test_publish_from_existing_file(self, registry, learned, tmp_path):
        path = save_result(learned, tmp_path / "model.npz")
        version = registry.publish(path, "copied")
        assert version.checksum == load_result(path).checksum
        assert version.n_nodes == learned.graph.n_nodes
        assert version.n_edges == learned.graph.n_edges
        assert load_result(registry.resolve("copied")).graph == learned.graph

    def test_publish_records_metadata_and_sizes(self, registry, learned):
        version = registry.publish(
            learned, "grid", metadata={"stream": {"mode": "initial"}}
        )
        assert version.metadata == {"stream": {"mode": "initial"}}
        assert version.n_nodes == 36
        assert registry.get("grid@1").metadata["stream"]["mode"] == "initial"

    def test_invalid_names_and_parents_rejected(self, registry, learned):
        with pytest.raises(RegistryError, match="invalid model name"):
            registry.publish(learned, "no spaces")
        registry.publish(learned, "grid")
        with pytest.raises(RegistryError, match="does not exist"):
            registry.publish(learned, "grid", parent=7)
        other = registry.publish(learned, "other")
        with pytest.raises(RegistryError, match="different model"):
            registry.publish(learned, "grid", parent=other)

    def test_unknown_model_error_lists_available(self, registry, learned):
        registry.publish(learned, "grid")
        with pytest.raises(RegistryError, match=r"available: \['grid'\]"):
            registry.get("nope@latest")

    def test_list_and_names(self, registry, learned, learned_alt):
        registry.publish(learned, "a")
        registry.publish(learned_alt, "a")
        registry.publish(learned, "b")
        assert registry.names() == ["a", "b"]
        assert [(v.name, v.version) for v in registry.list()] == [
            ("a", 1), ("a", 2), ("b", 1),
        ]
        assert [v.version for v in registry.list("a")] == [1, 2]
        assert len(registry) == 3


class TestTags:
    def test_tag_points_and_moves(self, registry, learned, learned_alt):
        registry.publish(learned, "grid")
        registry.publish(learned_alt, "grid")
        registry.tag("grid@1", "prod")
        assert registry.get("grid@prod").version == 1
        assert registry.get("grid@1").tags == ("prod",)
        registry.tag("grid@latest", "prod")
        assert registry.get("grid@prod").version == 2
        assert registry.get("grid@1").tags == ()

    def test_reserved_tags_rejected(self, registry, learned):
        registry.publish(learned, "grid")
        for bad in ("latest", "3", "no spaces"):
            with pytest.raises(RegistryError):
                registry.tag("grid@1", bad)


class TestGc:
    def test_gc_keeps_recent_tagged_and_lineage(self, registry, learned):
        versions = [registry.publish(learned, "grid") for _ in range(6)]
        registry.tag("grid@2", "pinned")
        # keep_last=2 keeps v5, v6; the tag keeps v2; parents stay implicit
        # (these are all root versions, so no lineage rescue happens).
        removed = registry.gc("grid", keep_last=2)
        assert sorted(v.version for v in removed) == [1, 3, 4]
        assert [v.version for v in registry.list("grid")] == [2, 5, 6]
        for version in removed:
            assert not version.path.exists()
        assert registry.get("grid@pinned").version == 2
        assert versions[4].path.exists()

    def test_gc_keeps_parents_of_survivors(self, registry, learned):
        parent = None
        for _ in range(5):
            parent = registry.publish(learned, "grid", parent=parent)
        # Every version is an ancestor of the kept head: nothing to remove.
        assert registry.gc("grid", keep_last=1) == []
        assert len(registry.list("grid")) == 5

    def test_gc_validates_keep_last(self, registry):
        with pytest.raises(RegistryError, match="keep_last"):
            registry.gc(keep_last=0)


class TestIndexDurability:
    def test_reopen_sees_published_versions(self, registry, learned):
        registry.publish(learned, "grid", tags=("prod",))
        reopened = ModelRegistry(registry.root)
        assert reopened.get("grid@prod").version == 1
        assert reopened.verify("grid@latest").checksum == (
            registry.get("grid@1").checksum
        )

    def test_reload_picks_up_external_publish(self, registry, learned):
        registry.publish(learned, "grid")
        other = ModelRegistry(registry.root)
        other.publish(learned, "grid")
        with pytest.raises(RegistryError):
            registry.get("grid@2")
        registry.reload()
        assert registry.get("grid@2").version == 2

    def test_no_tmp_files_left_behind(self, registry, learned):
        registry.publish(learned, "grid")
        leftovers = list(registry.root.rglob("*.tmp"))
        assert leftovers == []

    def test_corrupt_index_rejected(self, tmp_path, learned):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(learned, "grid")
        (tmp_path / "reg" / "index.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(RegistryError, match="unreadable"):
            ModelRegistry(tmp_path / "reg")

    def test_foreign_index_rejected(self, tmp_path):
        root = tmp_path / "reg"
        root.mkdir()
        (root / "index.json").write_text(json.dumps({"schema": "other"}))
        with pytest.raises(RegistryError, match="not a repro.registry"):
            ModelRegistry(root)

    def test_future_schema_version_rejected(self, tmp_path):
        root = tmp_path / "reg"
        root.mkdir()
        (root / "index.json").write_text(
            json.dumps({"schema": "repro.registry", "schema_version": 99})
        )
        with pytest.raises(RegistryError, match="schema_version"):
            ModelRegistry(root)

    def test_verify_detects_checksum_drift(self, registry, learned, learned_alt):
        version = registry.publish(learned, "grid")
        registry.verify("grid@1")
        # Swap the artifact file for a different (valid) model behind the
        # index's back: verify must flag the checksum drift.
        save_result(learned_alt, version.path)
        with pytest.raises(RegistryError, match="checksum drift"):
            registry.verify("grid@1")


class TestUncompressedPublish:
    def test_uncompressed_publish_is_mmapable(self, registry, learned):
        registry.publish(learned, "grid", compress=False)
        artifact = load_result(registry.resolve("grid@1"), mmap_mode="r")
        assert artifact.mmapped
        assert artifact.graph == learned.graph
        assert np.array_equal(artifact.graph.weights, learned.graph.weights)
