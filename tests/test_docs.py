"""Documentation health checks: relative links resolve, guides exist.

The doctest execution of ``docs/*.md`` code blocks is handled by pytest
itself (``--doctest-glob=*.md`` with ``docs`` in ``testpaths``); this module
covers what doctest cannot: link rot and accidental guide deletion.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(REPO_ROOT.glob("docs/*.md")) + [REPO_ROOT / "README.md"]

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def _relative_links(path: Path) -> list[str]:
    links = []
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target.split("#", 1)[0])
    return links


def test_guides_exist():
    names = {path.name for path in REPO_ROOT.glob("docs/*.md")}
    assert {
        "architecture.md",
        "benchmarking.md",
        "api.md",
        "serving.md",
        "testing.md",
    } <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_relative_links_resolve(doc):
    missing = [
        target
        for target in _relative_links(doc)
        if target and not (doc.parent / target).exists()
    ]
    assert not missing, f"{doc.name} links to missing files: {missing}"


def test_readme_links_every_guide():
    readme = (REPO_ROOT / "README.md").read_text()
    for guide in (
        "docs/architecture.md",
        "docs/benchmarking.md",
        "docs/api.md",
        "docs/serving.md",
        "docs/testing.md",
    ):
        assert guide in readme, f"README.md does not link {guide}"
