"""Tests for the measurement simulator, noise model and node-subset reduction."""

import numpy as np
import pytest

from repro.graphs.generators import grid_2d
from repro.measurements import MeasurementSet, simulate_measurements
from repro.measurements.generator import random_current_vectors
from repro.measurements.noise import add_measurement_noise
from repro.measurements.reduction import sample_node_subset, subset_measurements


# ----------------------------------------------------------------------
# generator
# ----------------------------------------------------------------------
def test_random_current_vectors_are_valid_excitations():
    currents = random_current_vectors(30, 12, seed=0)
    assert currents.shape == (30, 12)
    # Kirchhoff: zero net current per excitation; unit norm.
    np.testing.assert_allclose(currents.sum(axis=0), 0.0, atol=1e-12)
    np.testing.assert_allclose(np.linalg.norm(currents, axis=0), 1.0)
    with pytest.raises(ValueError):
        random_current_vectors(1, 5)
    with pytest.raises(ValueError):
        random_current_vectors(5, 0)


def test_simulated_voltages_solve_the_laplacian():
    graph = grid_2d(5, 5)
    data = simulate_measurements(graph, n_measurements=8, seed=3)
    residual = graph.laplacian() @ data.voltages - data.currents
    assert float(np.abs(residual).max()) < 1e-9
    # Mean-free voltage convention (pseudo-inverse solution).
    np.testing.assert_allclose(data.voltages.mean(axis=0), 0.0, atol=1e-12)
    assert data.noise_level == 0.0 and data.has_currents


def test_simulation_is_deterministic_per_seed():
    graph = grid_2d(4, 4)
    a = simulate_measurements(graph, 5, seed=7)
    b = simulate_measurements(graph, 5, seed=7)
    c = simulate_measurements(graph, 5, seed=8)
    np.testing.assert_array_equal(a.voltages, b.voltages)
    assert not np.array_equal(a.voltages, c.voltages)


def test_measurement_set_validation_and_views():
    with pytest.raises(ValueError):
        MeasurementSet(np.zeros(4))
    with pytest.raises(ValueError):
        MeasurementSet(np.zeros((4, 3)), currents=np.zeros((4, 2)))
    data = MeasurementSet(np.arange(12.0).reshape(4, 3), np.ones((4, 3)))
    subset = data.subset_measurements([0, 2])
    assert subset.n_measurements == 2 and subset.has_currents
    np.testing.assert_array_equal(subset.voltages, data.voltages[:, [0, 2]])
    replaced = data.with_voltages(np.zeros((4, 3)))
    assert replaced.voltages.sum() == 0.0 and replaced.has_currents


# ----------------------------------------------------------------------
# noise
# ----------------------------------------------------------------------
def test_noise_energy_matches_the_level():
    graph = grid_2d(6, 6)
    data = simulate_measurements(graph, n_measurements=10, seed=0)
    noisy = add_measurement_noise(data, 0.25, seed=1)
    assert noisy.noise_level == 0.25
    np.testing.assert_array_equal(noisy.currents, data.currents)
    per_column_noise = np.linalg.norm(noisy.voltages - data.voltages, axis=0)
    per_column_signal = np.linalg.norm(data.voltages, axis=0)
    np.testing.assert_allclose(per_column_noise, 0.25 * per_column_signal, rtol=1e-9)


def test_zero_noise_is_identity_and_negative_rejected():
    data = MeasurementSet(np.ones((4, 2)))
    assert add_measurement_noise(data, 0.0) is data
    with pytest.raises(ValueError):
        add_measurement_noise(data, -0.1)


def test_noise_on_bare_arrays_and_vectors():
    matrix = np.random.default_rng(0).standard_normal((8, 3))
    noisy = add_measurement_noise(matrix, 0.1, seed=2)
    assert noisy.shape == matrix.shape
    vector = matrix[:, 0]
    noisy_vector = add_measurement_noise(vector, 0.1, seed=2)
    assert noisy_vector.shape == vector.shape
    assert np.linalg.norm(noisy_vector - vector) == pytest.approx(
        0.1 * np.linalg.norm(vector)
    )


# ----------------------------------------------------------------------
# reduction
# ----------------------------------------------------------------------
def test_sample_node_subset_properties():
    nodes = sample_node_subset(100, 0.2, seed=0)
    assert nodes.size == 20
    assert bool((np.diff(nodes) > 0).all())  # sorted, unique
    assert nodes.min() >= 0 and nodes.max() < 100
    assert sample_node_subset(10, 0.01, minimum=2).size == 2
    with pytest.raises(ValueError):
        sample_node_subset(100, 0.0)
    with pytest.raises(ValueError):
        sample_node_subset(1, 0.5)


def test_subset_measurements_drops_currents_and_maps_nodes():
    graph = grid_2d(6, 6)
    data = simulate_measurements(graph, n_measurements=6, seed=0)
    reduced, nodes = subset_measurements(data, 0.25, seed=4)
    assert reduced.n_nodes == nodes.size
    assert not reduced.has_currents
    np.testing.assert_array_equal(reduced.voltages, data.voltages[nodes])
