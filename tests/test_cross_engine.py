"""Cross-engine golden tests: stateless vs incremental vs multilevel.

Two layers of agreement, on small fixtures where exact references are cheap:

* **Eigenpair agreement** — the three engines refresh the same graph and the
  spanned embedding subspaces must agree (principal angles), because the
  SGL sensitivity ranking is a function of that subspace.
* **End-to-end agreement** — full SGL runs under each engine land on graphs
  with matching objective value, resistance correlation and density.
"""

import numpy as np
import pytest
import scipy.linalg

from repro.core.config import SGLConfig
from repro.core.objective import graphical_lasso_objective
from repro.core.sgl import SGLearner
from repro.embedding import (
    EmbeddingEngine,
    MultilevelEmbeddingEngine,
    spectral_embedding_matrix,
)
from repro.graphs.generators import grid_2d, random_geometric_graph
from repro.measurements import simulate_measurements
from repro.metrics.resistance import resistance_correlation

ENGINES = ("stateless", "incremental", "multilevel")


def _engine_embedding(name, graph, r):
    if name == "stateless":
        return spectral_embedding_matrix(graph, r)
    if name == "incremental":
        return EmbeddingEngine(r, warm_min_nodes=16).refresh(graph)
    return MultilevelEmbeddingEngine(r, coarse_size=64).refresh(graph)


@pytest.mark.parametrize("name", ENGINES)
@pytest.mark.parametrize(
    "graph_factory",
    # A rectangular grid: square grids have degenerate eigenvalues at the
    # block boundary, which makes the r-1 subspace itself ill-defined.
    [lambda: grid_2d(19, 17), lambda: random_geometric_graph(350, seed=3)],
    ids=["grid", "geometric"],
)
def test_engines_agree_on_embedding_subspace(name, graph_factory):
    graph = graph_factory()
    reference = spectral_embedding_matrix(graph, 5)
    candidate = _engine_embedding(name, graph, 5)
    angles = scipy.linalg.subspace_angles(
        reference.eigenvectors, candidate.eigenvectors
    )
    assert float(np.max(angles)) < 0.15
    np.testing.assert_allclose(
        candidate.eigenvalues, reference.eigenvalues, rtol=5e-2
    )


@pytest.mark.parametrize("name", ENGINES[1:])
def test_engines_agree_after_densification_rounds(name):
    """Warm engines track the stateless subspace across edge additions."""
    rng = np.random.default_rng(0)
    graph = grid_2d(16, 16)
    engine = (
        EmbeddingEngine(4, warm_min_nodes=16)
        if name == "incremental"
        else MultilevelEmbeddingEngine(4, coarse_size=64)
    )
    engine.refresh(graph)
    for _ in range(6):
        existing = graph.edge_set()
        batch = []
        while len(batch) < 6:
            s, t = (int(v) for v in rng.integers(0, graph.n_nodes, size=2))
            key = (min(s, t), max(s, t))
            if s != t and key not in existing:
                existing.add(key)
                batch.append(key)
        graph = graph.add_edges(np.array(batch), rng.random(len(batch)) + 0.5)
        warm = engine.refresh(graph, added_edges=np.array(batch))
    reference = spectral_embedding_matrix(graph, 4)
    angles = scipy.linalg.subspace_angles(reference.eigenvectors, warm.eigenvectors)
    assert float(np.max(angles)) < 0.2
    pairs = rng.integers(0, graph.n_nodes, size=(250, 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    warm_d = warm.pair_distances_squared(pairs)
    ref_d = reference.pair_distances_squared(pairs)
    assert np.corrcoef(warm_d, ref_d)[0, 1] >= 0.98


@pytest.fixture(scope="module")
def fixture_problem():
    truth = grid_2d(14, 14)
    data = simulate_measurements(truth, n_measurements=40, seed=0)
    return truth, data


@pytest.fixture(scope="module")
def engine_results(fixture_problem):
    truth, data = fixture_problem
    results = {}
    for name in ENGINES:
        config = SGLConfig(beta=0.02, embedding_engine=name, multilevel_coarse_size=64)
        results[name] = SGLearner(config).fit(data)
    return results


def test_end_to_end_objective_agreement(fixture_problem, engine_results):
    truth, data = fixture_problem
    objectives = {
        name: graphical_lasso_objective(res.graph, data.voltages, n_eigenvalues=30)
        for name, res in engine_results.items()
    }
    reference = objectives["stateless"]
    for name, value in objectives.items():
        assert value == pytest.approx(reference, rel=0.02), (name, objectives)


def test_end_to_end_correlation_and_density_agreement(fixture_problem, engine_results):
    truth, data = fixture_problem
    correlations = {
        name: resistance_correlation(truth, res.graph, n_pairs=200, seed=0)
        for name, res in engine_results.items()
    }
    reference = correlations["stateless"]
    for name, corr in correlations.items():
        assert abs(corr - reference) <= 0.02, (name, correlations)
    densities = {name: res.density for name, res in engine_results.items()}
    for name, density in densities.items():
        assert density == pytest.approx(densities["stateless"], rel=0.05), densities


def test_end_to_end_engine_stats_shapes(engine_results):
    assert engine_results["stateless"].engine_stats is None
    incremental = engine_results["incremental"].engine_stats
    assert incremental["refreshes"] == incremental["cold_solves"] + (
        incremental["warm_rayleigh_ritz"] + incremental["warm_inverse"]
    )
    multilevel = engine_results["multilevel"].engine_stats
    assert multilevel["refreshes"] >= 1
    assert multilevel["hierarchy_builds"] >= 1
    assert set(multilevel) >= {
        "refreshes",
        "hierarchy_builds",
        "churn_rebuilds",
        "reprojections",
        "dense_solves",
        "n_levels",
    }


def test_multilevel_records_coarsen_and_refine_stages(fixture_problem):
    truth, data = fixture_problem
    config = SGLConfig(beta=0.02, embedding_engine="multilevel", multilevel_coarse_size=64)
    result = SGLearner(config).fit(data)
    stages = result.timings.stages
    assert "coarsen" in stages and "refine" in stages
    assert stages["refine"].calls == result.n_iterations
    assert "embedding" not in stages  # the multilevel engine owns Step 2
