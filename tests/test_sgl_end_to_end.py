"""End-to-end SGL recovery on a 2-D grid (the paper's headline claim).

Learning a 20x20 grid back from 50 simulated measurement pairs must produce
an ultra-sparse graph (density well below the truth's ~2) whose effective
resistances correlate strongly with the ground truth.
"""

import numpy as np
import pytest

from repro import SGLearner, simulate_measurements
from repro.graphs.generators import grid_2d
from repro.metrics import resistance_correlation


@pytest.fixture(scope="module")
def grid_recovery():
    truth = grid_2d(20, 20)
    data = simulate_measurements(truth, n_measurements=50, seed=0)
    result = SGLearner(beta=0.025).fit(data)
    return truth, data, result


def test_learned_density_is_ultra_sparse(grid_recovery):
    _, _, result = grid_recovery
    assert result.graph.density <= 1.6


def test_learner_converges(grid_recovery):
    _, _, result = grid_recovery
    assert result.converged
    assert 0 < result.n_iterations <= result.config.max_iterations


def test_resistance_correlation_above_threshold(grid_recovery):
    truth, _, result = grid_recovery
    correlation = resistance_correlation(truth, result.graph, n_pairs=200, seed=0)
    assert correlation >= 0.75


def test_edge_scaling_applied(grid_recovery):
    _, _, result = grid_recovery
    assert result.scaling_factor > 0
    assert np.isfinite(result.scaling_factor)
    # Scaled and unscaled graphs share topology, differ only by the factor.
    assert result.graph.n_edges == result.unscaled_graph.n_edges
    np.testing.assert_allclose(
        result.graph.weights, result.unscaled_graph.weights * result.scaling_factor
    )


def test_stage_timings_recorded(grid_recovery):
    _, _, result = grid_recovery
    stages = result.timings.stages
    for name in ("knn", "initial_tree", "embedding", "sensitivity", "edge_scaling"):
        assert name in stages, f"missing stage {name!r}"
        assert stages[name].seconds >= 0
        assert stages[name].calls >= 1
    # The densification loop refreshes the embedding once per iteration
    # (incl. the final convergence check); with the incremental engine the
    # refreshes are split between cold ("embedding") and warm
    # ("embedding_warm") solves.
    embedding_calls = stages["embedding"].calls + (
        stages["embedding_warm"].calls if "embedding_warm" in stages else 0
    )
    assert embedding_calls >= result.n_iterations
    assert result.timings.total_seconds > 0


def test_engine_stats_attached(grid_recovery):
    _, _, result = grid_recovery
    assert result.config.embedding_engine == "incremental"
    stats = result.engine_stats
    assert stats is not None
    assert stats["refreshes"] == stats["cold_solves"] + stats["warm_rayleigh_ritz"] + stats["warm_inverse"]
    assert stats["cold_solves"] >= 1


def test_learned_graph_is_connected(grid_recovery):
    truth, _, result = grid_recovery
    assert result.graph.n_nodes == truth.n_nodes
    assert result.graph.is_connected()
