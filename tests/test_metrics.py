"""Tests for the metrics subpackage: resistance, smoothness, spectral, density."""

import numpy as np
import pytest

from repro.graphs.generators import grid_2d
from repro.graphs.graph import WeightedGraph
from repro.metrics.density import (
    density_ratio,
    graph_density,
    sparsification_summary,
)
from repro.metrics.resistance import (
    compare_effective_resistances,
    resistance_correlation,
    sample_node_pairs,
)
from repro.metrics.smoothness import signal_smoothness, total_smoothness
from repro.metrics.spectral import (
    compare_eigenvalues,
    eigenvalue_correlation,
    relative_eigenvalue_error,
)


# ----------------------------------------------------------------------
# resistance
# ----------------------------------------------------------------------
def test_sample_node_pairs_are_distinct_and_in_range():
    pairs = sample_node_pairs(10, 200, seed=0)
    assert pairs.shape == (200, 2)
    assert bool((pairs[:, 0] != pairs[:, 1]).all())
    assert pairs.min() >= 0 and pairs.max() < 10
    np.testing.assert_array_equal(pairs, sample_node_pairs(10, 200, seed=0))
    with pytest.raises(ValueError):
        sample_node_pairs(1, 5)


def test_identical_graphs_have_perfect_resistance_correlation():
    graph = grid_2d(6, 6)
    comparison = compare_effective_resistances(graph, graph.copy(), n_pairs=50, seed=0)
    assert comparison.correlation == pytest.approx(1.0)
    assert comparison.mean_relative_error == pytest.approx(0.0, abs=1e-10)


def test_scaling_all_conductances_keeps_correlation_but_not_error():
    graph = grid_2d(6, 6)
    doubled = graph.scaled(2.0)  # halves every effective resistance
    comparison = compare_effective_resistances(graph, doubled, n_pairs=80, seed=1)
    assert comparison.correlation == pytest.approx(1.0, abs=1e-9)
    assert comparison.mean_relative_error == pytest.approx(0.5, abs=1e-9)
    assert resistance_correlation(graph, doubled, n_pairs=80, seed=1) == pytest.approx(
        1.0, abs=1e-9
    )


def test_resistance_comparison_requires_matching_node_sets():
    with pytest.raises(ValueError):
        compare_effective_resistances(grid_2d(4, 4), grid_2d(5, 5))


# ----------------------------------------------------------------------
# smoothness
# ----------------------------------------------------------------------
def test_constant_signal_has_zero_smoothness():
    graph = grid_2d(5, 5)
    assert signal_smoothness(graph, np.ones(25)) == pytest.approx(0.0, abs=1e-12)


def test_smoothness_matches_quadratic_form():
    graph = WeightedGraph(3, [0, 1], [1, 2], [2.0, 3.0])
    x = np.array([1.0, 0.0, -1.0])
    expected = 2.0 * (1.0 - 0.0) ** 2 + 3.0 * (0.0 - (-1.0)) ** 2
    assert signal_smoothness(graph, x, normalize=False) == pytest.approx(expected)
    assert signal_smoothness(graph, x) == pytest.approx(expected / (x @ x))
    matrix = np.column_stack([x, 2 * x])
    assert total_smoothness(graph, matrix) == pytest.approx(expected * 5.0)


def test_smoothness_matrix_shape():
    graph = grid_2d(4, 4)
    signals = np.random.default_rng(0).standard_normal((16, 7))
    values = signal_smoothness(graph, signals)
    assert values.shape == (7,)
    assert bool((values >= 0).all())


# ----------------------------------------------------------------------
# spectral
# ----------------------------------------------------------------------
def test_identical_spectra_correlate_perfectly():
    graph = grid_2d(6, 6)
    comparison = compare_eigenvalues(graph, graph.copy(), k=10)
    assert comparison.correlation == pytest.approx(1.0)
    assert comparison.mean_relative_error == pytest.approx(0.0, abs=1e-8)
    assert comparison.max_relative_error == pytest.approx(0.0, abs=1e-8)


def test_eigenvalue_correlation_of_scaled_spectrum():
    original = np.array([1.0, 2.0, 3.0, 4.0])
    assert eigenvalue_correlation(original, 3 * original) == pytest.approx(1.0)
    assert relative_eigenvalue_error(original, 2 * original) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        eigenvalue_correlation(original, original[:2])


def test_compare_eigenvalues_clips_k_to_graph_sizes():
    big = grid_2d(6, 6)
    small = grid_2d(3, 3)  # 9 nodes: at most 8 nontrivial eigenvalues
    comparison = compare_eigenvalues(big, small, k=50)
    assert comparison.original.size == comparison.learned.size == 8
    with pytest.raises(ValueError):
        compare_eigenvalues(WeightedGraph(1), WeightedGraph(1))


# ----------------------------------------------------------------------
# density
# ----------------------------------------------------------------------
def test_density_helpers():
    graph = grid_2d(4, 4)  # 16 nodes, 24 edges
    assert graph_density(graph) == pytest.approx(1.5)
    sparser = WeightedGraph.from_edges(16, graph.edges[:12], graph.weights[:12])
    assert density_ratio(graph, sparser) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        density_ratio(WeightedGraph(4), sparser)


def test_sparsification_summary():
    original = grid_2d(10, 10)
    learned = WeightedGraph.from_edges(25, [[0, 1], [1, 2]])
    summary = sparsification_summary(original, learned)
    assert summary.original_density == pytest.approx(original.density)
    assert summary.learned_density == pytest.approx(2 / 25)
    assert summary.edge_reduction == pytest.approx(1.0 - 2 / original.n_edges)
    assert summary.size_reduction == pytest.approx(4.0)
