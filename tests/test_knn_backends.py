"""Tests for the pluggable kNN search backends (repro.knn.backends).

Covers the contract promised by the backend subsystem:

* blocked-BLAS brute force is *bit-identical* to the KD-tree (edges and
  distances) at any feature dimension;
* the JL-projected mode reaches >= 0.99 recall@k on seeded measurement
  fixtures and falls back to exact search when the features are already
  narrower than the sketch;
* the ``auto`` policy picks the documented backend per (N, M);
* the backend knob threads through SGLConfig, the experiment workloads and
  the bench CLI (including ``--profile``).
"""

import dataclasses
import json
import pstats

import numpy as np
import pytest

from repro.bench import get_scenario, list_scenarios, load_artifact
from repro.bench.cli import main as bench_main
from repro.core.config import SGLConfig
from repro.core.sgl import SGLearner
from repro.experiments import default_workload
from repro.knn import (
    BruteForceIndex,
    JLIndex,
    KDTreeIndex,
    NSWIndex,
    build_index,
    effective_rank,
    knn_edges,
    knn_graph,
    select_backend,
    sketch_dimension,
)


@pytest.fixture(scope="module")
def low_dim_features():
    return np.random.default_rng(42).standard_normal((120, 8))


@pytest.fixture(scope="module")
def high_dim_features():
    return np.random.default_rng(7).standard_normal((250, 50))


# ----------------------------------------------------------------------
# Brute force vs KD-tree equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape", [(120, 8), (90, 4), (150, 17), (250, 50)])
def test_brute_bit_identical_to_kdtree(shape):
    features = np.random.default_rng(hash(shape) % 2**32).standard_normal(shape)
    kd_edges, kd_dists = knn_edges(features, 5, backend="kdtree")
    bf_edges, bf_dists = knn_edges(features, 5, backend="brute")
    assert np.array_equal(kd_edges, bf_edges)
    assert np.array_equal(kd_dists, bf_dists)  # bit-identical, not approx


def test_brute_knn_graph_equals_kdtree_graph(high_dim_features):
    kd = knn_graph(high_dim_features, 5, backend="kdtree")
    bf = knn_graph(high_dim_features, 5, backend="brute")
    assert kd == bf


def test_brute_complete_graph_when_k_is_n_minus_1(low_dim_features):
    n = low_dim_features.shape[0]
    graph = knn_graph(low_dim_features, n - 1, backend="brute", ensure_connected=False)
    assert graph.n_edges == n * (n - 1) // 2


def test_brute_duplicate_tie_groups_are_deterministic():
    # A tie group wider than k + rerank pad (12 exact duplicates, k=6)
    # straddles the candidate boundary: the index must widen to the full
    # tie group and break ties by lowest index, deterministically.
    rng = np.random.default_rng(5)
    base = rng.standard_normal((20, 8))
    features = np.vstack([base, np.tile(base[0], (12, 1))])
    index = BruteForceIndex(features)
    distances, indices = index.query(features, k=6)
    # Query 0 is duplicated at rows 20..31: all distance 0, lowest indices.
    assert np.allclose(distances[0], 0.0)
    assert indices[0].tolist() == [0, 20, 21, 22, 23, 24]
    # Per-row sorted distances still match the KD-tree bit for bit (the
    # neighbour choice inside a tie group is the only freedom).
    kd_distances, _ = KDTreeIndex(features).query(features, k=6)
    assert np.array_equal(distances, kd_distances)
    repeat_d, repeat_i = BruteForceIndex(features).query(features, k=6)
    assert np.array_equal(repeat_i, indices) and np.array_equal(repeat_d, distances)


def test_brute_small_blocks_match_single_block(high_dim_features):
    whole = BruteForceIndex(high_dim_features)
    tiled = BruteForceIndex(high_dim_features, block_bytes=4096)
    d1, i1 = whole.query(high_dim_features, k=4)
    d2, i2 = tiled.query(high_dim_features, k=4)
    assert np.array_equal(i1, i2)
    assert np.array_equal(d1, d2)


# ----------------------------------------------------------------------
# JL-projected mode
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scenario", ["grid_2d/tiny", "grid_2d/small"])
def test_jl_recall_on_measurement_fixtures(scenario):
    spec = get_scenario(scenario)
    voltages = spec.build_measurements().voltages
    n = voltages.shape[0]
    k = 6
    _, exact = BruteForceIndex(voltages).query(voltages, k)
    index = JLIndex(voltages, oversample=16, seed=0)
    assert index.sketched
    _, approx = index.query(voltages, k)
    hits = sum(
        len(set(exact[row]) & set(approx[row])) for row in range(n)
    )
    assert hits / (n * k) >= 0.99


def test_jl_falls_back_to_exact_when_features_narrow(low_dim_features):
    narrow = low_dim_features[:, :4]
    index = JLIndex(narrow, seed=0)
    assert not index.sketched
    d_jl, i_jl = index.query(narrow, k=5)
    d_kd, i_kd = KDTreeIndex(narrow).query(narrow, k=5)
    assert np.array_equal(i_jl, i_kd)
    assert np.array_equal(d_jl, d_kd)


def test_jl_returns_exact_distances(high_dim_features):
    distances, indices = JLIndex(high_dim_features, seed=0).query(
        high_dim_features, k=4
    )
    recomputed = np.linalg.norm(
        high_dim_features[indices] - high_dim_features[:, None, :], axis=-1
    )
    assert np.allclose(distances, recomputed, rtol=0, atol=1e-12)
    assert (np.diff(distances, axis=1) >= 0).all()  # sorted ascending


def test_jl_search_features_expose_sketch(high_dim_features):
    index = JLIndex(high_dim_features, seed=0)
    assert index.search_features.shape == (
        high_dim_features.shape[0],
        index.sketch_dim,
    )
    # The shared tree is over the sketch, so connectivity repair can reuse it.
    assert index.kdtree is not None
    assert index.kdtree.n == high_dim_features.shape[0]
    assert KDTreeIndex(high_dim_features).kdtree.m == high_dim_features.shape[1]
    assert BruteForceIndex(high_dim_features).search_features.shape == (
        high_dim_features.shape
    )


def test_knn_graph_rejects_non_positive_callable_weights(low_dim_features):
    with pytest.raises(ValueError, match="strictly positive"):
        knn_graph(low_dim_features, 4, weight_scheme=lambda d: np.zeros_like(d))


# ----------------------------------------------------------------------
# auto policy + factory
# ----------------------------------------------------------------------
def test_select_backend_shape_policy():
    assert select_backend(10_000, 3) == "kdtree"
    assert select_backend(500, 50) == "brute"
    assert select_backend(5_000, 50) == "jl"


def test_select_backend_rank_probe_keeps_low_rank_on_kdtree():
    rng = np.random.default_rng(0)
    smooth = rng.standard_normal((5_000, 3)) @ rng.standard_normal((3, 50))
    noisy = rng.standard_normal((5_000, 50))
    assert select_backend(5_000, 50, smooth) == "kdtree"
    assert select_backend(5_000, 50, noisy) == "jl"
    assert select_backend(500, 50, noisy) == "brute"


def test_effective_rank_bounds():
    rng = np.random.default_rng(1)
    rank_one = np.outer(rng.standard_normal(300), rng.standard_normal(30))
    assert effective_rank(rank_one) == pytest.approx(1.0, abs=0.01)
    iso = rng.standard_normal((2_000, 30))
    assert 20 < effective_rank(iso) <= 30
    # subsampling keeps the probe deterministic
    assert effective_rank(iso) == effective_rank(iso)


def test_sketch_dimension_is_logarithmic_and_clamped():
    assert sketch_dimension(4) == 6  # lower clamp
    assert sketch_dimension(5_000) == 8
    assert sketch_dimension(150_000) == 12
    assert sketch_dimension(2**40) <= 15  # upper clamp at KDTREE_MAX_DIM


def test_build_index_auto_dispatch(low_dim_features, high_dim_features):
    assert isinstance(build_index(low_dim_features, "auto"), KDTreeIndex)
    assert isinstance(build_index(high_dim_features, "auto"), BruteForceIndex)
    big = np.random.default_rng(0).standard_normal((2100, 20))
    assert isinstance(build_index(big, "auto"), JLIndex)


def test_build_index_nsw_and_seed_dropping(low_dim_features):
    index = build_index(low_dim_features, "nsw", seed=3)
    assert isinstance(index, NSWIndex)
    # seedless backends silently drop the threaded seed
    assert isinstance(build_index(low_dim_features, "kdtree", seed=3), KDTreeIndex)


def test_build_index_rejects_unknown_backend(low_dim_features):
    with pytest.raises(ValueError, match="unknown kNN backend"):
        build_index(low_dim_features, "bogus")


# ----------------------------------------------------------------------
# Threading through config / learner / workloads
# ----------------------------------------------------------------------
def test_config_validates_knn_backend():
    assert SGLConfig(knn_backend="jl").knn_backend == "jl"
    with pytest.raises(ValueError, match="knn_backend"):
        SGLConfig(knn_backend="bogus")


def test_learner_backends_agree_on_learned_graph():
    spec = get_scenario("grid_2d/tiny")
    data = spec.build_measurements()
    config = spec.make_config(data.n_nodes)
    results = {
        backend: SGLearner(dataclasses.replace(config, knn_backend=backend)).fit(data)
        for backend in ("kdtree", "brute")
    }
    # Exact backends must lead to the exact same learned graph.
    assert results["kdtree"].graph == results["brute"].graph
    for result in results.values():
        assert result.graph.is_connected()


def test_default_workload_threads_knn_backend():
    workload = default_workload("airfoil", scale="tiny", knn_backend="brute")
    assert workload.config.knn_backend == "brute"
    default = default_workload("airfoil", scale="tiny")
    assert default.config.knn_backend == "auto"


# ----------------------------------------------------------------------
# Paper suite + CLI
# ----------------------------------------------------------------------
def test_paper_suite_covers_all_five_classes_and_is_opt_in():
    names = list_scenarios("paper")
    assert sorted(names) == [
        "airfoil/paper",
        "circuit/paper",
        "crack/paper",
        "fem/paper",
        "grid_2d/paper",
    ]
    for name in names:
        assert get_scenario(name).tier == "paper"
        # opt-in: paper scenarios ride in no always-on suite
        for suite in ("smoke", "full", "scaling"):
            assert name not in list_scenarios(suite)


def test_paper_tier_matches_paper_node_counts():
    from repro.graphs.io.suite import PAPER_SIZES

    spec = get_scenario("grid_2d/paper")
    assert spec.build_graph().n_nodes == PAPER_SIZES["2d_mesh"][0]


def test_cli_knn_backend_and_profile(tmp_path):
    out = tmp_path / "BENCH_unit.json"
    code = bench_main(
        [
            "run",
            "--scenario",
            "grid_2d/tiny",
            "--out",
            str(out),
            "--baselines",
            "none",
            "--no-memory",
            "--knn-backend",
            "brute",
            "--profile",
        ]
    )
    assert code == 0
    artifact = load_artifact(out)
    assert artifact["run_config"]["knn_backend"] == "brute"
    (record,) = artifact["results"]
    assert record["info"]["knn_backend"] == "brute"
    profile_file = record["info"]["profile"]
    assert profile_file is not None
    stats = pstats.Stats(profile_file)
    functions = {entry[2] for entry in stats.stats}
    assert "fit" in functions


def test_cli_rejects_unknown_knn_backend(tmp_path, capsys):
    with pytest.raises(SystemExit):
        bench_main(
            [
                "run",
                "--scenario",
                "grid_2d/tiny",
                "--out",
                str(tmp_path / "x.json"),
                "--knn-backend",
                "bogus",
            ]
        )
