"""Differential correctness of the partition-parallel learner.

The sharded engine's contract against the serial learner, checked run
against run:

* ``num_parts=1`` is **bit-compatible** with :class:`~repro.core.SGLearner`
  — same edges, same weight bytes, same scaling factor;
* the process-pool shard execution is **byte-identical** to the in-process
  sequential order (extending the PR 5 ``--jobs`` parallel-vs-serial
  guarantee into the shard pool);
* multi-part fits stay within tolerance of the whole-graph fit on the
  graphical-lasso objective and edge density, and — on every medium-tier
  scenario family — the learned graph's effective-resistance correlation
  with the ground truth is within 0.05 of the serial fit's.
"""

import dataclasses

import numpy as np
import pytest

from repro.bench.registry import get_scenario, list_scenarios
from repro.bench.runner import quality_metrics
from repro.core.objective import graphical_lasso_objective
from repro.core.sgl import SGLearner
from repro.graphs.generators import grid_2d
from repro.measurements import simulate_measurements
from repro.partition import ShardedSGLearner

BETA = 0.05


@pytest.fixture(scope="module")
def small_case():
    graph = grid_2d(14, 14)
    data = simulate_measurements(graph, n_measurements=30, seed=0)
    return graph, data


@pytest.fixture(scope="module")
def serial_result(small_case):
    _, data = small_case
    return SGLearner(beta=BETA).fit(data)


def _graphs_identical(a, b) -> bool:
    return (
        a.n_nodes == b.n_nodes
        and np.array_equal(a.rows, b.rows)
        and np.array_equal(a.cols, b.cols)
        and a.weights.tobytes() == b.weights.tobytes()
    )


# ----------------------------------------------------------------------
# parts=1: bit-compatibility with the serial learner
# ----------------------------------------------------------------------
def test_single_part_bit_compatible_with_serial(small_case, serial_result):
    _, data = small_case
    sharded = ShardedSGLearner(beta=BETA, num_parts=1).fit(data)
    assert _graphs_identical(sharded.graph, serial_result.graph)
    assert _graphs_identical(sharded.unscaled_graph, serial_result.unscaled_graph)
    assert sharded.scaling_factor == serial_result.scaling_factor
    assert sharded.converged == serial_result.converged


# ----------------------------------------------------------------------
# Multi-part: within tolerance of the whole-graph fit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_parts", [2, 4])
def test_multi_part_close_to_whole_graph(small_case, serial_result, num_parts):
    truth, data = small_case
    sharded = ShardedSGLearner(beta=BETA, num_parts=num_parts).fit(data)
    assert sharded.graph.is_connected()
    assert sharded.n_parts == num_parts

    # Edge density within 30% of the serial fit.
    ratio = sharded.density / serial_result.graph.density
    assert 0.7 <= ratio <= 1.3

    # Graphical-lasso objective at most 10% worse than the serial fit
    # (one-sided: the extra cross-boundary edges the stitch admits can —
    # and on this case do — *improve* the objective).
    obj_serial = graphical_lasso_objective(serial_result.graph, data.voltages)
    obj_sharded = graphical_lasso_objective(sharded.graph, data.voltages)
    assert obj_sharded <= obj_serial + 0.10 * abs(obj_serial)

    # Resistance correlation with the truth within 0.05 of the serial fit.
    q_serial = quality_metrics(truth, serial_result.graph, data.voltages, seed=0)
    q_sharded = quality_metrics(truth, sharded.graph, data.voltages, seed=0)
    assert (
        q_sharded["resistance_correlation"]
        >= q_serial["resistance_correlation"] - 0.05
    )


# ----------------------------------------------------------------------
# Shard pool: byte-identical to in-process sequential execution
# ----------------------------------------------------------------------
def test_process_pool_byte_identical_to_sequential(small_case):
    _, data = small_case
    sequential = ShardedSGLearner(beta=BETA, num_parts=2, jobs=1).fit(data)
    pooled = ShardedSGLearner(beta=BETA, num_parts=2, jobs=2).fit(data)
    assert _graphs_identical(sequential.graph, pooled.graph)
    assert sequential.scaling_factor == pooled.scaling_factor
    assert sequential.stitch_stats == pooled.stitch_stats
    for a, b in zip(sequential.shard_results, pooled.shard_results):
        assert _graphs_identical(a.graph, b.graph)


# ----------------------------------------------------------------------
# Acceptance sweep: every medium-tier scenario family
# ----------------------------------------------------------------------
MEDIUM_SCENARIOS = sorted(
    name
    for name in list_scenarios()
    if name.endswith("/medium")
)


@pytest.mark.parametrize("name", MEDIUM_SCENARIOS)
def test_medium_tier_resistance_correlation_within_5pct(name):
    """Sharded (4 parts) vs whole-graph on every medium family.

    Both fits run a bounded workload (incremental engine, three
    densification rounds) so the sweep stays test-suite-sized; the
    acceptance bar is the *relative* one from the issue — the sharded fit's
    resistance correlation with the truth must be within 0.05 of the
    whole-graph fit's.
    """
    spec = get_scenario(name)
    truth = spec.build_graph()
    data = spec.build_measurements(truth)
    config = dataclasses.replace(
        spec.make_config(truth.n_nodes),
        max_iterations=3,
        embedding_engine="incremental",
    )

    serial = SGLearner(config).fit(data)
    sharded = ShardedSGLearner(config, num_parts=4).fit(data)
    assert sharded.graph.is_connected()

    q_serial = quality_metrics(
        truth, serial.graph, data.voltages, n_pairs=60, seed=spec.seed
    )
    q_sharded = quality_metrics(
        truth, sharded.graph, data.voltages, n_pairs=60, seed=spec.seed
    )
    assert (
        q_sharded["resistance_correlation"]
        >= q_serial["resistance_correlation"] - 0.05
    ), (
        f"{name}: sharded corr {q_sharded['resistance_correlation']:.4f} "
        f"vs serial {q_serial['resistance_correlation']:.4f}"
    )
    # The stitched graph keeps every per-shard spanning tree *plus* the
    # global MST backbone; on geometry-free families (erdos_renyi) those
    # trees overlap little, so allow more density headroom than the small
    # mesh case above.
    density_ratio = q_sharded["density"] / q_serial["density"]
    assert 0.7 <= density_ratio <= 1.5
