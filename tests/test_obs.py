"""Tests for repro.obs: tracing, metrics, resources, the report CLI, and the
integration contracts the rest of the stack relies on (span/StageTimings
reconciliation, contextvar propagation across the batcher's thread-pool hop,
mergeable metrics for --jobs, and a bounded tracer overhead)."""

import asyncio
import json
import threading
import time

import numpy as np
import pytest

from repro.core.instrumentation import STAGE_NAMES, StageTimings
from repro.core.sgl import learn_graph
from repro.graphs.generators import grid_2d
from repro.measurements.generator import simulate_measurements
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsSession,
    ResourceSampler,
    Tracer,
    activate,
    current_span,
    current_tracer,
    load_spans,
    set_attributes,
    span,
)
from repro.obs.report import aggregate_spans, build_tree, main as obs_main, self_times
from repro.serve.batching import BatchStats, MicroBatcher


@pytest.fixture(scope="module")
def measurements():
    return simulate_measurements(grid_2d(8, 8), n_measurements=40, seed=0)


# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_and_ordering(self):
        tracer = Tracer()
        with tracer.span("root", kind="test"):
            with tracer.span("child_a"):
                pass
            with tracer.span("child_b"):
                with tracer.span("grandchild"):
                    pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["root"].parent_id is None
        assert spans["child_a"].parent_id == spans["root"].span_id
        assert spans["child_b"].parent_id == spans["root"].span_id
        assert spans["grandchild"].parent_id == spans["child_b"].span_id
        assert spans["child_a"].start <= spans["child_b"].start
        assert spans["root"].duration >= (
            spans["child_a"].duration + spans["child_b"].duration
        )
        assert spans["root"].attributes == {"kind": "test"}

    def test_ambient_helpers_are_noops_without_tracer(self):
        assert current_tracer() is None
        with span("ignored", x=1) as sp:
            assert sp is None
        set_attributes(x=2)  # must not raise

    def test_ambient_activation(self):
        tracer = Tracer()
        with activate(tracer):
            assert current_tracer() is tracer
            with span("outer") as outer:
                assert current_span() is outer
                set_attributes(marked=True)
        assert current_tracer() is None
        (recorded,) = tracer.spans()
        assert recorded.name == "outer" and recorded.attributes == {"marked": True}

    def test_record_with_parent_override(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            pass
        t0 = time.perf_counter()
        sp = tracer.record("late", t0, t0 + 0.5, {"k": 1}, parent=root)
        assert sp.parent_id == root.span_id
        assert sp.duration == pytest.approx(0.5)

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", n=3):
            with tracer.span("b"):
                pass
        path = tracer.export_jsonl(tmp_path / "t.jsonl")
        loaded = load_spans(path)
        assert [s.name for s in loaded] == ["a", "b"]  # start order
        by_name = {s.name: s for s in loaded}
        assert by_name["b"].parent_id == by_name["a"].span_id
        assert by_name["a"].attributes == {"n": 3}

    def test_chrome_export_shape(self, tmp_path):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        path = tracer.export_chrome(tmp_path / "chrome.json")
        doc = json.loads(path.read_text())
        complete = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(complete) == 1
        assert complete[0]["name"] == "phase"
        assert complete[0]["dur"] >= 0

    def test_thread_safety_of_collection(self):
        tracer = Tracer()

        def worker(i):
            with activate(tracer):
                for j in range(50):
                    with span("w", worker=i, j=j):
                        pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.spans()) == 200


# ----------------------------------------------------------------------
class TestStageTimingsBridge:
    def test_stage_emits_matching_span(self):
        tracer = Tracer()
        timings = StageTimings()
        with activate(tracer):
            with timings.stage("knn", backend="kdtree"):
                pass
            with timings.stage("knn"):
                pass
        spans = tracer.spans()
        assert [s.name for s in spans] == ["knn", "knn"]
        # The accumulator is exactly the per-stage sum of the spans.
        assert timings.seconds("knn") == pytest.approx(
            sum(s.duration for s in spans), abs=0.0
        )
        assert spans[0].attributes == {"backend": "kdtree"}

    def test_from_spans_reconciles_traced_fit(self, measurements):
        tracer = Tracer()
        with activate(tracer):
            result = learn_graph(measurements, beta=0.05)
        rebuilt = StageTimings.from_spans(tracer.spans())
        original = result.timings
        assert set(rebuilt.stages) == set(original.stages)
        for name in original.stages:
            assert rebuilt.seconds(name) == pytest.approx(
                original.seconds(name), rel=1e-9
            ), name
            assert rebuilt.stages[name].calls == original.stages[name].calls
        # Wrapper spans (sgl.fit, iteration) must not leak into the view.
        assert "sgl.fit" not in rebuilt.stages and "iteration" not in rebuilt.stages

    def test_fit_span_tree_shape(self, measurements):
        tracer = Tracer()
        with activate(tracer):
            result = learn_graph(measurements, beta=0.05)
        roots = build_tree(tracer.spans())
        assert len(roots) == 1 and roots[0].span.name == "sgl.fit"
        iterations = [c for c in roots[0].children if c.span.name == "iteration"]
        assert len(iterations) == result.n_iterations
        # Stage spans nest under iterations; every stage name is known.
        for node in iterations:
            for child in node.children:
                assert child.span.name in STAGE_NAMES
        root_attrs = roots[0].span.attributes
        assert root_attrs["converged"] == result.converged
        assert root_attrs["n_iterations"] == result.n_iterations

    def test_self_time_reconciles_with_stage_totals(self, measurements):
        # Acceptance check: per-stage *self* times in the span tree agree
        # with the StageTimings totals (stage spans are leaves, so self
        # time == duration; the 5% slack covers nothing here but keeps the
        # test honest about what the criterion demands).
        tracer = Tracer()
        with activate(tracer):
            result = learn_graph(measurements, beta=0.05)
        spans = tracer.spans()
        selfs = self_times(spans)
        per_stage: dict[str, float] = {}
        for sp in spans:
            if sp.name in STAGE_NAMES:
                per_stage[sp.name] = per_stage.get(sp.name, 0.0) + selfs[sp.span_id]
        for name, total in per_stage.items():
            recorded = result.timings.seconds(name)
            assert total == pytest.approx(recorded, rel=0.05), name

    def test_untraced_fit_records_timings_only(self, measurements):
        result = learn_graph(measurements, beta=0.05)
        assert result.timings.total_seconds > 0


# ----------------------------------------------------------------------
class TestContextPropagation:
    def test_batcher_carries_tracer_across_thread_pool_hop(self):
        tracer = Tracer()
        seen: dict = {}

        def handler(key, payloads):
            # Runs on an executor thread: without the captured context the
            # ambient tracer would be invisible here.
            seen["tracer"] = current_tracer()
            seen["span"] = current_span()
            seen["thread"] = threading.current_thread().name
            return payloads

        async def run():
            batcher = MicroBatcher(handler, max_batch_size=4, max_delay_s=0.001)
            with activate(tracer):
                with span("client"):
                    out = await asyncio.gather(
                        *(batcher.submit("k", i) for i in range(4))
                    )
                await batcher.drain()
            return out

        assert asyncio.run(run()) == [0, 1, 2, 3]
        assert seen["tracer"] is tracer
        assert seen["thread"] != threading.main_thread().name
        # Handler ran inside the batch.execute span.
        assert seen["span"] is not None and seen["span"].name == "batch.execute"
        names = [s.name for s in tracer.spans()]
        assert names.count("batch.request") == 4
        client = next(s for s in tracer.spans() if s.name == "client")
        requests = [s for s in tracer.spans() if s.name == "batch.request"]
        assert all(r.parent_id == client.span_id for r in requests)
        attrs = requests[0].attributes
        assert {"queue_wait_ms", "pool_wait_ms", "execute_ms", "batch_size"} <= set(attrs)

    def test_batcher_untraced_records_no_spans(self):
        async def run():
            batcher = MicroBatcher(lambda k, p: p, max_batch_size=2, max_delay_s=0.001)
            await asyncio.gather(batcher.submit("k", 1), batcher.submit("k", 2))
            await batcher.drain()
            return batcher

        batcher = asyncio.run(run())
        snap = batcher.metrics.snapshot()
        assert snap["histograms"]["batcher.latency_ms"]["count"] == 2


# ----------------------------------------------------------------------
class TestHistogram:
    def test_quantiles_track_numpy_within_bucket_width(self):
        rng = np.random.default_rng(0)
        buckets = tuple(float(b) for b in np.geomspace(0.01, 1000.0, 40))
        hist = Histogram("x", buckets=buckets)
        samples = rng.lognormal(mean=1.0, sigma=1.2, size=5000)
        for value in samples:
            hist.observe(value)
        for q in (50, 95, 99):
            estimate = hist.quantile(q / 100)
            exact = float(np.percentile(samples, q))
            # Interpolation error is bounded by the containing bucket's
            # width; geomspace(…, 40) steps are ~33% apart.
            assert estimate == pytest.approx(exact, rel=0.35), q

    def test_exact_for_within_bucket_uniform(self):
        hist = Histogram("u", buckets=tuple(float(b) for b in range(1, 11)))
        for value in range(1, 101):
            hist.observe(value / 10)
        assert hist.quantile(0.5) == pytest.approx(5.0, rel=0.02)
        assert hist.quantile(0.0) == pytest.approx(0.1)
        assert hist.quantile(1.0) == pytest.approx(10.0)

    def test_overflow_and_min_max(self):
        hist = Histogram("o", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 100.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]
        assert hist.min == 0.5 and hist.max == 100.0
        assert hist.quantile(1.0) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=())
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("x", buckets=(1.0,)).quantile(1.5)


# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_and_gauge_basics(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        assert registry.counter("hits").value == 3
        with pytest.raises(ValueError):
            registry.counter("hits").inc(-1)
        gauge = registry.gauge("rss")
        gauge.set(10.0)
        gauge.set(4.0)
        assert gauge.value == 4.0 and gauge.max == 10.0

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="another type"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="another type"):
            registry.histogram("x")

    def test_merge_is_exact_for_jobs_style_fanout(self):
        # Simulate --jobs workers: identical instruments, disjoint samples.
        rng = np.random.default_rng(1)
        workers = []
        all_samples = []
        for w in range(3):
            registry = MetricsRegistry()
            registry.counter("fit.runs").inc(2)
            registry.gauge("rss").set(100.0 * (w + 1))
            hist = registry.histogram("lat", buckets=(1.0, 5.0, 25.0, 125.0))
            samples = rng.uniform(0.1, 100.0, size=200)
            for value in samples:
                hist.observe(value)
            all_samples.append(samples)
            workers.append(registry.snapshot())

        suite = MetricsRegistry()
        for snapshot in workers:
            suite.merge(snapshot)
        assert suite.counter("fit.runs").value == 6
        assert suite.gauge("rss").max == 300.0
        merged = suite.histogram("lat", buckets=(1.0, 5.0, 25.0, 125.0))
        combined = np.concatenate(all_samples)
        assert merged.count == combined.size
        assert merged.sum == pytest.approx(float(combined.sum()))
        assert merged.min == pytest.approx(float(combined.min()))
        assert merged.max == pytest.approx(float(combined.max()))
        # A reference histogram fed every sample directly is identical.
        reference = Histogram("lat", buckets=(1.0, 5.0, 25.0, 125.0))
        for value in combined:
            reference.observe(value)
        assert merged.counts == reference.counts
        assert merged.quantile(0.99) == pytest.approx(reference.quantile(0.99))

    def test_merge_rejects_mismatched_buckets(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1.0, 3.0)).observe(1.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            a.merge(b.snapshot())

    def test_snapshot_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.histogram("h", buckets=(1.0, 10.0)).observe(3.0)
        path = registry.save(tmp_path / "m.json")
        rebuilt = MetricsRegistry.from_snapshot(json.loads(path.read_text()))
        assert rebuilt.snapshot() == registry.snapshot()


# ----------------------------------------------------------------------
class TestBatchStatsShim:
    def test_latencies_deprecated(self):
        stats = BatchStats()
        with pytest.warns(DeprecationWarning, match="latency_ms"):
            assert stats.latencies == []

    def test_max_recorded_latencies_deprecated(self):
        with pytest.warns(DeprecationWarning, match="max_recorded_latencies"):
            MicroBatcher(lambda k, p: p, max_recorded_latencies=10)

    def test_as_dict_percentiles_come_from_histogram(self):
        async def run():
            batcher = MicroBatcher(lambda k, p: p, max_batch_size=8, max_delay_s=0.001)
            await asyncio.gather(*(batcher.submit("k", i) for i in range(8)))
            await batcher.drain()
            return batcher.stats

        stats = asyncio.run(run())
        summary = stats.as_dict()
        hist = stats.metrics.histogram("batcher.latency_ms")
        assert summary["p50_ms"] == pytest.approx(hist.quantile(0.5))
        assert summary["p99_ms"] == pytest.approx(hist.quantile(0.99))
        assert summary["queue_wait_mean_ms"] >= 0


# ----------------------------------------------------------------------
class TestResourceSampler:
    def test_samples_and_summary(self):
        sampler = ResourceSampler(interval_s=0.01)
        with sampler:
            time.sleep(0.06)
        summary = sampler.summary()
        assert summary["n_samples"] >= 2
        assert summary["rss_max_bytes"] > 0
        assert summary["threads_max"] >= 1
        assert summary["duration_s"] > 0

    def test_save(self, tmp_path):
        sampler = ResourceSampler(interval_s=0.01)
        with sampler:
            time.sleep(0.03)
        path = sampler.save(tmp_path / "r.json")
        doc = json.loads(path.read_text())
        assert doc["summary"]["n_samples"] == len(doc["samples"])


# ----------------------------------------------------------------------
class TestObsSession:
    def test_saves_all_artifacts(self, tmp_path):
        with ObsSession(resource_interval_s=0.01) as obs:
            with span("work"):
                obs.metrics.counter("n").inc()
            time.sleep(0.02)
        paths = obs.save(tmp_path, prefix="run")
        assert sorted(p.name for p in paths.values()) == [
            "run.jsonl",
            "run_chrome.json",
            "run_metrics.json",
            "run_resources.json",
        ]
        assert load_spans(paths["trace"])[0].name == "work"


# ----------------------------------------------------------------------
class TestReportCLI:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        with ObsSession(sample_resources=False) as obs:
            with span("fit"):
                with span("knn"):
                    pass
            obs.metrics.histogram("lat_ms").observe(2.0)
        paths = obs.save(tmp_path, prefix="t")
        return paths["trace"]

    def test_report_renders_tables(self, trace_path, capsys):
        assert obs_main(["report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "self_%" in out and "fit" in out and "knn" in out
        assert "lat_ms" in out  # sibling metrics picked up automatically

    def test_report_missing_trace(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 2

    def test_chrome_subcommand(self, trace_path, tmp_path, capsys):
        out_path = tmp_path / "converted.json"
        assert obs_main(["chrome", str(trace_path), str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_aggregate_self_time(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.01)
        rows = {row.name: row for row in aggregate_spans(tracer.spans())}
        assert rows["inner"].self_seconds == pytest.approx(
            rows["inner"].total_seconds
        )
        assert rows["outer"].self_seconds <= rows["outer"].total_seconds


# ----------------------------------------------------------------------
class TestTracerOverhead:
    def test_traced_fit_within_5_percent(self, measurements):
        # The guard the whole design leans on: instrumentation must be
        # near-free.  Compare best-of-N traced vs untraced fits; the best
        # of several repeats is robust to scheduler noise, and a small
        # absolute slack keeps sub-50ms fits from flaking the gate.
        def best_of(n, traced):
            best = float("inf")
            for _ in range(n):
                start = time.perf_counter()
                if traced:
                    with activate(Tracer()):
                        learn_graph(measurements, beta=0.05)
                else:
                    learn_graph(measurements, beta=0.05)
                best = min(best, time.perf_counter() - start)
            return best

        best_of(1, traced=False)  # warm caches on both paths
        untraced = best_of(5, traced=False)
        traced = best_of(5, traced=True)
        assert traced <= untraced * 1.05 + 2e-3, (traced, untraced)
