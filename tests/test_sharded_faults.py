"""Fault injection for the sharded fit pipeline and artifact store.

Two failure families the million-node tier must survive loudly:

* a shard worker that raises — or dies outright — must surface as a
  :class:`~repro.partition.ShardFitError` naming the shard, and must never
  leave a partial (manifest-less) checkpoint behind;
* a sharded model directory whose members were corrupted or swapped after
  the save must fail :func:`~repro.artifacts.load_sharded_result`'s
  checksum validation with a :class:`~repro.artifacts.ShardManifestError`
  naming the member.

The worker-death cases rely on the Linux ``fork`` start method: a function
monkeypatched into :mod:`repro.partition.sharded` in the parent is
inherited by pool workers.
"""

import os
import shutil

import numpy as np
import pytest

from repro.artifacts import (
    ShardManifestError,
    load_sharded_result,
    save_sharded_result,
)
from repro.graphs.generators import grid_2d
from repro.measurements import simulate_measurements
from repro.partition import ShardedSGLearner, ShardFitError
from repro.partition.sharded import fit_shard as real_fit_shard


@pytest.fixture(scope="module")
def data():
    return simulate_measurements(grid_2d(10, 10), n_measurements=20, seed=0)


def _fail_on_shard_one(shard, voltages, config):
    if shard == 1:
        raise RuntimeError("injected shard failure")
    return real_fit_shard(shard, voltages, config)


def _die_on_shard_one(shard, voltages, config):
    if shard == 1:
        os._exit(3)  # simulate a worker killed mid-fit (OOM, SIGKILL, ...)
    return real_fit_shard(shard, voltages, config)


# ----------------------------------------------------------------------
# Worker failure -> ShardFitError naming the shard
# ----------------------------------------------------------------------
def test_sequential_shard_failure_names_shard(data, monkeypatch):
    monkeypatch.setattr("repro.partition.sharded.fit_shard", _fail_on_shard_one)
    learner = ShardedSGLearner(beta=0.05, num_parts=2, jobs=1)
    with pytest.raises(ShardFitError, match="shard 1") as excinfo:
        learner.fit(data)
    assert excinfo.value.shard == 1
    assert "injected shard failure" in str(excinfo.value)


def test_pool_shard_failure_names_shard(data, monkeypatch):
    monkeypatch.setattr("repro.partition.sharded.fit_shard", _fail_on_shard_one)
    learner = ShardedSGLearner(beta=0.05, num_parts=2, jobs=2)
    with pytest.raises(ShardFitError, match="shard 1") as excinfo:
        learner.fit(data)
    assert excinfo.value.shard == 1


def test_pool_worker_death_raises_shard_fit_error(data, monkeypatch):
    monkeypatch.setattr("repro.partition.sharded.fit_shard", _die_on_shard_one)
    learner = ShardedSGLearner(beta=0.05, num_parts=2, jobs=2)
    with pytest.raises(ShardFitError) as excinfo:
        learner.fit(data)
    # A dead worker breaks every pending future, so the error is pinned to
    # the lowest-indexed failing shard — either shard is acceptable, but it
    # must be *named*.
    assert excinfo.value.shard in (0, 1)
    assert "shard" in str(excinfo.value)


def test_failed_fit_leaves_no_partial_checkpoint(data, tmp_path, monkeypatch):
    monkeypatch.setattr("repro.partition.sharded.fit_shard", _fail_on_shard_one)
    checkpoint = tmp_path / "ckpt"
    learner = ShardedSGLearner(beta=0.05, num_parts=2, jobs=1)
    with pytest.raises(ShardFitError):
        learner.fit(data, checkpoint_dir=checkpoint)
    # The checkpoint stage never ran: no manifest means loaders reject the
    # directory instead of serving a silently partial model.
    assert not (checkpoint / "manifest.json").exists()
    with pytest.raises(ShardManifestError, match="manifest"):
        load_sharded_result(checkpoint)


# ----------------------------------------------------------------------
# Artifact tampering -> ShardManifestError naming the member
# ----------------------------------------------------------------------
@pytest.fixture()
def saved_model(data, tmp_path):
    result = ShardedSGLearner(beta=0.05, num_parts=2).fit(data)
    save_sharded_result(result, tmp_path / "model")
    return tmp_path / "model"


def test_corrupted_shard_file_fails_load(saved_model):
    target = saved_model / "shard_0001.npz"
    raw = bytearray(target.read_bytes())
    raw[0] ^= 0xFF  # clobber the zip magic: the file no longer parses
    target.write_bytes(bytes(raw))
    with pytest.raises(ShardManifestError, match="shard 1"):
        load_sharded_result(saved_model)


def test_swapped_shard_artifact_fails_checksum(data, saved_model, tmp_path):
    # A *valid* artifact from a different fit must still be rejected: the
    # manifest pins each member's checksum.
    other_data = simulate_measurements(grid_2d(10, 10), n_measurements=20, seed=9)
    other = ShardedSGLearner(beta=0.05, num_parts=2).fit(other_data)
    save_sharded_result(other, tmp_path / "other")
    shutil.copyfile(
        tmp_path / "other" / "shard_0000.npz", saved_model / "shard_0000.npz"
    )
    with pytest.raises(ShardManifestError, match="shard 0.*replaced or tampered"):
        load_sharded_result(saved_model)


def test_tampered_boundary_fails_checksum(saved_model):
    boundary_path = saved_model / "boundary.npz"
    with np.load(boundary_path) as handle:
        arrays = {name: handle[name].copy() for name in handle.files}
    assert arrays["cut_weights"].size > 0
    arrays["cut_weights"] = arrays["cut_weights"] * 2.0
    with boundary_path.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    with pytest.raises(ShardManifestError, match="boundary.*corrupt or tampered"):
        load_sharded_result(saved_model)
