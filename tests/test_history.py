"""Tests for the previously untested SGL convergence history (core/history.py)."""

import numpy as np
import pytest

from repro.core.history import IterationRecord, SGLHistory


def _history(sensitivities, objectives=None):
    history = SGLHistory()
    for idx, sens in enumerate(sensitivities):
        objective = None if objectives is None else objectives[idx]
        history.append(
            IterationRecord(
                iteration=idx,
                max_sensitivity=sens,
                n_edges=100 + 3 * idx,
                n_edges_added=3 if sens > 0 else 0,
                objective=objective,
            )
        )
    return history


class TestSGLHistory:
    def test_len_and_iteration_protocol(self):
        history = _history([3.0, 2.0, 1.0])
        assert len(history) == 3
        assert [r.iteration for r in history] == [0, 1, 2]
        assert history.iterations.tolist() == [0, 1, 2]
        assert history.iterations.dtype == np.int64

    def test_series_properties(self):
        history = _history([4.0, 2.0, 0.5])
        assert history.max_sensitivities.tolist() == [4.0, 2.0, 0.5]
        assert history.edge_counts.tolist() == [100, 103, 106]
        assert history.edges_added.tolist() == [3, 3, 3]

    def test_log_sensitivities(self):
        history = _history([100.0, 1.0, 0.01])
        np.testing.assert_allclose(
            history.log_max_sensitivities, [2.0, 0.0, -2.0]
        )

    def test_log_sensitivities_clip_nonpositive_to_floor(self):
        # Converged iterations report sensitivity 0; the log series clips
        # them to the smallest positive value seen so plots stay finite.
        history = _history([10.0, 0.1, 0.0])
        logs = history.log_max_sensitivities
        assert np.all(np.isfinite(logs))
        assert logs[2] == pytest.approx(-1.0)  # floor = 0.1

    def test_log_sensitivities_all_zero(self):
        history = _history([0.0, 0.0])
        assert np.all(np.isfinite(history.log_max_sensitivities))

    def test_objectives_nan_padding(self):
        history = _history([2.0, 1.0, 0.5], objectives=[-3.5, None, -4.0])
        objectives = history.objectives
        assert objectives[0] == -3.5 and objectives[2] == -4.0
        assert np.isnan(objectives[1])

    def test_empty_history(self):
        history = SGLHistory()
        assert len(history) == 0
        assert history.iterations.size == 0
        assert history.max_sensitivities.size == 0
        assert history.objectives.size == 0
        assert np.all(np.isfinite(history.log_max_sensitivities))

    def test_records_are_frozen(self):
        record = IterationRecord(0, 1.0, 10, 2)
        with pytest.raises(AttributeError):
            record.n_edges = 11

    def test_default_objective_is_none(self):
        record = IterationRecord(0, 1.0, 10, 2)
        assert record.objective is None
