"""Benchmark harness tests: registry, runner, artifact schema, CLI, gating."""

import json

import pytest

from repro.bench import (
    ArtifactError,
    BenchRecord,
    compare,
    get_scenario,
    list_scenarios,
    list_suites,
    load_artifact,
    make_artifact,
    run_scenario,
    save_artifact,
    validate_artifact,
)
from repro.bench.cli import main


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_smoke_suite_has_at_least_five_scenarios():
    assert len(list_scenarios("smoke")) >= 5


def test_default_suites_registered():
    assert {"smoke", "full", "scaling"} <= set(list_suites())


def test_unknown_scenario_raises():
    with pytest.raises(KeyError):
        get_scenario("no_such/scenario")


def test_scenarios_are_reproducible():
    spec = get_scenario("grid_2d/tiny")
    assert spec.build_graph() == spec.build_graph()
    first = spec.build_measurements()
    second = spec.build_measurements()
    assert (first.voltages == second.voltages).all()


def test_scaling_suite_spans_tiers():
    tiers = {get_scenario(name).tier for name in list_scenarios("scaling")}
    assert {"tiny", "small", "medium"} <= tiers


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_records():
    return run_scenario(
        get_scenario("grid_2d/tiny"),
        repeats=2,
        baselines=("knn_baseline",),
        track_memory=True,
    )


def test_runner_emits_sgl_and_baseline_records(tiny_records):
    methods = [record.method for record in tiny_records]
    assert methods == ["sgl", "knn_baseline"]


def test_sgl_record_contents(tiny_records):
    record = tiny_records[0]
    assert record.n_nodes == 225
    assert len(record.wall_seconds) == 2
    assert all(seconds > 0 for seconds in record.wall_seconds)
    for stage in ("knn", "initial_tree", "embedding", "sensitivity"):
        assert stage in record.stage_seconds
    assert 0 < record.quality["density"] < 2.0
    assert record.quality["resistance_correlation"] > 0.5
    assert record.peak_memory_bytes > 0
    assert record.info["converged"]


def test_record_dict_roundtrip(tiny_records):
    record = tiny_records[0]
    rebuilt = BenchRecord.from_dict(json.loads(json.dumps(record.as_dict())))
    assert rebuilt == record


# ----------------------------------------------------------------------
# Artifact schema
# ----------------------------------------------------------------------
def test_artifact_roundtrip(tiny_records, tmp_path):
    artifact = make_artifact("unit", tiny_records, run_config={"repeats": 2})
    path = save_artifact(artifact, tmp_path / "BENCH_unit.json")
    loaded = load_artifact(path)
    assert loaded == artifact
    assert loaded["schema_version"] == 1
    assert len(loaded["results"]) == 2


def test_validate_rejects_malformed(tiny_records):
    artifact = make_artifact("unit", tiny_records)
    broken = json.loads(json.dumps(artifact))
    del broken["results"][0]["wall_seconds"]
    with pytest.raises(ArtifactError):
        validate_artifact(broken)
    with pytest.raises(ArtifactError):
        validate_artifact({"schema": "something-else"})


def test_compare_flags_time_regression(tiny_records):
    baseline = make_artifact("unit", tiny_records)
    slowed = json.loads(json.dumps(baseline))
    for record in slowed["results"]:
        record["wall_seconds"] = [1.3 * value for value in record["wall_seconds"]]
    assert compare(baseline, baseline).ok
    report = compare(baseline, slowed)
    assert not report.ok
    assert all(reg.kind == "time" for reg in report.regressions)
    # The reverse direction (a speed-up) must pass.
    assert compare(slowed, baseline).ok


def _synthetic_record(embedding_seconds):
    """Hand-built schema-v1 record for stage-gate tests (stable timings)."""
    return {
        "scenario": "synthetic/unit",
        "method": "sgl",
        "n_nodes": 100,
        "n_edges_true": 200,
        "n_measurements": 50,
        "wall_seconds": [2.0],
        "stage_seconds": {
            "embedding": {"seconds": embedding_seconds, "calls": 10},
            "sensitivity": {"seconds": 0.5, "calls": 10},
        },
        "quality": {"resistance_correlation": 0.9, "density": 1.0},
        "info": {},
    }


def test_compare_flags_stage_regression():
    # Total wall time is identical on both sides: only the per-stage gate
    # can see the 30 % embedding slowdown.
    baseline = make_artifact("unit", [_synthetic_record(1.0)])
    candidate = make_artifact("unit", [_synthetic_record(1.3)])
    report = compare(baseline, candidate)
    assert not report.ok
    assert [reg.kind for reg in report.regressions] == ["stage"]
    assert "embedding" in report.regressions[0].message
    # Self-compare and the speed-up direction both pass.
    assert compare(baseline, baseline).ok
    assert compare(candidate, baseline).ok


def test_compare_stage_gate_exempts_fast_stages_and_notes_new_stages():
    base = _synthetic_record(1.0)
    cand = _synthetic_record(1.0)
    # 9x slower but under min_seconds: timer noise, exempt.
    base["stage_seconds"]["knn"] = {"seconds": 0.001, "calls": 1}
    cand["stage_seconds"]["knn"] = {"seconds": 0.009, "calls": 1}
    # A stage present on one side only is a note, not a failure.
    cand["stage_seconds"]["serve"] = {"seconds": 0.2, "calls": 1}
    report = compare(make_artifact("unit", [base]), make_artifact("unit", [cand]))
    assert report.ok
    assert any("serve" in note for note in report.notes)


def test_compare_flags_quality_regression(tiny_records):
    baseline = make_artifact("unit", tiny_records)
    worse = json.loads(json.dumps(baseline))
    worse["results"][0]["quality"]["resistance_correlation"] -= 0.2
    report = compare(baseline, worse)
    assert not report.ok
    assert any(reg.kind == "quality" for reg in report.regressions)


def test_compare_treats_new_scenarios_as_notes(tiny_records):
    baseline = make_artifact("unit", tiny_records[:1])
    candidate = make_artifact("unit", tiny_records)
    report = compare(baseline, candidate)
    assert report.ok
    assert report.notes


def test_compare_treats_absent_fallback_count_as_zero(tiny_records):
    # Pre-PR 6 artifacts never recorded info.engine_fallbacks; comparing a
    # new run (which records 0) against one must not report provenance
    # drift for every record.
    baseline = make_artifact("unit", tiny_records)
    stripped = json.loads(json.dumps(baseline))
    for record in stripped["results"]:
        record["info"].pop("engine_fallbacks", None)
        record["info"].setdefault("resistance_engine", "dense")
    candidate = json.loads(json.dumps(stripped))
    for record in candidate["results"]:
        record["info"]["engine_fallbacks"] = 0
    report = compare(stripped, candidate)
    assert report.ok
    assert not any("fallbacks" in note for note in report.notes)
    # A real fallback count still surfaces as a note against the old record.
    candidate["results"][0]["info"]["engine_fallbacks"] = 3
    report = compare(stripped, candidate)
    assert any("fallbacks" in note for note in report.notes)


# ----------------------------------------------------------------------
# CLI (the acceptance-criteria flow)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def smoke_artifact_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench") / "BENCH_smoke.json"
    code = main(["run", "--suite", "smoke", "--out", str(path), "--no-memory"])
    assert code == 0
    return path


def test_cli_smoke_run_emits_valid_artifact(smoke_artifact_path):
    artifact = load_artifact(smoke_artifact_path)
    assert artifact["tag"] == "smoke"
    scenarios = {record["scenario"] for record in artifact["results"]}
    methods = {record["method"] for record in artifact["results"]}
    assert len(scenarios) >= 5
    assert "sgl" in methods
    assert "knn_baseline" in methods  # >= 1 baseline rides along
    for record in artifact["results"]:
        if record["method"] == "sgl":
            assert record["stage_seconds"], record["scenario"]
            assert "resistance_correlation" in record["quality"]


def test_cli_self_compare_exits_zero(smoke_artifact_path):
    assert main(["compare", str(smoke_artifact_path), str(smoke_artifact_path)]) == 0


def test_cli_compare_fails_on_injected_slowdown(smoke_artifact_path, tmp_path):
    artifact = json.loads(smoke_artifact_path.read_text())
    for record in artifact["results"]:
        record["wall_seconds"] = [1.25 * value for value in record["wall_seconds"]]
    slow_path = tmp_path / "BENCH_slow.json"
    slow_path.write_text(json.dumps(artifact))
    assert main(["compare", str(smoke_artifact_path), str(slow_path)]) == 1


def test_cli_list_runs(capsys):
    assert main(["list", "--suite", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "grid_2d/tiny" in out


def test_cli_rejects_unknown_baseline(tmp_path):
    code = main(
        [
            "run",
            "--scenario",
            "grid_2d/tiny",
            "--out",
            str(tmp_path / "x.json"),
            "--baselines",
            "bogus",
        ]
    )
    assert code == 2
