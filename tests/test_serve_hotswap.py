"""Tests for zero-downtime serving: re-save invalidation, registry
references, and the ``follow`` hot-swap loop."""

import asyncio
import threading

import numpy as np
import pytest

from repro.artifacts import ModelRegistry, save_result
from repro.core.sgl import learn_graph
from repro.graphs.generators import grid_2d
from repro.measurements.generator import simulate_measurements
from repro.serve import GraphService


@pytest.fixture(scope="module")
def model_a():
    data = simulate_measurements(grid_2d(7, 7), n_measurements=30, seed=0)
    return learn_graph(data, beta=0.05)


@pytest.fixture(scope="module")
def model_b():
    # Same graph family and size, different measurements and beta: a
    # genuinely different learned model (different checksum).
    data = simulate_measurements(grid_2d(7, 7), n_measurements=30, seed=7)
    return learn_graph(data, beta=0.1)


def pairs(n=32, seed=0):
    rng = np.random.default_rng(seed)
    first = rng.integers(0, 49, size=n)
    second = (first + 1 + rng.integers(0, 47, size=n)) % 49
    return np.column_stack([first, second])


class TestStaleSessionInvalidation:
    def test_resave_at_same_path_serves_the_new_model(
        self, model_a, model_b, tmp_path
    ):
        # Regression: a model re-saved at the same path used to keep
        # serving the stale cached session forever.
        path = tmp_path / "model.npz"
        save_result(model_a, path)
        service = GraphService()
        first = service.warm(path)
        assert first.checksum == service.warm(path).checksum  # cache hit

        save_result(model_b, path)
        second = service.warm(path)
        assert second.checksum != first.checksum
        assert second.graph == model_b.graph
        # The orphaned stale session is dropped, not leaked.
        assert service.stats()["sessions"]["loaded"] == 1
        assert service.stats()["metrics"]["counters"]["serve.cache.invalidations"] >= 1
        service.close()

    def test_two_paths_one_resaved_keeps_the_other(self, model_a, model_b, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        save_result(model_a, a)
        save_result(model_a, b)
        service = GraphService()
        service.warm(a)
        service.warm(b)  # same checksum: shared session
        assert service.stats()["sessions"]["loaded"] == 1

        save_result(model_b, a)
        service.warm(a)
        # b still maps to the old checksum, so the old session survives.
        assert service.stats()["sessions"]["loaded"] == 2
        assert service.warm(b).graph == model_a.graph
        service.close()

    def test_explicit_invalidate(self, model_a, tmp_path):
        path = tmp_path / "model.npz"
        save_result(model_a, path)
        service = GraphService()
        service.warm(path)
        assert service.invalidate(path)
        assert service.stats()["sessions"]["loaded"] == 0
        assert not service.invalidate(path)  # second call: nothing to drop
        service.close()


class TestRegistryReferences:
    def test_warm_by_ref_and_version_pinning(self, model_a, model_b, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        v1 = registry.publish(model_a, "grid")
        registry.publish(model_b, "grid", parent=v1)
        service = GraphService(registry=registry)
        latest = service.warm("grid@latest")
        pinned = service.warm("grid@1")
        assert latest.checksum != pinned.checksum
        assert latest.graph == model_b.graph
        assert pinned.graph == model_a.graph
        service.close()

    def test_ref_requires_registry(self, model_a, tmp_path):
        from repro.artifacts import ArtifactFormatError

        service = GraphService()
        with pytest.raises(ArtifactFormatError, match="grid@latest"):
            service.warm("grid@latest")  # treated as a (missing) path
        service.close()

    def test_follow_requires_registry(self):
        service = GraphService()
        with pytest.raises(ValueError, match="registry"):
            asyncio.run(service.follow("grid@latest"))
        service.close()

    def test_warm_by_ref_tracks_new_publishes(self, model_a, model_b, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(model_a, "grid")
        service = GraphService(registry=registry)
        assert service.warm("grid@latest").graph == model_a.graph
        # A publish from a different registry handle (another process in
        # real life): warm("@latest") must pick it up via reload.
        ModelRegistry(tmp_path / "registry").publish(model_b, "grid")
        assert service.warm("grid@latest").graph == model_b.graph
        service.close()


class TestFollowHotSwap:
    def test_follow_swaps_without_failing_inflight_queries(
        self, model_a, model_b, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "registry")
        v1 = registry.publish(model_a, "grid")
        service = GraphService(registry=registry)
        service.warm("grid@latest")
        swapped = []
        query_pairs = pairs()

        async def scenario():
            stop = asyncio.Event()
            follower = asyncio.create_task(
                service.follow(
                    "grid@latest",
                    poll_interval=0.05,
                    stop=stop,
                    on_swap=lambda session: swapped.append(session.checksum),
                )
            )
            publisher = threading.Timer(
                0.15, registry.publish, (model_b, "grid"), {"parent": v1}
            )
            publisher.start()
            failures = 0
            answered = 0
            deadline = asyncio.get_running_loop().time() + 3.0
            # The follower's first poll counts as the initial swap (to v1);
            # the one we are waiting for is the hot-swap to v2.
            while len(swapped) < 2 and asyncio.get_running_loop().time() < deadline:
                try:
                    results = await asyncio.gather(
                        *(
                            service.query("grid@latest", "resistance", tuple(pair))
                            for pair in query_pairs
                        )
                    )
                    assert np.all(np.asarray(results) >= 0)
                    answered += len(results)
                except Exception:
                    failures += 1
                await asyncio.sleep(0.01)
            # Drain a few more queries after the swap on the new session.
            for pair in query_pairs[:5]:
                await service.query("grid@latest", "resistance", tuple(pair))
                answered += 1
            stop.set()
            await follower
            publisher.join()
            return failures, answered

        failures, answered = asyncio.run(scenario())
        assert failures == 0
        assert answered >= 5
        assert swapped == [
            registry.get("grid@1").checksum,
            registry.get("grid@2").checksum,
        ]
        assert service.stats()["metrics"]["counters"]["serve.follow.swaps"] == 2
        service.close()

    def test_follow_stop_event_terminates_cleanly(self, model_a, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(model_a, "grid")
        service = GraphService(registry=registry)

        async def scenario():
            stop = asyncio.Event()
            task = asyncio.create_task(
                service.follow("grid@latest", poll_interval=0.05, stop=stop)
            )
            await asyncio.sleep(0.2)
            stop.set()
            await asyncio.wait_for(task, timeout=2.0)

        asyncio.run(scenario())
        assert service.stats()["metrics"]["counters"].get("serve.follow.errors", 0) == 0
        service.close()

    def test_follow_survives_transient_resolve_errors(self, model_a, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        service = GraphService(registry=registry)

        async def scenario():
            stop = asyncio.Event()
            # "grid" does not exist yet: the follower must retry, not die.
            task = asyncio.create_task(
                service.follow("grid@latest", poll_interval=0.05, stop=stop)
            )
            await asyncio.sleep(0.15)
            registry.publish(model_a, "grid")
            deadline = asyncio.get_running_loop().time() + 3.0
            while asyncio.get_running_loop().time() < deadline:
                if service.stats()["metrics"]["counters"].get("serve.follow.swaps", 0):
                    break
                await asyncio.sleep(0.05)
            stop.set()
            await asyncio.wait_for(task, timeout=2.0)

        asyncio.run(scenario())
        stats = service.stats()["metrics"]["counters"]
        assert stats.get("serve.follow.errors", 0) >= 1
        assert stats.get("serve.follow.swaps", 0) == 1
        service.close()


class TestMmapServing:
    def test_service_answers_from_mmapped_artifact(self, model_a, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(model_a, "grid", compress=False)
        service = GraphService(registry=registry, mmap_mode="r")
        session = service.warm("grid@latest")

        async def run():
            return await asyncio.gather(
                *(
                    service.query("grid@latest", "resistance", tuple(pair))
                    for pair in pairs(8)
                )
            )

        assert np.all(np.asarray(asyncio.run(run())) > 0)
        assert session.graph == model_a.graph
        service.close()
