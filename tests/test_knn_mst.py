"""Unit tests for kNN graph construction and spanning-tree extraction."""

import numpy as np
import pytest

from repro.knn import knn_graph, maximum_spanning_tree, minimum_spanning_tree


@pytest.fixture(scope="module")
def features():
    rng = np.random.default_rng(42)
    return rng.standard_normal((120, 8))


def test_knn_graph_is_connected(features):
    graph = knn_graph(features, 5, ensure_connected=True)
    assert graph.n_nodes == features.shape[0]
    assert graph.is_connected()


def test_knn_graph_positive_sgl_weights(features):
    graph = knn_graph(features, 5, weight_scheme="sgl")
    assert graph.n_edges > 0
    assert np.all(graph.weights > 0)


def test_knn_graph_degree_bounds(features):
    k = 4
    graph = knn_graph(features, k, ensure_connected=False)
    adjacency = graph.adjacency()
    degrees = np.diff(adjacency.indptr)
    # Undirected union of directed kNN lists: every node keeps at least its
    # own k neighbours (popular "hub" nodes may collect many more in-links),
    # and the union has at most N*k distinct edges in total.
    assert degrees.min() >= k
    assert graph.n_edges <= graph.n_nodes * k


def test_knn_graph_respects_k_cap(features):
    n = features.shape[0]
    graph = knn_graph(features, n - 1, ensure_connected=False)
    # k = N-1 yields the complete graph.
    assert graph.n_edges == n * (n - 1) // 2


def test_knn_edges_trims_duplicated_points_to_k():
    # Duplicated rows mean some nodes do not match themselves in the k+1
    # query; the vectorised trim must still return exactly k neighbours per
    # source, closest first.
    rng = np.random.default_rng(3)
    base = rng.standard_normal((30, 5))
    features = np.vstack([base, base[:7]])  # 7 exact duplicates
    k = 4
    from repro.knn import knn_edges

    edges, dists = knn_edges(features, k)
    counts = np.bincount(edges[:, 0], minlength=features.shape[0])
    assert (counts == k).all()
    assert edges.shape[0] == features.shape[0] * k
    # Per-source distances are ascending (trim keeps the nearest k).
    order = np.lexsort((dists, edges[:, 0]))
    assert np.array_equal(order, np.arange(order.size))


def test_maximum_spanning_tree_structure(features):
    graph = knn_graph(features, 5, ensure_connected=True)
    tree = maximum_spanning_tree(graph)
    assert tree.n_nodes == graph.n_nodes
    assert tree.n_edges == graph.n_nodes - 1
    assert tree.is_connected()
    # Tree edges are a subset of the source graph's edges with equal weights.
    for (s, t), w in zip(tree.edges, tree.weights):
        assert graph.has_edge(int(s), int(t))
        assert graph.edge_weight(int(s), int(t)) == pytest.approx(w)


def test_maximum_vs_minimum_spanning_tree(features):
    graph = knn_graph(features, 5, ensure_connected=True)
    maximum = maximum_spanning_tree(graph)
    minimum = minimum_spanning_tree(graph)
    assert maximum.total_weight >= minimum.total_weight
    assert minimum.n_edges == graph.n_nodes - 1
