"""Tests for WeightedGraph edge queries (binary-search fast paths).

PR 3 replaced the O(|E|) per-edge scans in ``edge_weight`` / ``has_edge``
with the canonical-key binary search that ``edge_weights`` already used, and
added the vectorised ``has_edges`` bulk membership test used by the SGL
candidate-pool construction.
"""

import numpy as np
import pytest

from repro.graphs.graph import WeightedGraph


@pytest.fixture()
def triangle():
    return WeightedGraph(4, [0, 1, 0], [1, 2, 2], [1.0, 2.0, 3.0])


def test_has_edge_both_orientations(triangle):
    assert triangle.has_edge(0, 1)
    assert triangle.has_edge(1, 0)
    assert not triangle.has_edge(1, 3)
    assert not triangle.has_edge(2, 2)  # self loop never present
    assert not triangle.has_edge(0, 99)  # out of range, not an error


def test_edge_weight_lookup_and_missing(triangle):
    assert triangle.edge_weight(2, 0) == 3.0
    assert triangle.edge_weight(1, 2) == 2.0
    with pytest.raises(KeyError):
        triangle.edge_weight(1, 3)
    with pytest.raises(KeyError):
        triangle.edge_weight(3, 3)


def test_has_edges_vectorised(triangle):
    queries = np.array([[1, 0], [2, 1], [3, 1], [2, 2], [0, 2]])
    expected = np.array([True, True, False, False, True])
    assert np.array_equal(triangle.has_edges(queries), expected)
    assert triangle.has_edges(np.empty((0, 2), dtype=np.int64)).shape == (0,)


def test_point_queries_agree_with_bulk_on_random_graph():
    rng = np.random.default_rng(0)
    n = 60
    rows = rng.integers(0, n, size=300)
    cols = rng.integers(0, n, size=300)
    keep = rows != cols
    graph = WeightedGraph(n, rows[keep], cols[keep], rng.random(keep.sum()) + 0.1)
    # Every stored edge is found with the stored weight, both orientations.
    weights = graph.edge_weights(graph.edges[:, ::-1])
    for (s, t), w in zip(graph.edges[:25], weights[:25]):
        assert graph.has_edge(int(t), int(s))
        assert graph.edge_weight(int(t), int(s)) == w
    # Random non-edges are consistently rejected.
    probes = np.column_stack(
        [rng.integers(0, n, size=200), rng.integers(0, n, size=200)]
    )
    membership = graph.has_edges(probes)
    for (s, t), present in zip(probes[:40], membership[:40]):
        assert graph.has_edge(int(s), int(t)) == bool(present)


def test_empty_graph_queries():
    empty = WeightedGraph(5)
    assert not empty.has_edge(0, 1)
    assert not empty.has_edges([(0, 1), (2, 3)]).any()
    with pytest.raises(KeyError):
        empty.edge_weight(0, 1)
