"""Deterministic-seed tests for the navigable-small-world kNN index.

``repro.knn.nsw`` backs the opt-in ``"nsw"`` search backend; these tests pin
its contract: determinism per seed, scipy-compatible query shapes, usable
recall against exact kNN on clustered data, and its error paths.
"""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.knn.nsw import NSWIndex


@pytest.fixture(scope="module")
def point_cloud():
    rng = np.random.default_rng(0)
    centers = rng.uniform(-4.0, 4.0, size=(4, 3))
    points = centers[rng.integers(0, 4, size=300)] + 0.3 * rng.standard_normal((300, 3))
    return points


def test_build_and_query_shapes(point_cloud):
    index = NSWIndex(n_links=8, seed=0).build(point_cloud)
    assert index.n_points == 300
    distances, indices = index.query(point_cloud[:17], k=5)
    assert distances.shape == (17, 5) and indices.shape == (17, 5)
    assert indices.dtype == np.int64
    # Distances are sorted ascending per row.
    assert bool((np.diff(distances, axis=1) >= 0).all())


def test_same_seed_gives_identical_results(point_cloud):
    a = NSWIndex(n_links=6, seed=42).build(point_cloud)
    b = NSWIndex(n_links=6, seed=42).build(point_cloud)
    da, ia = a.query(point_cloud, k=4)
    db, ib = b.query(point_cloud, k=4)
    np.testing.assert_array_equal(ia, ib)
    np.testing.assert_array_equal(da, db)


def test_different_seeds_build_different_graphs(point_cloud):
    a = NSWIndex(n_links=6, seed=0).build(point_cloud)
    b = NSWIndex(n_links=6, seed=1).build(point_cloud)
    assert a._neighbors != b._neighbors


def test_recall_against_exact_knn(point_cloud):
    index = NSWIndex(n_links=10, ef_construction=48, ef_search=48, seed=0)
    index.build(point_cloud)
    recall = index.recall_against_exact(point_cloud, k=5)
    assert recall >= 0.9


def test_self_query_finds_self_first(point_cloud):
    index = NSWIndex(n_links=10, ef_construction=48, ef_search=64, seed=0)
    index.build(point_cloud)
    _, indices = index.query(point_cloud[:25], k=1)
    exact = cKDTree(point_cloud).query(point_cloud[:25], k=1)[1]
    # At a generous beam width the greedy search finds (nearly) every point
    # itself; the approximate index may still miss the odd cluster outlier.
    assert (indices.ravel() == exact).mean() >= 0.9


def test_k_is_clipped_to_index_size():
    points = np.random.default_rng(1).standard_normal((5, 2))
    index = NSWIndex(n_links=2, seed=0).build(points)
    distances, indices = index.query(points, k=10)
    assert distances.shape == (5, 5)
    assert set(indices.ravel().tolist()) <= set(range(5))


def test_validation_errors():
    with pytest.raises(ValueError):
        NSWIndex(n_links=0)
    with pytest.raises(ValueError):
        NSWIndex(ef_construction=0)
    with pytest.raises(ValueError):
        NSWIndex().build(np.zeros(3))
    with pytest.raises(RuntimeError):
        NSWIndex().query(np.zeros((1, 2)), k=1)
