"""Tests for repro.stream: streams, drift decisions, the online learner."""

import numpy as np
import pytest

from repro.artifacts import ModelRegistry, load_result
from repro.core.sgl import SGLearner
from repro.graphs.generators import grid_2d
from repro.measurements.generator import simulate_measurements
from repro.obs.session import ObsSession
from repro.stream import (
    STREAM_MODES,
    DriftDetector,
    MeasurementStream,
    OnlineSGLearner,
)


def small_stream(mode="additive", **kwargs):
    kwargs.setdefault("seed", 0)
    return MeasurementStream(grid_2d(6, 6), batch_size=10, mode=mode, **kwargs)


class TestMeasurementStream:
    def test_additive_truth_is_frozen(self):
        stream = small_stream("additive")
        for batch in stream.batches(3):
            assert batch.voltages.shape == (36, 10)
            assert batch.currents is not None
        assert stream.truth is stream.initial_truth
        assert stream.n_batches == 3

    def test_drift_perturbs_every_batch(self):
        stream = small_stream("drift", drift_rate=0.05)
        weights = [stream.truth.weights.copy()]
        for _ in stream.batches(2):
            weights.append(stream.truth.weights.copy())
        assert not np.allclose(weights[0], weights[1])
        assert not np.allclose(weights[1], weights[2])
        # Drift perturbs multiplicatively: topology never changes.
        assert stream.truth.n_edges == stream.initial_truth.n_edges

    def test_shift_jumps_exactly_once(self):
        stream = small_stream("shift", drift_rate=0.05, shift_at=2)
        weights = [stream.truth.weights.copy()]
        for _ in stream.batches(4):
            weights.append(stream.truth.weights.copy())
        assert np.array_equal(weights[0], weights[1])
        assert np.array_equal(weights[1], weights[2])
        assert not np.allclose(weights[2], weights[3])  # the jump
        assert np.array_equal(weights[3], weights[4])

    def test_batches_solve_the_current_truth(self):
        stream = small_stream("drift", drift_rate=0.1)
        batch = stream.next_batch()
        residual = stream.truth.laplacian() @ batch.voltages - batch.currents
        assert np.linalg.norm(residual) < 1e-6 * np.linalg.norm(batch.currents)

    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            small_stream("sideways")
        with pytest.raises(ValueError, match="batch_size"):
            MeasurementStream(grid_2d(4, 4), batch_size=0)
        with pytest.raises(ValueError, match="drift_rate"):
            small_stream("drift", drift_rate=-1.0)
        assert STREAM_MODES == ("additive", "drift", "shift")


class TestDriftDetector:
    def reference(self, mode="additive", n=40, **kwargs):
        stream = small_stream(mode, **kwargs)
        columns = [stream.next_batch() for _ in range(n // stream.batch_size)]
        voltages = np.concatenate([b.voltages for b in columns], axis=1)
        currents = np.concatenate([b.currents for b in columns], axis=1)
        from repro.measurements.generator import MeasurementSet

        return stream, MeasurementSet(voltages, currents)

    def test_stable_on_fresh_batches_of_the_same_truth(self):
        stream, window = self.reference("additive")
        result = SGLearner(beta=0.05, max_iterations=30).fit(window)
        detector = DriftDetector()
        detector.reset(window, result.graph)
        for _ in range(3):
            decision = detector.assess(stream.next_batch())
            assert not decision.refit and decision.reason == "stable"
            assert decision.residual_ratio == pytest.approx(1.0, abs=0.35)
        assert detector.updates_since_refit == 3

    def test_residual_fires_on_regime_shift(self):
        stream, window = self.reference(
            "shift", drift_rate=0.1, shift_at=4, shift_scale=10.0
        )
        result = SGLearner(beta=0.05, max_iterations=30).fit(window)
        detector = DriftDetector()
        detector.reset(window, result.graph)
        decision = detector.assess(stream.next_batch())  # the jump batch
        assert decision.refit and decision.reason == "residual"
        assert decision.residual_ratio > detector.residual_threshold

    def test_energy_ratio_fires_on_conductance_rescale(self):
        stream, window = self.reference("additive")
        result = SGLearner(beta=0.05, max_iterations=30).fit(window)
        detector = DriftDetector()
        detector.reset(window, result.graph)
        batch = stream.next_batch()
        # A global 10x conductance drop scales voltages 10x: residual and
        # energy both move, and the *energy* trigger must catch it even if
        # the batch carries no currents (registry-only voltage streams).
        decision = detector.assess(batch.voltages * 10.0)
        assert decision.refit
        assert decision.reason in ("residual", "energy")
        assert decision.energy_ratio > 10.0

    def test_voltage_only_fallback_has_no_residual(self):
        _, window = self.reference("additive")
        detector = DriftDetector()
        detector.reset(window.voltages)  # no graph, no currents
        decision = detector.assess(window.voltages[:, :8])
        assert np.isnan(decision.residual_ratio)
        assert not decision.refit

    def test_cadence_forces_periodic_refit(self):
        _, window = self.reference("additive")
        detector = DriftDetector(max_updates_between_refits=2)
        detector.reset(window.voltages)
        batch = window.voltages[:, :8]
        assert not detector.assess(batch).refit
        assert not detector.assess(batch).refit
        decision = detector.assess(batch)
        assert decision.refit and decision.reason == "cadence"

    def test_degradation_latch(self):
        _, window = self.reference("additive")
        detector = DriftDetector()
        detector.reset(window.voltages)
        detector.flag_degradation()
        decision = detector.assess(window.voltages[:, :8])
        assert decision.refit and decision.reason == "degradation"
        detector.reset(window.voltages)  # reset clears the latch
        assert not detector.assess(window.voltages[:, :8]).refit

    def test_as_dict_round_trips_through_json(self):
        import json

        _, window = self.reference("additive")
        detector = DriftDetector()
        detector.reset(window.voltages)
        payload = detector.assess(window.voltages[:, :8]).as_dict()
        decoded = json.loads(json.dumps(payload))
        assert decoded["reason"] == "stable"
        assert set(decoded) == {
            "refit", "reason", "residual_ratio", "novelty",
            "energy_ratio", "updates_since_refit",
        }

    def test_constructor_validation(self):
        for kwargs in (
            {"residual_threshold": 1.0},
            {"novelty_margin": 0.0},
            {"energy_threshold": 0.5},
            {"subspace_rank": 0},
            {"max_updates_between_refits": -1},
        ):
            with pytest.raises(ValueError):
                DriftDetector(**kwargs)
        with pytest.raises(RuntimeError, match="reset"):
            DriftDetector().assess(np.zeros((4, 2)))


class TestOnlineSGLearner:
    def make_learner(self, tmp_path=None, **kwargs):
        registry = None
        if tmp_path is not None:
            registry = ModelRegistry(tmp_path / "registry")
        kwargs.setdefault("beta", 0.05)
        kwargs.setdefault("max_iterations", 30)
        return OnlineSGLearner(registry=registry, model_name="grid", **kwargs), registry

    def test_initial_fit_matches_batch_learner(self):
        data = simulate_measurements(grid_2d(6, 6), n_measurements=30, seed=0)
        learner, _ = self.make_learner()
        first = learner.fit(data)
        reference = SGLearner(beta=0.05, max_iterations=30).fit(data)
        assert first.mode == "initial" and first.index == 0
        assert learner.graph == reference.graph
        assert learner.window.n_measurements == 30

    def test_updates_publish_lineage_chained_snapshots(self, tmp_path):
        stream = small_stream("additive")
        learner, registry = self.make_learner(tmp_path)
        learner.fit(stream.next_batch())
        for batch in stream.batches(3):
            update = learner.update(batch)
            assert update.version is not None
        chain = registry.lineage("grid@latest")
        assert [v.version for v in chain] == [4, 3, 2, 1]
        assert learner.last_version.version == 4
        loaded = load_result(registry.resolve("grid@latest"))
        assert loaded.graph == learner.graph
        meta = registry.get("grid@latest").metadata["stream"]
        assert meta["mode"] in ("incremental", "refit")
        assert "decision" in meta

    def test_incremental_update_only_adds_edges(self):
        stream = small_stream("additive")
        learner, _ = self.make_learner()
        learner.fit(stream.next_batch())
        before = learner.graph.n_edges
        update = None
        for batch in stream.batches(3):
            update = learner.update(batch)
            if update.mode == "incremental":
                break
        assert update is not None and update.mode == "incremental"
        assert learner.graph.n_edges >= before
        assert update.n_edges_added >= 0
        assert update.scaling_factor > 0

    def test_window_is_bounded(self):
        stream = small_stream("additive")
        learner, _ = self.make_learner(max_window=25)
        learner.fit(stream.next_batch())
        for batch in stream.batches(3):
            learner.update(batch)
        assert learner.window.n_measurements == 25

    def test_refit_on_shift_recovers_drift_reset(self):
        stream = small_stream("shift", drift_rate=0.15, shift_at=1, shift_scale=10.0)
        learner, _ = self.make_learner()
        learner.fit(stream.next_batch())
        updates = [learner.update(batch) for batch in stream.batches(3)]
        modes = [u.mode for u in updates]
        assert "refit" in modes
        refit_index = modes.index("refit")
        assert updates[refit_index].decision.reason in ("residual", "energy")

    def test_updates_emit_spans(self):
        stream = small_stream("additive")
        learner, _ = self.make_learner()
        with ObsSession() as obs:
            learner.fit(stream.next_batch())
            learner.update(stream.next_batch())
        spans = obs.tracer.spans()
        names = [s.name for s in spans]
        assert names.count("stream.fit") == 1
        assert names.count("stream.update") == 1
        assert "drift_check" in names
        update_span = next(s for s in spans if s.name == "stream.update")
        assert update_span.attributes["mode"] in ("incremental", "refit")
        assert "n_new" in update_span.attributes

    def test_update_timings_cover_the_stream_stages(self):
        stream = small_stream("additive")
        learner, _ = self.make_learner()
        learner.fit(stream.next_batch())
        update = learner.update(stream.next_batch())
        stages = set(update.timings.stages)
        assert "drift_check" in stages
        if update.mode == "incremental":
            assert "edge_scaling" in stages

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="warm-capable"):
            OnlineSGLearner(embedding_engine="stateless")
        with pytest.raises(ValueError, match="max_window"):
            OnlineSGLearner(max_window=0)
        with pytest.raises(ValueError, match="incremental_iterations"):
            OnlineSGLearner(incremental_iterations=0)
        from repro.core.config import SGLConfig

        with pytest.raises(ValueError, match="not both"):
            OnlineSGLearner(SGLConfig(), beta=0.1)

    def test_update_before_fit_rejected(self):
        learner, _ = self.make_learner()
        with pytest.raises(RuntimeError, match="fit"):
            learner.update(small_stream().next_batch())
        with pytest.raises(RuntimeError, match="fit"):
            learner.graph
