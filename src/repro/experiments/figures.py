"""Figure drivers: data series reproducing the paper's evaluation (Sec. III).

Every driver returns a structured result object (arrays and scalars, never
plots), so callers can render them with matplotlib, feed them to the
reporting helpers of :mod:`repro.experiments.reporting`, or assert on them in
tests.  Drivers accept an :class:`~repro.experiments.workloads.ExperimentWorkload`
so the expensive paper-scale runs and the quick CI-scale runs share one code
path; when omitted, each driver builds the paper's default workload for its
figure at ``small`` scale.

``fig11_runtime_scalability`` delegates to the benchmark harness
(:mod:`repro.bench`), which owns timed execution, per-stage counters and the
scenario registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.knn_baseline import scaled_knn_baseline
from repro.baselines.kron import kron_reduction
from repro.bench.registry import get_scenario, list_scenarios
from repro.bench.runner import BenchRecord, run_suite
from repro.core.objective import graphical_lasso_objective
from repro.core.sgl import SGLearner, SGLResult
from repro.experiments.workloads import ExperimentWorkload, default_workload
from repro.graphs.graph import WeightedGraph
from repro.measurements.reduction import subset_measurements
from repro.metrics.resistance import (
    ResistanceComparison,
    compare_effective_resistances,
    resistance_correlation,
)

__all__ = [
    "Fig01Result",
    "Fig02Result",
    "Fig07Result",
    "Fig08Result",
    "Fig09Result",
    "Fig10Result",
    "Fig11Result",
    "GraphLearningResult",
    "fig01_convergence",
    "fig02_objective_comparison",
    "fig03_knn_comparison",
    "fig04_airfoil",
    "fig05_crack",
    "fig06_g2_circuit",
    "fig07_resistance_correlation",
    "fig08_reduced_networks",
    "fig09_noise_robustness",
    "fig10_sample_complexity",
    "fig11_runtime_scalability",
]


# ----------------------------------------------------------------------
# Result containers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GraphLearningResult:
    """SGL vs. the scaled-kNN comparator on one test case (Figs. 3-6)."""

    workload: str
    truth: WeightedGraph
    sgl: SGLResult
    baseline_graph: WeightedGraph
    sgl_correlation: float
    baseline_correlation: float

    @property
    def sgl_density(self) -> float:
        """Density of the SGL-learned graph (paper: slightly above 1)."""
        return self.sgl.graph.density

    @property
    def baseline_density(self) -> float:
        """Density of the kNN comparator (paper: near 2.9)."""
        return self.baseline_graph.density


@dataclass(frozen=True)
class Fig01Result:
    """Convergence of the maximum edge sensitivity (Fig. 1)."""

    workload: str
    iterations: np.ndarray
    max_sensitivities: np.ndarray
    n_edges: np.ndarray
    converged: bool


@dataclass(frozen=True)
class Fig02Result:
    """Graphical-Lasso objective along the SGL iterations vs. kNN (Fig. 2)."""

    workload: str
    iterations: np.ndarray
    sgl_objectives: np.ndarray
    knn_objective: float


@dataclass(frozen=True)
class Fig07Result:
    """Effective-resistance scatter of learned vs. original graphs (Fig. 7)."""

    workload: str
    comparison: ResistanceComparison

    @property
    def correlation(self) -> float:
        """Pearson correlation of the two resistance series."""
        return self.comparison.correlation


@dataclass(frozen=True)
class Fig08Result:
    """Reduced-network learning vs. Kron reduction (Fig. 8)."""

    workload: str
    n_original_nodes: int
    kept_nodes: np.ndarray
    learned: SGLResult
    kron_graph: WeightedGraph
    correlation_vs_kron: float

    @property
    def size_reduction(self) -> float:
        """Original-to-reduced node-count ratio (the paper's 5x / 10x)."""
        if self.kept_nodes.size == 0:
            return float("inf")
        return self.n_original_nodes / self.kept_nodes.size


@dataclass(frozen=True)
class Fig09Result:
    """Noise robustness: quality vs. multiplicative noise level (Fig. 9)."""

    workload: str
    noise_levels: np.ndarray
    correlations: np.ndarray
    densities: np.ndarray


@dataclass(frozen=True)
class Fig10Result:
    """Sample complexity: quality vs. measurement count (Fig. 10)."""

    workload: str
    measurement_counts: np.ndarray
    correlations: np.ndarray
    densities: np.ndarray


@dataclass(frozen=True)
class Fig11Result:
    """Runtime scalability across graph sizes (Fig. 11), via repro.bench."""

    scenarios: tuple[str, ...]
    n_nodes: np.ndarray
    seconds: np.ndarray
    records: tuple[BenchRecord, ...] = field(default=())

    def stage_seconds(self, stage: str) -> np.ndarray:
        """Per-scenario seconds spent in one pipeline stage."""
        return np.array(
            [
                rec.stage_seconds.get(stage, {}).get("seconds", 0.0)
                for rec in self.records
            ],
            dtype=np.float64,
        )


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def _resolve(workload: ExperimentWorkload | None, case: str) -> ExperimentWorkload:
    return workload if workload is not None else default_workload(case)


def fig01_convergence(workload: ExperimentWorkload | None = None) -> Fig01Result:
    """Fig. 1: maximum edge sensitivity per densification iteration."""
    workload = _resolve(workload, "2d_mesh")
    result = SGLearner(workload.config).fit(workload.measurements())
    history = result.history
    return Fig01Result(
        workload=workload.name,
        iterations=history.iterations,
        max_sensitivities=history.max_sensitivities,
        n_edges=np.array([r.n_edges for r in history], dtype=np.int64),
        converged=result.converged,
    )


def fig02_objective_comparison(
    workload: ExperimentWorkload | None = None,
) -> Fig02Result:
    """Fig. 2: graphical-Lasso objective of SGL iterates vs. the kNN graph."""
    workload = _resolve(workload, "2d_mesh")
    workload = workload.with_config(track_objective=True)
    data = workload.measurements()
    result = SGLearner(workload.config).fit(data)
    knn = scaled_knn_baseline(data)
    knn_objective = graphical_lasso_objective(
        knn,
        data.voltages,
        sigma_sq=workload.config.sigma_sq,
        n_eigenvalues=workload.config.objective_eigenvalues,
        seed=workload.config.seed,
    )
    objectives = np.array(
        [r.objective if r.objective is not None else np.nan for r in result.history],
        dtype=np.float64,
    )
    return Fig02Result(
        workload=workload.name,
        iterations=result.history.iterations,
        sgl_objectives=objectives,
        knn_objective=float(knn_objective),
    )


def _learn_case(workload: ExperimentWorkload, *, n_pairs: int = 200) -> GraphLearningResult:
    """Shared driver of the per-graph studies (Figs. 3-6)."""
    data = workload.measurements()
    result = SGLearner(workload.config).fit(data)
    baseline = scaled_knn_baseline(data)
    sgl_corr = resistance_correlation(
        workload.graph, result.graph, n_pairs=n_pairs, seed=workload.seed
    )
    baseline_corr = resistance_correlation(
        workload.graph, baseline, n_pairs=n_pairs, seed=workload.seed
    )
    return GraphLearningResult(
        workload=workload.name,
        truth=workload.graph,
        sgl=result,
        baseline_graph=baseline,
        sgl_correlation=sgl_corr,
        baseline_correlation=baseline_corr,
    )


def fig03_knn_comparison(
    workload: ExperimentWorkload | None = None,
) -> GraphLearningResult:
    """Fig. 3: SGL vs. the 5NN comparator on the 2-D mesh."""
    return _learn_case(_resolve(workload, "2d_mesh"))


def fig04_airfoil(workload: ExperimentWorkload | None = None) -> GraphLearningResult:
    """Fig. 4: the airfoil FEM case."""
    return _learn_case(_resolve(workload, "airfoil"))


def fig05_crack(workload: ExperimentWorkload | None = None) -> GraphLearningResult:
    """Fig. 5: the cracked-plate FEM case."""
    return _learn_case(_resolve(workload, "crack"))


def fig06_g2_circuit(workload: ExperimentWorkload | None = None) -> GraphLearningResult:
    """Fig. 6: the irregular circuit-grid case."""
    return _learn_case(_resolve(workload, "g2_circuit"))


def fig07_resistance_correlation(
    workload: ExperimentWorkload | None = None,
    *,
    n_pairs: int = 200,
) -> Fig07Result:
    """Fig. 7: effective resistances of learned vs. original node pairs."""
    workload = _resolve(workload, "2d_mesh")
    data = workload.measurements()
    result = SGLearner(workload.config).fit(data)
    comparison = compare_effective_resistances(
        workload.graph, result.graph, n_pairs=n_pairs, seed=workload.seed
    )
    return Fig07Result(workload=workload.name, comparison=comparison)


def fig08_reduced_networks(
    workload: ExperimentWorkload | None = None,
    *,
    fraction: float = 0.2,
) -> Fig08Result:
    """Fig. 8: learn a reduced network from a voltage subset, vs. Kron.

    A random ``fraction`` of the nodes keeps its voltage rows (currents are
    dropped, as in the paper); SGL learns a graph over that subset, and the
    result is scored against the Kron reduction of the ground truth onto the
    same nodes via effective-resistance correlation.
    """
    workload = _resolve(workload, "2d_mesh")
    data = workload.measurements()
    reduced, kept = subset_measurements(data, fraction, seed=workload.seed)
    beta = min(1.0, max(1e-3, 10.0 / max(kept.size, 1)))
    config = workload.with_config(beta=beta, edge_scaling=False).config
    learned = SGLearner(config).fit(reduced)
    kron = kron_reduction(workload.graph, kept)
    corr = resistance_correlation(
        kron, learned.graph, n_pairs=min(200, kept.size * 2), seed=workload.seed
    )
    return Fig08Result(
        workload=workload.name,
        n_original_nodes=workload.graph.n_nodes,
        kept_nodes=kept,
        learned=learned,
        kron_graph=kron,
        correlation_vs_kron=corr,
    )


def fig09_noise_robustness(
    workload: ExperimentWorkload | None = None,
    *,
    noise_levels: tuple[float, ...] = (0.0, 0.01, 0.05, 0.1),
    n_pairs: int = 200,
) -> Fig09Result:
    """Fig. 9: learned-graph quality under multiplicative voltage noise."""
    workload = _resolve(workload, "2d_mesh")
    correlations, densities = [], []
    for level in noise_levels:
        data = workload.measurements(noise_level=level)
        result = SGLearner(workload.config).fit(data)
        correlations.append(
            resistance_correlation(
                workload.graph, result.graph, n_pairs=n_pairs, seed=workload.seed
            )
        )
        densities.append(result.graph.density)
    return Fig09Result(
        workload=workload.name,
        noise_levels=np.asarray(noise_levels, dtype=np.float64),
        correlations=np.asarray(correlations, dtype=np.float64),
        densities=np.asarray(densities, dtype=np.float64),
    )


def fig10_sample_complexity(
    workload: ExperimentWorkload | None = None,
    *,
    measurement_counts: tuple[int, ...] = (10, 25, 50, 100),
    n_pairs: int = 200,
) -> Fig10Result:
    """Fig. 10: learned-graph quality vs. the number of measurements."""
    workload = _resolve(workload, "2d_mesh")
    correlations, densities = [], []
    for count in measurement_counts:
        data = workload.with_measurements(count).measurements()
        result = SGLearner(workload.config).fit(data)
        correlations.append(
            resistance_correlation(
                workload.graph, result.graph, n_pairs=n_pairs, seed=workload.seed
            )
        )
        densities.append(result.graph.density)
    return Fig10Result(
        workload=workload.name,
        measurement_counts=np.asarray(measurement_counts, dtype=np.int64),
        correlations=np.asarray(correlations, dtype=np.float64),
        densities=np.asarray(densities, dtype=np.float64),
    )


def fig11_runtime_scalability(
    scenarios: tuple[str, ...] | list[str] | None = None,
    *,
    suite: str = "scaling",
    repeats: int = 1,
    warmup: int = 0,
) -> Fig11Result:
    """Fig. 11: SGL runtime vs. graph size, via the benchmark harness.

    Parameters
    ----------
    scenarios:
        Explicit scenario names from :func:`repro.bench.list_scenarios`;
        defaults to the registry's ``scaling`` suite (two graph families
        swept across scale tiers).
    suite:
        Suite to sweep when ``scenarios`` is not given.
    repeats, warmup:
        Forwarded to :func:`repro.bench.runner.run_suite`.
    """
    names = list(scenarios) if scenarios is not None else list_scenarios(suite)
    specs = [get_scenario(name) for name in names]
    records = run_suite(specs, warmup=warmup, repeats=repeats)
    sgl_records = [rec for rec in records if rec.method == "sgl"]
    order = np.argsort([rec.n_nodes for rec in sgl_records])
    sgl_records = [sgl_records[i] for i in order]
    return Fig11Result(
        scenarios=tuple(rec.scenario for rec in sgl_records),
        n_nodes=np.array([rec.n_nodes for rec in sgl_records], dtype=np.int64),
        seconds=np.array([rec.mean_seconds for rec in sgl_records], dtype=np.float64),
        records=tuple(sgl_records),
    )
