"""Workload definitions for the paper-reproduction experiments.

A workload bundles the ground-truth test case, the measurement count and the
SGL configuration used for one experiment.  The paper's settings (Sec. III-A)
are: M = 50 measurements by default (100 for the per-graph studies), k = 5,
r = 5, beta = 1e-3 and tol = 1e-12.

Because the reproduction's default graphs are smaller than the paper's (a few
thousand nodes instead of 10k-150k; see DESIGN.md), the default edge-sampling
ratio ``beta`` is raised so roughly the same *number of edges per iteration*
is added and runs converge in a comparable number of iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.config import SGLConfig
from repro.graphs.graph import WeightedGraph
from repro.graphs.io.suite import get_test_case
from repro.measurements.generator import MeasurementSet, simulate_measurements

__all__ = ["ExperimentWorkload", "default_workload"]


@dataclass(frozen=True)
class ExperimentWorkload:
    """One experiment's inputs: ground truth, measurements, SGL parameters."""

    name: str
    graph: WeightedGraph
    n_measurements: int = 50
    seed: int = 0
    config: SGLConfig = field(default_factory=SGLConfig)

    def measurements(self, *, noise_level: float = 0.0) -> MeasurementSet:
        """Simulate the workload's measurement set (optionally noisy)."""
        from repro.measurements.noise import add_measurement_noise

        data = simulate_measurements(self.graph, self.n_measurements, seed=self.seed)
        if noise_level > 0:
            data = add_measurement_noise(data, noise_level, seed=self.seed + 1)
        return data

    def with_config(self, **changes) -> "ExperimentWorkload":
        """Return a copy with SGL configuration fields replaced."""
        return replace(self, config=replace(self.config, **changes))

    def with_measurements(self, n_measurements: int) -> "ExperimentWorkload":
        """Return a copy with a different measurement count."""
        return replace(self, n_measurements=n_measurements)


def default_workload(
    test_case: str,
    *,
    scale: str = "small",
    n_measurements: int = 50,
    seed: int = 0,
    knn_backend: str | None = None,
    **config_overrides,
) -> ExperimentWorkload:
    """Build the default workload for one of the paper's test cases.

    Parameters
    ----------
    test_case:
        Name from :func:`repro.graphs.io.list_test_cases` (e.g. ``"airfoil"``).
    scale:
        Generator scale (``"tiny"``, ``"small"``, ``"medium"``, ``"paper"``).
    n_measurements:
        Number of (voltage, current) measurement pairs.
    knn_backend:
        Step-1 search backend (``"auto"``, ``"brute"``, ``"kdtree"``,
        ``"jl"`` or ``"nsw"``); ``None`` keeps the config default.  The
        ``auto`` policy probes the measurement matrix's effective rank
        (:func:`repro.knn.backends.select_backend`): the smooth mesh cases
        stay on the KD-tree at every scale, while high-rank cases like
        ``g2_circuit`` route through the JL-projected backend; pass an
        explicit name to pin a backend for A/B runs.
    config_overrides:
        Extra :class:`~repro.core.SGLConfig` fields.  If ``beta`` is not
        given, it is chosen so that about 10 edges are considered per
        iteration, mirroring the paper's ``beta = 1e-3`` at 10,000 nodes.

    Examples
    --------
    >>> from repro.experiments import default_workload
    >>> workload = default_workload("airfoil", scale="tiny", knn_backend="brute")
    >>> workload.config.knn_backend
    'brute'
    """
    case = get_test_case(test_case, scale)
    graph = case.graph
    if "beta" not in config_overrides:
        config_overrides["beta"] = min(1.0, max(1e-3, 10.0 / max(graph.n_nodes, 1)))
    if knn_backend is not None:
        config_overrides["knn_backend"] = knn_backend
    config = SGLConfig(**config_overrides)
    return ExperimentWorkload(
        name=f"{test_case}[{scale}]",
        graph=graph,
        n_measurements=n_measurements,
        seed=seed,
        config=config,
    )
