"""Experiment harness reproducing every figure of the paper's evaluation.

Each figure of Sec. III has a driver function in :mod:`repro.experiments.figures`
returning a structured result object (data series, not plots); the
:mod:`repro.experiments.reporting` helpers render those results as text tables
so the benchmark harness and the examples can print paper-style summaries.

Workload configuration (which test case, how many measurements, which SGL
parameters) is centralised in :mod:`repro.experiments.workloads`.
"""

from repro.experiments.workloads import ExperimentWorkload, default_workload
from repro.experiments.figures import (
    Fig01Result,
    Fig02Result,
    Fig07Result,
    Fig08Result,
    Fig09Result,
    Fig10Result,
    Fig11Result,
    GraphLearningResult,
    fig01_convergence,
    fig02_objective_comparison,
    fig03_knn_comparison,
    fig04_airfoil,
    fig05_crack,
    fig06_g2_circuit,
    fig07_resistance_correlation,
    fig08_reduced_networks,
    fig09_noise_robustness,
    fig10_sample_complexity,
    fig11_runtime_scalability,
)
from repro.experiments.reporting import format_table, summarize_learning_result

__all__ = [
    "ExperimentWorkload",
    "default_workload",
    "Fig01Result",
    "Fig02Result",
    "Fig07Result",
    "Fig08Result",
    "Fig09Result",
    "Fig10Result",
    "Fig11Result",
    "GraphLearningResult",
    "fig01_convergence",
    "fig02_objective_comparison",
    "fig03_knn_comparison",
    "fig04_airfoil",
    "fig05_crack",
    "fig06_g2_circuit",
    "fig07_resistance_correlation",
    "fig08_reduced_networks",
    "fig09_noise_robustness",
    "fig10_sample_complexity",
    "fig11_runtime_scalability",
    "format_table",
    "summarize_learning_result",
]
