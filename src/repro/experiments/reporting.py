"""Plain-text rendering of experiment results (paper-style summaries).

The figure drivers return data-series objects; these helpers turn them into
aligned text tables so examples, the benchmark CLI and test logs can print
readable summaries without a plotting dependency.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.figures import GraphLearningResult

__all__ = ["format_table", "summarize_learning_result"]


def _render(value, floatfmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    floatfmt: str = ".4g",
    indent: str = "",
) -> str:
    """Render rows as an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Row cell values; floats are formatted with ``floatfmt``, booleans as
        yes/no, everything else with ``str``.
    floatfmt:
        :func:`format` spec applied to float cells.
    indent:
        Prefix prepended to every line.

    Examples
    --------
    >>> print(format_table(["case", "density"], [["2d_mesh", 1.1234]]))
    case     density
    -------  -------
    2d_mesh  1.123
    """
    rendered = [[_render(cell, floatfmt) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return indent + "  ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    out = [line(list(headers)), line(["-" * width for width in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def summarize_learning_result(result: GraphLearningResult) -> str:
    """One paper-style summary table for an SGL-vs-kNN comparison run."""
    rows = [
        [
            "SGL",
            result.sgl_density,
            result.sgl_correlation,
            result.sgl.n_iterations,
            result.sgl.converged,
        ],
        [
            "kNN (scaled)",
            result.baseline_density,
            result.baseline_correlation,
            0,
            True,
        ],
    ]
    table = format_table(
        ["method", "density |E|/|V|", "resistance corr", "iterations", "converged"],
        rows,
    )
    truth = result.truth
    header = (
        f"{result.workload}: N={truth.n_nodes}, |E|={truth.n_edges} "
        f"(density {truth.density:.2f})"
    )
    return header + "\n" + table
