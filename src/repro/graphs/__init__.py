"""Graph data structures, Laplacian utilities, generators and I/O.

This subpackage provides the graph substrate used by every other part of the
SGL reproduction:

* :class:`~repro.graphs.graph.WeightedGraph` -- an immutable-by-convention,
  CSR-backed weighted undirected graph, the common currency of the library.
* :mod:`repro.graphs.laplacian` -- Laplacian construction/validation helpers.
* :mod:`repro.graphs.generators` -- synthetic test-case generators matching
  the structural classes used in the paper (meshes, FEM triangulations,
  circuit grids, random graphs).
* :mod:`repro.graphs.io` -- Matrix-Market / edge-list I/O and the named
  test-suite registry.
"""

from repro.graphs.graph import WeightedGraph
from repro.graphs.laplacian import (
    adjacency_to_laplacian,
    graph_from_laplacian,
    is_valid_laplacian,
    laplacian_from_edges,
    laplacian_quadratic_form,
    validate_laplacian,
)

__all__ = [
    "WeightedGraph",
    "adjacency_to_laplacian",
    "graph_from_laplacian",
    "is_valid_laplacian",
    "laplacian_from_edges",
    "laplacian_quadratic_form",
    "validate_laplacian",
]
