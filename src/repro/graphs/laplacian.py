"""Graph Laplacian construction and validation helpers.

The SGL paper works exclusively with combinatorial graph Laplacians
``L = D - W`` (symmetric, diagonally dominant M-matrices with zero row sums).
This module centralises construction from edge lists, conversion back to
graphs, validity checking and the Laplacian quadratic form of Eq. (1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import WeightedGraph

__all__ = [
    "laplacian_from_edges",
    "adjacency_to_laplacian",
    "graph_from_laplacian",
    "is_valid_laplacian",
    "validate_laplacian",
    "laplacian_quadratic_form",
    "shifted_precision_matrix",
]


def laplacian_from_edges(
    n_nodes: int,
    edges: Sequence[tuple[int, int]] | np.ndarray,
    weights: Sequence[float] | np.ndarray | None = None,
) -> sp.csr_matrix:
    """Build ``L = sum_{(s,t)} w_st (e_s - e_t)(e_s - e_t)^T`` (Eq. 3)."""
    return WeightedGraph.from_edges(n_nodes, edges, weights).laplacian()


def adjacency_to_laplacian(adjacency: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    """Convert a symmetric weighted adjacency matrix to its Laplacian."""
    adj = sp.csr_matrix(adjacency)
    degree = sp.diags(np.asarray(adj.sum(axis=1)).ravel())
    return (degree - adj).tocsr()


def graph_from_laplacian(laplacian: sp.spmatrix | np.ndarray) -> WeightedGraph:
    """Recover the :class:`WeightedGraph` whose Laplacian is ``laplacian``."""
    return WeightedGraph.from_laplacian(laplacian)


def is_valid_laplacian(
    matrix: sp.spmatrix | np.ndarray,
    *,
    tol: float = 1e-8,
) -> bool:
    """Check whether ``matrix`` is a valid combinatorial graph Laplacian.

    A valid Laplacian is square, symmetric, has non-positive off-diagonal
    entries and zero row sums (up to ``tol`` relative to the matrix scale).
    """
    try:
        validate_laplacian(matrix, tol=tol)
    except ValueError:
        return False
    return True


def validate_laplacian(matrix: sp.spmatrix | np.ndarray, *, tol: float = 1e-8) -> None:
    """Raise :class:`ValueError` describing the first Laplacian property violated."""
    mat = sp.csr_matrix(matrix)
    if mat.shape[0] != mat.shape[1]:
        raise ValueError("Laplacian must be square")
    scale = max(abs(mat).max() if mat.nnz else 0.0, 1.0)
    asym = abs(mat - mat.T)
    if asym.nnz and asym.max() > tol * scale:
        raise ValueError("Laplacian must be symmetric")
    off_diag = mat - sp.diags(mat.diagonal())
    if off_diag.nnz and off_diag.max() > tol * scale:
        raise ValueError("Laplacian off-diagonal entries must be non-positive")
    row_sums = np.asarray(mat.sum(axis=1)).ravel()
    if row_sums.size and np.max(np.abs(row_sums)) > tol * scale:
        raise ValueError("Laplacian row sums must be zero")


def laplacian_quadratic_form(
    laplacian: sp.spmatrix | np.ndarray,
    signal: np.ndarray,
) -> float | np.ndarray:
    """Graph-signal smoothness ``x^T L x`` of Eq. (1).

    ``signal`` may be a single vector of length ``N`` or a matrix of column
    signals ``(N, M)``; in the latter case a vector of ``M`` quadratic forms
    is returned.
    """
    lap = sp.csr_matrix(laplacian)
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim == 1:
        return float(signal @ (lap @ signal))
    products = lap @ signal
    return np.einsum("ij,ij->j", signal, products)


def shifted_precision_matrix(
    laplacian: sp.spmatrix | np.ndarray,
    sigma_sq: float = np.inf,
) -> sp.csr_matrix:
    """Precision matrix ``Theta = L + I / sigma^2`` of Eq. (2).

    ``sigma_sq = inf`` (the paper's operating regime) returns ``L`` itself.
    """
    lap = sp.csr_matrix(laplacian)
    if not np.isfinite(sigma_sq):
        return lap.copy()
    if sigma_sq <= 0:
        raise ValueError("sigma_sq must be positive")
    return (lap + sp.identity(lap.shape[0], format="csr") / sigma_sq).tocsr()
