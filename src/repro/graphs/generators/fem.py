"""Finite-element-style mesh generators (Delaunay triangulations).

The paper's "airfoil", "crack" and "fe_4elt2" test cases are finite-element
triangulations from the SuiteSparse collection.  We regenerate the same
structural class by triangulating structured 2-D point clouds:

* :func:`airfoil_mesh` -- points distributed around a NACA-style airfoil
  profile inside a bounding box (analogue of "airfoil", density ~2.9).
* :func:`cracked_plate_mesh` -- a rectangular plate with a slit removed and
  refined nodes around the crack tip (analogue of "crack").
* :func:`fe_mesh` -- a generally graded triangulation of the unit square
  (analogue of "fe_4elt2").

All generators return a connected :class:`~repro.graphs.WeightedGraph` whose
edge weights are inverse edge lengths (the natural conductance of a uniform
conductor between mesh nodes), plus the node coordinates used to build it.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

from repro.graphs.graph import WeightedGraph

__all__ = ["delaunay_mesh", "airfoil_mesh", "cracked_plate_mesh", "fe_mesh"]


def _triangulation_edges(points: np.ndarray) -> np.ndarray:
    """Unique undirected edges of the Delaunay triangulation of ``points``."""
    tri = Delaunay(points)
    simplices = tri.simplices
    edges = np.vstack(
        [simplices[:, [0, 1]], simplices[:, [1, 2]], simplices[:, [0, 2]]]
    )
    lo = edges.min(axis=1)
    hi = edges.max(axis=1)
    return np.unique(np.column_stack([lo, hi]), axis=0)


def _edge_conductances(points: np.ndarray, edges: np.ndarray, *, cap: float = 1e6) -> np.ndarray:
    """Inverse-length conductances, capped to avoid numerically huge weights."""
    lengths = np.linalg.norm(points[edges[:, 0]] - points[edges[:, 1]], axis=1)
    lengths = np.maximum(lengths, 1.0 / cap)
    return 1.0 / lengths


def delaunay_mesh(
    points: np.ndarray,
    *,
    max_edge_length: float | None = None,
) -> WeightedGraph:
    """Graph of the Delaunay triangulation of a 2-D point cloud.

    Parameters
    ----------
    points:
        ``(N, 2)`` array of node coordinates.
    max_edge_length:
        If given, triangulation edges longer than this are dropped (useful to
        remove the long sliver edges that Delaunay adds across concavities,
        e.g. across an airfoil hole or a crack slit).  If dropping edges
        disconnects the mesh, the largest connected component is returned,
        which may have fewer nodes than ``points``.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be an (N, 2) array")
    if points.shape[0] < 3:
        raise ValueError("need at least 3 points to triangulate")
    edges = _triangulation_edges(points)
    if max_edge_length is not None:
        lengths = np.linalg.norm(points[edges[:, 0]] - points[edges[:, 1]], axis=1)
        edges = edges[lengths <= max_edge_length]
    weights = _edge_conductances(points, edges)
    graph = WeightedGraph(points.shape[0], edges[:, 0], edges[:, 1], weights)
    if not graph.is_connected():
        graph, _ = graph.largest_connected_component()
    return graph


def _jittered_grid(
    n_points: int,
    rng: np.random.Generator,
    *,
    jitter: float = 0.35,
    box: tuple[float, float, float, float] = (0.0, 1.0, 0.0, 1.0),
) -> np.ndarray:
    """Near-uniform jittered lattice of approximately ``n_points`` points."""
    x0, x1, y0, y1 = box
    aspect = (y1 - y0) / max(x1 - x0, 1e-12)
    n_x = max(2, int(round(np.sqrt(n_points / max(aspect, 1e-12)))))
    n_y = max(2, int(round(n_points / n_x)))
    xs = np.linspace(x0, x1, n_x)
    ys = np.linspace(y0, y1, n_y)
    xx, yy = np.meshgrid(xs, ys)
    points = np.column_stack([xx.ravel(), yy.ravel()])
    dx = (x1 - x0) / max(n_x - 1, 1)
    dy = (y1 - y0) / max(n_y - 1, 1)
    noise = rng.uniform(-jitter, jitter, size=points.shape) * np.array([dx, dy])
    return points + noise


def airfoil_mesh(n_points: int = 4000, *, seed: int | None = 0) -> WeightedGraph:
    """Airfoil-style FEM triangulation (analogue of the paper's "airfoil").

    Points are graded: dense rings of nodes hug a NACA-0012-like airfoil
    profile placed in a rectangular flow domain, and a coarser jittered
    lattice fills the far field -- the same structure (a planar triangulation
    with local refinement, density ~2.9) as the SuiteSparse ``airfoil`` mesh.
    """
    if n_points < 50:
        raise ValueError("airfoil mesh needs at least 50 points")
    rng = np.random.default_rng(seed)

    # NACA-0012-ish thickness profile on a unit chord centred in the domain.
    def thickness(x: np.ndarray) -> np.ndarray:
        return 0.12 * (
            1.4845 * np.sqrt(np.clip(x, 0.0, 1.0))
            - 0.63 * x
            - 1.758 * x**2
            + 1.4215 * x**3
            - 0.5075 * x**4
        )

    n_boundary = max(40, n_points // 5)
    n_rings = 4
    ring_points = []
    chord_x = (1.0 - np.cos(np.linspace(0.0, np.pi, n_boundary // 2))) / 2.0
    half_t = thickness(chord_x)
    for ring in range(n_rings):
        offset = 0.015 * (ring + 1)
        upper = np.column_stack([chord_x, half_t + offset])
        lower = np.column_stack([chord_x, -half_t - offset])
        ring_points.append(upper)
        ring_points.append(lower)
    ring_points = np.vstack(ring_points)
    # Shift airfoil into the middle of a [0,3] x [-1,1] domain.
    ring_points[:, 0] += 1.0

    n_field = max(n_points - ring_points.shape[0], n_boundary)
    field = _jittered_grid(n_field, rng, box=(0.0, 3.0, -1.0, 1.0))
    points = np.vstack([ring_points, field])

    # Remove points that fall inside the airfoil body (a hole in the domain).
    px = points[:, 0] - 1.0
    inside = (px >= 0.0) & (px <= 1.0) & (np.abs(points[:, 1]) < thickness(np.clip(px, 0, 1)))
    points = points[~inside]
    return delaunay_mesh(points, max_edge_length=0.35)


def cracked_plate_mesh(n_points: int = 4000, *, seed: int | None = 0) -> WeightedGraph:
    """Cracked-plate FEM triangulation (analogue of the paper's "crack").

    A unit plate with a horizontal slit from the left edge to the centre;
    nodes are refined geometrically around the crack tip, as a fracture
    mechanics mesh would be.
    """
    if n_points < 50:
        raise ValueError("cracked plate mesh needs at least 50 points")
    rng = np.random.default_rng(seed)

    n_field = int(n_points * 0.7)
    field = _jittered_grid(n_field, rng, box=(0.0, 1.0, 0.0, 1.0))

    # Refinement fan around the crack tip at (0.5, 0.5).
    n_refine = n_points - n_field
    radii = 0.35 * rng.random(n_refine) ** 2 + 1e-3
    angles = rng.uniform(0.0, 2.0 * np.pi, n_refine)
    refine = np.column_stack(
        [0.5 + radii * np.cos(angles), 0.5 + radii * np.sin(angles)]
    )
    points = np.vstack([field, refine])
    points = points[(points[:, 0] >= 0) & (points[:, 0] <= 1) & (points[:, 1] >= 0) & (points[:, 1] <= 1)]

    # Open the crack: push nodes close to the slit (y = 0.5, x < 0.5) away so
    # the triangulation cannot connect across it except around the tip.
    crack_mask = (points[:, 0] < 0.5) & (np.abs(points[:, 1] - 0.5) < 0.02)
    points = points[~crack_mask]
    shift = (points[:, 0] < 0.5) & (np.abs(points[:, 1] - 0.5) < 0.06)
    points[shift, 1] += np.where(points[shift, 1] >= 0.5, 0.02, -0.02)
    return delaunay_mesh(points, max_edge_length=0.12)


def fe_mesh(n_points: int = 4000, *, grading: float = 2.0, seed: int | None = 0) -> WeightedGraph:
    """General graded FEM triangulation (analogue of the paper's "fe_4elt2").

    Points are sampled with a density gradient (finer towards one corner,
    controlled by ``grading``) and triangulated, giving an unstructured planar
    mesh with density close to 3.
    """
    if n_points < 10:
        raise ValueError("fe mesh needs at least 10 points")
    if grading <= 0:
        raise ValueError("grading must be positive")
    rng = np.random.default_rng(seed)
    u = rng.random((n_points, 2))
    # Power grading concentrates nodes near the origin corner.
    points = u ** grading
    # Add the four corners so the convex hull is the full unit square.
    corners = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
    points = np.vstack([points, corners])
    return delaunay_mesh(points)
