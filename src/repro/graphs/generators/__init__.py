"""Synthetic test-case generators.

The paper evaluates SGL on sparse matrices taken from circuit simulation and
finite-element collections ("2D mesh", "airfoil", "fe_4elt2", "crack",
"G2_circuit").  Those exact matrices are not redistributable here, so this
package provides generators for the same *structural classes*:

* :mod:`mesh` -- regular 2-D / 3-D grid meshes (the paper's "2D mesh" case).
* :mod:`fem`  -- Delaunay triangulations of structured point clouds
  (airfoil-, cracked-plate- and general FEM-style meshes).
* :mod:`circuit` -- irregular circuit-style grids mimicking power-delivery
  networks such as "G2_circuit".
* :mod:`random_graphs` -- random weighted graphs used by tests and ablations.

Every generator returns a connected :class:`~repro.graphs.WeightedGraph` with
strictly positive edge weights and a density (``|E|/|V|``) in the 2--3 range
characteristic of the paper's test cases.
"""

from repro.graphs.generators.mesh import grid_2d, grid_3d, path_graph, torus_2d
from repro.graphs.generators.fem import (
    airfoil_mesh,
    cracked_plate_mesh,
    delaunay_mesh,
    fe_mesh,
)
from repro.graphs.generators.circuit import circuit_grid, power_grid, rc_ladder
from repro.graphs.generators.random_graphs import (
    erdos_renyi_graph,
    random_geometric_graph,
    random_regular_graph,
    random_spanning_tree,
    watts_strogatz_graph,
)

__all__ = [
    "grid_2d",
    "grid_3d",
    "torus_2d",
    "path_graph",
    "airfoil_mesh",
    "cracked_plate_mesh",
    "delaunay_mesh",
    "fe_mesh",
    "circuit_grid",
    "power_grid",
    "rc_ladder",
    "erdos_renyi_graph",
    "random_geometric_graph",
    "random_regular_graph",
    "random_spanning_tree",
    "watts_strogatz_graph",
]
