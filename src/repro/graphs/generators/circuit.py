"""Circuit-network generators (power-grid / RC-grid style resistor networks).

The paper's largest test case, "G2_circuit" (|V| = 150,102, |E| = 288,286,
density ~1.9), is a circuit-simulation matrix.  Power-delivery and clock-mesh
networks of this kind are essentially irregular 2-D grids with locally varying
wire conductances, occasional missing segments (routing blockages) and a few
long-range "strap" connections.  :func:`circuit_grid` reproduces that
structure at any size.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.generators.mesh import grid_2d

__all__ = ["circuit_grid", "power_grid", "rc_ladder"]


def circuit_grid(
    n_rows: int,
    n_cols: int | None = None,
    *,
    dropout: float = 0.08,
    strap_fraction: float = 0.01,
    weight_spread: float = 10.0,
    seed: int | None = 0,
) -> WeightedGraph:
    """Irregular circuit-style grid (analogue of the paper's "G2_circuit").

    Starting from a regular 2-D grid with log-uniform conductances
    (``weight_spread``), a fraction ``dropout`` of segments is removed
    (routing blockages) while keeping the network connected, and a small
    number of long-range strap edges (``strap_fraction`` of |V|) is added
    between random rows/columns, mimicking upper-metal power straps.
    """
    if n_cols is None:
        n_cols = n_rows
    if not 0.0 <= dropout < 0.5:
        raise ValueError("dropout must be in [0, 0.5)")
    if strap_fraction < 0:
        raise ValueError("strap_fraction must be non-negative")
    rng = np.random.default_rng(seed)

    base = grid_2d(n_rows, n_cols, weight_spread=weight_spread, seed=seed)
    n_nodes = base.n_nodes
    rows, cols, weights = base.rows.copy(), base.cols.copy(), base.weights.copy()

    if dropout > 0 and rows.size:
        # Keep a random spanning structure intact: drop edges at random but
        # re-insert any whose removal would disconnect the grid (checked once
        # at the end for efficiency -- grid connectivity is robust at <50%).
        keep_mask = rng.random(rows.size) >= dropout
        candidate = WeightedGraph(n_nodes, rows[keep_mask], cols[keep_mask], weights[keep_mask])
        if candidate.is_connected():
            rows, cols, weights = rows[keep_mask], cols[keep_mask], weights[keep_mask]
        else:
            # Re-add dropped edges incident to small components until connected.
            n_comp, labels = candidate.connected_components()
            dropped = np.where(~keep_mask)[0]
            rescue = [
                idx for idx in dropped if labels[rows[idx]] != labels[cols[idx]]
            ]
            keep_mask[rescue] = True
            rows, cols, weights = rows[keep_mask], cols[keep_mask], weights[keep_mask]

    graph = WeightedGraph(n_nodes, rows, cols, weights)
    if not graph.is_connected():
        # Extremely defensive: reconnect components through their first nodes.
        n_comp, labels = graph.connected_components()
        reps = [int(np.where(labels == c)[0][0]) for c in range(n_comp)]
        extra_edges = [(reps[i], reps[i + 1]) for i in range(n_comp - 1)]
        graph = graph.add_edges(np.array(extra_edges), np.ones(len(extra_edges)))

    n_straps = int(round(strap_fraction * n_nodes))
    if n_straps > 0:
        strap_rows = rng.integers(0, n_nodes, size=n_straps)
        strap_cols = rng.integers(0, n_nodes, size=n_straps)
        valid = strap_rows != strap_cols
        strap_rows, strap_cols = strap_rows[valid], strap_cols[valid]
        if strap_rows.size:
            strap_weights = np.exp(rng.uniform(0.0, np.log(weight_spread), size=strap_rows.size))
            graph = graph.add_edges(
                np.column_stack([strap_rows, strap_cols]), strap_weights
            )
    return graph


def power_grid(
    n_rows: int,
    n_cols: int | None = None,
    *,
    via_resistance: float = 0.1,
    seed: int | None = 0,
) -> WeightedGraph:
    """Two-layer power-delivery network: two stacked grids joined by vias.

    Layer 0 routes horizontally, layer 1 vertically; every node has a via
    (conductance ``1/via_resistance``) to its counterpart on the other layer.
    The result is a sparse 3-D-ish resistor network typical of IC power grids.
    """
    if n_cols is None:
        n_cols = n_rows
    if via_resistance <= 0:
        raise ValueError("via_resistance must be positive")
    rng = np.random.default_rng(seed)
    n_layer = n_rows * n_cols

    def node(layer: int, r: int, c: int) -> int:
        return layer * n_layer + r * n_cols + c

    rows, cols, weights = [], [], []
    # Layer 0: horizontal wires.
    for r in range(n_rows):
        for c in range(n_cols - 1):
            rows.append(node(0, r, c))
            cols.append(node(0, r, c + 1))
            weights.append(float(np.exp(rng.normal(0.0, 0.3))))
    # Layer 1: vertical wires.
    for r in range(n_rows - 1):
        for c in range(n_cols):
            rows.append(node(1, r, c))
            cols.append(node(1, r + 1, c))
            weights.append(float(np.exp(rng.normal(0.0, 0.3))))
    # Vias.
    for r in range(n_rows):
        for c in range(n_cols):
            rows.append(node(0, r, c))
            cols.append(node(1, r, c))
            weights.append(1.0 / via_resistance)
    return WeightedGraph(2 * n_layer, np.array(rows), np.array(cols), np.array(weights))


def rc_ladder(n_stages: int, *, rail_conductance: float = 1.0, tap_conductance: float = 0.5) -> WeightedGraph:
    """Classic RC-ladder resistive skeleton: a rail with taps to a return node.

    Node ``n_stages`` is the shared return (ground) node; nodes
    ``0..n_stages-1`` form the rail.  Useful as a tiny analytically tractable
    test circuit (its effective resistances have closed forms).
    """
    if n_stages < 1:
        raise ValueError("rc_ladder needs at least one stage")
    if rail_conductance <= 0 or tap_conductance <= 0:
        raise ValueError("conductances must be positive")
    rows, cols, weights = [], [], []
    ground = n_stages
    for i in range(n_stages - 1):
        rows.append(i)
        cols.append(i + 1)
        weights.append(rail_conductance)
    for i in range(n_stages):
        rows.append(i)
        cols.append(ground)
        weights.append(tap_conductance)
    return WeightedGraph(n_stages + 1, np.array(rows), np.array(cols), np.array(weights))
