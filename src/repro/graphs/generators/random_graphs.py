"""Random weighted graph generators used for tests, baselines and ablations.

These wrap :mod:`networkx` generators (Erdos-Renyi, Watts-Strogatz, random
regular) and add geometric and spanning-tree generators, always returning a
connected :class:`~repro.graphs.WeightedGraph` with positive weights.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.graphs.graph import WeightedGraph

__all__ = [
    "erdos_renyi_graph",
    "watts_strogatz_graph",
    "random_regular_graph",
    "random_geometric_graph",
    "random_spanning_tree",
]


def _randomize_weights(
    graph: WeightedGraph, weight_spread: float, rng: np.random.Generator
) -> WeightedGraph:
    if weight_spread <= 1.0:
        return graph
    log_spread = np.log(weight_spread)
    weights = np.exp(rng.uniform(-log_spread, log_spread, size=graph.n_edges))
    return graph.with_weights(weights)


def _ensure_connected(graph: WeightedGraph, rng: np.random.Generator) -> WeightedGraph:
    """Add minimal bridging edges between components if needed."""
    if graph.is_connected():
        return graph
    n_comp, labels = graph.connected_components()
    # First node of each component; labels from scipy are 0..n_comp-1 and a
    # stable sort keeps each component's lowest node id first, matching the
    # per-component np.where(...)[0][0] this replaces.
    order = np.argsort(labels, kind="stable")
    _, first = np.unique(labels[order], return_index=True)
    reps = order[first]
    edges = np.column_stack([reps[:-1], reps[1:]])
    return graph.add_edges(edges, np.ones(edges.shape[0]))


def erdos_renyi_graph(
    n_nodes: int,
    edge_probability: float,
    *,
    weight_spread: float = 1.0,
    seed: int | None = 0,
) -> WeightedGraph:
    """Connected Erdos-Renyi ``G(n, p)`` graph with optional random weights."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    g = nx.fast_gnp_random_graph(n_nodes, edge_probability, seed=seed)
    graph = _ensure_connected(WeightedGraph.from_networkx(g), rng)
    return _randomize_weights(graph, weight_spread, rng)


def watts_strogatz_graph(
    n_nodes: int,
    k: int = 4,
    rewire_probability: float = 0.1,
    *,
    weight_spread: float = 1.0,
    seed: int | None = 0,
) -> WeightedGraph:
    """Connected Watts-Strogatz small-world graph."""
    rng = np.random.default_rng(seed)
    g = nx.connected_watts_strogatz_graph(n_nodes, k, rewire_probability, seed=seed)
    graph = WeightedGraph.from_networkx(g)
    return _randomize_weights(graph, weight_spread, rng)


def random_regular_graph(
    n_nodes: int,
    degree: int = 3,
    *,
    weight_spread: float = 1.0,
    seed: int | None = 0,
) -> WeightedGraph:
    """Random ``degree``-regular graph (connected with high probability)."""
    rng = np.random.default_rng(seed)
    g = nx.random_regular_graph(degree, n_nodes, seed=seed)
    graph = _ensure_connected(WeightedGraph.from_networkx(g), rng)
    return _randomize_weights(graph, weight_spread, rng)


def random_geometric_graph(
    n_nodes: int,
    radius: float | None = None,
    *,
    weight_spread: float = 1.0,
    seed: int | None = 0,
) -> WeightedGraph:
    """Random geometric graph in the unit square (connected by construction).

    ``radius`` defaults to ``1.5 * sqrt(log(n) / (pi n))``, just above the
    connectivity threshold, yielding sparse planar-ish graphs similar to
    extracted layouts.

    Below 50k nodes this delegates to :mod:`networkx` (keeping historical
    graphs bit-identical); at or above it, a direct ``cKDTree.query_pairs``
    construction takes over — the networkx generator materialises Python
    dict adjacency and is prohibitively slow at the million-node tier.
    """
    if radius is None:
        radius = 1.5 * float(np.sqrt(np.log(max(n_nodes, 2)) / (np.pi * max(n_nodes, 2))))
    rng = np.random.default_rng(seed)
    if n_nodes >= 50_000:
        from scipy.spatial import cKDTree

        positions = rng.random((n_nodes, 2))
        pairs = cKDTree(positions).query_pairs(radius, output_type="ndarray")
        base = WeightedGraph(
            n_nodes,
            pairs[:, 0].astype(np.int64),
            pairs[:, 1].astype(np.int64),
            np.ones(pairs.shape[0]),
        )
    else:
        g = nx.random_geometric_graph(n_nodes, radius, seed=seed)
        base = WeightedGraph.from_networkx(g)
    graph = _ensure_connected(base, rng)
    return _randomize_weights(graph, weight_spread, rng)


def random_spanning_tree(
    n_nodes: int,
    *,
    weight_spread: float = 1.0,
    seed: int | None = 0,
) -> WeightedGraph:
    """Random labelled tree on ``n_nodes`` nodes (random-attachment model).

    Each node ``i >= 1`` attaches to a uniformly random earlier node, after a
    random relabelling, which yields well-mixed random trees in O(n) time.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    rng = np.random.default_rng(seed)
    if n_nodes == 1:
        return WeightedGraph(1)
    permutation = rng.permutation(n_nodes)
    parents = np.array([rng.integers(0, i) for i in range(1, n_nodes)], dtype=np.int64)
    rows = permutation[np.arange(1, n_nodes)]
    cols = permutation[parents]
    graph = WeightedGraph(n_nodes, rows, cols, np.ones(n_nodes - 1))
    return _randomize_weights(graph, weight_spread, rng)
