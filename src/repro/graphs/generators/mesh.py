"""Regular mesh generators (2-D / 3-D grids, tori, paths).

The paper's "2D mesh" test case (|V| = 10,000, |E| = 20,000, density ~2) is a
regular two-dimensional grid.  These generators produce such meshes at any
size, optionally with randomly perturbed edge weights to mimic extracted
resistor networks whose conductances vary with wire geometry.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import WeightedGraph

__all__ = ["grid_2d", "grid_3d", "torus_2d", "path_graph", "grid_coordinates_2d"]


def _weights_for(n_edges: int, weight_spread: float, rng: np.random.Generator) -> np.ndarray:
    """Edge weights: unit weights, or log-uniform in [1/spread, spread]."""
    if weight_spread <= 1.0:
        return np.ones(n_edges)
    log_spread = np.log(weight_spread)
    return np.exp(rng.uniform(-log_spread, log_spread, size=n_edges))


def grid_2d(
    n_rows: int,
    n_cols: int | None = None,
    *,
    weight_spread: float = 1.0,
    seed: int | None = None,
) -> WeightedGraph:
    """Two-dimensional grid mesh with ``n_rows * n_cols`` nodes.

    Parameters
    ----------
    n_rows, n_cols:
        Grid dimensions.  ``n_cols`` defaults to ``n_rows`` (square mesh,
        matching the paper's 100x100 "2D mesh").
    weight_spread:
        If greater than one, edge weights are sampled log-uniformly from
        ``[1/weight_spread, weight_spread]``; otherwise all weights are 1.
    seed:
        Seed for the weight sampler.
    """
    if n_cols is None:
        n_cols = n_rows
    if n_rows < 1 or n_cols < 1:
        raise ValueError("grid dimensions must be at least 1")
    rng = np.random.default_rng(seed)

    def node(r: int, c: int) -> int:
        return r * n_cols + c

    rows, cols = [], []
    for r in range(n_rows):
        for c in range(n_cols):
            if c + 1 < n_cols:
                rows.append(node(r, c))
                cols.append(node(r, c + 1))
            if r + 1 < n_rows:
                rows.append(node(r, c))
                cols.append(node(r + 1, c))
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    weights = _weights_for(rows.size, weight_spread, rng)
    return WeightedGraph(n_rows * n_cols, rows, cols, weights)


def grid_coordinates_2d(n_rows: int, n_cols: int | None = None) -> np.ndarray:
    """Planar ``(N, 2)`` coordinates matching :func:`grid_2d` node numbering."""
    if n_cols is None:
        n_cols = n_rows
    rr, cc = np.meshgrid(np.arange(n_rows), np.arange(n_cols), indexing="ij")
    return np.column_stack([cc.ravel().astype(float), rr.ravel().astype(float)])


def grid_3d(
    nx: int,
    ny: int | None = None,
    nz: int | None = None,
    *,
    weight_spread: float = 1.0,
    seed: int | None = None,
) -> WeightedGraph:
    """Three-dimensional grid mesh (e.g. a 3-D power-delivery network)."""
    if ny is None:
        ny = nx
    if nz is None:
        nz = max(2, nx // 4)
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be at least 1")
    rng = np.random.default_rng(seed)

    def node(i: int, j: int, k: int) -> int:
        return (i * ny + j) * nz + k

    rows, cols = [], []
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                if i + 1 < nx:
                    rows.append(node(i, j, k))
                    cols.append(node(i + 1, j, k))
                if j + 1 < ny:
                    rows.append(node(i, j, k))
                    cols.append(node(i, j + 1, k))
                if k + 1 < nz:
                    rows.append(node(i, j, k))
                    cols.append(node(i, j, k + 1))
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    weights = _weights_for(rows.size, weight_spread, rng)
    return WeightedGraph(nx * ny * nz, rows, cols, weights)


def torus_2d(
    n_rows: int,
    n_cols: int | None = None,
    *,
    weight_spread: float = 1.0,
    seed: int | None = None,
) -> WeightedGraph:
    """2-D grid with wrap-around (periodic boundary) edges."""
    if n_cols is None:
        n_cols = n_rows
    if n_rows < 3 or n_cols < 3:
        raise ValueError("torus dimensions must be at least 3")
    rng = np.random.default_rng(seed)

    def node(r: int, c: int) -> int:
        return r * n_cols + c

    rows, cols = [], []
    for r in range(n_rows):
        for c in range(n_cols):
            rows.append(node(r, c))
            cols.append(node(r, (c + 1) % n_cols))
            rows.append(node(r, c))
            cols.append(node((r + 1) % n_rows, c))
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    weights = _weights_for(rows.size, weight_spread, rng)
    return WeightedGraph(n_rows * n_cols, rows, cols, weights)


def path_graph(n_nodes: int, *, weight_spread: float = 1.0, seed: int | None = None) -> WeightedGraph:
    """Simple path graph, the smallest non-trivial resistor chain."""
    if n_nodes < 1:
        raise ValueError("path graph needs at least one node")
    rng = np.random.default_rng(seed)
    rows = np.arange(n_nodes - 1, dtype=np.int64)
    cols = rows + 1
    weights = _weights_for(rows.size, weight_spread, rng)
    return WeightedGraph(n_nodes, rows, cols, weights)
