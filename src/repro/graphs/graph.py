"""Weighted undirected graph data structure used throughout the library.

The SGL algorithm manipulates resistor networks: weighted, undirected graphs
whose Laplacian matrices are symmetric diagonally dominant M-matrices.  The
:class:`WeightedGraph` class below is the common representation used by the
generators, the measurement simulator, the learner and the metrics.

Design notes
------------
* Edges are stored once in canonical orientation (``s < t``) as three parallel
  numpy arrays (``rows``, ``cols``, ``weights``).  This keeps edge bookkeeping
  (needed by the SGL densification loop, which repeatedly adds off-tree edges)
  cheap and deterministic.
* Matrix views (adjacency, Laplacian, incidence) are built lazily and cached;
  mutating operations always return a *new* ``WeightedGraph`` so cached
  matrices can never go stale.
* Node identifiers are always ``0..n_nodes-1`` integers.  Conversions from
  :mod:`networkx` relabel nodes accordingly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = ["WeightedGraph"]


def _canonicalize_edges(
    rows: np.ndarray,
    cols: np.ndarray,
    weights: np.ndarray,
    n_nodes: int,
    *,
    merge_duplicates: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return edges in canonical (s < t) order, sorted, duplicates merged.

    Duplicate edges have their weights summed (parallel resistors in a
    resistor network combine by summing conductances).  Self loops are
    dropped because they do not contribute to a graph Laplacian.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if rows.shape != cols.shape or rows.shape != weights.shape:
        raise ValueError("rows, cols and weights must have identical shapes")
    if rows.ndim != 1:
        raise ValueError("edge arrays must be one-dimensional")
    if rows.size and (rows.min() < 0 or cols.min() < 0):
        raise ValueError("negative node indices are not allowed")
    if rows.size and (rows.max() >= n_nodes or cols.max() >= n_nodes):
        raise ValueError("node index exceeds n_nodes")

    # Drop self loops.
    keep = rows != cols
    rows, cols, weights = rows[keep], cols[keep], weights[keep]

    lo = np.minimum(rows, cols)
    hi = np.maximum(rows, cols)
    if lo.size == 0:
        return lo, hi, weights

    order = np.lexsort((hi, lo))
    lo, hi, weights = lo[order], hi[order], weights[order]

    if merge_duplicates:
        keys = lo * np.int64(n_nodes) + hi
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        if unique_keys.size != keys.size:
            merged_w = np.zeros(unique_keys.size, dtype=np.float64)
            np.add.at(merged_w, inverse, weights)
            lo = (unique_keys // n_nodes).astype(np.int64)
            hi = (unique_keys % n_nodes).astype(np.int64)
            weights = merged_w
    return lo, hi, weights


class WeightedGraph:
    """A weighted undirected graph (resistor network).

    Parameters
    ----------
    n_nodes:
        Number of nodes.  Nodes are labelled ``0 .. n_nodes - 1``.
    rows, cols:
        Endpoint arrays of the edges.  Orientation is irrelevant; edges are
        stored canonically with ``rows < cols``.
    weights:
        Positive edge weights (conductances).  If omitted, unit weights are
        used.

    Notes
    -----
    Instances should be treated as immutable: all "mutating" operations
    (:meth:`add_edges`, :meth:`with_weights`, :meth:`subgraph`, ...) return a
    new graph.

    Examples
    --------
    >>> from repro.graphs.graph import WeightedGraph
    >>> triangle = WeightedGraph(3, [0, 1, 0], [1, 2, 2], [1.0, 2.0, 3.0])
    >>> triangle.n_nodes, triangle.n_edges, triangle.density
    (3, 3, 1.0)
    >>> triangle.edge_weights([(2, 0), (1, 2)]).tolist()
    [3.0, 2.0]
    >>> triangle.laplacian().toarray()[0].tolist()
    [4.0, -1.0, -3.0]
    """

    __slots__ = (
        "_n_nodes",
        "_rows",
        "_cols",
        "_weights",
        "_adjacency",
        "_laplacian",
        "_edge_set",
        "_edge_keys",
    )

    def __init__(
        self,
        n_nodes: int,
        rows: Iterable[int] | np.ndarray = (),
        cols: Iterable[int] | np.ndarray = (),
        weights: Iterable[float] | np.ndarray | None = None,
    ) -> None:
        if n_nodes < 0:
            raise ValueError("n_nodes must be non-negative")
        rows = np.asarray(list(rows) if not isinstance(rows, np.ndarray) else rows)
        cols = np.asarray(list(cols) if not isinstance(cols, np.ndarray) else cols)
        if weights is None:
            weights = np.ones(rows.shape, dtype=np.float64)
        else:
            weights = np.asarray(
                list(weights) if not isinstance(weights, np.ndarray) else weights,
                dtype=np.float64,
            )
        if rows.size and np.any(weights <= 0):
            raise ValueError("edge weights must be strictly positive")
        lo, hi, w = _canonicalize_edges(rows, cols, weights, n_nodes)
        self._n_nodes = int(n_nodes)
        self._rows = lo
        self._cols = hi
        self._weights = w
        self._adjacency: sp.csr_matrix | None = None
        self._laplacian: sp.csr_matrix | None = None
        self._edge_set: set[tuple[int, int]] | None = None
        self._edge_keys: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n_nodes: int,
        edges: Sequence[tuple[int, int]] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
    ) -> "WeightedGraph":
        """Build a graph from an ``(s, t)`` edge sequence."""
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            return cls(n_nodes)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must be an (m, 2) array-like")
        return cls(n_nodes, edges[:, 0], edges[:, 1], weights)

    @classmethod
    def _from_canonical(
        cls,
        n_nodes: int,
        rows: np.ndarray,
        cols: np.ndarray,
        weights: np.ndarray,
    ) -> "WeightedGraph":
        """Trusted constructor skipping canonicalisation.

        The caller guarantees ``rows < cols`` elementwise, ``(rows, cols)``
        lexsorted and duplicate-free, int64 endpoints and positive float64
        weights — e.g. the kNN construction, which already builds exactly
        this form and would otherwise pay a second lexsort + unique inside
        ``__init__`` on every graph.
        """
        graph = cls.__new__(cls)
        graph._n_nodes = int(n_nodes)
        graph._rows = rows
        graph._cols = cols
        graph._weights = weights
        graph._adjacency = None
        graph._laplacian = None
        graph._edge_set = None
        graph._edge_keys = None
        return graph

    @classmethod
    def from_adjacency(cls, adjacency: sp.spmatrix | np.ndarray) -> "WeightedGraph":
        """Build a graph from a symmetric weighted adjacency matrix."""
        adj = sp.csr_matrix(adjacency)
        if adj.shape[0] != adj.shape[1]:
            raise ValueError("adjacency matrix must be square")
        asym = abs(adj - adj.T)
        if asym.nnz and asym.max() > 1e-10 * max(abs(adj).max(), 1.0):
            raise ValueError("adjacency matrix must be symmetric")
        coo = sp.triu(adj, k=1).tocoo()
        return cls(adj.shape[0], coo.row, coo.col, coo.data)

    @classmethod
    def from_laplacian(cls, laplacian: sp.spmatrix | np.ndarray) -> "WeightedGraph":
        """Build a graph from a graph Laplacian matrix ``L = D - W``."""
        lap = sp.csr_matrix(laplacian)
        coo = sp.triu(lap, k=1).tocoo()
        mask = coo.data < 0
        return cls(lap.shape[0], coo.row[mask], coo.col[mask], -coo.data[mask])

    @classmethod
    def from_networkx(cls, graph, weight: str = "weight") -> "WeightedGraph":
        """Convert a :class:`networkx.Graph`; nodes are relabelled 0..N-1."""
        import networkx as nx

        if graph.is_directed():
            graph = graph.to_undirected()
        nodes = list(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        rows, cols, weights = [], [], []
        for u, v, data in graph.edges(data=True):
            rows.append(index[u])
            cols.append(index[v])
            weights.append(float(data.get(weight, 1.0)))
        return cls(len(nodes), np.array(rows, dtype=np.int64),
                   np.array(cols, dtype=np.int64), np.array(weights))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes ``N``."""
        return self._n_nodes

    @property
    def n_edges(self) -> int:
        """Number of (undirected) edges ``|E|``."""
        return int(self._rows.size)

    @property
    def rows(self) -> np.ndarray:
        """Edge source endpoints (canonical, ``rows < cols``).  Read-only view."""
        view = self._rows.view()
        view.flags.writeable = False
        return view

    @property
    def cols(self) -> np.ndarray:
        """Edge target endpoints (canonical).  Read-only view."""
        view = self._cols.view()
        view.flags.writeable = False
        return view

    @property
    def weights(self) -> np.ndarray:
        """Edge weights (conductances).  Read-only view."""
        view = self._weights.view()
        view.flags.writeable = False
        return view

    @property
    def edges(self) -> np.ndarray:
        """``(m, 2)`` array of canonical edges."""
        return np.column_stack([self._rows, self._cols]) if self.n_edges else np.empty((0, 2), dtype=np.int64)

    @property
    def density(self) -> float:
        """Edge density ``|E| / |V|`` as reported in the paper's figures."""
        if self._n_nodes == 0:
            return 0.0
        return self.n_edges / self._n_nodes

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return float(self._weights.sum())

    # ------------------------------------------------------------------
    # Matrix views
    # ------------------------------------------------------------------
    def adjacency(self) -> sp.csr_matrix:
        """Symmetric weighted adjacency matrix ``W`` (CSR, cached)."""
        if self._adjacency is None:
            n = self._n_nodes
            if self.n_edges == 0:
                self._adjacency = sp.csr_matrix((n, n))
            else:
                data = np.concatenate([self._weights, self._weights])
                i = np.concatenate([self._rows, self._cols])
                j = np.concatenate([self._cols, self._rows])
                self._adjacency = sp.csr_matrix((data, (i, j)), shape=(n, n))
        return self._adjacency

    def degrees(self) -> np.ndarray:
        """Weighted node degrees ``d_i = sum_j W_ij``."""
        return np.asarray(self.adjacency().sum(axis=1)).ravel()

    def laplacian(self) -> sp.csr_matrix:
        """Graph Laplacian ``L = D - W`` (CSR, cached)."""
        if self._laplacian is None:
            adj = self.adjacency()
            degree = sp.diags(np.asarray(adj.sum(axis=1)).ravel())
            self._laplacian = (degree - adj).tocsr()
        return self._laplacian

    def incidence_matrix(self, oriented: bool = True) -> sp.csr_matrix:
        """Edge-node incidence matrix ``B`` of shape ``(|E|, N)``.

        With ``oriented=True`` (the default) row ``p`` of ``B`` is
        ``e_s - e_t`` for edge ``p = (s, t)``, matching Eq. (16) of the paper,
        so that ``L = B^T W B`` with ``W = diag(weights)``.
        """
        m, n = self.n_edges, self._n_nodes
        if m == 0:
            return sp.csr_matrix((0, n))
        data = np.ones(2 * m)
        if oriented:
            data[m:] = -1.0
        rows = np.concatenate([np.arange(m), np.arange(m)])
        cols = np.concatenate([self._rows, self._cols])
        return sp.csr_matrix((data, (rows, cols)), shape=(m, n))

    def weight_matrix(self) -> sp.dia_matrix:
        """Diagonal edge-weight matrix ``W*`` of Sec. II-D."""
        return sp.diags(self._weights) if self.n_edges else sp.diags(np.zeros(0))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def edge_set(self) -> set[tuple[int, int]]:
        """Set of canonical ``(s, t)`` tuples (cached)."""
        if self._edge_set is None:
            self._edge_set = set(zip(self._rows.tolist(), self._cols.tolist()))
        return self._edge_set

    def _packed_keys(self) -> np.ndarray:
        """Sorted ``lo * N + hi`` keys of the canonical edges (cached).

        Canonical edges are lexsorted by (row, col), so the packed keys are
        sorted and every point/bulk edge query is one binary search.
        """
        if self._edge_keys is None:
            self._edge_keys = self._rows * np.int64(self._n_nodes) + self._cols
        return self._edge_keys

    def _find_edges(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Positions of canonical edge queries, and a found/missing mask."""
        keys = self._packed_keys()
        queries = lo * np.int64(self._n_nodes) + hi
        if keys.size == 0:
            return np.zeros(queries.shape, dtype=np.int64), np.zeros(
                queries.shape, dtype=bool
            )
        idx = np.searchsorted(keys, queries)
        idx = np.minimum(idx, keys.size - 1)
        return idx, keys[idx] == queries

    def has_edge(self, s: int, t: int) -> bool:
        """Whether the undirected edge ``(s, t)`` is present (binary search)."""
        if s == t or not 0 <= s < self._n_nodes or not 0 <= t < self._n_nodes:
            return False
        _, found = self._find_edges(
            np.array([min(s, t)], dtype=np.int64), np.array([max(s, t)], dtype=np.int64)
        )
        return bool(found[0])

    def has_edges(self, edges: Sequence[tuple[int, int]] | np.ndarray) -> np.ndarray:
        """Vectorised membership test for an ``(m, 2)`` array of edges.

        Orientation is irrelevant; one binary search over the canonical edge
        keys instead of one :meth:`has_edge` call per edge.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        valid = (lo >= 0) & (hi < self._n_nodes) & (lo != hi)
        _, found = self._find_edges(np.where(valid, lo, 0), np.where(valid, hi, 0))
        return found & valid

    def edge_weight(self, s: int, t: int) -> float:
        """Weight of edge ``(s, t)``; raises ``KeyError`` if absent.

        O(log |E|) via the cached canonical-key binary search (the same one
        backing :meth:`edge_weights`), not an O(|E|) scan.
        """
        if s == t or not 0 <= s < self._n_nodes or not 0 <= t < self._n_nodes:
            raise KeyError(f"edge ({s}, {t}) not in graph")
        lo, hi = min(s, t), max(s, t)
        idx, found = self._find_edges(
            np.array([lo], dtype=np.int64), np.array([hi], dtype=np.int64)
        )
        if not found[0]:
            raise KeyError(f"edge ({s}, {t}) not in graph")
        return float(self._weights[idx[0]])

    def edge_weights(self, edges: Sequence[tuple[int, int]] | np.ndarray) -> np.ndarray:
        """Vectorised weight lookup for an ``(m, 2)`` array of edges.

        Orientation is irrelevant.  All queried edges must be present; a
        single ``KeyError`` names the first missing edge.  This is the bulk
        counterpart of :meth:`edge_weight` — one binary search over the
        canonical edge arrays instead of one O(|E|) scan per edge.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        if edges.min() < 0 or edges.max() >= self._n_nodes:
            raise KeyError("edge endpoint out of range")
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        idx, found = self._find_edges(lo, hi)
        if not found.all():
            first = int(np.argmin(found))
            raise KeyError(f"edge ({int(lo[first])}, {int(hi[first])}) not in graph")
        return self._weights[idx].copy()

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted array of neighbours of ``node``."""
        adj = self.adjacency()
        return adj.indices[adj.indptr[node]:adj.indptr[node + 1]].copy()

    def is_connected(self) -> bool:
        """Whether the graph is connected (isolated nodes count as components)."""
        if self._n_nodes <= 1:
            return True
        n_components, _ = sp.csgraph.connected_components(self.adjacency(), directed=False)
        return n_components == 1

    def connected_components(self) -> tuple[int, np.ndarray]:
        """Number of connected components and per-node component labels."""
        return sp.csgraph.connected_components(self.adjacency(), directed=False)

    # ------------------------------------------------------------------
    # Derivation of new graphs
    # ------------------------------------------------------------------
    def add_edges(
        self,
        edges: Sequence[tuple[int, int]] | np.ndarray,
        weights: Sequence[float] | np.ndarray,
    ) -> "WeightedGraph":
        """Return a new graph with the given edges added.

        Weights of duplicated edges are summed (parallel conductances).
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if edges.shape[0] != weights.size:
            raise ValueError("number of edges and weights must match")
        rows = np.concatenate([self._rows, edges[:, 0]])
        cols = np.concatenate([self._cols, edges[:, 1]])
        w = np.concatenate([self._weights, weights])
        return WeightedGraph(self._n_nodes, rows, cols, w)

    def with_weights(self, weights: Sequence[float] | np.ndarray) -> "WeightedGraph":
        """Return a copy with edge weights replaced (same edge order)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != self._weights.shape:
            raise ValueError("weights must match the number of edges")
        return WeightedGraph(self._n_nodes, self._rows, self._cols, weights)

    def scaled(self, factor: float) -> "WeightedGraph":
        """Return a copy with all edge weights multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return self.with_weights(self._weights * factor)

    def subgraph(self, nodes: Sequence[int] | np.ndarray) -> "WeightedGraph":
        """Induced subgraph on ``nodes`` (relabelled 0..len(nodes)-1)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if np.unique(nodes).size != nodes.size:
            raise ValueError("subgraph nodes must be unique")
        mapping = -np.ones(self._n_nodes, dtype=np.int64)
        mapping[nodes] = np.arange(nodes.size)
        keep = (mapping[self._rows] >= 0) & (mapping[self._cols] >= 0)
        return WeightedGraph(
            nodes.size,
            mapping[self._rows[keep]],
            mapping[self._cols[keep]],
            self._weights[keep],
        )

    def largest_connected_component(self) -> tuple["WeightedGraph", np.ndarray]:
        """Return the induced subgraph of the largest component and its node ids."""
        n_components, labels = self.connected_components()
        if n_components == 1:
            return self, np.arange(self._n_nodes)
        counts = np.bincount(labels)
        nodes = np.where(labels == np.argmax(counts))[0]
        return self.subgraph(nodes), nodes

    def union(self, other: "WeightedGraph") -> "WeightedGraph":
        """Edge-union of two graphs on the same node set (weights summed)."""
        if other.n_nodes != self._n_nodes:
            raise ValueError("graphs must have the same number of nodes")
        return self.add_edges(other.edges, other.weights)

    def copy(self) -> "WeightedGraph":
        """Return a shallow copy."""
        return WeightedGraph(self._n_nodes, self._rows, self._cols, self._weights)

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` with ``weight`` edge attributes."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self._n_nodes))
        graph.add_weighted_edges_from(
            zip(self._rows.tolist(), self._cols.tolist(), self._weights.tolist())
        )
        return graph

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WeightedGraph(n_nodes={self._n_nodes}, n_edges={self.n_edges}, "
            f"density={self.density:.2f})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedGraph):
            return NotImplemented
        return (
            self._n_nodes == other._n_nodes
            and self.n_edges == other.n_edges
            and np.array_equal(self._rows, other._rows)
            and np.array_equal(self._cols, other._cols)
            and np.allclose(self._weights, other._weights)
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs used as dict keys rarely
        return hash((self._n_nodes, self.n_edges))
