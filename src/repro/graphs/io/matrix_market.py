"""Minimal Matrix-Market (.mtx) reader/writer for graph Laplacians and adjacencies.

The paper's test matrices come from the SuiteSparse collection, which is
distributed in Matrix-Market coordinate format.  This module implements the
subset of the format needed to exchange symmetric sparse matrices (pattern or
real, general or symmetric) so that users with access to the original matrices
can load them directly into the reproduction, and so that learned graphs can
be exported to standard tooling.

We intentionally implement the parser by hand (rather than calling
``scipy.io.mmread``) so that the library can round-trip graphs — as opposed to
raw matrices — including the convention of interpreting an SPD/Laplacian-like
matrix as a resistor network.
"""

from __future__ import annotations

import pathlib
from typing import TextIO

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import WeightedGraph
from repro.graphs.laplacian import is_valid_laplacian

__all__ = ["read_matrix_market", "write_matrix_market", "read_matrix_market_matrix"]


def _open(path_or_file: str | pathlib.Path | TextIO, mode: str):
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(path_or_file, mode), True


def read_matrix_market_matrix(path_or_file: str | pathlib.Path | TextIO) -> sp.csr_matrix:
    """Read a Matrix-Market coordinate file into a CSR matrix.

    Supports ``real``, ``integer`` and ``pattern`` fields with ``general`` or
    ``symmetric`` symmetry.  Array (dense) format and complex fields are not
    supported and raise :class:`ValueError`.
    """
    handle, should_close = _open(path_or_file, "r")
    try:
        header = handle.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError("not a MatrixMarket file (missing %%MatrixMarket header)")
        tokens = header.strip().split()
        if len(tokens) < 5:
            raise ValueError("malformed MatrixMarket header")
        _, obj, fmt, field, symmetry = tokens[:5]
        obj, fmt, field, symmetry = (s.lower() for s in (obj, fmt, field, symmetry))
        if obj != "matrix" or fmt != "coordinate":
            raise ValueError("only coordinate matrices are supported")
        if field not in {"real", "integer", "pattern"}:
            raise ValueError(f"unsupported field type: {field}")
        if symmetry not in {"general", "symmetric", "skew-symmetric"}:
            raise ValueError(f"unsupported symmetry: {symmetry}")

        # Skip comments.
        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        n_rows, n_cols, n_entries = (int(x) for x in line.split())

        rows = np.empty(n_entries, dtype=np.int64)
        cols = np.empty(n_entries, dtype=np.int64)
        data = np.empty(n_entries, dtype=np.float64)
        for i in range(n_entries):
            parts = handle.readline().split()
            rows[i] = int(parts[0]) - 1
            cols[i] = int(parts[1]) - 1
            data[i] = 1.0 if field == "pattern" else float(parts[2])
    finally:
        if should_close:
            handle.close()

    matrix = sp.coo_matrix((data, (rows, cols)), shape=(n_rows, n_cols))
    if symmetry == "symmetric":
        off = matrix.row != matrix.col
        mirror = sp.coo_matrix(
            (matrix.data[off], (matrix.col[off], matrix.row[off])), shape=matrix.shape
        )
        matrix = (matrix + mirror).tocoo()
    elif symmetry == "skew-symmetric":
        off = matrix.row != matrix.col
        mirror = sp.coo_matrix(
            (-matrix.data[off], (matrix.col[off], matrix.row[off])), shape=matrix.shape
        )
        matrix = (matrix + mirror).tocoo()
    return matrix.tocsr()


def read_matrix_market(path_or_file: str | pathlib.Path | TextIO) -> WeightedGraph:
    """Read a Matrix-Market file and interpret it as a resistor network.

    If the matrix is a valid graph Laplacian (or close to one, e.g. an SPD
    circuit matrix with small diagonal loading), the off-diagonal structure is
    used: edge weights are the negated off-diagonal entries.  Otherwise the
    matrix is treated as a weighted adjacency matrix.
    """
    matrix = read_matrix_market_matrix(path_or_file)
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError("graph matrices must be square")
    off_diag = matrix - sp.diags(matrix.diagonal())
    if off_diag.nnz and off_diag.min() < 0:
        # Laplacian-like: negative off-diagonals encode conductances.
        return WeightedGraph.from_laplacian(matrix)
    return WeightedGraph.from_adjacency(matrix)


def write_matrix_market(
    path_or_file: str | pathlib.Path | TextIO,
    graph: WeightedGraph,
    *,
    representation: str = "laplacian",
    comment: str | None = None,
) -> None:
    """Write a graph in Matrix-Market symmetric coordinate format.

    Parameters
    ----------
    representation:
        ``"laplacian"`` writes ``L = D - W`` (lower triangle), matching how
        circuit matrices are stored in SuiteSparse; ``"adjacency"`` writes the
        weighted adjacency lower triangle.
    """
    if representation not in {"laplacian", "adjacency"}:
        raise ValueError("representation must be 'laplacian' or 'adjacency'")
    matrix = graph.laplacian() if representation == "laplacian" else graph.adjacency()
    lower = sp.tril(matrix, k=0).tocoo()
    handle, should_close = _open(path_or_file, "w")
    try:
        handle.write("%%MatrixMarket matrix coordinate real symmetric\n")
        if comment:
            for line in comment.splitlines():
                handle.write(f"% {line}\n")
        handle.write(f"{matrix.shape[0]} {matrix.shape[1]} {lower.nnz}\n")
        for i, j, v in zip(lower.row, lower.col, lower.data):
            handle.write(f"{i + 1} {j + 1} {v:.17g}\n")
    finally:
        if should_close:
            handle.close()
