"""Named test-case registry mirroring the paper's benchmark suite.

The paper evaluates SGL on five graphs:

==============  ==========  ==========  =========
Name            |V| (paper) |E| (paper) density
==============  ==========  ==========  =========
``2d_mesh``     10,000      20,000      2.00
``airfoil``     4,253       12,289      2.89
``crack``       10,240      30,380      2.97
``fe_4elt2``    11,143      32,818      2.95
``g2_circuit``  150,102     288,286     1.92
==============  ==========  ==========  =========

The original matrices are SuiteSparse downloads; the registry below maps each
name to the synthetic generator of the same structural class (see DESIGN.md,
"substitutions") at three scales:

* ``tiny``  -- a few hundred nodes, for unit tests,
* ``small`` -- a few thousand nodes, default for examples and benchmarks,
* ``paper`` -- the paper's node count (long-running; provided for users who
  want to push to full scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.graphs.graph import WeightedGraph
from repro.graphs.generators import (
    airfoil_mesh,
    circuit_grid,
    cracked_plate_mesh,
    fe_mesh,
    grid_2d,
)

__all__ = ["TestCase", "get_test_case", "list_test_cases", "PAPER_SIZES"]

#: Node / edge counts reported in the paper for each test case.
PAPER_SIZES: dict[str, tuple[int, int]] = {
    "2d_mesh": (10_000, 20_000),
    "airfoil": (4_253, 12_289),
    "crack": (10_240, 30_380),
    "fe_4elt2": (11_143, 32_818),
    "g2_circuit": (150_102, 288_286),
}


@dataclass(frozen=True)
class TestCase:
    """A named benchmark graph with provenance metadata."""

    name: str
    graph: WeightedGraph
    scale: str
    description: str
    paper_nodes: int
    paper_edges: int

    @property
    def density(self) -> float:
        """Density ``|E|/|V|`` of the generated graph."""
        return self.graph.density


def _builders() -> dict[str, dict[str, Callable[[], WeightedGraph]]]:
    return {
        "2d_mesh": {
            "tiny": lambda: grid_2d(15, 15),
            "small": lambda: grid_2d(40, 40),
            "medium": lambda: grid_2d(70, 70),
            "paper": lambda: grid_2d(100, 100),
        },
        "airfoil": {
            "tiny": lambda: airfoil_mesh(260, seed=1),
            "small": lambda: airfoil_mesh(1_500, seed=1),
            "medium": lambda: airfoil_mesh(3_000, seed=1),
            "paper": lambda: airfoil_mesh(4_253, seed=1),
        },
        "crack": {
            "tiny": lambda: cracked_plate_mesh(260, seed=2),
            "small": lambda: cracked_plate_mesh(1_600, seed=2),
            "medium": lambda: cracked_plate_mesh(4_000, seed=2),
            "paper": lambda: cracked_plate_mesh(10_240, seed=2),
        },
        "fe_4elt2": {
            "tiny": lambda: fe_mesh(260, seed=3),
            "small": lambda: fe_mesh(1_600, seed=3),
            "medium": lambda: fe_mesh(4_000, seed=3),
            "paper": lambda: fe_mesh(11_143, seed=3),
        },
        "g2_circuit": {
            "tiny": lambda: circuit_grid(16, 16, seed=4),
            "small": lambda: circuit_grid(40, 40, seed=4),
            "medium": lambda: circuit_grid(80, 80, seed=4),
            "paper": lambda: circuit_grid(388, 388, seed=4),
        },
    }


_DESCRIPTIONS = {
    "2d_mesh": "Regular 2-D grid resistor mesh (paper: '2D mesh').",
    "airfoil": "Airfoil FEM triangulation analogue (paper: 'airfoil').",
    "crack": "Cracked-plate FEM triangulation analogue (paper: 'crack').",
    "fe_4elt2": "Graded FEM triangulation analogue (paper: 'fe_4elt2').",
    "g2_circuit": "Irregular circuit-grid analogue (paper: 'G2_circuit').",
}


def list_test_cases() -> list[str]:
    """Names of the registered paper test cases."""
    return sorted(_builders())


def get_test_case(name: str, scale: str = "small") -> TestCase:
    """Build the named test case at the requested scale.

    Parameters
    ----------
    name:
        One of :func:`list_test_cases` (e.g. ``"airfoil"``).
    scale:
        ``"tiny"``, ``"small"``, ``"medium"`` or ``"paper"``.
    """
    builders = _builders()
    if name not in builders:
        raise KeyError(f"unknown test case {name!r}; available: {list_test_cases()}")
    scales = builders[name]
    if scale not in scales:
        raise KeyError(f"unknown scale {scale!r}; available: {sorted(scales)}")
    paper_nodes, paper_edges = PAPER_SIZES[name]
    return TestCase(
        name=name,
        graph=scales[scale](),
        scale=scale,
        description=_DESCRIPTIONS[name],
        paper_nodes=paper_nodes,
        paper_edges=paper_edges,
    )
