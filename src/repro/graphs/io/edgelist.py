"""Plain-text weighted edge-list I/O (``s t weight`` per line)."""

from __future__ import annotations

import pathlib
from typing import TextIO

import numpy as np

from repro.graphs.graph import WeightedGraph

__all__ = ["read_edgelist", "write_edgelist"]


def _open(path_or_file: str | pathlib.Path | TextIO, mode: str):
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(path_or_file, mode), True


def write_edgelist(
    path_or_file: str | pathlib.Path | TextIO,
    graph: WeightedGraph,
    *,
    header: bool = True,
) -> None:
    """Write ``graph`` as whitespace-separated ``s t weight`` lines.

    With ``header=True`` the first non-comment line is ``n_nodes n_edges`` so
    isolated nodes survive a round trip.
    """
    handle, should_close = _open(path_or_file, "w")
    try:
        if header:
            handle.write(f"# repro edge list\n{graph.n_nodes} {graph.n_edges}\n")
        for s, t, w in zip(graph.rows, graph.cols, graph.weights):
            handle.write(f"{int(s)} {int(t)} {w:.17g}\n")
    finally:
        if should_close:
            handle.close()


def read_edgelist(path_or_file: str | pathlib.Path | TextIO) -> WeightedGraph:
    """Read an edge list written by :func:`write_edgelist` (or any ``s t [w]`` file)."""
    handle, should_close = _open(path_or_file, "r")
    try:
        lines = [ln.strip() for ln in handle if ln.strip() and not ln.lstrip().startswith("#")]
    finally:
        if should_close:
            handle.close()
    if not lines:
        return WeightedGraph(0)

    n_nodes = None
    start = 0
    first = lines[0].split()
    if len(first) == 2 and first[0].isdigit() and first[1].isdigit():
        # Header line: n_nodes n_edges.
        n_nodes = int(first[0])
        start = 1

    rows, cols, weights = [], [], []
    for line in lines[start:]:
        parts = line.split()
        rows.append(int(parts[0]))
        cols.append(int(parts[1]))
        weights.append(float(parts[2]) if len(parts) > 2 else 1.0)
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if n_nodes is None:
        n_nodes = int(max(rows.max(initial=-1), cols.max(initial=-1)) + 1) if rows.size else 0
    return WeightedGraph(n_nodes, rows, cols, weights)
