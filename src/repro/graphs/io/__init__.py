"""Graph I/O: Matrix-Market and edge-list formats, plus the test-suite registry."""

from repro.graphs.io.matrix_market import read_matrix_market, write_matrix_market
from repro.graphs.io.edgelist import read_edgelist, write_edgelist
from repro.graphs.io.suite import TestCase, get_test_case, list_test_cases

__all__ = [
    "read_matrix_market",
    "write_matrix_market",
    "read_edgelist",
    "write_edgelist",
    "TestCase",
    "get_test_case",
    "list_test_cases",
]
