"""repro -- a full reproduction of "SGL: Spectral Graph Learning from Measurements".

The package learns ultra-sparse resistor networks (weighted undirected graphs)
from linear voltage/current measurements, following Feng's DAC 2021 paper, and
ships every substrate the algorithm relies on: graph generators, Laplacian
solvers and eigensolvers, kNN/MST construction, spectral embedding, metrics,
baselines and an experiment harness reproducing every figure of the paper.

Quickstart
----------
>>> from repro import SGLearner, simulate_measurements
>>> from repro.graphs.generators import grid_2d
>>> truth = grid_2d(20, 20)                                    # ground-truth network
>>> data = simulate_measurements(truth, n_measurements=50)     # voltages + currents
>>> result = SGLearner(beta=0.01).fit(data)                    # learn it back
>>> round(result.graph.density, 2) <= 1.6
True
"""

from repro.core import SGLConfig, SGLearner, SGLResult, learn_graph
from repro.graphs import WeightedGraph
from repro.measurements import MeasurementSet, simulate_measurements

__version__ = "1.2.0"

__all__ = [
    "SGLConfig",
    "SGLearner",
    "SGLResult",
    "learn_graph",
    "WeightedGraph",
    "MeasurementSet",
    "simulate_measurements",
    "__version__",
]
