"""One-stop observability bundle: tracer + metrics + resource sampler.

:class:`ObsSession` is what the benchmark harness and the serve CLI create
when the user passes ``--trace DIR``: entering the session activates its
tracer for the current context and starts the resource sampler; leaving it
stops sampling; :meth:`~ObsSession.save` persists the whole picture as four
sibling artifacts::

    <dir>/<prefix>.jsonl          hierarchical spans, one JSON object/line
    <dir>/<prefix>_chrome.json    the same trace for chrome://tracing
    <dir>/<prefix>_metrics.json   MetricsRegistry snapshot
    <dir>/<prefix>_resources.json resource samples + summary

Examples
--------
>>> import tempfile
>>> from pathlib import Path
>>> from repro.obs import ObsSession, span
>>> with ObsSession(sample_resources=False) as session:
...     with span("fit"):
...         session.metrics.counter("iterations").inc()
>>> paths = session.save(tempfile.mkdtemp(), prefix="demo")
>>> sorted(path.name for path in paths.values())
['demo.jsonl', 'demo_chrome.json', 'demo_metrics.json']
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.resources import ResourceSampler
from repro.obs.tracing import Tracer, activate

__all__ = ["ObsSession"]


class ObsSession:
    """Bundle of :class:`~repro.obs.Tracer`, :class:`~repro.obs.MetricsRegistry`
    and :class:`~repro.obs.ResourceSampler` with one lifecycle.

    Parameters
    ----------
    sample_resources:
        Start the background :class:`~repro.obs.ResourceSampler` while the
        session is active (default True).
    resource_interval_s:
        Sampler poll interval.
    """

    def __init__(
        self,
        *,
        sample_resources: bool = True,
        resource_interval_s: float = 0.25,
    ) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.resources: ResourceSampler | None = (
            ResourceSampler(resource_interval_s) if sample_resources else None
        )
        self._activation = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "ObsSession":
        self._activation = activate(self.tracer)
        self._activation.__enter__()
        if self.resources is not None:
            self.resources.start()
        return self

    def __exit__(self, *exc_info) -> None:
        if self.resources is not None:
            self.resources.stop()
        if self._activation is not None:
            self._activation.__exit__(*exc_info)
            self._activation = None

    # ------------------------------------------------------------------
    def save(self, directory: str | Path, *, prefix: str = "trace") -> dict[str, Path]:
        """Persist trace, metrics and resource artifacts under ``directory``.

        Returns the written paths keyed by kind (``trace`` / ``chrome`` /
        ``metrics`` / ``resources``).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = {
            "trace": self.tracer.export_jsonl(directory / f"{prefix}.jsonl"),
            "chrome": self.tracer.export_chrome(directory / f"{prefix}_chrome.json"),
            "metrics": self.metrics.save(directory / f"{prefix}_metrics.json"),
        }
        if self.resources is not None:
            paths["resources"] = self.resources.save(
                directory / f"{prefix}_resources.json"
            )
        return paths
