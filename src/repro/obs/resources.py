"""Background resource telemetry: RSS, GC activity, thread count.

A :class:`ResourceSampler` polls cheap process-level signals on a daemon
thread — resident set size (``/proc/self/statm`` where available, with a
:mod:`resource`-module fallback), cumulative garbage-collector collection
counts per generation, and the live thread count — and keeps a bounded list
of timestamped samples plus a JSON-ready :meth:`~ResourceSampler.summary`.

It is deliberately *not* a profiler: the point is to catch the shape of a
run (does RSS ramp during the V-cycle? does the GC churn during serving?)
for a few samples per second of overhead, and to land that context next to
the trace and metrics artifacts ``repro.bench --trace`` writes.

Examples
--------
>>> from repro.obs import ResourceSampler
>>> with ResourceSampler(interval_s=0.01) as sampler:
...     _ = sum(range(100_000))
>>> summary = sampler.summary()
>>> summary["n_samples"] >= 1 and summary["rss_max_bytes"] > 0
True
"""

from __future__ import annotations

import gc
import json
import os
import threading
import time
from pathlib import Path

__all__ = ["ResourceSampler", "rss_bytes"]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes() -> int:
    """Resident set size of this process in bytes (0 if undeterminable)."""
    try:
        with open("/proc/self/statm") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; normalise towards bytes.
        return int(peak) * (1 if peak > 1 << 32 else 1024)
    except Exception:  # pragma: no cover - platform without rusage
        return 0


def _gc_collections() -> list[int]:
    return [int(stat["collections"]) for stat in gc.get_stats()]


class ResourceSampler:
    """Sample process resources on a background daemon thread.

    Parameters
    ----------
    interval_s:
        Seconds between samples (default 0.25 — a few samples per second
        of traced work at negligible cost).
    max_samples:
        Bound on the kept sample list; once full, only the summary
        aggregates keep updating.

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(self, interval_s: float = 0.25, *, max_samples: int = 10_000) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = float(interval_s)
        self.max_samples = int(max_samples)
        self.samples: list[dict] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._start_time: float | None = None
        self._gc_at_start: list[int] = []
        self._rss_max = 0

    # ------------------------------------------------------------------
    def _sample_once(self) -> None:
        now = time.perf_counter() - (self._start_time or 0.0)
        sample = {
            "t": now,
            "rss_bytes": rss_bytes(),
            "n_threads": threading.active_count(),
            "gc_collections": _gc_collections(),
        }
        with self._lock:
            self._rss_max = max(self._rss_max, sample["rss_bytes"])
            if len(self.samples) < self.max_samples:
                self.samples.append(sample)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._sample_once()

    def start(self) -> "ResourceSampler":
        """Begin sampling (idempotent)."""
        if self._thread is not None:
            return self
        self._start_time = time.perf_counter()
        self._gc_at_start = _gc_collections()
        self._stop.clear()
        self._sample_once()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling and take one final sample (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        self._sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-ready aggregate view of the collected samples."""
        with self._lock:
            samples = list(self.samples)
            rss_max = self._rss_max
        if not samples:
            return {"n_samples": 0}
        rss = [s["rss_bytes"] for s in samples]
        gc_end = samples[-1]["gc_collections"]
        gc_delta = [
            end - start for start, end in zip(self._gc_at_start, gc_end)
        ] if self._gc_at_start else gc_end
        return {
            "n_samples": len(samples),
            "duration_s": samples[-1]["t"] - samples[0]["t"],
            "rss_max_bytes": rss_max,
            "rss_mean_bytes": sum(rss) // len(rss),
            "rss_last_bytes": rss[-1],
            "gc_collections_delta": gc_delta,
            "threads_max": max(s["n_threads"] for s in samples),
        }

    def save(self, path: str | Path) -> Path:
        """Write ``{"summary": ..., "samples": [...]}`` as JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            samples = list(self.samples)
        payload = {"summary": self.summary(), "samples": samples}
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path
