"""Render traces and metrics for humans: ``python -m repro.obs report``.

Two views over a JSONL trace:

* an **aggregate table** — per span *name*: call count, total time, and
  *self* time (total minus the time covered by child spans), sorted by
  self time descending.  This is the "where does the time actually go"
  answer ROADMAP items 1 and 4 need: a stage whose total is large but
  whose self time is small is just a wrapper around its children;
* a **span tree** — the hierarchy itself, children indented under parents
  in start order, with durations, self times and attributes.

When a metrics snapshot sits next to the trace (``*_metrics.json``, as
written by :meth:`repro.obs.ObsSession.save`), its histograms are rendered
as a quantile table and its counters/gauges listed.

Examples
--------
>>> from repro.obs import Tracer
>>> from repro.obs.report import aggregate_spans, format_aggregate
>>> tracer = Tracer()
>>> with tracer.span("fit"):
...     with tracer.span("knn"):
...         pass
>>> rows = aggregate_spans(tracer.spans())
>>> sorted(row.name for row in rows)   # order is by self time, noise-prone
['fit', 'knn']
>>> print(format_aggregate(rows).splitlines()[0].split())
['name', 'calls', 'total_s', 'self_s', 'self_%']
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.tracing import Span, load_spans

__all__ = [
    "SpanNode",
    "aggregate_spans",
    "build_tree",
    "format_aggregate",
    "format_histograms",
    "format_tree",
    "main",
    "self_times",
]


@dataclass
class SpanNode:
    """One span plus its children, as rebuilt from a flat trace."""

    span: Span
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def self_seconds(self) -> float:
        """Span duration not covered by its children."""
        return max(
            0.0, self.span.duration - sum(c.span.duration for c in self.children)
        )


def build_tree(spans: list[Span]) -> list[SpanNode]:
    """Rebuild the span hierarchy; returns the root nodes in start order.

    Spans whose parent is missing from the list (e.g. a truncated trace)
    are promoted to roots rather than dropped.
    """
    nodes = {span.span_id: SpanNode(span) for span in spans}
    roots: list[SpanNode] = []
    for span in spans:
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id is not None else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.span.start)
    roots.sort(key=lambda node: node.span.start)
    return roots


def self_times(spans: list[Span]) -> dict[int, float]:
    """Self time (seconds) per ``span_id``."""
    out: dict[int, float] = {}

    def visit(node: SpanNode) -> None:
        out[node.span.span_id] = node.self_seconds
        for child in node.children:
            visit(child)

    for root in build_tree(spans):
        visit(root)
    return out


@dataclass
class AggregateRow:
    """Per-span-name totals for the aggregate table."""

    name: str
    calls: int
    total_seconds: float
    self_seconds: float


def aggregate_spans(spans: list[Span]) -> list[AggregateRow]:
    """Per-name call counts and total/self seconds, self-time-sorted."""
    selfs = self_times(spans)
    totals: dict[str, AggregateRow] = {}
    for span in spans:
        row = totals.setdefault(span.name, AggregateRow(span.name, 0, 0.0, 0.0))
        row.calls += 1
        row.total_seconds += span.duration
        row.self_seconds += selfs.get(span.span_id, span.duration)
    return sorted(totals.values(), key=lambda row: -row.self_seconds)


def format_aggregate(rows: list[AggregateRow]) -> str:
    """Fixed-width aggregate table, one line per span name."""
    grand_self = sum(row.self_seconds for row in rows) or 1.0
    width = max([len(row.name) for row in rows] + [4])
    lines = [
        f"{'name':<{width}}  {'calls':>6}  {'total_s':>9}  {'self_s':>9}  {'self_%':>6}"
    ]
    for row in rows:
        lines.append(
            f"{row.name:<{width}}  {row.calls:>6d}  {row.total_seconds:>9.4f}  "
            f"{row.self_seconds:>9.4f}  {100 * row.self_seconds / grand_self:>5.1f}%"
        )
    return "\n".join(lines)


def format_tree(
    spans: list[Span],
    *,
    max_depth: int | None = None,
    min_seconds: float = 0.0,
    max_children: int = 40,
) -> str:
    """Indented span-tree rendering (children in start order)."""
    lines: list[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        span = node.span
        if span.duration < min_seconds and depth > 0:
            return
        attrs = ""
        if span.attributes:
            inner = ", ".join(
                f"{key}={value}" for key, value in sorted(span.attributes.items())
            )
            attrs = f"  [{inner}]"
        lines.append(
            f"{'  ' * depth}{span.name}  {span.duration:.4f}s "
            f"(self {node.self_seconds:.4f}s){attrs}"
        )
        if max_depth is not None and depth + 1 > max_depth:
            return
        shown = node.children[:max_children]
        for child in shown:
            visit(child, depth + 1)
        hidden = len(node.children) - len(shown)
        if hidden > 0:
            lines.append(f"{'  ' * (depth + 1)}... {hidden} more child span(s)")

    for root in build_tree(spans):
        visit(root, 0)
    return "\n".join(lines)


def format_histograms(snapshot: dict) -> str:
    """Histogram/counter/gauge summary of a metrics snapshot."""
    lines: list[str] = []
    histograms = snapshot.get("histograms", {})
    if histograms:
        width = max(len(name) for name in histograms)
        lines.append(
            f"{'histogram':<{width}}  {'count':>8}  {'mean':>10}  "
            f"{'p50':>10}  {'p95':>10}  {'p99':>10}  {'max':>10}"
        )
        for name, data in sorted(histograms.items()):
            lines.append(
                f"{name:<{width}}  {data['count']:>8d}  {data['mean']:>10.4f}  "
                f"{data['p50']:>10.4f}  {data['p95']:>10.4f}  "
                f"{data['p99']:>10.4f}  {data['max']:>10.4f}"
            )
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name} = {value}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges (last / max):")
        for name, data in sorted(gauges.items()):
            lines.append(f"  {name} = {data['value']:g} / {data['max']:g}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
def _metrics_next_to(trace_path: Path) -> Path | None:
    """The conventional sibling metrics snapshot of a trace, if present."""
    stem = trace_path.stem
    candidate = trace_path.with_name(f"{stem}_metrics.json")
    return candidate if candidate.exists() else None


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.obs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect repro.obs trace and metrics artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser(
        "report", help="self-time table, span tree and histogram summaries"
    )
    p_report.add_argument("trace", help="trace .jsonl path")
    p_report.add_argument("--metrics", default=None, metavar="PATH",
                          help="metrics snapshot JSON "
                          "(default: <trace>_metrics.json when present)")
    p_report.add_argument("--depth", type=int, default=3,
                          help="span-tree depth limit (default 3; 0 = roots only)")
    p_report.add_argument("--min-ms", type=float, default=0.0,
                          help="hide tree spans shorter than this (default 0)")
    p_report.add_argument("--no-tree", action="store_true",
                          help="only print the aggregate table")

    p_chrome = sub.add_parser(
        "chrome", help="convert a .jsonl trace to the chrome://tracing format"
    )
    p_chrome.add_argument("trace", help="trace .jsonl path")
    p_chrome.add_argument("out", nargs="?", default=None,
                          help="output path (default: <trace>_chrome.json)")
    return parser


def _cmd_report(args) -> int:
    try:
        spans = load_spans(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not spans:
        print(f"error: {args.trace} holds no spans", file=sys.stderr)
        return 2
    wall = max(span.end for span in spans) - min(span.start for span in spans)
    print(f"{len(spans)} span(s) over {wall:.4f}s wall  ({args.trace})")
    print()
    print(format_aggregate(aggregate_spans(spans)))
    if not args.no_tree:
        print()
        print(
            format_tree(spans, max_depth=args.depth, min_seconds=args.min_ms / 1e3)
        )
    metrics_path = args.metrics or _metrics_next_to(Path(args.trace))
    if metrics_path is not None:
        try:
            snapshot = json.loads(Path(metrics_path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: {metrics_path}: {exc}", file=sys.stderr)
            return 2
        rendered = format_histograms(snapshot)
        if rendered:
            print()
            print(f"metrics ({metrics_path}):")
            print(rendered)
    return 0


def _cmd_chrome(args) -> int:
    from repro.obs.tracing import Tracer

    try:
        spans = load_spans(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = args.out or str(Path(args.trace).with_suffix("")) + "_chrome.json"
    tracer = Tracer()
    tracer.epoch = 0.0
    with tracer._lock:
        tracer._spans = list(spans)
    tracer.export_chrome(out)
    print(f"wrote {out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "chrome":
        return _cmd_chrome(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
