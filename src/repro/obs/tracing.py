"""Hierarchical spans: the tracing half of :mod:`repro.obs`.

A :class:`Span` is one named, timed interval with a parent — together they
form the call tree of a traced run (a ``fit``, a benchmark suite, a serving
session).  The :class:`Tracer` hands out spans, tracks the *current* span in
a :mod:`contextvars` variable so nesting is automatic — including across
``await`` points and, when a captured :class:`contextvars.Context` is
carried along (as :class:`repro.serve.MicroBatcher` does), across the
asyncio-to-thread-pool hop — and collects finished spans thread-safely.

The tracer is *ambient*: components never take a tracer argument.  They call
the module-level :func:`span` / :func:`set_attributes` helpers, which are
near-free no-ops until someone activates a tracer::

    >>> from repro.obs import Tracer, activate, span
    >>> tracer = Tracer()
    >>> with activate(tracer):
    ...     with span("fit"):
    ...         with span("knn", backend="kdtree"):
    ...             pass
    >>> [s.name for s in tracer.spans()]
    ['knn', 'fit']
    >>> child, root = tracer.spans()
    >>> child.parent_id == root.span_id
    True

Exports: newline-delimited JSON (one span per line, replayable with
:func:`load_spans`) and the Chrome ``about://tracing`` / Perfetto event
format (:meth:`Tracer.export_chrome`).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "current_span",
    "current_tracer",
    "load_spans",
    "set_attributes",
    "span",
]

#: The ambient tracer (None = tracing disabled; every helper is a no-op).
_ACTIVE_TRACER: ContextVar["Tracer | None"] = ContextVar(
    "repro_obs_tracer", default=None
)
#: The innermost open span of the current context (task / thread).
_CURRENT_SPAN: ContextVar["Span | None"] = ContextVar(
    "repro_obs_span", default=None
)


@dataclass
class Span:
    """One finished (or in-flight) named interval of a trace.

    ``start`` is seconds since the owning tracer's epoch (a monotonic
    :func:`time.perf_counter` origin captured when the tracer was created),
    so spans from one tracer are directly comparable and exportable.
    """

    trace_id: str
    span_id: int
    parent_id: int | None
    name: str
    start: float
    duration: float = 0.0
    thread: str = ""
    attributes: dict = field(default_factory=dict)
    _token: object = field(default=None, repr=False, compare=False)

    @property
    def end(self) -> float:
        """Seconds since the tracer epoch at which the span finished."""
        return self.start + self.duration

    def as_dict(self) -> dict:
        """JSON-ready mapping (one JSONL line)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "thread": self.thread,
            "attributes": self.attributes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Inverse of :meth:`as_dict`."""
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=int(data["span_id"]),
            parent_id=(
                int(data["parent_id"]) if data.get("parent_id") is not None else None
            ),
            name=str(data["name"]),
            start=float(data["start"]),
            duration=float(data["duration"]),
            thread=str(data.get("thread", "")),
            attributes=dict(data.get("attributes", {})),
        )


class Tracer:
    """Thread-safe producer and collector of hierarchical spans.

    Examples
    --------
    >>> tracer = Tracer()
    >>> with tracer.span("outer") as outer:
    ...     with tracer.span("inner", detail=1) as inner:
    ...         pass
    >>> inner.parent_id == outer.span_id and outer.parent_id is None
    True
    >>> inner.attributes
    {'detail': 1}
    """

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id or os.urandom(8).hex()
        self.epoch = time.perf_counter()
        #: Wall-clock time matching ``epoch`` (for humans reading exports).
        self.epoch_wall = time.time()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    def begin(self, name: str, attributes: dict | None = None,
              *, start: float | None = None) -> Span:
        """Open a span as a child of the context's current span.

        ``start`` (raw :func:`time.perf_counter` seconds) backdates the
        span; default is now.  The span becomes the context's current span
        until :meth:`finish` — call both from the same context (the
        ``with``-style :meth:`span` does this for you).
        """
        parent = _CURRENT_SPAN.get()
        now = time.perf_counter() if start is None else start
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        sp = Span(
            trace_id=self.trace_id,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start=now - self.epoch,
            thread=threading.current_thread().name,
            attributes=dict(attributes or {}),
        )
        sp._token = _CURRENT_SPAN.set(sp)
        return sp

    def finish(self, span: Span, *, end: float | None = None) -> Span:
        """Close a span opened with :meth:`begin` and collect it."""
        now = time.perf_counter() if end is None else end
        span.duration = max(0.0, now - self.epoch - span.start)
        if span._token is not None:
            try:
                _CURRENT_SPAN.reset(span._token)
            except ValueError:  # finished from a different context
                _CURRENT_SPAN.set(None)
            span._token = None
        with self._lock:
            self._spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attributes):
        """Context manager: open a child span, close it on exit."""
        sp = self.begin(name, attributes)
        try:
            yield sp
        finally:
            self.finish(sp)

    def record(
        self,
        name: str,
        start: float,
        end: float,
        attributes: dict | None = None,
        *,
        parent: Span | None = None,
    ) -> Span:
        """Log an already-measured interval as a completed span.

        ``start`` / ``end`` are raw :func:`time.perf_counter` readings.
        ``parent`` overrides the context's current span (useful when the
        interval is attributed to a request whose context is long gone,
        as the micro-batcher does for queue waits).
        """
        if parent is None:
            parent = _CURRENT_SPAN.get()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            sp = Span(
                trace_id=self.trace_id,
                span_id=span_id,
                parent_id=parent.span_id if parent is not None else None,
                name=name,
                start=start - self.epoch,
                duration=max(0.0, end - start),
                thread=threading.current_thread().name,
                attributes=dict(attributes or {}),
            )
            self._spans.append(sp)
        return sp

    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        """Snapshot of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # ------------------------------------------------------------------
    def export_jsonl(self, path: str | Path) -> Path:
        """Write one JSON object per span (ordered by start time)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        ordered = sorted(self.spans(), key=lambda s: s.start)
        with path.open("w") as fh:
            for sp in ordered:
                fh.write(json.dumps(sp.as_dict(), sort_keys=True) + "\n")
        return path

    def export_chrome(self, path: str | Path) -> Path:
        """Write the Chrome ``about://tracing`` / Perfetto event format.

        Load the result via ``chrome://tracing`` or https://ui.perfetto.dev
        — complete events (``"ph": "X"``) with microsecond timestamps, one
        row per thread name.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tids: dict[str, int] = {}
        events = []
        for sp in sorted(self.spans(), key=lambda s: s.start):
            tid = tids.setdefault(sp.thread, len(tids) + 1)
            events.append(
                {
                    "name": sp.name,
                    "ph": "X",
                    "ts": sp.start * 1e6,
                    "dur": sp.duration * 1e6,
                    "pid": 1,
                    "tid": tid,
                    "args": sp.attributes,
                }
            )
        for thread, tid in tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": thread or f"thread-{tid}"},
                }
            )
        path.write_text(json.dumps({"traceEvents": events}, indent=1) + "\n")
        return path


def load_spans(path: str | Path) -> list[Span]:
    """Read spans back from a JSONL trace written by :meth:`Tracer.export_jsonl`.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro.obs import Tracer, load_spans
    >>> tracer = Tracer()
    >>> with tracer.span("fit"):
    ...     pass
    >>> path = os.path.join(tempfile.mkdtemp(), "trace.jsonl")
    >>> _ = tracer.export_jsonl(path)
    >>> [s.name for s in load_spans(path)]
    ['fit']
    """
    spans = []
    with Path(path).open() as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(Span.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{line_no}: not a span record ({exc})")
    return spans


# ----------------------------------------------------------------------
# Ambient-tracer helpers (the integration surface the rest of repro uses)
# ----------------------------------------------------------------------
def current_tracer() -> Tracer | None:
    """The tracer activated in this context, or ``None`` (tracing off)."""
    return _ACTIVE_TRACER.get()


def current_span() -> Span | None:
    """The innermost open span of this context, or ``None``."""
    return _CURRENT_SPAN.get()


@contextmanager
def activate(tracer: Tracer | None):
    """Make ``tracer`` the ambient tracer for the duration of the block."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)


@contextmanager
def span(name: str, **attributes):
    """Open a span on the ambient tracer; a cheap no-op when tracing is off.

    Examples
    --------
    >>> from repro.obs import span
    >>> with span("untraced"):      # no active tracer: nothing recorded
    ...     pass
    """
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        yield None
        return
    sp = tracer.begin(name, attributes)
    try:
        yield sp
    finally:
        tracer.finish(sp)


def set_attributes(**attributes) -> None:
    """Attach attributes to the innermost open span (no-op when untraced)."""
    sp = _CURRENT_SPAN.get()
    if sp is not None:
        sp.attributes.update(attributes)
