"""Counters, gauges and fixed-bucket histograms: the metrics half of
:mod:`repro.obs`.

A :class:`MetricsRegistry` is a thread-safe, dependency-free bag of named
instruments with a JSON-ready :meth:`~MetricsRegistry.snapshot` and an exact
:meth:`~MetricsRegistry.merge` — snapshots from worker processes (the
``repro.bench run --jobs N`` pool) fold into one registry because every
instrument is a sum-like object: counters add, gauges keep the max, and
histograms with identical bucket bounds add bucket-wise.

Histograms use *fixed* bucket upper bounds (Prometheus-style ``le`` edges),
so p50/p95/p99 come from the bucket counts by linear interpolation — no
per-sample storage, O(1) memory under any load, and quantiles that stay
meaningful after merging.

Examples
--------
>>> from repro.obs import MetricsRegistry
>>> registry = MetricsRegistry()
>>> registry.counter("serve.requests").inc(3)
>>> hist = registry.histogram("latency_ms", buckets=(1.0, 10.0, 100.0))
>>> for value in (0.5, 2.0, 3.0, 50.0):
...     hist.observe(value)
>>> hist.count, hist.counts
(4, [1, 2, 1, 0])
>>> snap = registry.snapshot()
>>> snap["counters"]["serve.requests"]
3
>>> merged = MetricsRegistry()
>>> merged.merge(snap); merged.merge(snap)
>>> merged.counter("serve.requests").value
6
"""

from __future__ import annotations

import bisect
import json
import threading
from pathlib import Path

try:  # numpy accelerates batch observation; the fallback is pure-python
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a repo-wide dependency
    _np = None

__all__ = [
    "Counter",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram edges for latencies in *milliseconds*: 1 µs .. 60 s,
#: roughly 2.5x apart — fine enough that interpolated p99s track numpy
#: percentiles to within a bucket width across six orders of magnitude.
DEFAULT_TIME_BUCKETS_MS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 30_000.0, 60_000.0,
)

#: Default histogram edges for sizes/counts (batch occupancy, levels, ...).
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
)


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    def inc_relaxed(self, amount: float = 1.0) -> None:
        """Lock-free increment for single-writer counters.

        Correct only while exactly one thread ever increments this counter
        (e.g. the event-loop thread on a serving hot path); concurrent
        readers may observe a value that lags by the in-flight update,
        which snapshots tolerate.  Two concurrent *writers* would lose
        updates — use :meth:`inc` there.
        """
        self._value += amount

    @property
    def value(self) -> float:
        """Current total (integral totals come back as ints)."""
        if float(self._value).is_integer():
            return int(self._value)
        return self._value


class Gauge:
    """A last-write-wins value (RSS, queue depth, ...)."""

    __slots__ = ("name", "_value", "_max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._max = float("-inf")
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current value."""
        with self._lock:
            self._value = float(value)
            self._max = max(self._max, float(value))

    @property
    def value(self) -> float:
        """Most recently set value."""
        return self._value

    @property
    def max(self) -> float:
        """Largest value ever set (0 before the first set)."""
        return self._max if self._max != float("-inf") else 0.0


class Histogram:
    """Fixed-bucket histogram with interpolated quantiles.

    ``buckets`` are strictly increasing upper bounds; one implicit overflow
    bucket catches everything beyond the last edge.  Quantiles interpolate
    linearly inside the containing bucket (the first bucket interpolates
    from the observed minimum, the overflow bucket from the last edge to
    the observed maximum), so accuracy is bounded by the bucket width.

    Examples
    --------
    >>> hist = Histogram("x", buckets=tuple(float(b) for b in range(1, 11)))
    >>> for value in range(1, 101):
    ...     hist.observe(value / 10)
    >>> round(hist.quantile(0.5), 2)
    5.0
    >>> hist.count, round(hist.sum, 1), hist.min, hist.max
    (100, 505.0, 0.1, 10.0)
    """

    __slots__ = (
        "name", "buckets", "counts", "count", "sum", "min", "max",
        "_bucket_arr", "_lock",
    )

    def __init__(self, name: str, *, buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS_MS) -> None:
        buckets = tuple(float(b) for b in buckets)
        if not buckets or any(b <= a for a, b in zip(buckets, buckets[1:])):
            raise ValueError("buckets must be non-empty and strictly increasing")
        self.name = name
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # [..., overflow]
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._bucket_arr = _np.asarray(buckets) if _np is not None else None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _bucket_index(self, value: float) -> int:
        return bisect.bisect_left(self.buckets, value)

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        idx = self._bucket_index(value)
        with self._lock:
            self.counts[idx] += 1
            self.count += 1
            self.sum += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    def observe_many(self, values) -> None:
        """Record a batch of samples under one lock acquisition.

        The per-request serving hot path observes whole batches at a time
        (one queue-wait and one latency sample per coalesced request);
        bucketing the whole batch vectorised and taking the lock once per
        batch instead of once per sample keeps the accounting cost off the
        event loop's critical path.  Accepts any sequence (numpy arrays
        included).
        """
        if _np is not None and len(values) >= 8:
            arr = _np.asarray(values, dtype=float)
            if arr.size == 0:
                return
            per_bucket = _np.bincount(
                _np.searchsorted(self._bucket_arr, arr, side="left"),
                minlength=len(self.counts),
            )
            total, vmin, vmax = float(arr.sum()), float(arr.min()), float(arr.max())
            with self._lock:
                for idx in per_bucket.nonzero()[0]:
                    self.counts[idx] += int(per_bucket[idx])
                self.count += arr.size
                self.sum += total
                self.min = min(self.min, vmin)
                self.max = max(self.max, vmax)
            return
        values = [float(v) for v in values]
        if not values:
            return
        indices = [self._bucket_index(v) for v in values]
        with self._lock:
            for idx in indices:
                self.counts[idx] += 1
            self.count += len(values)
            self.sum += sum(values)
            self.min = min(self.min, min(values))
            self.max = max(self.max, max(values))

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed samples (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated ``q``-quantile (``0 <= q <= 1``) from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            target = q * self.count
            cumulative = 0
            for idx, bucket_count in enumerate(self.counts):
                if bucket_count == 0:
                    continue
                lower = self.buckets[idx - 1] if idx > 0 else self.min
                upper = self.buckets[idx] if idx < len(self.buckets) else self.max
                lower = max(min(lower, upper), self.min)
                upper = min(upper, self.max)
                if cumulative + bucket_count >= target:
                    fraction = (target - cumulative) / bucket_count
                    return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
                cumulative += bucket_count
            return self.max  # pragma: no cover - unreachable (counts sum to count)

    def percentiles(self) -> dict[str, float]:
        """The conventional p50 / p95 / p99 summary."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def merge(self, other: "Histogram | dict") -> None:
        """Fold another histogram (or its snapshot dict) into this one."""
        if isinstance(other, Histogram):
            data = other.as_dict()
        else:
            data = other
        if tuple(data["buckets"]) != self.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ"
            )
        with self._lock:
            for idx, n in enumerate(data["counts"]):
                self.counts[idx] += int(n)
            self.count += int(data["count"])
            self.sum += float(data["sum"])
            if data["count"]:
                self.min = min(self.min, float(data["min"]))
                self.max = max(self.max, float(data["max"]))

    def as_dict(self) -> dict:
        """JSON-ready snapshot (mergeable; see :meth:`merge`)."""
        with self._lock:
            out = {
                "buckets": list(self.buckets),
                "counts": list(self.counts),
                "count": self.count,
                "sum": self.sum,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0,
            }
        out.update({k: v for k, v in self.percentiles().items()})
        out["mean"] = self.mean
        return out


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Names are free-form dotted strings (``serve.resistance.queue_wait_ms``).
    Asking for an existing name returns the existing instrument; asking
    with a conflicting type raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def _check_free(self, name: str, kind: dict) -> None:
        for registry in (self._counters, self._gauges, self._histograms):
            if registry is not kind and name in registry:
                raise ValueError(f"metric {name!r} already registered with another type")

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        with self._lock:
            self._check_free(name, self._counters)
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        with self._lock:
            self._check_free(name, self._gauges)
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(
        self, name: str, *, buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS_MS
    ) -> Histogram:
        """Get or create the histogram ``name`` (buckets fixed at creation)."""
        with self._lock:
            self._check_free(name, self._histograms)
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(name, buckets=buckets)
            return hist

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready state of every instrument (input to :meth:`merge`)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: (int(c.value) if float(c.value).is_integer() else c.value)
                for name, c in sorted(counters.items())
            },
            "gauges": {
                name: {"value": g.value, "max": g.max}
                for name, g in sorted(gauges.items())
            },
            "histograms": {
                name: h.as_dict() for name, h in sorted(histograms.items())
            },
        }

    def merge(self, snapshot: "dict | MetricsRegistry") -> None:
        """Fold a snapshot (or another registry) into this one.

        Counters and histograms add; gauges keep the incoming value and the
        running max.  This is how per-process metrics from ``--jobs``
        workers combine into the suite-level ``metrics.json``.
        """
        if isinstance(snapshot, MetricsRegistry):
            snapshot = snapshot.snapshot()
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, data in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(float(data["max"]))
            gauge.set(float(data["value"]))
        for name, data in snapshot.get("histograms", {}).items():
            self.histogram(name, buckets=tuple(data["buckets"])).merge(data)

    def save(self, path: str | Path) -> Path:
        """Write the snapshot as pretty-printed JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        """Rebuild a registry from a snapshot (inverse of :meth:`snapshot`)."""
        registry = cls()
        registry.merge(snapshot)
        return registry
