"""``repro.obs`` — unified tracing, metrics and resource telemetry.

The observability layer the rest of the stack leans on:

* :class:`Tracer` / :func:`span` — hierarchical spans with contextvar
  propagation (including across the asyncio micro-batcher's thread-pool
  hop), JSONL and Chrome-``about://tracing`` exports.  Activated *ambiently*
  via :func:`activate`; every instrumentation point in :mod:`repro.core`,
  :mod:`repro.embedding` and :mod:`repro.serve` is a near-free no-op until
  a tracer is active.
* :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  :class:`Histogram` instruments (interpolated p50/p95/p99, snapshots
  mergeable across ``--jobs`` worker processes).
* :class:`ResourceSampler` — background RSS / GC / thread-count sampling.
* :class:`ObsSession` — the bundle of all three with one lifecycle, used
  by ``repro.bench run|serve --trace DIR`` and ``repro-serve``.
* ``python -m repro.obs report trace.jsonl`` — self-time-sorted span
  table, span tree and histogram summaries.

Examples
--------
>>> from repro.obs import ObsSession, span, set_attributes
>>> with ObsSession(sample_resources=False) as session:
...     with span("fit", n_nodes=100):
...         with span("knn"):
...             set_attributes(backend="kdtree")
>>> [s.name for s in session.tracer.spans()]
['knn', 'fit']
>>> session.tracer.spans()[0].attributes
{'backend': 'kdtree'}
"""

from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.resources import ResourceSampler, rss_bytes
from repro.obs.session import ObsSession
from repro.obs.tracing import (
    Span,
    Tracer,
    activate,
    current_span,
    current_tracer,
    load_spans,
    set_attributes,
    span,
)

__all__ = [
    "Counter",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsSession",
    "ResourceSampler",
    "Span",
    "Tracer",
    "activate",
    "current_span",
    "current_tracer",
    "load_spans",
    "rss_bytes",
    "set_attributes",
    "span",
]
