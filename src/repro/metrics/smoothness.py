"""Graph-signal smoothness metrics (Laplacian quadratic forms, Eq. 1).

The GSP view of graph learning (Sec. II-A) is that measured signals should be
smooth on the learned graph: ``x^T L x`` should be small relative to the
signal energy.  These helpers quantify that, and are used in tests to verify
that SGL-learned graphs make the measured voltages at least as smooth as the
kNN baseline does.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.laplacian import laplacian_quadratic_form

__all__ = ["signal_smoothness", "total_smoothness"]


def signal_smoothness(graph: WeightedGraph, signals: np.ndarray, *, normalize: bool = True) -> np.ndarray:
    """Per-signal smoothness ``x^T L x`` (optionally divided by ``||x||^2``).

    Parameters
    ----------
    graph:
        The graph defining the Laplacian.
    signals:
        A single signal vector of length ``N`` or an ``(N, M)`` matrix of
        column signals.
    normalize:
        Divide by the signal energy so the value is a Rayleigh quotient in
        ``[lambda_1, lambda_N]``.
    """
    signals = np.asarray(signals, dtype=np.float64)
    single = signals.ndim == 1
    matrix = signals[:, None] if single else signals
    quad = np.atleast_1d(laplacian_quadratic_form(graph.laplacian(), matrix))
    if normalize:
        energy = np.einsum("ij,ij->j", matrix, matrix)
        energy = np.maximum(energy, 1e-300)
        quad = quad / energy
    return float(quad[0]) if single else quad


def total_smoothness(graph: WeightedGraph, signals: np.ndarray) -> float:
    """Sum of quadratic forms ``Tr(X^T L X)`` over all signals (unnormalised)."""
    signals = np.asarray(signals, dtype=np.float64)
    matrix = signals[:, None] if signals.ndim == 1 else signals
    quad = np.atleast_1d(laplacian_quadratic_form(graph.laplacian(), matrix))
    return float(np.sum(quad))
