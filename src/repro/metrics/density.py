"""Graph density statistics.

The paper reports learned-graph quality partly through density ``|E|/|V|``:
SGL graphs land slightly above 1.0 (barely denser than a spanning tree) while
the 5NN comparator sits near 2.9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import WeightedGraph

__all__ = ["graph_density", "density_ratio", "sparsification_summary", "SparsificationSummary"]


def graph_density(graph: WeightedGraph) -> float:
    """Density ``|E| / |V|``."""
    return graph.density


def density_ratio(original: WeightedGraph, learned: WeightedGraph) -> float:
    """``density(learned) / density(original)`` -- below one means sparser."""
    original_density = graph_density(original)
    if original_density == 0:
        raise ValueError("original graph has no edges")
    return graph_density(learned) / original_density


@dataclass(frozen=True)
class SparsificationSummary:
    """Edge/density bookkeeping of a learned (or sparsified) graph."""

    original_nodes: int
    original_edges: int
    learned_nodes: int
    learned_edges: int

    @property
    def original_density(self) -> float:
        """Density of the original graph."""
        return self.original_edges / max(self.original_nodes, 1)

    @property
    def learned_density(self) -> float:
        """Density of the learned graph."""
        return self.learned_edges / max(self.learned_nodes, 1)

    @property
    def edge_reduction(self) -> float:
        """Fraction of original edges removed."""
        if self.original_edges == 0:
            return 0.0
        return 1.0 - self.learned_edges / self.original_edges

    @property
    def size_reduction(self) -> float:
        """Node-count reduction factor (Fig. 8's 5x / 10x smaller networks)."""
        if self.learned_nodes == 0:
            return float("inf")
        return self.original_nodes / self.learned_nodes


def sparsification_summary(
    original: WeightedGraph, learned: WeightedGraph
) -> SparsificationSummary:
    """Summary statistics comparing a learned graph against the original."""
    return SparsificationSummary(
        original_nodes=original.n_nodes,
        original_edges=original.n_edges,
        learned_nodes=learned.n_nodes,
        learned_edges=learned.n_edges,
    )
