"""Evaluation metrics used by the paper's figures.

* :mod:`spectral`   -- eigenvalue comparison/correlation between the original
  and learned graphs (Figs. 3-6, 8-10);
* :mod:`resistance` -- effective-resistance correlation on sampled node pairs
  (Fig. 7);
* :mod:`density`    -- graph density and sparsification statistics;
* :mod:`smoothness` -- Laplacian quadratic-form smoothness of graph signals.
"""

from repro.metrics.spectral import (
    EigenvalueComparison,
    compare_eigenvalues,
    eigenvalue_correlation,
    relative_eigenvalue_error,
)
from repro.metrics.resistance import (
    ResistanceComparison,
    compare_effective_resistances,
    effective_resistance_batched,
    resistance_correlation,
)
from repro.metrics.density import density_ratio, graph_density, sparsification_summary
from repro.metrics.smoothness import signal_smoothness, total_smoothness

__all__ = [
    "EigenvalueComparison",
    "compare_eigenvalues",
    "eigenvalue_correlation",
    "relative_eigenvalue_error",
    "ResistanceComparison",
    "compare_effective_resistances",
    "effective_resistance_batched",
    "resistance_correlation",
    "graph_density",
    "density_ratio",
    "sparsification_summary",
    "signal_smoothness",
    "total_smoothness",
]
