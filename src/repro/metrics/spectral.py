"""Eigenvalue comparison metrics (the paper's eigenvalue scatter plots).

Figures 3-6 and 8-10 of the paper compare the first ~30-50 nonzero Laplacian
eigenvalues of the learned graph ("approximate eigenvalues") against those of
the original graph ("true eigenvalues"), either as a scatter plot or via a
correlation coefficient (Fig. 8 reports 0.999 / 0.994).  These helpers produce
the same series and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.linalg.eigen import laplacian_eigenpairs

__all__ = [
    "EigenvalueComparison",
    "compare_eigenvalues",
    "eigenvalue_correlation",
    "relative_eigenvalue_error",
]


@dataclass(frozen=True)
class EigenvalueComparison:
    """Paired eigenvalue series of an original and a learned graph."""

    original: np.ndarray
    learned: np.ndarray

    @property
    def correlation(self) -> float:
        """Pearson correlation coefficient between the two series."""
        return eigenvalue_correlation(self.original, self.learned)

    @property
    def mean_relative_error(self) -> float:
        """Mean of ``|learned - original| / original`` over nonzero originals."""
        return relative_eigenvalue_error(self.original, self.learned)

    @property
    def max_relative_error(self) -> float:
        """Worst-case relative eigenvalue error."""
        mask = self.original > 0
        if not np.any(mask):
            return 0.0
        return float(
            np.max(np.abs(self.learned[mask] - self.original[mask]) / self.original[mask])
        )


def eigenvalue_correlation(original: np.ndarray, learned: np.ndarray) -> float:
    """Pearson correlation between two eigenvalue series (Fig. 8's 'Corr. Coef.')."""
    original = np.asarray(original, dtype=np.float64)
    learned = np.asarray(learned, dtype=np.float64)
    if original.shape != learned.shape:
        raise ValueError("eigenvalue series must have the same length")
    if original.size < 2:
        return 1.0
    if np.std(original) == 0 or np.std(learned) == 0:
        return 1.0 if np.allclose(original, learned) else 0.0
    return float(np.corrcoef(original, learned)[0, 1])


def relative_eigenvalue_error(original: np.ndarray, learned: np.ndarray) -> float:
    """Mean relative error of the learned eigenvalues."""
    original = np.asarray(original, dtype=np.float64)
    learned = np.asarray(learned, dtype=np.float64)
    if original.shape != learned.shape:
        raise ValueError("eigenvalue series must have the same length")
    mask = original > 0
    if not np.any(mask):
        return 0.0
    return float(np.mean(np.abs(learned[mask] - original[mask]) / original[mask]))


def compare_eigenvalues(
    original: WeightedGraph,
    learned: WeightedGraph,
    k: int = 50,
    *,
    method: str = "auto",
    seed: int | None = 0,
) -> EigenvalueComparison:
    """First ``k`` nonzero eigenvalues of both graphs, paired by index.

    The graphs may have different node counts (the reduced-network experiment
    of Fig. 8 compares a 10%-sized learned graph against the original); ``k``
    is clipped to what both graphs support.
    """
    k_eff = min(k, original.n_nodes - 1, learned.n_nodes - 1)
    if k_eff < 1:
        raise ValueError("graphs are too small to compare eigenvalues")
    original_values, _ = laplacian_eigenpairs(original, k_eff, method=method, seed=seed)
    learned_values, _ = laplacian_eigenpairs(learned, k_eff, method=method, seed=seed)
    return EigenvalueComparison(original=original_values, learned=learned_values)
