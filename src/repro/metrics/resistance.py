"""Effective-resistance comparison metrics (paper Fig. 7).

Fig. 7 evaluates learned graphs by scatter-plotting the effective resistances
of sampled node pairs computed on the learned graph against those computed on
the original graph; high correlation (points hugging the diagonal) means the
learned ultra-sparse network is electrically equivalent to the original.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.linalg.pseudoinverse import effective_resistance
from repro.linalg.solvers import LaplacianSolver

__all__ = [
    "ResistanceComparison",
    "compare_effective_resistances",
    "resistance_correlation",
    "sample_node_pairs",
]


@dataclass(frozen=True)
class ResistanceComparison:
    """Paired effective resistances of an original and a learned graph."""

    pairs: np.ndarray
    original: np.ndarray
    learned: np.ndarray

    @property
    def correlation(self) -> float:
        """Pearson correlation between the two resistance series."""
        if self.original.size < 2:
            return 1.0
        if np.std(self.original) == 0 or np.std(self.learned) == 0:
            return 1.0 if np.allclose(self.original, self.learned) else 0.0
        return float(np.corrcoef(self.original, self.learned)[0, 1])

    @property
    def mean_relative_error(self) -> float:
        """Mean relative deviation of the learned resistances."""
        mask = self.original > 0
        if not np.any(mask):
            return 0.0
        return float(
            np.mean(np.abs(self.learned[mask] - self.original[mask]) / self.original[mask])
        )


def sample_node_pairs(
    n_nodes: int,
    n_pairs: int,
    *,
    seed: int | None = 0,
) -> np.ndarray:
    """Uniformly random distinct node pairs (with replacement across pairs)."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    rng = np.random.default_rng(seed)
    first = rng.integers(0, n_nodes, size=n_pairs)
    second = rng.integers(0, n_nodes - 1, size=n_pairs)
    second = np.where(second >= first, second + 1, second)
    return np.column_stack([first, second])


def compare_effective_resistances(
    original: WeightedGraph,
    learned: WeightedGraph,
    *,
    n_pairs: int = 200,
    pairs: np.ndarray | None = None,
    seed: int | None = 0,
) -> ResistanceComparison:
    """Effective resistances of the same node pairs on both graphs.

    Both graphs must share the node numbering (which SGL guarantees, since it
    learns a graph over the measured nodes).
    """
    if original.n_nodes != learned.n_nodes:
        raise ValueError("graphs must share the same node set")
    if pairs is None:
        pairs = sample_node_pairs(original.n_nodes, n_pairs, seed=seed)
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    original_solver = LaplacianSolver(original)
    learned_solver = LaplacianSolver(learned)
    original_r = effective_resistance(original, pairs, solver=original_solver)
    learned_r = effective_resistance(learned, pairs, solver=learned_solver)
    return ResistanceComparison(pairs=pairs, original=original_r, learned=learned_r)


def resistance_correlation(
    original: WeightedGraph,
    learned: WeightedGraph,
    *,
    n_pairs: int = 200,
    seed: int | None = 0,
) -> float:
    """Shortcut for ``compare_effective_resistances(...).correlation``."""
    return compare_effective_resistances(
        original, learned, n_pairs=n_pairs, seed=seed
    ).correlation
