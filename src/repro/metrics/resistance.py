"""Effective-resistance comparison metrics (paper Fig. 7).

Fig. 7 evaluates learned graphs by scatter-plotting the effective resistances
of sampled node pairs computed on the learned graph against those computed on
the original graph; high correlation (points hugging the diagonal) means the
learned ultra-sparse network is electrically equivalent to the original.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.linalg.solvers import LaplacianSolver

__all__ = [
    "ResistanceComparison",
    "compare_effective_resistances",
    "effective_resistance_batched",
    "resistance_correlation",
    "sample_node_pairs",
]


@dataclass(frozen=True)
class ResistanceComparison:
    """Paired effective resistances of an original and a learned graph."""

    pairs: np.ndarray
    original: np.ndarray
    learned: np.ndarray

    @property
    def correlation(self) -> float:
        """Pearson correlation between the two resistance series."""
        if self.original.size < 2:
            return 1.0
        if np.std(self.original) == 0 or np.std(self.learned) == 0:
            return 1.0 if np.allclose(self.original, self.learned) else 0.0
        return float(np.corrcoef(self.original, self.learned)[0, 1])

    @property
    def mean_relative_error(self) -> float:
        """Mean relative deviation of the learned resistances."""
        mask = self.original > 0
        if not np.any(mask):
            return 0.0
        return float(
            np.mean(np.abs(self.learned[mask] - self.original[mask]) / self.original[mask])
        )


def sample_node_pairs(
    n_nodes: int,
    n_pairs: int,
    *,
    seed: int | None = 0,
) -> np.ndarray:
    """Uniformly random distinct node pairs (with replacement across pairs)."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    rng = np.random.default_rng(seed)
    first = rng.integers(0, n_nodes, size=n_pairs)
    second = rng.integers(0, n_nodes - 1, size=n_pairs)
    second = np.where(second >= first, second + 1, second)
    return np.column_stack([first, second])


def effective_resistance_batched(
    graph_or_laplacian: WeightedGraph | np.ndarray,
    pairs: np.ndarray | list[tuple[int, int]],
    *,
    solver: LaplacianSolver | None = None,
    block_size: int = 256,
) -> np.ndarray:
    """Effective resistances of many node pairs via *grouped* RHS solves.

    :func:`repro.linalg.effective_resistance` performs one Laplacian solve
    per pair.  This fast path instead stacks up to ``block_size`` indicator
    right-hand sides ``e_s - e_t`` into a matrix and solves each block with a
    single multi-RHS call, so the factorisation is traversed once per block
    instead of once per pair.  Results are identical (the solver
    back-substitutes each column independently); only the Python- and
    traversal-overhead is amortised.  Both the serve layer
    (:meth:`repro.serve.GraphSession.effective_resistance`) and the Fig. 7
    correlation metric (:func:`compare_effective_resistances`) run on this
    path.

    Parameters
    ----------
    graph_or_laplacian:
        The resistor network (must be connected), or its Laplacian.
    pairs:
        ``(m, 2)`` array of node pairs; ``s == t`` rows yield 0.
    solver:
        Optional pre-built :class:`~repro.linalg.LaplacianSolver` to reuse
        its factorisation across calls (what a serving session does).
    block_size:
        Maximum number of right-hand sides per grouped solve; bounds the
        dense ``(N, block_size)`` scratch matrix.

    Examples
    --------
    >>> from repro.graphs.graph import WeightedGraph
    >>> from repro.metrics import effective_resistance_batched
    >>> path = WeightedGraph(3, [0, 1], [1, 2])  # two unit resistors
    >>> effective_resistance_batched(path, [(0, 2), (0, 1), (1, 1)]).round(6).tolist()
    [2.0, 1.0, 0.0]
    """
    if block_size < 1:
        raise ValueError("block_size must be at least 1")
    if solver is None:
        solver = LaplacianSolver(graph_or_laplacian)
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    n = solver.n_nodes
    if pairs.size and (pairs.min() < 0 or pairs.max() >= n):
        bad = pairs[(pairs.min(axis=1) < 0) | (pairs.max(axis=1) >= n)][0]
        raise ValueError(f"pair ({bad[0]}, {bad[1]}) out of range for {n} nodes")
    out = np.zeros(pairs.shape[0])
    distinct = np.where(pairs[:, 0] != pairs[:, 1])[0]
    for start in range(0, distinct.size, block_size):
        chunk = distinct[start:start + block_size]
        s, t = pairs[chunk, 0], pairs[chunk, 1]
        rhs = np.zeros((n, chunk.size))
        cols = np.arange(chunk.size)
        rhs[s, cols] = 1.0
        rhs[t, cols] -= 1.0  # -= keeps s == t rows at 0 even if they slip in
        x = solver.solve(rhs)
        out[chunk] = x[s, cols] - x[t, cols]
    return out


def compare_effective_resistances(
    original: WeightedGraph,
    learned: WeightedGraph,
    *,
    n_pairs: int = 200,
    pairs: np.ndarray | None = None,
    seed: int | None = 0,
) -> ResistanceComparison:
    """Effective resistances of the same node pairs on both graphs.

    Both graphs must share the node numbering (which SGL guarantees, since it
    learns a graph over the measured nodes).
    """
    if original.n_nodes != learned.n_nodes:
        raise ValueError("graphs must share the same node set")
    if pairs is None:
        pairs = sample_node_pairs(original.n_nodes, n_pairs, seed=seed)
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    original_r = effective_resistance_batched(original, pairs)
    learned_r = effective_resistance_batched(learned, pairs)
    return ResistanceComparison(pairs=pairs, original=original_r, learned=learned_r)


def resistance_correlation(
    original: WeightedGraph,
    learned: WeightedGraph,
    *,
    n_pairs: int = 200,
    seed: int | None = 0,
) -> float:
    """Shortcut for ``compare_effective_resistances(...).correlation``."""
    return compare_effective_resistances(
        original, learned, n_pairs=n_pairs, seed=seed
    ).correlation
