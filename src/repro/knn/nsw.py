"""Navigable-small-world approximate nearest-neighbour index.

The paper cites HNSW [8] as the scalable kNN construction backend.  Exact
KD-tree queries are perfectly adequate at laptop scale (and are the default in
:func:`repro.knn.knn_graph`), but we also provide a small greedy
navigable-small-world (NSW) index -- the single-layer core of HNSW -- so the
kNN construction path of the paper can be exercised end to end without any
external dependency and so the exact-vs-approximate trade-off can be ablated.

The index supports incremental insertion and greedy best-first search with a
configurable beam width (``ef``).
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["NSWIndex"]


class NSWIndex:
    """Greedy navigable-small-world graph index for approximate kNN queries.

    Parameters
    ----------
    n_links:
        Number of bidirectional links created per inserted point (``M`` in
        HNSW terminology).
    ef_construction:
        Beam width used while inserting points.
    ef_search:
        Default beam width used while querying; raise it for better recall.
    seed:
        Seed controlling the insertion order shuffle.
    """

    def __init__(
        self,
        n_links: int = 8,
        *,
        ef_construction: int = 32,
        ef_search: int = 32,
        seed: int | None = 0,
    ) -> None:
        if n_links < 1:
            raise ValueError("n_links must be at least 1")
        if ef_construction < 1 or ef_search < 1:
            raise ValueError("beam widths must be at least 1")
        self.n_links = int(n_links)
        self.ef_construction = int(ef_construction)
        self.ef_search = int(ef_search)
        self.seed = seed
        self._points: np.ndarray | None = None
        self._neighbors: list[list[int]] = []
        self._entry_point: int | None = None

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return 0 if self._points is None else self._points.shape[0]

    def _distance(self, query: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        return np.linalg.norm(self._points[candidates] - query, axis=1)

    def _search_layer(self, query: np.ndarray, ef: int) -> list[tuple[float, int]]:
        """Greedy best-first search; returns up to ``ef`` (distance, id) pairs."""
        entry = self._entry_point
        dist_entry = float(np.linalg.norm(self._points[entry] - query))
        visited = {entry}
        # Min-heap of candidates to expand; max-heap (negated) of best found.
        candidates = [(dist_entry, entry)]
        best: list[tuple[float, int]] = [(-dist_entry, entry)]
        while candidates:
            dist, node = heapq.heappop(candidates)
            worst_best = -best[0][0]
            if dist > worst_best and len(best) >= ef:
                break
            for neighbor in self._neighbors[node]:
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                d = float(np.linalg.norm(self._points[neighbor] - query))
                if len(best) < ef or d < -best[0][0]:
                    heapq.heappush(candidates, (d, neighbor))
                    heapq.heappush(best, (-d, neighbor))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-negd, node) for negd, node in best)

    # ------------------------------------------------------------------
    def build(self, points: np.ndarray) -> "NSWIndex":
        """Build the index over ``points`` (``(N, M)`` array).  Returns ``self``."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("points must be a 2-D array")
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(points.shape[0])
        self._points = points
        self._neighbors = [[] for _ in range(points.shape[0])]
        self._entry_point = None
        for node in order:
            self._insert(int(node))
        return self

    def _insert(self, node: int) -> None:
        if self._entry_point is None:
            self._entry_point = node
            return
        found = self._search_layer(self._points[node], self.ef_construction)
        links = [idx for _, idx in found[: self.n_links] if idx != node]
        for neighbor in links:
            self._neighbors[node].append(neighbor)
            self._neighbors[neighbor].append(node)
            # Prune neighbours that exceed the link budget, keeping closest.
            if len(self._neighbors[neighbor]) > 2 * self.n_links:
                cand = np.asarray(self._neighbors[neighbor])
                dists = self._distance(self._points[neighbor], cand)
                keep = cand[np.argsort(dists)[: 2 * self.n_links]]
                self._neighbors[neighbor] = keep.tolist()

    # ------------------------------------------------------------------
    def query(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Approximate ``k`` nearest neighbours for each query row.

        Returns ``(distances, indices)`` arrays of shape ``(n_queries, k)``,
        mirroring :meth:`scipy.spatial.cKDTree.query` so the index can be
        passed straight to :func:`repro.knn.knn_graph`.
        """
        if self._points is None:
            raise RuntimeError("index has not been built yet")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        k = min(k, self.n_points)
        ef = max(self.ef_search, k)
        distances = np.full((queries.shape[0], k), np.inf)
        indices = np.zeros((queries.shape[0], k), dtype=np.int64)
        for row, query in enumerate(queries):
            found = self._search_layer(query, ef)[:k]
            for col, (dist, node) in enumerate(found):
                distances[row, col] = dist
                indices[row, col] = node
            # Pad with the last found neighbour if fewer than k were reached
            # (possible only on pathological disconnected indexes).
            for col in range(len(found), k):
                distances[row, col] = found[-1][0] if found else np.inf
                indices[row, col] = found[-1][1] if found else 0
        return distances, indices

    def recall_against_exact(self, points: np.ndarray, k: int) -> float:
        """Fraction of true kNN recovered by the index (diagnostic helper)."""
        from scipy.spatial import cKDTree

        points = np.asarray(points, dtype=np.float64)
        exact = cKDTree(self._points).query(points, k=k)[1]
        approx = self.query(points, k=k)[1]
        hits = 0
        for row in range(points.shape[0]):
            hits += len(set(exact[row].tolist()) & set(approx[row].tolist()))
        return hits / float(points.shape[0] * k)
