"""Pluggable nearest-neighbour search backends for kNN graph construction.

Step 1 of SGL searches for the ``k`` nearest neighbours of every node in the
``M``-dimensional measurement space.  No single search structure wins at every
``(N, M)``: KD-trees are excellent in low dimensions but degrade to brute
force for ``M`` beyond ~15 (the paper's measurement counts are M = 50-100);
a blocked Gram-matrix brute force is exact and BLAS-bound at any ``M`` but
costs O(N^2 M); and a Johnson-Lindenstrauss sketch compresses the features to
O(log N) dimensions where a KD-tree works again, at the price of an exact
re-ranking pass over a slightly oversampled candidate set.

This module provides one index class per strategy, all exposing the same
``query(queries, k) -> (distances, indices)`` contract as
:meth:`scipy.spatial.cKDTree.query`, plus :func:`build_index` with an
``auto`` policy that picks a backend from the feature-matrix shape and —
because a KD-tree's pruning power depends on the features' *intrinsic*
dimension, not their ambient width ``M`` — a cheap subsampled-SVD
effective-rank probe (:func:`effective_rank`).  Measurement matrices of
smooth networks are numerically low-rank (a handful of Laplacian modes
dominate), and there the KD-tree keeps winning at any ``M``:

========== =============================== ==================================
backend     class                           chosen by ``auto`` when
========== =============================== ==================================
 kdtree     :class:`KDTreeIndex`            ``M <= 15``, or effective rank
                                            ``<= 8`` (tree pruning works)
 brute      :class:`BruteForceIndex`        high-rank features, ``N < 2048``
 jl         :class:`JLIndex`                high-rank features, ``N >= 2048``
 nsw        :class:`repro.knn.NSWIndex`     never (opt-in graph-based ANN)
========== =============================== ==================================

The same backend names are accepted by :func:`repro.knn.knn_edges`,
:func:`repro.knn.knn_graph`, ``SGLConfig.knn_backend`` and
``python -m repro.bench run --knn-backend``.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.measurements.jl import jl_projection_matrix

__all__ = [
    "BACKENDS",
    "BruteForceIndex",
    "JLIndex",
    "KDTreeIndex",
    "build_index",
    "effective_rank",
    "select_backend",
    "sketch_dimension",
]

#: KD-trees stop beating brute force around this feature dimension.
KDTREE_MAX_DIM = 15

#: Below this point count the O(N^2 M) brute force is cheap enough that the
#: JL projection + re-ranking machinery is not worth its constant factor.
JL_MIN_POINTS = 2048

#: Features whose effective rank (participation ratio of the covariance
#: spectrum) is at or below this stay on the KD-tree regardless of ``M``:
#: tree pruning tracks the intrinsic dimension, and the measurement matrices
#: of smooth networks concentrate on a handful of Laplacian modes.  Measured
#: on the bench scenarios: grids / FEM meshes / clouds sit at 1-7, the
#: irregular circuit grid at medium scale at ~13, iid noise near ``M``.
KDTREE_MAX_EFFECTIVE_RANK = 8.0

#: Row-subsample size of the effective-rank probe (keeps the probe's
#: O(rows * M^2) SVD in the sub-millisecond range).
_RANK_PROBE_ROWS = 512


def effective_rank(
    features: np.ndarray, *, max_rows: int = _RANK_PROBE_ROWS, seed: int = 0
) -> float:
    """Participation ratio of the feature covariance spectrum.

    ``(sum s_i^2)^2 / sum s_i^4`` over the singular values of the (row
    subsampled, mean-centred) feature matrix: ~1 when one direction
    dominates, ~M for isotropic noise.  Used by the ``auto`` policy as a
    cheap proxy for the intrinsic dimension KD-tree pruning depends on.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.knn.backends import effective_rank
    >>> rng = np.random.default_rng(0)
    >>> effective_rank(rng.standard_normal((500, 3)) @ rng.standard_normal((3, 40))) < 4
    True
    >>> effective_rank(rng.standard_normal((500, 40))) > 20
    True
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2 or features.shape[0] < 2:
        raise ValueError("features must be a 2-D (N, M) array with N >= 2")
    if features.shape[0] > max_rows:
        rng = np.random.default_rng(seed)
        rows = rng.choice(features.shape[0], size=max_rows, replace=False)
        features = features[rows]
    spectrum = np.linalg.svd(features - features.mean(axis=0), compute_uv=False)
    power = spectrum**2
    total = power.sum()
    if total == 0:
        return 1.0
    power /= total
    return float(1.0 / np.sum(power**2))


def select_backend(
    n_points: int, n_dims: int, features: np.ndarray | None = None
) -> str:
    """The ``auto`` policy: pick a backend from the feature shape (and data).

    Low-dimensional features go to the exact KD-tree.  High-dimensional
    features are probed with :func:`effective_rank` when ``features`` is
    given: numerically low-rank measurement matrices stay on the KD-tree
    (its pruning tracks intrinsic dimension), while genuinely high-rank
    features go to the blocked-BLAS brute force, switching to the
    JL-projected search once ``N`` is large enough that O(N^2 M) hurts.
    Without ``features`` the policy is shape-only (high ``M`` counts as
    high-rank).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.knn.backends import select_backend
    >>> select_backend(1000, 3)
    'kdtree'
    >>> select_backend(1000, 50)
    'brute'
    >>> select_backend(5000, 50)
    'jl'
    >>> rng = np.random.default_rng(0)
    >>> smooth = rng.standard_normal((5000, 3)) @ rng.standard_normal((3, 50))
    >>> select_backend(5000, 50, smooth)     # low-rank: tree still prunes
    'kdtree'
    """
    if n_dims <= KDTREE_MAX_DIM:
        return "kdtree"
    if features is not None and effective_rank(features) <= KDTREE_MAX_EFFECTIVE_RANK:
        return "kdtree"
    if n_points >= JL_MIN_POINTS:
        return "jl"
    return "brute"


def sketch_dimension(n_points: int) -> int:
    """Default JL sketch dimension for *search*: ``Theta(log N)``, clamped.

    The theoretical distortion bound wants ``24 log N / eps^2`` dimensions
    (:func:`repro.measurements.jl.jl_measurement_count`), but for candidate
    generation followed by exact re-ranking a much smaller sketch suffices —
    and it is capped at :data:`KDTREE_MAX_DIM` so the inner KD-tree keeps
    its pruning power.

    Examples
    --------
    >>> from repro.knn.backends import sketch_dimension
    >>> sketch_dimension(5000)
    8
    >>> sketch_dimension(150_000)
    12
    """
    if n_points < 2:
        raise ValueError("need at least two points")
    return int(
        np.clip(int(np.ceil(np.log2(n_points))) * 2 // 3, 6, KDTREE_MAX_DIM)
    )


def _as_features(features: np.ndarray) -> np.ndarray:
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D (N, M) array")
    if features.shape[0] < 2:
        raise ValueError("need at least two points")
    return features


def _rerank_exact(
    features: np.ndarray,
    queries: np.ndarray,
    candidates: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Exactly re-rank per-query candidate sets by full-dimension distance.

    Distances are recomputed as ``sqrt(sum((x - q)^2))`` directly (never via
    the Gram expansion), accumulating the squares in the same order as
    :class:`scipy.spatial.cKDTree`'s compiled inner loop (4-wide unrolled
    partial sums combined left-to-right, sequential tail), so the returned
    values match a KD-tree's output bit for bit — that accumulation order
    is a compiled implementation detail of the scipy build; one that
    vectorises the KD-tree distance loop differently would reopen a
    last-ulp gap, which the equivalence tests would catch.  Ties are broken
    by candidate index for determinism.  (The JL backend re-ranks with its
    own faster float32/einsum path; only the brute backend carries the
    bitwise contract.)
    """
    diff = features[candidates] - queries[:, None, :]
    n_dims = features.shape[1]
    lanes = [np.zeros(candidates.shape, dtype=np.float64) for _ in range(4)]
    main = n_dims - n_dims % 4
    for dim in range(0, main, 4):
        for lane in range(4):
            component = diff[:, :, dim + lane]
            lanes[lane] += component * component
    dist2 = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3]
    for dim in range(main, n_dims):
        component = diff[:, :, dim]
        dist2 = dist2 + component * component
    order = np.lexsort((candidates, dist2), axis=-1)[:, :k]
    indices = np.take_along_axis(candidates, order, axis=1)
    distances = np.sqrt(np.take_along_axis(dist2, order, axis=1))
    return distances, indices


class BruteForceIndex:
    """Exact blocked-BLAS brute-force nearest-neighbour index.

    Distances are expanded as ``||q||^2 + ||x||^2 - 2 q.x`` so the dominant
    cost is one DGEMM per query block (memory-tiled to ``block_bytes``), with
    ``np.argpartition`` extracting a small candidate set per query that is
    then re-ranked with directly computed distances.  Exact at any ``M``;
    the right choice when ``M`` is too large for a KD-tree.

    Returned distances match :class:`scipy.spatial.cKDTree` bit for bit
    (same accumulation order; see :func:`_rerank_exact`), and on inputs
    whose distance ties do not straddle the ``k`` boundary the neighbour
    lists match too.  When a tie group does straddle ``k`` (e.g. more than
    ``k`` exact duplicates of a point), any exact algorithm must pick a
    subset: this index deterministically keeps the lowest indices, whereas
    a KD-tree's choice is traversal-order dependent.

    Parameters
    ----------
    features:
        ``(N, M)`` matrix of indexed points.
    block_bytes:
        Approximate memory budget of one query block's distance tile.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.knn.backends import BruteForceIndex
    >>> points = np.random.default_rng(0).standard_normal((40, 20))
    >>> distances, indices = BruteForceIndex(points).query(points, k=3)
    >>> indices.shape == (40, 3) and bool((indices[:, 0] == np.arange(40)).all())
    True
    """

    #: Extra candidates kept past ``k`` before exact re-ranking, protecting
    #: the top-k boundary from Gram-expansion rounding.
    _RERANK_PAD = 4

    def __init__(self, features: np.ndarray, *, block_bytes: int = 1 << 26) -> None:
        self._features = _as_features(features)
        self._sq_norms = np.einsum("ij,ij->i", self._features, self._features)
        self._block_bytes = int(block_bytes)

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self._features.shape[0]

    @property
    def search_features(self) -> np.ndarray:
        """The matrix queries run against (the raw features)."""
        return self._features

    def query(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact ``k`` nearest neighbours of each query row.

        Returns ``(distances, indices)`` of shape ``(n_queries, k)``, sorted
        by ascending distance (ties broken by index).
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n = self.n_points
        k = min(int(k), n)
        if k < 1:
            raise ValueError("k must be at least 1")
        n_candidates = min(n, k + self._RERANK_PAD)
        block = max(1, self._block_bytes // (8 * n))
        out_d = np.empty((queries.shape[0], k))
        out_i = np.empty((queries.shape[0], k), dtype=np.int64)
        for start in range(0, queries.shape[0], block):
            q = queries[start:start + block]
            dist2 = q @ self._features.T
            dist2 *= -2.0
            dist2 += self._sq_norms[None, :]
            dist2 += np.einsum("ij,ij->i", q, q)[:, None]
            if n_candidates < n:
                candidates = np.argpartition(dist2, n_candidates - 1, axis=1)[
                    :, :n_candidates
                ]
            else:
                candidates = np.broadcast_to(
                    np.arange(n, dtype=np.int64), (q.shape[0], n)
                )
            distances, indices = _rerank_exact(self._features, q, candidates, k)
            # A distance-tie group straddling the candidate boundary means
            # argpartition chose arbitrary tie members; widen those rows to
            # the full tie group so the index tie-break stays deterministic
            # (exact duplicates of a point are the typical trigger).
            if n_candidates < n:
                boundary = np.take_along_axis(dist2, candidates, axis=1).max(axis=1)
                spilled = np.where(
                    (dist2 <= boundary[:, None]).sum(axis=1) > n_candidates
                )[0]
                for row in spilled:
                    full = np.where(dist2[row] <= boundary[row])[0]
                    distances[row], indices[row] = _rerank_exact(
                        self._features, q[row:row + 1], full[None, :], k
                    )
            out_d[start:start + q.shape[0]] = distances
            out_i[start:start + q.shape[0]] = indices
        return out_d, out_i


class KDTreeIndex:
    """Exact KD-tree index (:class:`scipy.spatial.cKDTree` wrapper).

    The historical default of :func:`repro.knn.knn_edges`; the right choice
    for low-dimensional features, where tree pruning makes queries
    ``O(N log N)`` overall.

    Parameters
    ----------
    features:
        ``(N, M)`` matrix of indexed points.
    eps:
        Branch-and-bound slack passed to every query: returned neighbours
        are within ``(1 + eps)`` of the true nearest.  0 (default) is exact;
        the JL backend uses a small positive slack for its candidate pass.
    leafsize:
        ``cKDTree`` leaf size.  Purely a performance knob (results are
        identical); larger leaves trade tree depth for per-leaf brute force
        and win for the oversampled candidate queries of the JL backend.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.knn.backends import KDTreeIndex
    >>> points = np.random.default_rng(0).standard_normal((30, 3))
    >>> distances, indices = KDTreeIndex(points).query(points[:5], k=2)
    >>> distances.shape, int(indices[0, 0])
    ((5, 2), 0)
    """

    def __init__(
        self, features: np.ndarray, *, eps: float = 0.0, leafsize: int = 16
    ) -> None:
        self._features = _as_features(features)
        self._tree = cKDTree(self._features, leafsize=leafsize)
        self._eps = float(eps)

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self._features.shape[0]

    @property
    def search_features(self) -> np.ndarray:
        """The matrix queries run against (the raw features)."""
        return self._features

    @property
    def kdtree(self) -> cKDTree:
        """The underlying :class:`~scipy.spatial.cKDTree`.

        Exposed so auxiliary exact searches over the same points (e.g. the
        connectivity repair of :func:`repro.knn.knn_graph`) can reuse the
        built tree instead of paying a second O(N log N) construction.
        """
        return self._tree

    def query(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """``k`` nearest neighbours of each query row (exact when ``eps=0``)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        k = min(int(k), self.n_points)
        if k < 1:
            raise ValueError("k must be at least 1")
        distances, indices = self._tree.query(queries, k=k, eps=self._eps)
        if k == 1:
            distances = distances[:, None]
            indices = indices[:, None]
        return np.asarray(distances, dtype=np.float64), np.asarray(
            indices, dtype=np.int64
        )


class JLIndex:
    """JL-projected search: sketch to O(log N) dims, search, re-rank exactly.

    The ``(N, M)`` features are projected through the same random-sign
    Johnson-Lindenstrauss construction used for the paper's measurement
    matrix (:func:`repro.measurements.jl.jl_projection_matrix`), candidate
    neighbours are found in the sketch space with a KD-tree (a slightly
    oversampled ``k + oversample`` per query, with a small branch-and-bound
    slack), and the candidates are re-ranked against *full-dimension* exact
    distances.  The returned k sets are exact in practice (recall@k reaches
    >= 0.99 on the repo's measurement fixtures with ``oversample=16``);
    the returned distances always are exact.

    When the features are already no wider than the sketch would be, the
    projection is skipped entirely and queries delegate to an exact backend
    (``sketched`` is ``False``).

    Parameters
    ----------
    features:
        ``(N, M)`` matrix of indexed points.
    sketch_dim:
        Sketch width; defaults to :func:`sketch_dimension` of ``N``.
    oversample:
        Extra candidates retrieved past ``k`` before exact re-ranking;
        defaults to ``max(k, 8)``.
    seed:
        Seed of the random sign projection.
    eps:
        KD-tree slack for the sketch-space candidate pass (see
        :class:`KDTreeIndex`); candidate misses are compensated by
        ``oversample``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.knn.backends import JLIndex
    >>> points = np.random.default_rng(0).standard_normal((500, 40))
    >>> index = JLIndex(points, seed=0)
    >>> index.sketched
    True
    >>> distances, indices = index.query(points, k=4)
    >>> bool((indices[:, 0] == np.arange(500)).all())
    True
    >>> JLIndex(points[:, :4], seed=0).sketched  # M already <= sketch dim
    False
    """

    def __init__(
        self,
        features: np.ndarray,
        *,
        sketch_dim: int | None = None,
        oversample: int | None = None,
        seed: int | None = 0,
        eps: float = 0.5,
    ) -> None:
        self._features = _as_features(features)
        n, m = self._features.shape
        if sketch_dim is None:
            sketch_dim = sketch_dimension(n)
        if sketch_dim < 1:
            raise ValueError("sketch_dim must be at least 1")
        self.sketch_dim = int(sketch_dim)
        self.oversample = None if oversample is None else int(oversample)
        self.sketched = m > self.sketch_dim
        if not self.sketched:
            # Features are already at (or below) the sketch width: searching
            # the raw features exactly is both cheaper and error-free.
            self._projection = None
            self._sketch = None
            self._inner = (
                KDTreeIndex(self._features)
                if m <= KDTREE_MAX_DIM
                else BruteForceIndex(self._features)
            )
            return
        self._projection = jl_projection_matrix(m, self.sketch_dim, seed=seed)
        self._sketch = self._features @ self._projection
        self._inner = KDTreeIndex(self._sketch, eps=eps, leafsize=64)
        # Candidate ranking runs in float32 (half the memory traffic of the
        # gather); the final distances are recomputed exactly in float64.
        self._features32 = self._features.astype(np.float32)

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self._features.shape[0]

    @property
    def search_features(self) -> np.ndarray:
        """The matrix candidate searches run against.

        The JL sketch when projection is active, the raw features otherwise.
        Exposed so downstream consumers (e.g. the connectivity repair of
        :func:`repro.knn.knn_graph`) can run auxiliary searches in the same
        compressed space instead of rebuilding full-dimension structures.
        """
        return self._sketch if self.sketched else self._inner.search_features

    @property
    def kdtree(self) -> "cKDTree | None":
        """The KD-tree over :attr:`search_features`, when one exists.

        ``None`` when the non-sketched fallback delegates to the brute-force
        backend (which has no tree to share).
        """
        return getattr(self._inner, "kdtree", None)

    def query(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """``k`` (near-)nearest neighbours with exact full-dimension distances."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n = self.n_points
        k = min(int(k), n)
        if k < 1:
            raise ValueError("k must be at least 1")
        if not self.sketched:
            return self._inner.query(queries, k)
        oversample = self.oversample if self.oversample is not None else max(k, 8)
        n_candidates = min(n, k + oversample)
        # Tile the query rows so the per-block candidate-diff tensors stay
        # around the same 64 MB budget the brute-force backend uses — one
        # untiled pass at paper scale (150k queries x 14 candidates x M)
        # would transiently allocate gigabytes.  Rows are independent, so
        # tiling is exactly result-preserving.
        m = self._features.shape[1]
        row_bytes = n_candidates * m * 4 + k * m * 8
        block = max(1, (1 << 26) // max(row_bytes, 1))
        out_distances = np.empty((queries.shape[0], k))
        out_indices = np.empty((queries.shape[0], k), dtype=np.int64)
        for start in range(0, queries.shape[0], block):
            chunk = queries[start : start + block]
            dist, idx = self._query_block(chunk, k, n_candidates)
            out_distances[start : start + block] = dist
            out_indices[start : start + block] = idx
        return out_distances, out_indices

    def _query_block(
        self, queries: np.ndarray, k: int, n_candidates: int
    ) -> tuple[np.ndarray, np.ndarray]:
        _, candidates = self._inner.query(queries @ self._projection, n_candidates)
        # Rank candidates by full-dimension distance in float32, then compute
        # the exact float64 distances of the k kept neighbours.
        queries32 = queries.astype(np.float32)
        diff32 = self._features32[candidates] - queries32[:, None, :]
        rank2 = np.einsum("ijk,ijk->ij", diff32, diff32)
        order = np.lexsort((candidates, rank2), axis=-1)[:, :k]
        indices = np.take_along_axis(candidates, order, axis=1)
        diff = self._features[indices] - queries[:, None, :]
        distances = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        # Restore exact ascending order (float32 ranking can leave last-ulp
        # inversions between near-tied neighbours).
        final = np.lexsort((indices, distances), axis=-1)
        return (
            np.take_along_axis(distances, final, axis=1),
            np.take_along_axis(indices, final, axis=1),
        )


#: Backend name -> index factory, as accepted by :func:`build_index`.
BACKENDS = {
    "brute": BruteForceIndex,
    "kdtree": KDTreeIndex,
    "jl": JLIndex,
}


def build_index(features: np.ndarray, backend: str = "auto", **options):
    """Build a nearest-neighbour index over the rows of ``features``.

    Parameters
    ----------
    features:
        ``(N, M)`` feature matrix.
    backend:
        ``"auto"`` (default; policy in :func:`select_backend`), ``"brute"``,
        ``"kdtree"``, ``"jl"`` or ``"nsw"`` (the approximate
        :class:`repro.knn.NSWIndex`).
    options:
        Backend-specific keyword arguments (e.g. ``seed=...`` for ``jl`` and
        ``nsw``, ``block_bytes=...`` for ``brute``).  A ``seed`` passed to a
        seedless backend is dropped, so callers can thread one
        unconditionally.

    Returns
    -------
    An index exposing ``query(queries, k) -> (distances, indices)``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.knn.backends import build_index
    >>> points = np.random.default_rng(0).standard_normal((100, 30))
    >>> type(build_index(points, "auto")).__name__  # M=30 -> brute force
    'BruteForceIndex'
    >>> type(build_index(points[:, :3], "auto")).__name__
    'KDTreeIndex'
    """
    features = _as_features(features)
    if backend == "auto":
        backend = select_backend(features.shape[0], features.shape[1], features)
    if backend == "nsw":
        from repro.knn.nsw import NSWIndex

        seed = options.pop("seed", 0)
        return NSWIndex(seed=seed, **options).build(features)
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown kNN backend {backend!r}; "
            f"available: {sorted(BACKENDS) + ['auto', 'nsw']}"
        ) from None
    if factory is not JLIndex:
        options.pop("seed", None)
    return factory(features, **options)
