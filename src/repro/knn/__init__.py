"""k-nearest-neighbour graph construction and spanning-tree extraction.

Step 1 of the SGL algorithm builds a connected kNN graph from the voltage
measurement vectors and extracts its maximum spanning tree as the initial
graph.  This subpackage provides:

* :mod:`repro.knn.backends` -- pluggable search backends behind
  :func:`~repro.knn.backends.build_index`: exact KD-tree, blocked-BLAS exact
  brute force, and a JL-projected mode with exact re-ranking, plus the
  ``auto`` selection policy;
* :mod:`repro.knn.knn_graph` -- kNN graphs over any backend with the paper's
  inverse-squared-distance edge weights and connectivity repair;
* :mod:`repro.knn.nsw` -- a small navigable-small-world approximate
  nearest-neighbour index mirroring the HNSW reference [8] of the paper;
* :mod:`repro.knn.mst` -- maximum/minimum spanning trees.
"""

from repro.knn.backends import (
    BACKENDS,
    BruteForceIndex,
    JLIndex,
    KDTreeIndex,
    build_index,
    effective_rank,
    select_backend,
    sketch_dimension,
)
from repro.knn.knn_graph import knn_graph, knn_edges
from repro.knn.nsw import NSWIndex
from repro.knn.mst import maximum_spanning_tree, minimum_spanning_tree

__all__ = [
    "BACKENDS",
    "BruteForceIndex",
    "JLIndex",
    "KDTreeIndex",
    "build_index",
    "effective_rank",
    "select_backend",
    "sketch_dimension",
    "knn_graph",
    "knn_edges",
    "NSWIndex",
    "maximum_spanning_tree",
    "minimum_spanning_tree",
]
