"""k-nearest-neighbour graph construction and spanning-tree extraction.

Step 1 of the SGL algorithm builds a connected kNN graph from the voltage
measurement vectors and extracts its maximum spanning tree as the initial
graph.  This subpackage provides:

* :mod:`repro.knn.knn_graph` -- exact kNN graphs (KD-tree based) with the
  paper's inverse-squared-distance edge weights and connectivity repair;
* :mod:`repro.knn.nsw` -- a small navigable-small-world approximate
  nearest-neighbour index mirroring the HNSW reference [8] of the paper;
* :mod:`repro.knn.mst` -- maximum/minimum spanning trees.
"""

from repro.knn.knn_graph import knn_graph, knn_edges
from repro.knn.nsw import NSWIndex
from repro.knn.mst import maximum_spanning_tree, minimum_spanning_tree

__all__ = [
    "knn_graph",
    "knn_edges",
    "NSWIndex",
    "maximum_spanning_tree",
    "minimum_spanning_tree",
]
