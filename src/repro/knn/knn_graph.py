"""k-nearest-neighbour graph construction from measurement vectors.

Nodes of the learned graph correspond to rows of the voltage measurement
matrix ``X`` (each node's feature vector is its ``M`` measured voltages).  The
kNN graph connects each node to its ``k`` most similar nodes in Euclidean
distance; following Eqs. (14)-(15) of the paper, the natural edge weight is

    w_st = M / ||x_s - x_t||^2,

so that the maximum spectral-embedding distortion of the optimal graph is one.
Connectivity (required for a well-defined Laplacian pseudo-inverse and MST)
is repaired, if needed, by linking nearest components.
"""

from __future__ import annotations

from typing import Callable, Literal

import numpy as np
from scipy.spatial import cKDTree

from repro.graphs.graph import WeightedGraph

__all__ = ["knn_edges", "knn_graph"]

WeightScheme = Literal["sgl", "inverse_distance", "gaussian", "unit"]


def knn_edges(
    features: np.ndarray,
    k: int,
    *,
    index: "object | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Directed kNN edge list and distances.

    Parameters
    ----------
    features:
        ``(N, M)`` feature matrix (rows are nodes).
    k:
        Number of neighbours per node (excluding the node itself).
    index:
        Optional pre-built nearest-neighbour index exposing a
        ``query(features, k)`` method (e.g. :class:`repro.knn.NSWIndex`);
        defaults to an exact ``scipy.spatial.cKDTree``.

    Returns
    -------
    (edges, distances):
        ``edges`` is an ``(N*k, 2)`` array of directed pairs ``(i, neighbour)``
        and ``distances`` the corresponding Euclidean distances.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D (N, M) array")
    n = features.shape[0]
    if n < 2:
        raise ValueError("need at least two nodes")
    if not 1 <= k < n:
        raise ValueError("k must satisfy 1 <= k < N")

    if index is None:
        tree = cKDTree(features)
        distances, neighbors = tree.query(features, k=k + 1)
    else:
        distances, neighbors = index.query(features, k=k + 1)
        distances = np.asarray(distances, dtype=np.float64)
        neighbors = np.asarray(neighbors, dtype=np.int64)

    sources = np.repeat(np.arange(n), neighbors.shape[1])
    targets = neighbors.ravel()
    dists = distances.ravel()
    mask = sources != targets
    edges = np.column_stack([sources[mask], targets[mask]])
    dists = dists[mask]

    # Keep only k neighbours per source (the self-match removal may leave k+1
    # for nodes that did not match themselves, e.g. duplicated points).
    keep = np.ones(edges.shape[0], dtype=bool)
    counts = np.zeros(n, dtype=np.int64)
    for idx, s in enumerate(edges[:, 0]):
        counts[s] += 1
        if counts[s] > k:
            keep[idx] = False
    return edges[keep], dists[keep]


def _edge_weights(
    distances: np.ndarray,
    n_measurements: int,
    scheme: WeightScheme | Callable[[np.ndarray], np.ndarray],
    *,
    gaussian_bandwidth: float | None = None,
) -> np.ndarray:
    if callable(scheme):
        return np.asarray(scheme(distances), dtype=np.float64)
    # Guard against zero distances (duplicate measurement vectors).
    floor = max(np.max(distances), 1.0) * 1e-12
    safe = np.maximum(distances, floor)
    if scheme == "sgl":
        return n_measurements / safe**2
    if scheme == "inverse_distance":
        return 1.0 / safe
    if scheme == "gaussian":
        bandwidth = gaussian_bandwidth if gaussian_bandwidth is not None else float(np.median(safe))
        return np.exp(-(safe**2) / (2.0 * bandwidth**2))
    if scheme == "unit":
        return np.ones_like(safe)
    raise ValueError(f"unknown weight scheme {scheme!r}")


def _connect_components(
    graph: WeightedGraph,
    features: np.ndarray,
    n_measurements: int,
    scheme: WeightScheme | Callable[[np.ndarray], np.ndarray],
) -> WeightedGraph:
    """Link disconnected components through their closest node pairs."""
    n_components, labels = graph.connected_components()
    while n_components > 1:
        # Connect the smallest component to the closest node outside it.
        counts = np.bincount(labels)
        smallest = int(np.argmin(counts))
        inside = np.where(labels == smallest)[0]
        outside = np.where(labels != smallest)[0]
        tree = cKDTree(features[outside])
        dists, idx = tree.query(features[inside], k=1)
        best = int(np.argmin(dists))
        s = int(inside[best])
        t = int(outside[int(idx[best])])
        weight = _edge_weights(np.array([dists[best]]), n_measurements, scheme)
        graph = graph.add_edges(np.array([[s, t]]), weight)
        n_components, labels = graph.connected_components()
    return graph


def knn_graph(
    features: np.ndarray,
    k: int = 5,
    *,
    weight_scheme: WeightScheme | Callable[[np.ndarray], np.ndarray] = "sgl",
    ensure_connected: bool = True,
    gaussian_bandwidth: float | None = None,
    index: "object | None" = None,
) -> WeightedGraph:
    """Undirected kNN graph over the rows of ``features``.

    Parameters
    ----------
    features:
        ``(N, M)`` matrix whose rows are the per-node measurement vectors
        (``X`` in the paper).
    k:
        Number of neighbours; the paper uses ``k = 5`` throughout.
    weight_scheme:
        ``"sgl"`` (default) uses the paper's ``M / distance^2`` conductances;
        ``"inverse_distance"``, ``"gaussian"`` and ``"unit"`` are provided for
        baselines; a callable mapping distances to weights is also accepted.
    ensure_connected:
        Repair connectivity by linking nearest components (the paper requires
        a connected initial graph).
    index:
        Optional approximate nearest-neighbour index (see :func:`knn_edges`).
    """
    features = np.asarray(features, dtype=np.float64)
    edges, dists = knn_edges(features, k, index=index)
    n = features.shape[0]
    n_measurements = features.shape[1]
    weights = _edge_weights(
        dists, n_measurements, weight_scheme, gaussian_bandwidth=gaussian_bandwidth
    )
    # Duplicate (i -> j) and (j -> i) edges are merged by WeightedGraph with
    # weights summed; halve them so mutual neighbours get the intended weight.
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    keys = lo * np.int64(n) + hi
    unique_keys, first_idx = np.unique(keys, return_index=True)
    graph = WeightedGraph(
        n,
        lo[first_idx],
        hi[first_idx],
        weights[first_idx],
    )
    if ensure_connected and not graph.is_connected():
        graph = _connect_components(graph, features, n_measurements, weight_scheme)
    return graph
