"""k-nearest-neighbour graph construction from measurement vectors.

Nodes of the learned graph correspond to rows of the voltage measurement
matrix ``X`` (each node's feature vector is its ``M`` measured voltages).  The
kNN graph connects each node to its ``k`` most similar nodes in Euclidean
distance; following Eqs. (14)-(15) of the paper, the natural edge weight is

    w_st = M / ||x_s - x_t||^2,

so that the maximum spectral-embedding distortion of the optimal graph is one.
Connectivity (required for a well-defined Laplacian pseudo-inverse and MST)
is repaired, if needed, by linking nearest components.
"""

from __future__ import annotations

from typing import Callable, Literal

import numpy as np
from scipy.spatial import cKDTree

from repro.graphs.graph import WeightedGraph
from repro.knn.backends import build_index

__all__ = ["knn_edges", "knn_graph"]

WeightScheme = Literal["sgl", "inverse_distance", "gaussian", "unit"]


def knn_edges(
    features: np.ndarray,
    k: int,
    *,
    index: "object | None" = None,
    backend: str = "auto",
    backend_options: dict | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Directed kNN edge list and distances.

    Parameters
    ----------
    features:
        ``(N, M)`` feature matrix (rows are nodes).
    k:
        Number of neighbours per node (excluding the node itself).
    index:
        Optional pre-built nearest-neighbour index exposing a
        ``query(features, k)`` method (e.g. :class:`repro.knn.NSWIndex` or
        any :mod:`repro.knn.backends` index); overrides ``backend``.
    backend:
        Search backend name passed to :func:`repro.knn.backends.build_index`
        when no ``index`` is given: ``"auto"`` (default), ``"brute"``,
        ``"kdtree"``, ``"jl"`` or ``"nsw"``.
    backend_options:
        Extra keyword arguments for the backend factory (e.g. ``seed``).

    Returns
    -------
    (edges, distances):
        ``edges`` is an ``(N*k, 2)`` array of directed pairs ``(i, neighbour)``
        and ``distances`` the corresponding Euclidean distances.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.knn import knn_edges
    >>> points = np.random.default_rng(0).standard_normal((50, 3))
    >>> edges, distances = knn_edges(points, k=2)
    >>> edges.shape, distances.shape
    ((100, 2), (100,))
    >>> brute_edges, brute_dists = knn_edges(points, k=2, backend="brute")
    >>> bool((brute_edges == edges).all() and (brute_dists == distances).all())
    True
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D (N, M) array")
    n = features.shape[0]
    if n < 2:
        raise ValueError("need at least two nodes")
    if not 1 <= k < n:
        raise ValueError("k must satisfy 1 <= k < N")

    if index is None:
        index = build_index(features, backend, **(backend_options or {}))
    distances, neighbors = index.query(features, k=k + 1)
    distances = np.asarray(distances, dtype=np.float64)
    neighbors = np.asarray(neighbors, dtype=np.int64)

    sources = np.repeat(np.arange(n), neighbors.shape[1])
    targets = neighbors.ravel()
    dists = distances.ravel()
    mask = sources != targets
    sources = sources[mask]
    targets = targets[mask]
    dists = dists[mask]

    # Keep only k neighbours per source (the self-match removal may leave k+1
    # for nodes that did not match themselves, e.g. duplicated points).
    # ``sources`` stays sorted after masking, so the rank of each entry
    # within its source group is its offset from the group start.
    group_starts = np.searchsorted(sources, np.arange(n))
    rank_in_group = np.arange(sources.size) - group_starts[sources]
    keep = rank_in_group < k
    edges = np.column_stack([sources[keep], targets[keep]])
    return edges, dists[keep]


def _edge_weights(
    distances: np.ndarray,
    n_measurements: int,
    scheme: WeightScheme | Callable[[np.ndarray], np.ndarray],
    *,
    gaussian_bandwidth: float | None = None,
) -> np.ndarray:
    if callable(scheme):
        return np.asarray(scheme(distances), dtype=np.float64)
    # Guard against zero distances (duplicate measurement vectors).
    floor = max(np.max(distances), 1.0) * 1e-12
    safe = np.maximum(distances, floor)
    if scheme == "sgl":
        return n_measurements / safe**2
    if scheme == "inverse_distance":
        return 1.0 / safe
    if scheme == "gaussian":
        bandwidth = gaussian_bandwidth if gaussian_bandwidth is not None else float(np.median(safe))
        return np.exp(-(safe**2) / (2.0 * bandwidth**2))
    if scheme == "unit":
        return np.ones_like(safe)
    raise ValueError(f"unknown weight scheme {scheme!r}")


def _connect_components(
    graph: WeightedGraph,
    features: np.ndarray,
    n_measurements: int,
    scheme: WeightScheme | Callable[[np.ndarray], np.ndarray],
    *,
    search_features: np.ndarray | None = None,
    search_tree: "cKDTree | None" = None,
) -> WeightedGraph:
    """Link disconnected components through their closest node pairs.

    The closest-pair search runs over ``search_features`` when given (the
    JL backend passes its sketch, so repair never rebuilds full-dimension
    KD-trees) and reuses ``search_tree`` (a prebuilt tree over exactly
    those features) when the index exposes one; the repair edge's weight
    is always computed from the exact full-dimension distance.
    """
    if search_features is None:
        search_features = features
    n_components, labels = graph.connected_components()
    if n_components <= 1:
        return graph
    # One global tree serves every repair round; adding a repair edge only
    # merges two component labels, so components are tracked by relabelling
    # instead of rebuilding the graph (and its adjacency) per round.
    labels = labels.copy()
    global_tree = cKDTree(search_features) if search_tree is None else search_tree
    repair_edges: list[tuple[int, int]] = []
    repair_dists: list[float] = []
    while n_components > 1:
        # Connect the smallest component to the closest node outside it.
        counts = np.bincount(labels)
        counts[counts == 0] = np.iinfo(counts.dtype).max
        smallest = int(np.argmin(counts))
        inside = np.where(labels == smallest)[0]
        # Nearby outside nodes usually appear among the first few global
        # neighbours.  For an inside node whose beam contains an outside
        # node, the first such hit IS its true nearest outside neighbour;
        # for a node whose beam is entirely internal, the beam radius lower-
        # bounds its outside distance.  The beam answer is therefore
        # provably the closest pair unless some all-internal beam could
        # still hide a closer pair — only then pay for the exact search.
        beam = min(16, search_features.shape[0])
        dists, idx = global_tree.query(search_features[inside], k=beam)
        if beam == 1:
            dists = dists[:, None]
            idx = idx[:, None]
        outside_mask = labels[idx] != smallest
        found = outside_mask.any(axis=1)
        nearest_outside = np.where(outside_mask, dists, np.inf).min(axis=1)
        best_found = float(nearest_outside.min())
        hidden_bound = float(dists[~found, -1].min()) if (~found).any() else np.inf
        if best_found <= hidden_bound:
            best = int(np.argmin(nearest_outside))
            col = int(np.argmax(np.where(outside_mask[best], -dists[best], -np.inf)))
            s = int(inside[best])
            t = int(idx[best, col])
        else:
            # Fallback: exact closest pair against the explicit outside set.
            outside = np.where(labels != smallest)[0]
            tree = cKDTree(search_features[outside])
            dists1, idx1 = tree.query(search_features[inside], k=1)
            best = int(np.argmin(dists1))
            s = int(inside[best])
            t = int(outside[int(idx1[best])])
        repair_edges.append((s, t))
        repair_dists.append(float(np.linalg.norm(features[s] - features[t])))
        labels[labels == labels[t]] = smallest
        n_components -= 1
    weights = _edge_weights(np.asarray(repair_dists), n_measurements, scheme)
    return graph.add_edges(np.asarray(repair_edges, dtype=np.int64), weights)


def knn_graph(
    features: np.ndarray,
    k: int = 5,
    *,
    weight_scheme: WeightScheme | Callable[[np.ndarray], np.ndarray] = "sgl",
    ensure_connected: bool = True,
    gaussian_bandwidth: float | None = None,
    index: "object | None" = None,
    backend: str = "auto",
    backend_options: dict | None = None,
) -> WeightedGraph:
    """Undirected kNN graph over the rows of ``features``.

    Parameters
    ----------
    features:
        ``(N, M)`` matrix whose rows are the per-node measurement vectors
        (``X`` in the paper).
    k:
        Number of neighbours; the paper uses ``k = 5`` throughout.
    weight_scheme:
        ``"sgl"`` (default) uses the paper's ``M / distance^2`` conductances;
        ``"inverse_distance"``, ``"gaussian"`` and ``"unit"`` are provided for
        baselines; a callable mapping distances to weights is also accepted.
    ensure_connected:
        Repair connectivity by linking nearest components (the paper requires
        a connected initial graph).
    index:
        Optional pre-built nearest-neighbour index (see :func:`knn_edges`).
    backend, backend_options:
        Search backend selection when no ``index`` is given (see
        :func:`repro.knn.backends.build_index`).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.knn import knn_graph
    >>> points = np.random.default_rng(0).standard_normal((60, 20))
    >>> graph = knn_graph(points, k=4, backend="brute")
    >>> graph.n_nodes, graph.is_connected()
    (60, True)
    """
    features = np.asarray(features, dtype=np.float64)
    if index is None and features.ndim == 2 and features.shape[0] >= 2:
        index = build_index(features, backend, **(backend_options or {}))
    edges, dists = knn_edges(features, k, index=index)
    n = features.shape[0]
    n_measurements = features.shape[1]
    weights = _edge_weights(
        dists, n_measurements, weight_scheme, gaussian_bandwidth=gaussian_bandwidth
    )
    # Mutual pairs appear as both (i -> j) and (j -> i); keep one directed
    # copy per undirected edge.  The unique pass leaves canonical (lo < hi)
    # endpoints sorted by packed key, which is exactly WeightedGraph's
    # canonical form, so the trusted constructor can skip re-sorting.
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    keys = lo * np.int64(n) + hi
    unique_keys, first_idx = np.unique(keys, return_index=True)
    unique_weights = np.ascontiguousarray(weights[first_idx], dtype=np.float64)
    # The trusted constructor skips WeightedGraph's validation; keep its
    # positivity invariant (a callable weight scheme may return zeros).
    if unique_weights.size and not np.all(unique_weights > 0):
        raise ValueError("edge weights must be strictly positive")
    graph = WeightedGraph._from_canonical(
        n,
        lo[first_idx],
        hi[first_idx],
        unique_weights,
    )
    if ensure_connected and not graph.is_connected():
        graph = _connect_components(
            graph,
            features,
            n_measurements,
            weight_scheme,
            search_features=getattr(index, "search_features", None),
            search_tree=getattr(index, "kdtree", None),
        )
    return graph
