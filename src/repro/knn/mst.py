"""Maximum / minimum spanning trees of weighted graphs.

SGL seeds its densification loop with the *maximum* spanning tree of the kNN
graph (Step 1): since kNN edge weights are inverse squared distances, the
maximum-weight tree keeps the shortest (most similar) connections, i.e. it is
the minimum-distance spanning tree of the underlying point cloud.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import minimum_spanning_tree as _csgraph_mst

from repro.graphs.graph import WeightedGraph

__all__ = ["maximum_spanning_tree", "minimum_spanning_tree"]


def _spanning_tree_edges(graph: WeightedGraph, *, maximize: bool) -> np.ndarray:
    """Indices (into the graph's edge arrays) of the chosen spanning tree edges."""
    if graph.n_edges == 0:
        return np.empty(0, dtype=np.int64)
    n = graph.n_nodes
    # Build a matrix whose entries are edge indices + 1 so we can recover which
    # original edge each tree arc corresponds to (weight ties are resolved the
    # same way for the key matrix and the index matrix).
    sort_weights = -graph.weights if maximize else graph.weights
    key = sp.csr_matrix(
        (sort_weights, (graph.rows, graph.cols)), shape=(n, n)
    )
    # csgraph treats explicit zeros as missing; shift weights to be strictly
    # negative (maximize) or strictly positive (minimize) to avoid dropping
    # edges whose weight happens to be zero after negation.
    shift = sort_weights.min() - 1.0
    shifted = sp.csr_matrix(
        (sort_weights - shift, (graph.rows, graph.cols)), shape=(n, n)
    )
    tree = _csgraph_mst(shifted).tocoo()
    # Map tree arcs back to canonical edge indices.
    edge_index = {}
    for idx, (s, t) in enumerate(zip(graph.rows, graph.cols)):
        edge_index[(int(s), int(t))] = idx
    chosen = []
    for s, t in zip(tree.row, tree.col):
        key_pair = (int(min(s, t)), int(max(s, t)))
        chosen.append(edge_index[key_pair])
    return np.asarray(sorted(chosen), dtype=np.int64)


def maximum_spanning_tree(graph: WeightedGraph) -> WeightedGraph:
    """Maximum-weight spanning forest of ``graph`` (tree if connected).

    Edge weights of the returned graph are the original weights of the chosen
    edges.
    """
    idx = _spanning_tree_edges(graph, maximize=True)
    return WeightedGraph(
        graph.n_nodes, graph.rows[idx], graph.cols[idx], graph.weights[idx]
    )


def minimum_spanning_tree(graph: WeightedGraph) -> WeightedGraph:
    """Minimum-weight spanning forest of ``graph``."""
    idx = _spanning_tree_edges(graph, maximize=False)
    return WeightedGraph(
        graph.n_nodes, graph.rows[idx], graph.cols[idx], graph.weights[idx]
    )
