"""Partition-parallel SGL fitting: per-shard learners plus boundary stitching.

The paper's learner is a single global loop; its runtime and memory are what
cap the experiments at 150k nodes.  :class:`ShardedSGLearner` breaks the
problem along a balanced vertex partition of the Step-1 kNN candidate graph
(:class:`~repro.partition.GraphPartitioner`) and runs one *independent* SGL
fit per shard — in a process pool when ``jobs > 1`` — then repairs what the
decomposition severed:

1. **Union**: the per-shard learned graphs are mapped back to global node
   ids (shards are vertex-disjoint, so the union is exact — no weights
   collide).
2. **Reconnect**: every global maximum-spanning-tree edge of the candidate
   graph that the union is missing is admitted — the same Step-2 backbone
   the serial learner starts from, so the stitched graph is connected by
   construction.
3. **Correct**: a bounded number of global sweeps re-ranks *every*
   candidate edge still absent from the stitched graph — cut edges and
   interior edges alike — by the same spectral sensitivity the inner loop
   uses (Step 3 of Algorithm 1, evaluated on a global embedding) and
   admits the influential ones: the cross-boundary and cross-shard
   structure no per-shard fit could see.
4. **Scale**: Step-5 spectral edge scaling runs once, globally, on the
   stitched graph (per-shard fits skip it), so a ``num_parts=1`` run is
   bit-compatible with the serial :class:`~repro.core.sgl.SGLearner`.

The ``partition`` / ``shard_fit`` / ``stitch`` phases are recorded as
:class:`~repro.core.instrumentation.StageTimings` stages and ambient
:mod:`repro.obs` spans, exactly like the serial learner's stages.

Examples
--------
>>> from repro.graphs.generators import grid_2d
>>> from repro.measurements import simulate_measurements
>>> from repro.partition import ShardedSGLearner
>>> data = simulate_measurements(grid_2d(12, 12), n_measurements=30, seed=0)
>>> result = ShardedSGLearner(beta=0.05, num_parts=2).fit(data)
>>> result.graph.n_nodes, result.graph.is_connected()
(144, True)
>>> result.partition.n_parts
2
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.config import SGLConfig
from repro.core.instrumentation import StageTimings
from repro.core.scaling import spectral_edge_scaling
from repro.core.sensitivity import edge_sensitivities
from repro.core.sgl import SGLearner, SGLResult
from repro.embedding.spectral import spectral_embedding_matrix
from repro.graphs.graph import WeightedGraph
from repro.knn.knn_graph import knn_graph
from repro.knn.mst import maximum_spanning_tree
from repro.measurements.generator import MeasurementSet
from repro.obs.tracing import set_attributes, span as obs_span
from repro.partition.partitioner import GraphPartition, GraphPartitioner

__all__ = ["ShardFitError", "ShardedSGLearner", "ShardedSGLResult", "fit_shard"]


class ShardFitError(RuntimeError):
    """One shard's SGL fit failed (worker raised or died).

    Attributes
    ----------
    shard:
        Index of the failing shard.
    """

    def __init__(self, shard: int, message: str) -> None:
        super().__init__(f"shard {shard}: {message}")
        self.shard = int(shard)


def fit_shard(shard: int, voltages: np.ndarray, config: SGLConfig) -> SGLResult:
    """Fit one shard's SGL problem (module level, so process pools can pickle it).

    ``voltages`` are the shard's rows of the global measurement matrix;
    ``config`` must already have ``edge_scaling=False`` (scaling is a global
    stitch-time step).  Exceptions propagate to the pool consumer, which
    wraps them in :class:`ShardFitError` naming ``shard``.
    """
    return SGLearner(config).fit(voltages)


@dataclass(frozen=True)
class ShardedSGLResult:
    """Outcome of a partition-parallel SGL run.

    Attributes
    ----------
    graph:
        The stitched, globally edge-scaled learned graph (global node ids).
    unscaled_graph:
        The stitched graph before Step-5 scaling.
    partition:
        The :class:`~repro.partition.GraphPartition` the fit decomposed over.
    shard_results:
        Per-shard :class:`~repro.core.sgl.SGLResult` objects; their graphs
        use shard-local node ids (``shard_nodes[p][local] = global``).
    shard_nodes:
        Per-shard ascending global node ids.
    config:
        The (global) configuration used.
    scaling_factor:
        The global Step-5 conductance factor (1.0 when unavailable).
    converged:
        True when every shard's densification loop converged.
    stitch_stats:
        Counters of the stitch phase: cut candidates, connector edges,
        per-sweep correction-edge counts.
    timings:
        Stage counters including the new ``partition`` / ``shard_fit`` /
        ``stitch`` stages.
    """

    graph: WeightedGraph
    unscaled_graph: WeightedGraph
    partition: GraphPartition
    shard_results: tuple[SGLResult, ...]
    shard_nodes: tuple[np.ndarray, ...]
    config: SGLConfig
    scaling_factor: float
    converged: bool
    stitch_stats: dict
    timings: StageTimings = field(default_factory=StageTimings)

    @property
    def n_parts(self) -> int:
        """Number of shards the fit was decomposed into."""
        return self.partition.n_parts

    @property
    def n_iterations(self) -> int:
        """Largest per-shard densification iteration count."""
        return max((r.n_iterations for r in self.shard_results), default=0)

    @property
    def density(self) -> float:
        """Density ``|E|/|V|`` of the stitched learned graph."""
        return self.graph.density

    @property
    def engine_stats(self) -> dict:
        """Element-wise sum of the shards' embedding-engine counters."""
        totals: dict = {}
        for result in self.shard_results:
            for key, value in (result.engine_stats or {}).items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    totals[key] = totals.get(key, 0) + value
        return totals


class ShardedSGLearner:
    """Partition-parallel spectral graph learner.

    Parameters
    ----------
    config:
        A :class:`~repro.core.SGLConfig`, or keyword overrides
        (``ShardedSGLearner(k=5, beta=0.01, num_parts=4)``).  The per-shard
        fits inherit every field (including ``embedding_engine``) except
        ``edge_scaling``, which is deferred to the global stitch.
    num_parts:
        Number of shards.  ``1`` reproduces the serial learner bit for bit.
    jobs:
        Shard fits run in a ``jobs``-process pool when ``> 1``; the pooled
        execution is byte-identical to the in-process sequential order.
    stitch_sweeps:
        Bounded number of global sensitivity sweeps over the cut-edge
        candidates after reconnection (0 disables correction).
    balance_tolerance, partition_oversample:
        Forwarded to :class:`~repro.partition.GraphPartitioner`.
    """

    def __init__(
        self,
        config: SGLConfig | None = None,
        *,
        num_parts: int = 4,
        jobs: int = 1,
        stitch_sweeps: int = 2,
        balance_tolerance: float = 1.2,
        partition_oversample: int = 8,
        **overrides,
    ) -> None:
        if config is None:
            config = SGLConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        if num_parts < 1:
            raise ValueError("num_parts must be at least 1")
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if stitch_sweeps < 0:
            raise ValueError("stitch_sweeps must be non-negative")
        self.config = config
        self.num_parts = int(num_parts)
        self.jobs = int(jobs)
        self.stitch_sweeps = int(stitch_sweeps)
        self.balance_tolerance = float(balance_tolerance)
        self.partition_oversample = int(partition_oversample)

    # ------------------------------------------------------------------
    def fit(
        self,
        measurements: MeasurementSet | np.ndarray,
        currents: np.ndarray | None = None,
        *,
        timings: StageTimings | None = None,
        checkpoint_dir: str | Path | None = None,
    ) -> ShardedSGLResult:
        """Learn a resistor network from measurements, shard-parallel.

        Mirrors :meth:`repro.core.sgl.SGLearner.fit`;
        ``checkpoint_dir`` persists the finished result as a sharded model
        (:func:`repro.artifacts.save_sharded_result` — per-shard ``.npz``
        files plus a checksummed manifest).  Nothing is written when any
        shard fails: a :class:`ShardFitError` names the failing shard.
        """
        if isinstance(measurements, MeasurementSet):
            voltages = measurements.voltages
            currents = measurements.currents
        else:
            voltages = np.asarray(measurements, dtype=np.float64)
        if voltages.ndim != 2:
            raise ValueError("voltages must be an (N, M) matrix")
        n_nodes = voltages.shape[0]
        if n_nodes < 3 * self.num_parts:
            raise ValueError(
                f"need at least {3 * self.num_parts} nodes for {self.num_parts} "
                "shards (3 per shard)"
            )
        if timings is None:
            timings = StageTimings()

        with obs_span(
            "sharded.fit",
            n_nodes=n_nodes,
            n_measurements=voltages.shape[1],
            n_parts=self.num_parts,
            jobs=self.jobs,
            embedding_engine=self.config.embedding_engine,
        ):
            result = self._fit_body(voltages, currents, timings, checkpoint_dir)
            set_attributes(
                converged=result.converged,
                n_edges_learned=result.graph.n_edges,
                n_cut_edges=result.partition.n_cut_edges,
            )
        return result

    # ------------------------------------------------------------------
    def _fit_body(
        self,
        voltages: np.ndarray,
        currents: np.ndarray | None,
        timings: StageTimings,
        checkpoint_dir: str | Path | None,
    ) -> ShardedSGLResult:
        config = self.config
        n_nodes = voltages.shape[0]

        # Step 1 (global): the kNN candidate graph doubles as the partition
        # substrate — its heavy edges are exactly the measurement-space
        # affinities the shards should keep interior.
        k = min(config.k, n_nodes - 1)
        with timings.stage("knn"):
            candidates = knn_graph(
                voltages,
                k,
                weight_scheme="sgl",
                ensure_connected=True,
                backend=config.knn_backend,
                backend_options={"seed": config.seed},
            )

        with timings.stage("partition", n_parts=self.num_parts):
            partitioner = GraphPartitioner(
                self.num_parts,
                balance_tolerance=self.balance_tolerance,
                oversample=self.partition_oversample,
                min_part_size=3,
                seed=config.seed if config.seed is not None else 0,
            )
            partition = partitioner.partition(candidates)
            set_attributes(
                n_cut_edges=partition.n_cut_edges,
                balance_factor=partition.balance_factor,
            )

        shard_nodes = tuple(
            partition.part_nodes(p) for p in range(self.num_parts)
        )
        with timings.stage("shard_fit", n_parts=self.num_parts, jobs=self.jobs):
            shard_results = self._fit_shards(voltages, shard_nodes)

        with timings.stage("stitch", sweeps=self.stitch_sweeps):
            stitched, stitch_stats = self._stitch(
                voltages, candidates, partition, shard_nodes, shard_results
            )
            set_attributes(**stitch_stats)

        unscaled = stitched
        scaling_factor = 1.0
        if config.edge_scaling and currents is not None:
            with timings.stage("edge_scaling"):
                stitched, scaling_factor = spectral_edge_scaling(
                    stitched, voltages, currents
                )

        result = ShardedSGLResult(
            graph=stitched,
            unscaled_graph=unscaled,
            partition=partition,
            shard_results=tuple(shard_results),
            shard_nodes=shard_nodes,
            config=config,
            scaling_factor=scaling_factor,
            converged=all(r.converged for r in shard_results),
            stitch_stats=stitch_stats,
            timings=timings,
        )
        if checkpoint_dir is not None:
            # Local import: repro.artifacts.sharded depends on this module.
            from repro.artifacts.sharded import save_sharded_result

            with timings.stage("checkpoint"):
                save_sharded_result(result, checkpoint_dir)
        return result

    # ------------------------------------------------------------------
    def _fit_shards(
        self, voltages: np.ndarray, shard_nodes: tuple[np.ndarray, ...]
    ) -> list[SGLResult]:
        """Fit every shard, in-process (jobs=1) or in a process pool.

        The pool path submits the exact same ``fit_shard(p, voltages[ids],
        shard_config)`` calls the sequential path makes, so both produce
        byte-identical results; failures surface as :class:`ShardFitError`
        naming the shard, whether the worker raised or died.
        """
        shard_config = dataclasses.replace(self.config, edge_scaling=False)
        n_parts = len(shard_nodes)
        if self.jobs == 1 or n_parts == 1:
            results: list[SGLResult] = []
            for p, ids in enumerate(shard_nodes):
                with obs_span("shard", shard=p, n_nodes=int(ids.size)):
                    try:
                        results.append(fit_shard(p, voltages[ids], shard_config))
                    except Exception as exc:
                        raise ShardFitError(
                            p, f"{type(exc).__name__}: {exc}"
                        ) from exc
            return results

        from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait

        pool = ProcessPoolExecutor(max_workers=min(self.jobs, n_parts))
        try:
            futures = {
                pool.submit(fit_shard, p, voltages[ids], shard_config): p
                for p, ids in enumerate(shard_nodes)
            }
            wait(futures, return_when=FIRST_EXCEPTION)
            # Attribute the failure to the lowest-indexed shard whose future
            # holds an exception (a dead worker breaks every pending future,
            # so "first in shard order" is the most useful name we can give).
            ordered = sorted(futures.items(), key=lambda item: item[1])
            for future, p in ordered:
                if future.done() and future.exception() is not None:
                    exc = future.exception()
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise ShardFitError(
                        p, f"{type(exc).__name__}: {exc}"
                    ) from exc
            return [future.result() for future, _ in ordered]
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    def _stitch(
        self,
        voltages: np.ndarray,
        candidates: WeightedGraph,
        partition: GraphPartition,
        shard_nodes: tuple[np.ndarray, ...],
        shard_results: list[SGLResult],
    ) -> tuple[WeightedGraph, dict]:
        """Union the shard graphs, reconnect them, run correction sweeps."""
        config = self.config
        n_nodes = partition.n_nodes
        assignment = partition.assignment
        rows = [ids[res.graph.rows] for ids, res in zip(shard_nodes, shard_results)]
        cols = [ids[res.graph.cols] for ids, res in zip(shard_nodes, shard_results)]
        weights = [res.graph.weights for res in shard_results]
        stitched = WeightedGraph(
            n_nodes,
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int64),
            np.concatenate(cols) if cols else np.empty(0, dtype=np.int64),
            np.concatenate(weights) if weights else np.empty(0),
        )

        cand_edges = np.column_stack([candidates.rows, candidates.cols])
        cand_weights = candidates.weights
        if partition.n_parts == 1:
            # Nothing was severed: the single "shard" fit *is* the serial
            # fit, and skipping the repair stages keeps it bit-compatible.
            return stitched, {
                "n_cut_candidates": 0,
                "connector_edges": 0,
                "correction_edges": [],
                "cut_edges_admitted": 0,
                "components_before_stitch": 1,
            }

        key_cand = candidates.rows * np.int64(n_nodes) + candidates.cols
        key_stitched = stitched.rows * np.int64(n_nodes) + stitched.cols
        # Candidate edges already realised by some shard's fit (shards can
        # also learn non-candidate edges — connectivity repairs — which
        # simply stay in the union).
        present = np.isin(key_cand, key_stitched)
        n_comp = partition.n_parts

        # (a) Reconnect the way Algorithm 1's Step 2 would have: admit
        # every edge of the candidate graph's global maximum spanning
        # tree still missing from the union.  Its cross-shard edges are
        # the heavy boundary links no per-shard fit could see, and the
        # tree spans all vertices, so the stitched graph is connected
        # by construction.
        tree = maximum_spanning_tree(candidates)
        key_tree = tree.rows * np.int64(n_nodes) + tree.cols
        missing = ~np.isin(key_tree, key_stitched)
        stitched = stitched.add_edges(
            np.column_stack([tree.rows[missing], tree.cols[missing]]),
            tree.weights[missing],
        )
        present |= np.isin(key_cand, key_tree)
        tree_cross = assignment[tree.rows] != assignment[tree.cols]
        n_connectors = int(tree_cross.sum())

        # (b) Correct: bounded global sensitivity sweeps over every
        # candidate edge the stitched graph is still missing — the
        # cross-boundary edges *and* the interior edges a shard-local
        # embedding ranked differently than the global one would have
        # (Step 3 of Algorithm 1, evaluated globally).
        method = (
            "multilevel"
            if config.embedding_engine == "multilevel"
            else config.eigensolver
        )
        batch = config.edges_per_iteration(n_nodes)
        added_per_sweep: list[int] = []
        for _ in range(self.stitch_sweeps):
            remaining = np.where(~present)[0]
            if remaining.size == 0:
                break
            embedding = spectral_embedding_matrix(
                stitched,
                config.r,
                sigma_sq=config.sigma_sq,
                method=method,
                seed=config.seed,
                multilevel_coarse_size=config.multilevel_coarse_size,
            )
            sensitivities = edge_sensitivities(
                embedding, voltages, cand_edges[remaining]
            )
            order = np.argsort(sensitivities)[::-1][:batch]
            chosen = order[sensitivities[order] > config.tol]
            if chosen.size == 0:
                added_per_sweep.append(0)
                break
            selected = remaining[chosen]
            stitched = stitched.add_edges(
                cand_edges[selected], cand_weights[selected]
            )
            present[selected] = True
            added_per_sweep.append(int(chosen.size))

        crossing = assignment[candidates.rows] != assignment[candidates.cols]
        stats = {
            "n_cut_candidates": int(crossing.sum()),
            "connector_edges": n_connectors,
            "correction_edges": added_per_sweep,
            "cut_edges_admitted": int((present & crossing).sum()),
            "components_before_stitch": int(n_comp),
        }
        return stitched, stats
