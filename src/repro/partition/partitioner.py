"""Balanced vertex partitions derived from heavy-edge-matching coarsening.

Domain decomposition needs vertex partitions that are *balanced* (shards do
comparable work), *local* (few cut edges, so stitching has little to repair)
and *cheap to compute at million-node scale*.  Rather than pulling in a
graph-partitioning dependency, :class:`GraphPartitioner` reuses the
coarsening substrate the multilevel eigensolver already ships
(:mod:`repro.linalg.coarsening`):

1. **Coarsen** the graph by repeated heavy-edge matching until at most
   ``oversample * num_parts`` supernodes remain.  Matching merges strongly
   coupled neighbours, so supernodes are contiguous, well-connected blobs —
   exactly the granules a locality-preserving partition wants to move
   around.  The oversampling leaves the packer enough granules to balance.
2. **Pack** supernodes into ``num_parts`` bins, largest first: each
   supernode joins the bin holding its most strongly connected
   already-placed neighbours (greedy modularity-style affinity) unless that
   would overflow the balance capacity, in which case it falls to the
   lightest bin.
3. **Project** bin ids back through the composed aggregate maps to fine
   nodes, then repair balance at node granularity: bounded donor-to-
   recipient moves (boundary nodes first) until every part is within the
   configured tolerance and above the minimum size.

The result is a :class:`GraphPartition`: the assignment vector, the cut
edges (each canonical graph edge crossing parts appears exactly once) and
per-part halo vertices (the out-of-part endpoints of a part's cut edges —
what a distributed solver would ghost-exchange).

Examples
--------
>>> from repro.graphs.generators import grid_2d
>>> from repro.partition import GraphPartitioner
>>> part = GraphPartitioner(4, seed=0).partition(grid_2d(16, 16))
>>> part.n_parts, int(part.part_sizes.sum())
(4, 256)
>>> bool(part.balance_factor <= 1.2)
True
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.linalg.coarsening import coarsen_graph

__all__ = ["GraphPartition", "GraphPartitioner"]


@dataclass(frozen=True)
class GraphPartition:
    """A balanced vertex partition of one graph.

    Attributes
    ----------
    n_nodes:
        Number of nodes of the partitioned graph.
    n_parts:
        Number of parts (``assignment`` values are ``0 .. n_parts - 1``).
    assignment:
        Length-``n_nodes`` int64 array mapping each node to its part.
    cut_rows, cut_cols, cut_weights:
        The cut edges — every canonical edge of the partitioned graph whose
        endpoints land in different parts, in canonical order.  Each such
        edge appears here exactly once (and in no part's interior).
    """

    n_nodes: int
    n_parts: int
    assignment: np.ndarray
    cut_rows: np.ndarray
    cut_cols: np.ndarray
    cut_weights: np.ndarray

    # ------------------------------------------------------------------
    @property
    def part_sizes(self) -> np.ndarray:
        """Node count per part (length ``n_parts``)."""
        return np.bincount(self.assignment, minlength=self.n_parts)

    @property
    def n_cut_edges(self) -> int:
        """Number of edges crossing parts."""
        return int(self.cut_rows.size)

    @property
    def cut_edges(self) -> np.ndarray:
        """The cut edges as an ``(m, 2)`` array of global node ids."""
        return np.column_stack([self.cut_rows, self.cut_cols])

    @property
    def balance_factor(self) -> float:
        """``max part size / ceil(n_nodes / n_parts)`` (1.0 = perfect)."""
        ideal = -(-self.n_nodes // self.n_parts)
        return float(self.part_sizes.max()) / float(max(ideal, 1))

    # ------------------------------------------------------------------
    def part_nodes(self, part: int) -> np.ndarray:
        """Global node ids of ``part``, ascending (the shard-local order)."""
        self._check_part(part)
        return np.where(self.assignment == part)[0]

    def halo_nodes(self, part: int) -> np.ndarray:
        """Out-of-part endpoints of ``part``'s cut edges, ascending.

        These are the ghost vertices a distributed solver owning ``part``
        would need values for.  Halos are symmetric by construction: ``u``
        is in ``halo(part(v))`` iff ``v`` is in ``halo(part(u))`` for every
        cut edge ``(u, v)``.
        """
        self._check_part(part)
        row_part = self.assignment[self.cut_rows]
        col_part = self.assignment[self.cut_cols]
        external = np.concatenate(
            [self.cut_cols[row_part == part], self.cut_rows[col_part == part]]
        )
        return np.unique(external)

    def _check_part(self, part: int) -> None:
        if not 0 <= part < self.n_parts:
            raise ValueError(f"part must be in [0, {self.n_parts}), got {part}")

    def as_dict(self) -> dict:
        """JSON-ready summary (sizes and cut statistics, not the arrays)."""
        return {
            "n_nodes": self.n_nodes,
            "n_parts": self.n_parts,
            "part_sizes": [int(s) for s in self.part_sizes],
            "n_cut_edges": self.n_cut_edges,
            "balance_factor": self.balance_factor,
        }


class GraphPartitioner:
    """Derive balanced vertex partitions from coarsening matchings.

    Parameters
    ----------
    num_parts:
        Number of parts to produce (each part is guaranteed non-empty).
    balance_tolerance:
        Upper bound on :attr:`GraphPartition.balance_factor`; parts never
        exceed ``balance_tolerance * ceil(N / num_parts)`` nodes.
    oversample:
        Coarsening stops once at most ``oversample * num_parts`` supernodes
        remain; larger values give the packer more granularity (better
        balance) at the cost of locality.
    min_part_size:
        Minimum nodes per part (callers fitting per-shard SGL problems need
        at least 3).
    seed:
        Seed for the per-level matching order (level ``i`` uses
        ``seed + i``); the whole pipeline is deterministic given the seed.
    max_levels:
        Hard cap on coarsening levels.

    Examples
    --------
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.partition import GraphPartitioner
    >>> partitioner = GraphPartitioner(3, seed=1)
    >>> part = partitioner.partition(grid_2d(10, 10))
    >>> sorted(set(part.assignment)) == [0, 1, 2]
    True
    >>> part.n_cut_edges == partitioner.partition(grid_2d(10, 10)).n_cut_edges
    True
    """

    def __init__(
        self,
        num_parts: int,
        *,
        balance_tolerance: float = 1.2,
        oversample: int = 8,
        min_part_size: int = 1,
        seed: int = 0,
        max_levels: int = 40,
    ) -> None:
        if num_parts < 1:
            raise ValueError("num_parts must be at least 1")
        if balance_tolerance < 1.0:
            raise ValueError("balance_tolerance must be at least 1.0")
        if oversample < 2:
            raise ValueError("oversample must be at least 2")
        if min_part_size < 1:
            raise ValueError("min_part_size must be at least 1")
        if max_levels < 1:
            raise ValueError("max_levels must be at least 1")
        self.num_parts = int(num_parts)
        self.balance_tolerance = float(balance_tolerance)
        self.oversample = int(oversample)
        self.min_part_size = int(min_part_size)
        self.seed = int(seed)
        self.max_levels = int(max_levels)

    # ------------------------------------------------------------------
    def partition(self, graph: WeightedGraph) -> GraphPartition:
        """Partition ``graph`` into ``num_parts`` balanced parts."""
        n_nodes = graph.n_nodes
        if n_nodes < self.num_parts * self.min_part_size:
            raise ValueError(
                f"cannot split {n_nodes} nodes into {self.num_parts} parts "
                f"of at least {self.min_part_size} nodes each"
            )
        if self.num_parts == 1:
            empty = np.empty(0, dtype=np.int64)
            return GraphPartition(
                n_nodes=n_nodes,
                n_parts=1,
                assignment=np.zeros(n_nodes, dtype=np.int64),
                cut_rows=empty,
                cut_cols=empty.copy(),
                cut_weights=np.empty(0, dtype=np.float64),
            )

        fine_to_super, coarse = self._coarsen(graph)
        assignment = self._pack(fine_to_super, coarse)[fine_to_super]
        assignment = self._rebalance(graph, assignment)

        cross = assignment[graph.rows] != assignment[graph.cols]
        return GraphPartition(
            n_nodes=n_nodes,
            n_parts=self.num_parts,
            assignment=assignment,
            cut_rows=graph.rows[cross].copy(),
            cut_cols=graph.cols[cross].copy(),
            cut_weights=graph.weights[cross].copy(),
        )

    # ------------------------------------------------------------------
    def _coarsen(self, graph: WeightedGraph) -> tuple[np.ndarray, WeightedGraph]:
        """Coarsen until ``<= oversample * num_parts`` supernodes remain.

        Returns the composed fine-to-supernode map and the coarse graph.
        """
        target = self.oversample * self.num_parts
        fine_to_super = np.arange(graph.n_nodes, dtype=np.int64)
        current = graph
        for level_index in range(self.max_levels):
            if current.n_nodes <= target:
                break
            level = coarsen_graph(current, seed=self.seed + level_index)
            if level.graph.n_nodes >= int(0.95 * current.n_nodes):
                break  # matching saturated; more levels would not shrink
            fine_to_super = level.aggregates[fine_to_super]
            current = level.graph
        return fine_to_super, current

    def _pack(self, fine_to_super: np.ndarray, coarse: WeightedGraph) -> np.ndarray:
        """Greedy affinity packing of supernodes into ``num_parts`` bins."""
        n_parts = self.num_parts
        n_super = coarse.n_nodes
        sizes = np.bincount(fine_to_super, minlength=n_super).astype(np.int64)
        n_fine = int(sizes.sum())
        ideal = -(-n_fine // n_parts)
        capacity = int(self.balance_tolerance * ideal)

        adjacency = coarse.adjacency()
        bin_of = np.full(n_super, -1, dtype=np.int64)
        loads = np.zeros(n_parts, dtype=np.int64)
        # Descending size, ties by ascending supernode id: the big blobs
        # anchor the bins, the small ones fill the balance gaps.
        order = np.argsort(-sizes, kind="stable")
        n_filled = 0
        for node in order:
            size = sizes[node]
            if n_filled < n_parts:
                # Seed every bin before honouring affinity so no part can
                # end up empty.
                target = int(np.argmin(loads))
                n_filled += 1
            else:
                start, end = adjacency.indptr[node], adjacency.indptr[node + 1]
                neighbor_bins = bin_of[adjacency.indices[start:end]]
                placed = neighbor_bins >= 0
                target = -1
                if placed.any():
                    affinity = np.bincount(
                        neighbor_bins[placed],
                        weights=adjacency.data[start:end][placed],
                        minlength=n_parts,
                    )
                    affinity[loads + size > capacity] = 0.0
                    if affinity.max() > 0.0:
                        target = int(np.argmax(affinity))
                if target < 0:
                    target = int(np.argmin(loads))
            bin_of[node] = target
            loads[target] += size
        return bin_of

    def _rebalance(self, graph: WeightedGraph, assignment: np.ndarray) -> np.ndarray:
        """Node-granular repair: enforce the capacity and minimum-size bounds.

        Bounded donor-to-recipient moves — each round either fixes the
        recipient (to the ideal size / the minimum) or brings the donor to
        the ideal, so the loop terminates after O(num_parts) rounds.  Moved
        nodes are taken from the donor's current boundary first (nodes with
        a cut edge), lowest ids first, keeping the repair deterministic.
        """
        n_parts = self.num_parts
        assignment = assignment.copy()
        sizes = np.bincount(assignment, minlength=n_parts).astype(np.int64)
        ideal = -(-graph.n_nodes // n_parts)
        capacity = int(self.balance_tolerance * ideal)

        for _ in range(4 * n_parts + 16):
            if sizes.max() <= capacity and sizes.min() >= self.min_part_size:
                break
            donor = int(np.argmax(sizes))
            recipient = int(np.argmin(sizes))
            if sizes.max() > capacity:
                n_move = min(sizes[donor] - ideal, max(ideal - sizes[recipient], 1))
            else:
                # Some part is above the minimum whenever another is below
                # it (sum(sizes) = N >= num_parts * min_part_size), so the
                # clamp never drops the donor under the minimum and each
                # round strictly shrinks the recipient's deficit.
                n_move = min(
                    self.min_part_size - sizes[recipient],
                    sizes[donor] - self.min_part_size,
                )
            n_move = int(max(n_move, 1))
            donor_nodes = np.where(assignment == donor)[0]
            on_boundary = np.zeros(graph.n_nodes, dtype=bool)
            cross = assignment[graph.rows] != assignment[graph.cols]
            on_boundary[graph.rows[cross]] = True
            on_boundary[graph.cols[cross]] = True
            movable = np.concatenate(
                [donor_nodes[on_boundary[donor_nodes]], donor_nodes[~on_boundary[donor_nodes]]]
            )
            moved = movable[:n_move]
            assignment[moved] = recipient
            sizes[donor] -= moved.size
            sizes[recipient] += moved.size
        return assignment
