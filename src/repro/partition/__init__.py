"""Partition-parallel fitting: balanced vertex partitions + sharded SGL.

:class:`GraphPartitioner` derives balanced, locality-preserving vertex
partitions from the heavy-edge-matching coarsening substrate;
:class:`ShardedSGLearner` fits one SGL problem per part (optionally in a
process pool) and stitches the shard graphs back together with boundary
reconnection, global sensitivity sweeps and a final global edge scaling.

Examples
--------
>>> from repro.graphs.generators import grid_2d
>>> from repro.partition import GraphPartitioner
>>> part = GraphPartitioner(2, seed=0).partition(grid_2d(8, 8))
>>> part.n_parts, int(part.part_sizes.sum()), part.n_cut_edges > 0
(2, 64, True)
"""

from repro.partition.partitioner import GraphPartition, GraphPartitioner
from repro.partition.sharded import (
    ShardedSGLearner,
    ShardedSGLResult,
    ShardFitError,
    fit_shard,
)

__all__ = [
    "GraphPartition",
    "GraphPartitioner",
    "ShardFitError",
    "ShardedSGLearner",
    "ShardedSGLResult",
    "fit_shard",
]
