"""A loaded model ready to answer queries: factor once, serve many.

:class:`GraphSession` is the unit of serving state.  Building one from a
:class:`~repro.artifacts.ModelArtifact` pays every per-model cost exactly
once — the grounded SuperLU factorisation of the learned Laplacian, the
nearest-neighbour index over the stored spectral embedding, the per-``k``
spectral-cluster labelings — after which each query kind is a cheap batched
operation:

* **effective-resistance queries** run through the grouped-RHS fast path
  (:func:`repro.metrics.effective_resistance_batched`): one multi-RHS
  triangular solve per batch instead of one solve per pair;
* **nearest-neighbour lookups** reuse :func:`repro.knn.backends.build_index`
  over the stored embedding (squared embedding distances approximate
  effective resistances, Eq. 13, so "nearest" means electrically closest);
* **cluster-label queries** hit a lazily computed, cached spectral
  clustering of the learned graph.

Sessions are deliberately synchronous and thread-compatible: the asyncio
front loop (:class:`repro.serve.GraphService`) coalesces requests into
batches and calls into the session from a worker pool.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import numpy as np

from repro.artifacts.store import ModelArtifact, load_result
from repro.embedding.clustering import spectral_clustering
from repro.knn.backends import build_index
from repro.linalg.solvers import LaplacianSolver
from repro.metrics.resistance import effective_resistance_batched
from repro.serve.resistance import ResistanceOracle

__all__ = ["GraphSession"]


class GraphSession:
    """Precomputed query state over one loaded model artifact.

    Parameters
    ----------
    artifact:
        A loaded :class:`~repro.artifacts.ModelArtifact` (see
        :meth:`from_file` to go straight from a path).
    knn_backend:
        Search backend for the embedding index
        (:func:`repro.knn.backends.build_index` names; default ``"auto"``).
    resistance_engine:
        ``"auto"`` (default) serves resistance queries through the exact
        tree-plus-low-rank :class:`~repro.serve.resistance.ResistanceOracle`
        whenever the graph is tree-like enough (SGL-learned graphs always
        are), falling back to grouped multi-RHS Laplacian solves otherwise;
        ``"woodbury"`` forces the oracle (raises on ineligible graphs);
        ``"grouped"`` forces the solver path.
    resistance_block:
        Right-hand sides per grouped Laplacian solve (fallback path).
    seed:
        Seed for the clustering k-means and any backend sampling.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro import learn_graph, simulate_measurements
    >>> from repro.artifacts import save_result
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.serve import GraphSession
    >>> data = simulate_measurements(grid_2d(6, 6), n_measurements=30, seed=0)
    >>> path = os.path.join(tempfile.mkdtemp(), "grid.npz")
    >>> _ = save_result(learn_graph(data, beta=0.05), path)
    >>> session = GraphSession.from_file(path)
    >>> float(session.effective_resistance([(0, 0)])[0])
    0.0
    >>> session.nearest_neighbors([0], k=2)[1].shape
    (1, 2)
    >>> session.stats()["queries"]["resistance"]
    1
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        *,
        knn_backend: str = "auto",
        resistance_engine: str = "auto",
        resistance_block: int = 256,
        seed: int | None = 0,
    ) -> None:
        if resistance_engine not in ("auto", "woodbury", "grouped"):
            raise ValueError(
                "resistance_engine must be 'auto', 'woodbury' or 'grouped'"
            )
        self.artifact = artifact
        self.graph = artifact.graph
        self.checksum = artifact.checksum
        self._knn_backend = knn_backend
        self._resistance_block = int(resistance_block)
        self._seed = seed
        start = time.perf_counter()
        self.solver = LaplacianSolver(self.graph)
        self._oracle: ResistanceOracle | None = None
        if resistance_engine == "woodbury" or (
            resistance_engine == "auto" and ResistanceOracle.eligible(self.graph)
        ):
            self._oracle = ResistanceOracle(self.graph)
        self.factor_seconds = time.perf_counter() - start
        self._index = None
        self._labels: dict[int, np.ndarray] = {}
        self._lock = threading.Lock()
        self._counters = {"resistance": 0, "neighbors": 0, "labels": 0}

    # ------------------------------------------------------------------
    @classmethod
    def from_file(cls, path: str | Path, **options) -> "GraphSession":
        """Load an artifact (validated) and build a session over it."""
        return cls(load_result(path), **options)

    @property
    def n_nodes(self) -> int:
        """Number of nodes of the served graph."""
        return self.graph.n_nodes

    @property
    def has_embedding(self) -> bool:
        """Whether embedding-backed queries (neighbours) are available."""
        return self.artifact.embedding is not None

    # ------------------------------------------------------------------
    def _embedding_index(self):
        if self._index is None:
            if self.artifact.embedding is None:
                raise ValueError(
                    "artifact was saved without an embedding; nearest-neighbour "
                    "queries need save_result(..., include_embedding=True)"
                )
            with self._lock:
                if self._index is None:
                    self._index = build_index(
                        self.artifact.embedding,
                        self._knn_backend,
                        seed=self._seed,
                    )
        return self._index

    @property
    def resistance_engine(self) -> str:
        """The active resistance engine (``"woodbury"`` or ``"grouped"``)."""
        return "woodbury" if self._oracle is not None else "grouped"

    def effective_resistance(self, pairs: np.ndarray) -> np.ndarray:
        """Batched exact effective resistances ``R_eff(s, t)``.

        Through the tree-plus-low-rank oracle when active (no Laplacian
        solves at query time), otherwise one grouped multi-RHS solve per
        ``resistance_block`` pairs, reusing the session's factorisation.
        """
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if self._oracle is not None:
            out = self._oracle.query(pairs)
        else:
            out = effective_resistance_batched(
                self.graph,
                pairs,
                solver=self.solver,
                block_size=self._resistance_block,
            )
        with self._lock:
            self._counters["resistance"] += pairs.shape[0]
        return out

    def nearest_nodes(
        self, vectors: np.ndarray, k: int = 5
    ) -> tuple[np.ndarray, np.ndarray]:
        """``k`` embedding-space nearest stored nodes of free query vectors.

        ``vectors`` is ``(q, r-1)`` in the stored embedding's coordinate
        system; returns ``(distances, node_ids)`` of shape ``(q, k)``.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        distances, indices = self._embedding_index().query(vectors, k)
        with self._lock:
            self._counters["neighbors"] += vectors.shape[0]
        return distances, indices

    def nearest_neighbors(
        self, nodes: np.ndarray, k: int = 5
    ) -> tuple[np.ndarray, np.ndarray]:
        """``k`` electrically-nearest *other* nodes of each given node.

        Queries the embedding index with the nodes' own embedding rows and
        drops each node from its own result row.  Returns
        ``(distances, node_ids)`` of shape ``(len(nodes), k)``.
        """
        nodes = np.asarray(nodes, dtype=np.int64).ravel()
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.n_nodes):
            raise ValueError(f"node id out of range for {self.n_nodes} nodes")
        index = self._embedding_index()
        k = min(int(k), self.n_nodes - 1)
        if k < 1:
            raise ValueError("k must be at least 1")
        embedding = self.artifact.embedding
        distances, indices = index.query(embedding[nodes], k + 1)
        # Drop the query node from its own row — by id, not position: with
        # duplicated embedding rows the self-match need not come first.
        # Index ids are unique, so each row keeps exactly k (self found)
        # or k + 1 (self beyond the k+1 cut) candidates; truncate to k.
        out_d = np.empty((nodes.size, k))
        out_i = np.empty((nodes.size, k), dtype=np.int64)
        for row in range(nodes.size):
            keep = np.where(indices[row] != nodes[row])[0][:k]
            out_d[row] = distances[row, keep]
            out_i[row] = indices[row, keep]
        with self._lock:
            self._counters["neighbors"] += nodes.size
        return out_d, out_i

    def cluster_labels(
        self, nodes: np.ndarray | None = None, *, n_clusters: int = 8
    ) -> np.ndarray:
        """Spectral-cluster labels of ``nodes`` (all nodes when ``None``).

        The full labeling is computed once per ``n_clusters`` and cached;
        subsequent queries are array lookups.
        """
        if n_clusters < 1:
            raise ValueError("n_clusters must be at least 1")
        n_clusters = min(n_clusters, self.n_nodes)
        labels = self._labels.get(n_clusters)
        if labels is None:
            with self._lock:
                labels = self._labels.get(n_clusters)
                if labels is None:
                    labels = spectral_clustering(
                        self.graph, n_clusters, seed=self._seed
                    )
                    self._labels[n_clusters] = labels
        if nodes is None:
            with self._lock:
                self._counters["labels"] += self.n_nodes
            return labels.copy()
        nodes = np.asarray(nodes, dtype=np.int64).ravel()
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.n_nodes):
            raise ValueError(f"node id out of range for {self.n_nodes} nodes")
        with self._lock:
            self._counters["labels"] += nodes.size
        return labels[nodes]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Session statistics: model identity, sizes, per-kind query counts."""
        with self._lock:
            counters = dict(self._counters)
        return {
            "checksum": self.checksum,
            "n_nodes": self.n_nodes,
            "n_edges": self.graph.n_edges,
            "has_embedding": self.has_embedding,
            "resistance_engine": self.resistance_engine,
            "factor_seconds": self.factor_seconds,
            "cluster_cache": sorted(self._labels),
            "queries": counters,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphSession(checksum={self.checksum[:12]}..., "
            f"n_nodes={self.n_nodes}, n_edges={self.graph.n_edges})"
        )
