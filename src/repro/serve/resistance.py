"""Exact batched effective-resistance oracle for tree-plus-few-edges graphs.

SGL-learned graphs are, by construction, a spanning tree plus a small set of
off-tree edges (density barely above 1).  That structure admits a far better
batched query algorithm than repeated Laplacian solves.  Split the graph as

    L = T + U W U^T,

where ``T`` is the Laplacian of a spanning tree, ``U`` the oriented
incidence columns of the ``m`` off-tree edges and ``W`` their diagonal
weights.  Grounding one node makes both sides nonsingular, and Woodbury
gives, for ``b = e_s - e_t`` (ground coordinate dropped),

    R_eff(s, t) = b^T L_g^{-1} b
                = R_tree(s, t) - v^T M^{-1} v,

with ``v = Z^T b`` for ``Z = T_g^{-1} U_g`` (one tree solve per off-tree
edge, done once) and ``M = W^{-1} + U_g^T Z`` (an SPD ``m x m`` matrix,
Cholesky-factorised once).  Per query that leaves

* ``R_tree(s, t)`` — the resistance of the tree path, computed as
  ``pot[s] + pot[t] - 2 pot[lca(s, t)]`` from root-to-node resistance
  potentials and a vectorised binary-lifting LCA (``O(log N)`` gathers per
  batch, no solves);
* the correction ``v^T M^{-1} v`` — two small BLAS calls per batch.

Everything is exact (it is algebra, not approximation); the only float
caveat is the conditioning of ``M``, which stays benign because the
spanning tree is chosen *maximum-weight* — off-tree edges are the weak
ones.  Eligibility is checked by :meth:`ResistanceOracle.eligible`: the
oracle pays ``O(m^2)`` per batched query and ``O(N m)`` memory for ``Z``,
so graphs that are not tree-like fall back to grouped multi-RHS solves
(:func:`repro.metrics.effective_resistance_batched`).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from repro.graphs.graph import WeightedGraph
from repro.knn.mst import maximum_spanning_tree
from repro.linalg.solvers import grounded_splu

__all__ = ["ResistanceOracle"]

#: Off-tree-edge count beyond which the dense m x m correction stops paying.
_MAX_OFF_TREE = 2000

#: Cap on the dense ``Z`` scratch matrix (n * m doubles).
_MAX_Z_ENTRIES = 20_000_000


class ResistanceOracle:
    """Precomputed exact effective-resistance queries on a tree-like graph.

    Parameters
    ----------
    graph:
        Connected :class:`~repro.graphs.WeightedGraph`.  Use
        :meth:`eligible` first; construction raises ``ValueError`` on
        graphs with too many off-tree edges.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.linalg import effective_resistance
    >>> from repro.serve.resistance import ResistanceOracle
    >>> graph = grid_2d(5, 5)  # 25 nodes, 40 edges: m = 16 off-tree
    >>> oracle = ResistanceOracle(graph)
    >>> pairs = [(0, 24), (3, 17), (6, 6)]
    >>> bool(np.allclose(oracle.query(pairs), effective_resistance(graph, pairs)))
    True
    """

    def __init__(self, graph: WeightedGraph) -> None:
        if not graph.is_connected():
            raise ValueError("ResistanceOracle requires a connected graph")
        n = graph.n_nodes
        m_off = graph.n_edges - (n - 1)
        if not self.eligible(graph):
            raise ValueError(
                f"graph is not tree-like enough for the oracle "
                f"({m_off} off-tree edges on {n} nodes); use grouped solves"
            )
        self.n_nodes = n
        tree = maximum_spanning_tree(graph)
        self._build_tree_tables(tree)
        self._build_correction(graph, tree)

    # ------------------------------------------------------------------
    @staticmethod
    def eligible(graph: WeightedGraph) -> bool:
        """Whether the tree + low-rank decomposition will pay off."""
        n = graph.n_nodes
        if n < 2:
            return False
        m_off = graph.n_edges - (n - 1)
        if m_off < 0:  # disconnected; the constructor re-checks properly
            return False
        return m_off <= min(_MAX_OFF_TREE, max(n // 8, 64)) and (
            n * max(m_off, 1) <= _MAX_Z_ENTRIES
        )

    # ------------------------------------------------------------------
    def _build_tree_tables(self, tree: WeightedGraph) -> None:
        """Root the tree; build resistance potentials and LCA lifting tables."""
        n = tree.n_nodes
        order, parents = sp.csgraph.breadth_first_order(
            tree.adjacency(), i_start=0, directed=False, return_predecessors=True
        )
        parent = np.asarray(parents, dtype=np.int64)
        parent[0] = 0  # root points at itself: lifting past the root is a no-op
        depth = np.zeros(n, dtype=np.int64)
        pot = np.zeros(n, dtype=np.float64)
        order = np.asarray(order, dtype=np.int64)
        non_root = order[1:]
        # BFS order guarantees parents are finalised before children.
        edge_w = tree.edge_weights(
            np.column_stack([parent[non_root], non_root])
        )
        for node, w in zip(non_root, edge_w):
            p = parent[node]
            depth[node] = depth[p] + 1
            pot[node] = pot[p] + 1.0 / w
        self._depth = depth
        self._pot = pot
        levels = max(1, int(np.ceil(np.log2(max(int(depth.max()), 1) + 1))) + 1)
        up = np.empty((levels, n), dtype=np.int64)
        up[0] = parent
        for k in range(1, levels):
            up[k] = up[k - 1][up[k - 1]]
        self._up = up

    def _lca(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Vectorised binary-lifting lowest common ancestors."""
        u = u.copy()
        v = v.copy()
        depth, up = self._depth, self._up
        # Lift the deeper endpoint to the shallower one's depth.
        swap = depth[u] < depth[v]
        u[swap], v[swap] = v[swap], u[swap]
        diff = depth[u] - depth[v]
        for k in range(up.shape[0]):
            mask = (diff >> k) & 1 == 1
            if mask.any():
                u[mask] = up[k][u[mask]]
        # Lift both until the parents coincide.
        todo = u != v
        for k in range(up.shape[0] - 1, -1, -1):
            mask = todo & (up[k][u] != up[k][v])
            if mask.any():
                u[mask] = up[k][u[mask]]
                v[mask] = up[k][v[mask]]
        lca = u.copy()
        lca[todo] = up[0][u[todo]]
        return lca

    def tree_resistance(self, pairs: np.ndarray) -> np.ndarray:
        """Resistance of the spanning-tree paths (series resistors)."""
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        s, t = pairs[:, 0], pairs[:, 1]
        lca = self._lca(s, t)
        return self._pot[s] + self._pot[t] - 2.0 * self._pot[lca]

    # ------------------------------------------------------------------
    def _build_correction(self, graph: WeightedGraph, tree: WeightedGraph) -> None:
        """Precompute ``Z`` rows and the Cholesky factor of ``M``."""
        n = graph.n_nodes
        off_mask = ~tree.has_edges(graph.edges)
        off_edges = graph.edges[off_mask]
        off_weights = graph.weights[off_mask]
        m = off_edges.shape[0]
        self.n_off_tree = m
        if m == 0:
            self._z = None
            self._cho = None
            return
        lu = grounded_splu(tree.laplacian()[1:, 1:])
        # U_g columns are e_a - e_b with the ground (node 0) coordinate
        # dropped; solve T_g Z = U_g once for all off-tree edges.
        rhs = np.zeros((n - 1, m))
        cols = np.arange(m)
        a, b = off_edges[:, 0], off_edges[:, 1]
        mask_a = a > 0
        rhs[a[mask_a] - 1, cols[mask_a]] = 1.0
        mask_b = b > 0
        rhs[b[mask_b] - 1, cols[mask_b]] -= 1.0
        z_grounded = lu.solve(rhs)
        z = np.zeros((n, m))
        z[1:] = z_grounded
        self._z = z
        gram = z[a] - z[b]  # U_g^T Z, row per off-tree edge
        M = np.diag(1.0 / off_weights) + gram
        M = 0.5 * (M + M.T)  # symmetrise fp noise before Cholesky
        self._cho = sla.cho_factor(M, lower=True)

    # ------------------------------------------------------------------
    def query(self, pairs: np.ndarray) -> np.ndarray:
        """Exact effective resistances of ``(m, 2)`` node pairs, batched."""
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if pairs.size == 0:
            return np.empty(0)
        if pairs.min() < 0 or pairs.max() >= self.n_nodes:
            raise ValueError(f"pair endpoint out of range for {self.n_nodes} nodes")
        out = self.tree_resistance(pairs)
        if self._z is not None:
            v = self._z[pairs[:, 0]] - self._z[pairs[:, 1]]
            out = out - np.einsum(
                "ij,ij->i", v, sla.cho_solve(self._cho, v.T).T
            )
        # s == t pairs are exactly zero by construction; clamp the
        # correction's last-ulp negatives on near-duplicate nodes.
        return np.maximum(out, 0.0)
