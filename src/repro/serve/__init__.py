"""Batched query serving over persisted SGL model artifacts.

The ROADMAP's north star is a system that *serves* learned graphs, not one
that only learns them.  This package is that serving layer, built on the
divide between per-model precomputation and per-query work:

* :class:`GraphSession` — one loaded model: Laplacian factorised once,
  nearest-neighbour index over the stored spectral embedding built once,
  spectral-cluster labelings cached; answers **batched** effective-
  resistance, nearest-neighbour and cluster-label queries.  Resistance
  queries go through the exact tree-plus-low-rank
  :class:`ResistanceOracle` on tree-like graphs (SGL output always is) —
  no Laplacian solves at query time — with grouped multi-RHS solves as
  the general fallback;
* :class:`ShardedGraphSession` — the same query surface over a partition-
  parallel model directory (:mod:`repro.artifacts.sharded`): per-shard
  sessions answer same-shard queries exactly, a contracted boundary graph
  bridges cross-shard resistance queries;
* :class:`MicroBatcher` — asyncio request coalescing (flush on batch size
  or deadline, whichever first) feeding a worker pool;
* :class:`GraphService` — the front end: an LRU cache of sessions keyed by
  artifact checksum plus the micro-batched ``query()`` API, and
  :func:`serve_forever`, a newline-delimited JSON TCP server over it.

``repro-serve`` (see :mod:`repro.serve.cli`) exposes ``warm``, ``query``
and ``serve`` on the command line; ``python -m repro.bench serve``
benchmarks the stack against a naive per-query-solve baseline.
"""

from repro.serve.batching import BatchStats, MicroBatcher
from repro.serve.resistance import ResistanceOracle
from repro.serve.service import GraphService, serve_forever
from repro.serve.session import GraphSession
from repro.serve.sharded import ShardedGraphSession

__all__ = [
    "BatchStats",
    "GraphService",
    "GraphSession",
    "MicroBatcher",
    "ResistanceOracle",
    "ShardedGraphSession",
    "serve_forever",
]
