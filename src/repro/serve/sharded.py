"""Sharded serving: route queries to owning shards, bridge across shards.

:class:`ShardedGraphSession` serves a partition-parallel model
(:class:`~repro.artifacts.ShardedModelArtifact`) the way it was fitted — one
:class:`~repro.serve.GraphSession` per shard — and adds the cross-shard glue
a single-graph session never needs:

* **Same-shard resistance** queries translate global node ids to shard-local
  ids and run exactly on the owning shard's session (oracle or grouped
  solves, identical to single-graph serving of that shard).
* **Cross-shard resistance** runs on the *boundary graph*: every endpoint of
  a cut edge keeps its identity, each shard's interior contracts to one
  supernode (interior-to-boundary edges attach to it, summed), and the cut
  edges connect boundary vertices across shards.  Queries map interior
  endpoints to their shard's supernode.  This is a documented contraction
  approximation — exact on the inter-shard structure, coarse inside a shard
  — answered through the :class:`~repro.serve.ResistanceOracle` when the
  boundary graph is tree-like enough and grouped solves otherwise.
* **Nearest-neighbour** queries run on the owning shard's stored embedding
  and come back in global node ids (embedding-space neighbours of a node
  are overwhelmingly same-shard: the partition was cut along weak edges).
* **Cluster labels** are per-shard labelings namespaced by shard
  (``shard * n_clusters + local_label``), so labels are globally unique.

Examples
--------
>>> import tempfile
>>> from repro.artifacts import save_sharded_result
>>> from repro.graphs.generators import grid_2d
>>> from repro.measurements import simulate_measurements
>>> from repro.partition import ShardedSGLearner
>>> from repro.serve import ShardedGraphSession
>>> data = simulate_measurements(grid_2d(10, 10), n_measurements=30, seed=0)
>>> result = ShardedSGLearner(beta=0.05, num_parts=2).fit(data)
>>> session = ShardedGraphSession.from_directory(
...     save_sharded_result(result, tempfile.mkdtemp()))
>>> session.n_parts, session.n_nodes
(2, 100)
>>> session.effective_resistance([[0, 1], [0, 99]]).shape
(2,)
"""

from __future__ import annotations

import threading
from pathlib import Path

import numpy as np

from repro.artifacts.sharded import ShardedModelArtifact, load_sharded_result
from repro.graphs.graph import WeightedGraph
from repro.linalg.solvers import LaplacianSolver
from repro.metrics.resistance import effective_resistance_batched
from repro.serve.resistance import ResistanceOracle
from repro.serve.session import GraphSession

__all__ = ["ShardedGraphSession"]


class _BoundaryBridge:
    """The contracted boundary graph plus its resistance engine."""

    def __init__(
        self,
        artifact: ShardedModelArtifact,
        *,
        resistance_engine: str,
        resistance_block: int,
    ) -> None:
        assignment = artifact.assignment
        n_parts = artifact.n_parts
        boundary_ids = np.unique(
            np.concatenate([artifact.cut_rows, artifact.cut_cols])
        )
        n_boundary = boundary_ids.size
        # Global node -> boundary-graph node: boundary vertices keep their
        # identity (compacted), interior nodes go to their shard supernode.
        node_map = n_boundary + assignment.astype(np.int64)
        node_map[boundary_ids] = np.arange(n_boundary)

        rows = [node_map[artifact.cut_rows]]
        cols = [node_map[artifact.cut_cols]]
        weights = [artifact.cut_weights]
        for nodes, shard in zip(artifact.shard_nodes, artifact.shards):
            g_rows = node_map[nodes[shard.graph.rows]]
            g_cols = node_map[nodes[shard.graph.cols]]
            keep = g_rows != g_cols  # interior-interior edges collapse away
            rows.append(g_rows[keep])
            cols.append(g_cols[keep])
            weights.append(shard.graph.weights[keep])
        all_rows = np.concatenate(rows)
        all_cols = np.concatenate(cols)
        all_weights = np.concatenate(weights)

        # A shard whose nodes are all on the boundary leaves its supernode
        # isolated; compact it away so the graph stays connected.
        present = np.zeros(n_boundary + n_parts, dtype=bool)
        present[all_rows] = True
        present[all_cols] = True
        present[:n_boundary] = True
        compact = np.cumsum(present) - 1
        self.node_map = np.where(present[node_map], compact[node_map], -1)
        self.graph = WeightedGraph(
            int(present.sum()),
            compact[all_rows],
            compact[all_cols],
            all_weights,
        )

        self._block = int(resistance_block)
        self._oracle: ResistanceOracle | None = None
        self._solver: LaplacianSolver | None = None
        if resistance_engine == "woodbury" or (
            resistance_engine == "auto" and ResistanceOracle.eligible(self.graph)
        ):
            self._oracle = ResistanceOracle(self.graph)
        else:
            self._solver = LaplacianSolver(self.graph)

    @property
    def engine(self) -> str:
        return "woodbury" if self._oracle is not None else "grouped"

    def query(self, pairs: np.ndarray) -> np.ndarray:
        mapped = self.node_map[pairs]
        if self._oracle is not None:
            return self._oracle.query(mapped)
        return effective_resistance_batched(
            self.graph, mapped, solver=self._solver, block_size=self._block
        )


class ShardedGraphSession:
    """Precomputed query state over one loaded *sharded* model.

    Parameters mirror :class:`~repro.serve.GraphSession` and are forwarded
    to every per-shard session; ``resistance_engine``/``resistance_block``
    also govern the boundary bridge.
    """

    def __init__(
        self,
        artifact: ShardedModelArtifact,
        *,
        knn_backend: str = "auto",
        resistance_engine: str = "auto",
        resistance_block: int = 256,
        seed: int | None = 0,
    ) -> None:
        self.artifact = artifact
        self.checksum = artifact.checksum
        self.assignment = artifact.assignment
        self.shard_nodes = artifact.shard_nodes
        self.shards = tuple(
            GraphSession(
                shard,
                knn_backend=knn_backend,
                resistance_engine=resistance_engine,
                resistance_block=resistance_block,
                seed=seed,
            )
            for shard in artifact.shards
        )
        self._bridge: _BoundaryBridge | None = None
        if artifact.n_parts > 1 and artifact.cut_rows.size:
            self._bridge = _BoundaryBridge(
                artifact,
                resistance_engine=resistance_engine,
                resistance_block=resistance_block,
            )
        self._lock = threading.Lock()
        self._counters = {"resistance": 0, "cross_resistance": 0, "neighbors": 0, "labels": 0}

    # ------------------------------------------------------------------
    @classmethod
    def from_directory(cls, directory: str | Path, **options) -> "ShardedGraphSession":
        """Load a sharded model directory (validated) and serve it."""
        return cls(load_sharded_result(directory), **options)

    @property
    def n_nodes(self) -> int:
        """Total number of nodes across shards."""
        return self.artifact.n_nodes

    @property
    def n_parts(self) -> int:
        """Number of shards."""
        return self.artifact.n_parts

    def _check_nodes(self, nodes: np.ndarray) -> None:
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.n_nodes):
            raise ValueError(f"node id out of range for {self.n_nodes} nodes")

    def _local(self, part: int, nodes: np.ndarray) -> np.ndarray:
        return np.searchsorted(self.shard_nodes[part], nodes)

    # ------------------------------------------------------------------
    def effective_resistance(self, pairs: np.ndarray) -> np.ndarray:
        """Batched effective resistances in global node ids.

        Same-shard pairs are answered exactly by the owning shard's session;
        cross-shard pairs through the boundary-graph contraction (see the
        module docstring for the approximation this makes).
        """
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        self._check_nodes(pairs.reshape(-1))
        out = np.empty(pairs.shape[0])
        part_a = self.assignment[pairs[:, 0]]
        part_b = self.assignment[pairs[:, 1]]
        same = part_a == part_b
        n_cross = int((~same).sum())
        for part in range(self.n_parts):
            mask = same & (part_a == part)
            if not mask.any():
                continue
            local = self._local(part, pairs[mask])
            out[mask] = self.shards[part].effective_resistance(local)
        if n_cross:
            if self._bridge is None:
                raise ValueError(
                    "cross-shard query on a model with no boundary edges"
                )
            out[~same] = self._bridge.query(pairs[~same])
        with self._lock:
            self._counters["resistance"] += pairs.shape[0]
            self._counters["cross_resistance"] += n_cross
        return out

    def nearest_neighbors(
        self, nodes: np.ndarray, k: int = 5
    ) -> tuple[np.ndarray, np.ndarray]:
        """``k`` electrically-nearest nodes (global ids), routed per shard."""
        nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
        self._check_nodes(nodes)
        parts = self.assignment[nodes]
        distances = np.empty((nodes.size, 0))
        neighbor_ids = np.empty((nodes.size, 0), dtype=np.int64)
        first = True
        for part in range(self.n_parts):
            mask = parts == part
            if not mask.any():
                continue
            local = self._local(part, nodes[mask])
            dist, local_ids = self.shards[part].nearest_neighbors(local, k)
            if first:
                distances = np.empty((nodes.size, dist.shape[1]))
                neighbor_ids = np.empty((nodes.size, dist.shape[1]), dtype=np.int64)
                first = False
            distances[mask] = dist
            neighbor_ids[mask] = self.shard_nodes[part][local_ids]
        with self._lock:
            self._counters["neighbors"] += nodes.size
        return distances, neighbor_ids

    def cluster_labels(
        self, nodes: np.ndarray | None = None, *, n_clusters: int = 8
    ) -> np.ndarray:
        """Globally unique per-shard cluster labels.

        Each shard is clustered independently into ``n_clusters`` groups;
        shard ``p``'s labels occupy ``[p * n_clusters, (p+1) * n_clusters)``.
        """
        if nodes is None:
            nodes = np.arange(self.n_nodes, dtype=np.int64)
        else:
            nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
            self._check_nodes(nodes)
        parts = self.assignment[nodes]
        out = np.empty(nodes.size, dtype=np.int64)
        for part in range(self.n_parts):
            mask = parts == part
            if not mask.any():
                continue
            local = self._local(part, nodes[mask])
            labels = self.shards[part].cluster_labels(local, n_clusters=n_clusters)
            out[mask] = part * n_clusters + labels
        with self._lock:
            self._counters["labels"] += nodes.size
        return out

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Aggregated session statistics across shards and the bridge."""
        with self._lock:
            counters = dict(self._counters)
        return {
            "checksum": self.checksum,
            "n_nodes": self.n_nodes,
            "n_parts": self.n_parts,
            "boundary_engine": self._bridge.engine if self._bridge else None,
            "boundary_nodes": self._bridge.graph.n_nodes if self._bridge else 0,
            "shard_engines": [s.resistance_engine for s in self.shards],
            "queries": counters,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedGraphSession(checksum={self.checksum[:12]}..., "
            f"n_nodes={self.n_nodes}, n_parts={self.n_parts})"
        )
