"""Command-line interface: ``repro-serve warm|query|serve``.

Examples
--------
Load an artifact once and report what serving it would cost::

    repro-serve warm --artifact model.npz

One-shot in-process queries (micro-batched under the hood)::

    repro-serve query --artifact model.npz --kind resistance --pairs 0:5,3:9
    repro-serve query --artifact model.npz --kind resistance --random-pairs 200
    repro-serve query --artifact model.npz --kind neighbors --nodes 0,1,2 --k 4
    repro-serve query --artifact model.npz --kind labels --nodes 0,1,2 --clusters 4

Run the newline-delimited JSON TCP server::

    repro-serve serve --artifact model.npz --host 127.0.0.1 --port 8642

and talk to it with one JSON object per line, e.g.
``{"kind": "resistance", "artifact": "model.npz", "pairs": [[0, 5]]}``.

With ``--registry DIR`` every ``--artifact`` (and the ``artifact`` field of
TCP requests) may also be a ``name@version`` / ``name@latest`` / ``name@tag``
registry reference, and ``serve --follow name@latest`` hot-swaps the served
session whenever the stream loop publishes a new version — in-flight queries
finish on the version they started on::

    repro-serve serve --registry ./registry --follow online@latest
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

import numpy as np

from repro.artifacts.registry import ModelRegistry, RegistryError
from repro.artifacts.store import ArtifactFormatError
from repro.metrics.resistance import sample_node_pairs
from repro.obs import ObsSession
from repro.serve.service import GraphService, serve_forever

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser (exposed for --help tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Query serving over persisted SGL model artifacts: "
        "batched effective-resistance, nearest-neighbour and cluster queries.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model_source(p: argparse.ArgumentParser) -> None:
        p.add_argument("--registry", default=None, metavar="DIR",
                       help="model registry root; lets --artifact be a "
                       "name@version / name@latest / name@tag reference")
        p.add_argument("--mmap", action="store_true",
                       help="memory-map model arrays of uncompressed "
                       "artifacts instead of copying them into RAM")

    p_warm = sub.add_parser("warm", help="load an artifact and print session stats")
    p_warm.add_argument("--artifact", required=True,
                        help="model .npz path or registry reference")
    p_warm.add_argument("--clusters", type=int, default=None,
                        help="additionally precompute this many spectral clusters")
    add_model_source(p_warm)

    p_query = sub.add_parser("query", help="run a batch of queries in-process")
    p_query.add_argument("--artifact", required=True,
                         help="model .npz path or registry reference")
    p_query.add_argument("--kind", choices=("resistance", "neighbors", "labels"),
                         default="resistance")
    p_query.add_argument("--pairs", default=None,
                         help="comma-separated s:t pairs for --kind resistance")
    p_query.add_argument("--random-pairs", type=int, default=None, metavar="N",
                         help="sample N random node pairs instead of --pairs")
    p_query.add_argument("--nodes", default=None,
                         help="comma-separated node ids for neighbors/labels")
    p_query.add_argument("--k", type=int, default=5,
                         help="neighbours per node (default 5)")
    p_query.add_argument("--clusters", type=int, default=8,
                         help="cluster count for --kind labels (default 8)")
    p_query.add_argument("--batch-size", type=int, default=64,
                         help="micro-batch flush size (default 64)")
    p_query.add_argument("--max-delay-ms", type=float, default=2.0,
                         help="micro-batch deadline in ms (default 2)")
    p_query.add_argument("--seed", type=int, default=0,
                         help="seed for --random-pairs")
    p_query.add_argument("--summary", action="store_true",
                         help="print throughput/latency summary instead of values")
    p_query.add_argument("--explain", action="store_true",
                         help="trace the run and print a per-query timing "
                         "breakdown (queue wait / pool wait / execute)")
    p_query.add_argument("--trace", default=None, metavar="DIR",
                         help="write trace + metrics artifacts into DIR")
    add_model_source(p_query)

    p_serve = sub.add_parser("serve", help="run the JSON-lines TCP server")
    p_serve.add_argument("--artifact", action="append", default=None,
                         help="artifact(s) or registry reference(s) to warm "
                         "at startup (repeatable)")
    p_serve.add_argument("--follow", default=None, metavar="REF",
                         help="hot-follow a registry reference (e.g. "
                         "online@latest): swap to new versions as they "
                         "publish, without dropping in-flight queries "
                         "(requires --registry)")
    p_serve.add_argument("--poll-interval", type=float, default=1.0,
                         help="seconds between --follow registry polls "
                         "(default 1.0)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642)
    p_serve.add_argument("--max-sessions", type=int, default=4,
                         help="LRU session-cache capacity (default 4)")
    p_serve.add_argument("--batch-size", type=int, default=64)
    p_serve.add_argument("--max-delay-ms", type=float, default=2.0)
    p_serve.add_argument("--workers", type=int, default=2,
                         help="solver worker threads (default 2)")
    p_serve.add_argument("--trace", default=None, metavar="DIR",
                         help="trace the server's lifetime; write trace + "
                         "metrics artifacts into DIR on shutdown")
    add_model_source(p_serve)
    return parser


def _model_source_options(args) -> dict:
    """``GraphService`` kwargs from the shared ``--registry`` / ``--mmap`` flags."""
    options: dict = {}
    if args.registry:
        options["registry"] = ModelRegistry(args.registry)
    if args.mmap:
        options["mmap_mode"] = "r"
    return options


def _parse_pairs(text: str) -> np.ndarray:
    try:
        pairs = [tuple(int(v) for v in item.split(":")) for item in text.split(",")]
        if any(len(pair) != 2 for pair in pairs):
            raise ValueError
    except ValueError:
        raise SystemExit(f"error: --pairs must look like '0:5,3:9', got {text!r}")
    return np.asarray(pairs, dtype=np.int64)


def _parse_nodes(text: str) -> list[int]:
    try:
        return [int(v) for v in text.split(",")]
    except ValueError:
        raise SystemExit(f"error: --nodes must look like '0,1,2', got {text!r}")


def _cmd_warm(args) -> int:
    service = GraphService(**_model_source_options(args))
    try:
        session = service.warm(args.artifact)
    except (OSError, ArtifactFormatError, RegistryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.clusters:
        session.cluster_labels(n_clusters=args.clusters)
    stats = session.stats()
    print(json.dumps(stats, indent=2, sort_keys=True))
    service.close()
    return 0


def _explain_lines(spans) -> list[str]:
    """Per-query timing table from the ``query`` spans of an explain trace.

    Each client-side ``query`` span owns one ``batch.request`` child whose
    attributes carry the batcher's breakdown of that request's lifetime.
    """
    rows = []
    children = {}
    for span in spans:
        if span.name == "batch.request" and span.parent_id is not None:
            children[span.parent_id] = span
    for span in spans:
        if span.name != "query":
            continue
        req = children.get(span.span_id)
        attrs = req.attributes if req is not None else {}
        rows.append((
            span.attributes.get("index", -1),
            str(span.attributes.get("payload", "?")),
            1e3 * span.duration,
            attrs.get("queue_wait_ms", float("nan")),
            attrs.get("pool_wait_ms", float("nan")),
            attrs.get("execute_ms", float("nan")),
            attrs.get("batch_size", 0),
        ))
    rows.sort()
    width = max([len(r[1]) for r in rows] + [7])
    lines = [
        f"{'payload':<{width}}  {'latency_ms':>10}  {'queue_ms':>9}  "
        f"{'pool_ms':>8}  {'exec_ms':>8}  {'batch':>5}"
    ]
    for _, payload, latency, queue, pool, execute, batch in rows:
        lines.append(
            f"{payload:<{width}}  {latency:>10.3f}  {queue:>9.3f}  "
            f"{pool:>8.3f}  {execute:>8.3f}  {batch:>5d}"
        )
    return lines


def _cmd_query(args) -> int:
    obs = (
        ObsSession(sample_resources=False)
        if (args.explain or args.trace)
        else None
    )
    service = GraphService(
        max_batch_size=args.batch_size,
        max_delay_s=args.max_delay_ms / 1e3,
        metrics=obs.metrics if obs is not None else None,
        **_model_source_options(args),
    )
    try:
        session = service.warm(args.artifact)
    except (OSError, ArtifactFormatError, RegistryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.kind == "resistance":
        if args.random_pairs is not None:
            payloads = [
                (int(s), int(t))
                for s, t in sample_node_pairs(
                    session.n_nodes, args.random_pairs, seed=args.seed
                )
            ]
        elif args.pairs:
            payloads = [(int(s), int(t)) for s, t in _parse_pairs(args.pairs)]
        else:
            print("error: provide --pairs or --random-pairs", file=sys.stderr)
            return 2
        options: dict = {}
    else:
        if not args.nodes:
            print("error: provide --nodes", file=sys.stderr)
            return 2
        payloads = _parse_nodes(args.nodes)
        options = (
            {"k": args.k} if args.kind == "neighbors" else {"n_clusters": args.clusters}
        )

    async def one(index: int, payload):
        # Each asyncio task runs in its own context copy, so the per-query
        # span nests correctly even though the queries run concurrently;
        # the batcher parents its batch.request span under this one.
        if obs is not None:
            with obs.tracer.span("query", index=index, payload=str(payload)):
                return await service.query(args.artifact, args.kind, payload, **options)
        return await service.query(args.artifact, args.kind, payload, **options)

    async def run():
        start = time.perf_counter()
        results = await asyncio.gather(
            *(one(i, payload) for i, payload in enumerate(payloads))
        )
        await service.drain()
        return results, time.perf_counter() - start

    if obs is not None:
        with obs:
            results, elapsed = asyncio.run(run())
    else:
        results, elapsed = asyncio.run(run())
    if args.summary:
        batching = service.stats()["batching"]
        summary = {
            "kind": args.kind,
            "n_queries": len(results),
            "seconds": elapsed,
            "qps": len(results) / elapsed if elapsed > 0 else float("inf"),
            "batching": batching,
        }
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        for payload, result in zip(payloads, results):
            print(f"{payload}\t{result}")
    if args.explain:
        print()
        for line in _explain_lines(obs.tracer.spans()):
            print(line)
    if args.trace:
        paths = obs.save(args.trace, prefix=f"query_{args.kind}")
        print(f"\ntrace artifacts: {', '.join(str(p) for p in paths.values())}")
    service.close()
    return 0


def _cmd_serve(args) -> int:
    if args.follow and not args.registry:
        print("error: --follow requires --registry", file=sys.stderr)
        return 2
    obs = ObsSession() if args.trace else None
    service = GraphService(
        max_sessions=args.max_sessions,
        max_batch_size=args.batch_size,
        max_delay_s=args.max_delay_ms / 1e3,
        max_workers=args.workers,
        metrics=obs.metrics if obs is not None else None,
        **_model_source_options(args),
    )
    for path in args.artifact or ():
        try:
            session = service.warm(path)
        except (OSError, ArtifactFormatError, RegistryError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"warmed {path}: N={session.n_nodes}, |E|={session.graph.n_edges}")

    async def run_server() -> None:
        follower = None
        if args.follow:
            def announce(session):
                print(f"following {args.follow}: swapped to {session.checksum[:12]}")

            follower = asyncio.ensure_future(
                service.follow(
                    args.follow,
                    poll_interval=args.poll_interval,
                    on_swap=announce,
                )
            )
        try:
            await serve_forever(service, args.host, args.port)
        finally:
            if follower is not None:
                follower.cancel()

    if obs is not None:
        obs.__enter__()
    try:
        asyncio.run(run_server())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        print("shutting down")
    finally:
        if obs is not None:
            obs.__exit__(None, None, None)
            paths = obs.save(args.trace, prefix="serve")
            print(f"trace artifacts: {', '.join(str(p) for p in paths.values())}")
        service.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "warm":
        return _cmd_warm(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "serve":
        return _cmd_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
