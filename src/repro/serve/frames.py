"""Length-prefixed binary frames for the serving TCP protocol.

The newline-JSON protocol re-encodes every numeric result as decimal text —
at 100k+ answers per second that text encoding is a measurable share of the
response path (``serve.tcp.serialize_ms``).  This module defines the binary
alternative that :func:`repro.serve.serve_forever` speaks on the same port:

.. code-block:: text

    offset  size  field
    ------  ----  -----------------------------------------------
    0       2     magic  b"RB"
    2       1     version (currently 1)
    3       1     meta encoding: 0 = JSON (utf-8), 1 = msgpack
    4       4     meta length   (big-endian u32)
    8       4     body length   (big-endian u32)
    12      ...   meta bytes  (request/response object)
    12+m    ...   body bytes  (raw little-endian numpy buffer, may be empty)

Requests are the same objects the JSON protocol uses (``{"kind": ...}``),
just framed.  Responses carrying an array result describe it in the meta
(``meta["array"] = {"dtype": "<f8", "shape": [n]}``) and ship the values in
the body as the array's raw buffer — written to the transport as a
:class:`memoryview`, no per-value boxing, no text encoding.

msgpack is optional: encoding byte 1 is accepted/produced only when the
``msgpack`` package is importable (it is not a dependency of this repo);
encoding 0 always works, so the frame format degrades gracefully to
JSON-metadata-plus-binary-body.

Examples
--------
>>> import numpy as np
>>> payload = encode_frame({"ok": True}, array=np.arange(3, dtype=np.float64))
>>> meta, array, consumed = decode_frame(payload)
>>> meta["ok"], array.tolist(), consumed == len(payload)
(True, [0.0, 1.0, 2.0], True)
"""

from __future__ import annotations

import json
import struct

import numpy as np

try:  # msgpack is optional — encoding byte 1 is gated on it.
    import msgpack  # type: ignore
except ImportError:  # pragma: no cover - depends on environment
    msgpack = None

__all__ = [
    "ENCODING_JSON",
    "ENCODING_MSGPACK",
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "FrameError",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "read_frame_body",
    "write_frame",
]

FRAME_MAGIC = b"RB"
FRAME_VERSION = 1
ENCODING_JSON = 0
ENCODING_MSGPACK = 1

_HEADER = struct.Struct(">2sBBII")  # magic, version, encoding, meta len, body len

#: Ceiling on meta/body sizes (64 MiB each) — a corrupt length prefix fails
#: fast instead of waiting on gigabytes that will never arrive.
MAX_SEGMENT = 64 * 1024 * 1024


class FrameError(ValueError):
    """A malformed, unsupported, or oversized frame."""


def _dump_meta(meta: dict, encoding: int) -> bytes:
    if encoding == ENCODING_MSGPACK:
        if msgpack is None:
            raise FrameError("msgpack encoding requested but msgpack is not installed")
        return msgpack.packb(meta, use_bin_type=True)
    if encoding == ENCODING_JSON:
        return json.dumps(meta, separators=(",", ":")).encode("utf-8")
    raise FrameError(f"unknown meta encoding {encoding!r}")


def _load_meta(blob: bytes, encoding: int):
    if encoding == ENCODING_MSGPACK:
        if msgpack is None:
            raise FrameError("frame uses msgpack but msgpack is not installed")
        return msgpack.unpackb(blob, raw=False)
    if encoding == ENCODING_JSON:
        return json.loads(blob)
    raise FrameError(f"unknown meta encoding {encoding!r}")


def _array_body(meta: dict, array: np.ndarray) -> memoryview:
    """Describe ``array`` in ``meta`` and return its raw buffer."""
    array = np.ascontiguousarray(array)
    if array.dtype.byteorder == ">":  # normalise to little-endian on the wire
        array = array.astype(array.dtype.newbyteorder("<"))
    meta["array"] = {"dtype": array.dtype.str, "shape": list(array.shape)}
    return memoryview(array).cast("B")


def _rebuild_array(meta: dict, body: bytes) -> np.ndarray | None:
    spec = meta.get("array") if isinstance(meta, dict) else None
    if spec is None:
        return None
    try:
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(n) for n in spec["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise FrameError(f"bad array spec in frame meta: {exc}") from exc
    try:
        return np.frombuffer(body, dtype=dtype).reshape(shape)
    except ValueError as exc:
        raise FrameError(f"frame body does not match array spec: {exc}") from exc


def default_encoding() -> int:
    """The best meta encoding this process can produce."""
    return ENCODING_MSGPACK if msgpack is not None else ENCODING_JSON


# ----------------------------------------------------------------------
# Byte-level codec (synchronous; used by clients and tests)
# ----------------------------------------------------------------------
def encode_frame(
    meta: dict, *, array: np.ndarray | None = None, encoding: int | None = None
) -> bytes:
    """Serialise one frame to bytes.

    ``encoding`` selects the *meta* encoding (:data:`ENCODING_JSON` /
    :data:`ENCODING_MSGPACK`); ``None`` picks msgpack when available.  The
    array, if any, always travels as its raw buffer.
    """
    if encoding is None:
        encoding = default_encoding()
    meta = dict(meta)
    body = _array_body(meta, array) if array is not None else b""
    blob = _dump_meta(meta, encoding)
    header = _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, encoding, len(blob), len(body))
    return b"".join((header, blob, body))


def decode_frame(buffer: bytes | memoryview):
    """Parse one frame from ``buffer``.

    Returns ``(meta, array_or_None, bytes_consumed)``; raises
    :class:`FrameError` on garbage and ``ValueError`` via ``struct`` on
    truncation shorter than a header.
    """
    view = memoryview(buffer)
    magic, version, encoding, meta_len, body_len = _HEADER.unpack_from(view)
    _check_header(magic, version, meta_len, body_len)
    end = _HEADER.size + meta_len + body_len
    if len(view) < end:
        raise FrameError(
            f"truncated frame: need {end} bytes, have {len(view)}"
        )
    meta = _load_meta(bytes(view[_HEADER.size : _HEADER.size + meta_len]), encoding)
    body = bytes(view[_HEADER.size + meta_len : end])
    return meta, _rebuild_array(meta, body), end


def _check_header(magic: bytes, version: int, meta_len: int, body_len: int) -> None:
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad frame magic {magic!r} (expected {FRAME_MAGIC!r})")
    if version != FRAME_VERSION:
        raise FrameError(f"unsupported frame version {version}")
    if meta_len > MAX_SEGMENT or body_len > MAX_SEGMENT:
        raise FrameError(
            f"frame segment too large (meta={meta_len}, body={body_len})"
        )


# ----------------------------------------------------------------------
# Stream-level codec (asyncio server/client)
# ----------------------------------------------------------------------
def write_frame(
    writer,
    meta: dict,
    *,
    array: np.ndarray | None = None,
    encoding: int | None = None,
) -> None:
    """Write one frame to an :class:`asyncio.StreamWriter` (no drain).

    The array body is handed to the transport as a :class:`memoryview` of
    the numpy buffer — zero-copy on the Python side.
    """
    if encoding is None:
        encoding = default_encoding()
    meta = dict(meta)
    body = _array_body(meta, array) if array is not None else b""
    blob = _dump_meta(meta, encoding)
    writer.write(
        _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, encoding, len(blob), len(body))
    )
    writer.write(blob)
    if body:
        writer.write(body)


async def read_frame_body(reader, *, first: bytes = b""):
    """Read one frame whose first ``len(first)`` header bytes were consumed.

    The server sniffs the protocol by reading a single byte, then hands it
    back here via ``first``.  Returns ``(meta, encoding, array_or_None)``.
    Raises :class:`FrameError` on malformed frames and
    :class:`asyncio.IncompleteReadError` when the peer hangs up mid-frame.
    """
    header = first + await reader.readexactly(_HEADER.size - len(first))
    magic, version, encoding, meta_len, body_len = _HEADER.unpack(header)
    _check_header(magic, version, meta_len, body_len)
    blob = await reader.readexactly(meta_len)
    body = await reader.readexactly(body_len) if body_len else b""
    meta = _load_meta(blob, encoding)
    return meta, encoding, _rebuild_array(meta, body)


async def read_frame(reader):
    """Client-side convenience: read one full frame.

    Returns ``(meta, array_or_None)``.
    """
    meta, _, array = await read_frame_body(reader)
    return meta, array
