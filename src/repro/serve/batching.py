"""Asyncio micro-batching: coalesce concurrent requests into grouped calls.

Serving effective-resistance queries one pair at a time wastes the dominant
cost structure of the backend — a multi-RHS Laplacian solve amortises its
factorisation traversal over the whole right-hand-side block, so ``B``
queries solved together cost far less than ``B`` queries solved alone.  The
:class:`MicroBatcher` implements the standard inference-serving answer:
requests arriving concurrently on the event loop are appended to a pending
bucket per batch key and flushed to a worker pool as a single handler call.
Callers receive per-request futures — the batching is invisible except in
throughput.

Flushing is **adaptive** (work-conserving) by default:

* a bucket flushes immediately when it reaches ``max_batch_size``;
* while a worker slot is free, the first request of a bucket schedules a
  flush on the *next event-loop tick* (so everything submitted in the same
  tick still coalesces) instead of arming the ``max_delay_s`` timer — an
  idle worker never waits out a deadline;
* only when every worker slot is busy does the deadline timer arm, and a
  finishing batch immediately flushes the longest-waiting bucket, so the
  *effective* deadline is "until a worker frees up", capped at
  ``max_delay_s``.  That is the concurrency-aware deadline: queue wait
  tracks load instead of being a constant tax.

``adaptive=False`` restores the classic flush-on-size-or-deadline batcher.

The request fast path is allocation-lean by design: :meth:`submit_nowait`
is a plain function returning an :class:`asyncio.Future`, so a caller
fanning out thousands of requests pays one future per request — not one
coroutine *and* one task per request, which is several times more event
-loop work (``await batcher.submit(...)`` remains as sugar).

The handler runs in an executor (default: a thread pool — the batched
numpy/BLAS/SuperLU work releases the GIL), keeping the event loop free to
keep accepting and coalescing requests while a batch computes.

Observability (:mod:`repro.obs`) is built in:

* every batch feeds fixed-bucket **histograms** on the batcher's
  :class:`~repro.obs.MetricsRegistry` — ``batcher.queue_wait_ms`` (submit
  to flush), ``batcher.pool_wait_ms`` (flush to handler start, i.e. the
  executor hop), ``batcher.execute_ms`` (handler run), ``batcher.latency_ms``
  (submit to result) and ``batcher.batch_size`` — plus per-key-label copies
  (``batcher.<label>.*``) when a ``key_label`` callable is given; handler
  exceptions increment ``batcher.errors`` (and ``batcher.failed_requests``
  per affected request) instead of failing silently;
* under an active :class:`~repro.obs.Tracer`, the handler runs inside a
  ``batch.execute`` span and each request gets a ``batch.request`` span
  parented to the *submitter's* span.  ``run_in_executor`` does not carry
  :mod:`contextvars` across the thread hop, so the batcher captures the
  flush-time :class:`contextvars.Context` and runs the handler inside it.
"""

from __future__ import annotations

import asyncio
import contextvars
import os
import time
import warnings
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Sequence

import numpy as np

from repro.obs.metrics import DEFAULT_SIZE_BUCKETS, MetricsRegistry
from repro.obs.tracing import current_span, current_tracer, span as obs_span

__all__ = ["BatchStats", "MicroBatcher", "latency_percentiles_ms"]

#: Shared "no active tracer" parent marker — avoids a tuple allocation per
#: request on the untraced hot path.
_NO_PARENT: tuple = (None, None)


def latency_percentiles_ms(latencies: Sequence[float]) -> tuple[float, float]:
    """Nearest-rank p50/p99 of a latency sample, in milliseconds.

    Nearest-rank: the p-th percentile is the ``ceil(p * n)``-th smallest
    sample (1-indexed), so p99 of 100 samples is the 99th value — the
    second largest — not the maximum.  Shared by the serve benchmark's
    end-to-end latency summaries.

    Examples
    --------
    >>> from repro.serve.batching import latency_percentiles_ms
    >>> latency_percentiles_ms([i / 1000 for i in range(1, 101)])
    (50.0, 99.0)
    """
    if not latencies:
        raise ValueError("need at least one latency sample")
    ordered = sorted(latencies)
    n = len(ordered)
    p50 = ordered[max(0, -(-50 * n // 100) - 1)]
    p99 = ordered[max(0, -(-99 * n // 100) - 1)]
    return 1e3 * p50, 1e3 * p99


@dataclass
class BatchStats:
    """Counters describing how requests were coalesced.

    Latency distributions live in the attached
    :class:`~repro.obs.MetricsRegistry` (``metrics``) as fixed-bucket
    histograms; :meth:`as_dict` surfaces their p50/p99 under the same keys
    the old per-sample list produced, so downstream consumers are unchanged.
    """

    n_requests: int = 0
    n_batches: int = 0
    n_full_flushes: int = 0
    n_deadline_flushes: int = 0
    n_idle_flushes: int = 0
    n_drain_flushes: int = 0
    max_batch_size: int = 0
    batch_seconds: float = 0.0
    #: Registry holding the ``batcher.*`` histograms backing :meth:`as_dict`.
    metrics: MetricsRegistry | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def latencies(self) -> list[float]:
        """Deprecated: per-sample latency storage was replaced by the
        ``batcher.latency_ms`` histogram on :attr:`metrics`."""
        warnings.warn(
            "BatchStats.latencies is deprecated; read the 'batcher.latency_ms' "
            "histogram from BatchStats.metrics instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return []

    @property
    def mean_batch_size(self) -> float:
        """Average coalesced batch size."""
        return self.n_requests / self.n_batches if self.n_batches else 0.0

    def record_batch(self, size: int, seconds: float, *, reason: str) -> None:
        """Account one flushed batch (``reason``: full/deadline/idle/drain)."""
        self.n_requests += size
        self.n_batches += 1
        self.max_batch_size = max(self.max_batch_size, size)
        self.batch_seconds += seconds
        if reason == "full":
            self.n_full_flushes += 1
        elif reason == "deadline":
            self.n_deadline_flushes += 1
        elif reason == "idle":
            self.n_idle_flushes += 1
        else:
            self.n_drain_flushes += 1

    def as_dict(self) -> dict:
        """JSON-ready summary (latency percentiles in milliseconds)."""
        out = {
            "n_requests": self.n_requests,
            "n_batches": self.n_batches,
            "n_full_flushes": self.n_full_flushes,
            "n_deadline_flushes": self.n_deadline_flushes,
            "n_idle_flushes": self.n_idle_flushes,
            "n_drain_flushes": self.n_drain_flushes,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "batch_seconds": self.batch_seconds,
        }
        if self.metrics is not None:
            snap = self.metrics.snapshot()["histograms"]
            latency = snap.get("batcher.latency_ms")
            if latency and latency["count"]:
                out["p50_ms"] = latency["p50"]
                out["p99_ms"] = latency["p99"]
            for stage in ("queue_wait", "pool_wait", "execute"):
                hist = snap.get(f"batcher.{stage}_ms")
                if hist and hist["count"]:
                    out[f"{stage}_mean_ms"] = hist["mean"]
                    out[f"{stage}_p99_ms"] = hist["p99"]
        return out


class _Pending:
    __slots__ = ("payloads", "futures", "submitted", "parents", "timer",
                 "scheduled")

    def __init__(self) -> None:
        self.payloads: list[Any] = []
        self.futures: list[asyncio.Future] = []
        self.submitted: list[float] = []
        #: ``(tracer, span)`` captured at submit time, per request, so the
        #: per-request ``batch.request`` span lands under the caller's span.
        self.parents: list[tuple[Any, Any]] = []
        self.timer: asyncio.TimerHandle | None = None
        #: Whether an idle-flush callback or deadline timer is armed.
        self.scheduled = False


class MicroBatcher:
    """Coalesce awaited single requests into batched handler calls.

    Parameters
    ----------
    handler:
        ``handler(key, payloads) -> sequence`` mapping a batch key and the
        list of coalesced payloads to one result per payload, in order.
        Runs inside ``executor`` — it must be thread-safe for distinct
        keys and must not touch the event loop.
    max_batch_size:
        Flush as soon as a bucket reaches this many requests.
    max_delay_s:
        Deadline cap: the longest a request waits for co-batching company
        while every worker slot is busy.  With ``adaptive=True`` (default)
        the deadline never applies while a worker is idle — the bucket
        flushes on the next loop tick instead.  0 still coalesces requests
        that arrive on the same loop tick.
    executor:
        Where handler batches run; ``None`` uses the loop's default
        thread pool.
    concurrency:
        Worker slots the adaptive flusher assumes: while fewer than this
        many batches are in flight, a worker is considered idle.  Defaults
        to the executor's thread count when discoverable, else the stdlib
        default-pool size.
    adaptive:
        ``False`` restores the classic flush-on-size-or-deadline batcher
        (every non-full bucket waits out ``max_delay_s``).
    metrics:
        :class:`~repro.obs.MetricsRegistry` receiving the ``batcher.*``
        instruments; ``None`` creates a private one (always available as
        ``self.metrics``).
    key_label:
        Optional ``key -> str`` mapping a batch key to a short label; when
        given, per-label histogram copies (``batcher.<label>.*``) are
        recorded alongside the aggregate ones, so e.g. ``resistance`` and
        ``labels`` latencies stay distinguishable.
    max_recorded_latencies:
        Deprecated and ignored — latencies feed a fixed-bucket histogram
        with O(1) memory, so there is nothing left to cap.

    Examples
    --------
    >>> import asyncio
    >>> from repro.serve.batching import MicroBatcher
    >>> def double(key, payloads):
    ...     return [2 * p for p in payloads]
    >>> async def run():
    ...     batcher = MicroBatcher(double, max_batch_size=8, max_delay_s=0.005)
    ...     results = await asyncio.gather(*(batcher.submit("x", i) for i in range(10)))
    ...     return results, batcher.stats.n_batches
    >>> results, n_batches = asyncio.run(run())
    >>> results == [2 * i for i in range(10)] and n_batches <= 3
    True
    """

    def __init__(
        self,
        handler: Callable[[Hashable, list], Sequence],
        *,
        max_batch_size: int = 64,
        max_delay_s: float = 0.002,
        executor: Executor | None = None,
        concurrency: int | None = None,
        adaptive: bool = True,
        metrics: MetricsRegistry | None = None,
        key_label: Callable[[Hashable], str] | None = None,
        max_recorded_latencies: int | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        if max_recorded_latencies is not None:
            warnings.warn(
                "max_recorded_latencies is deprecated and ignored; latencies "
                "feed a bounded-memory histogram on MicroBatcher.metrics",
                DeprecationWarning,
                stacklevel=2,
            )
        if concurrency is None:
            # ThreadPoolExecutor exposes its width; the loop's default pool
            # (executor=None) uses the stdlib sizing rule.
            concurrency = getattr(executor, "_max_workers", None) or min(
                32, (os.cpu_count() or 1) + 4
            )
        if concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        self._handler = handler
        self.max_batch_size = int(max_batch_size)
        self.max_delay_s = float(max_delay_s)
        self._executor = executor
        self.concurrency = int(concurrency)
        self.adaptive = bool(adaptive)
        self._active = 0  # batches flushed but not yet finished
        self._pending: dict[Hashable, _Pending] = {}
        self._inflight: set[asyncio.Task] = set()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._key_label = key_label
        self.stats = BatchStats(metrics=self.metrics)

    # ------------------------------------------------------------------
    def submit_nowait(self, key: Hashable, payload: Any) -> asyncio.Future:
        """Enqueue one request under ``key``; returns its result future.

        This is the serving hot path: a plain function call returning an
        :class:`asyncio.Future`, cheap enough to fan out tens of thousands
        of times per second (``asyncio.gather`` awaits bare futures without
        wrapping each in a task).  Must be called on the event loop thread.
        """
        loop = asyncio.get_running_loop()
        bucket = self._pending.get(key)
        if bucket is None:
            bucket = self._pending[key] = _Pending()
        future = loop.create_future()
        bucket.payloads.append(payload)
        bucket.futures.append(future)
        bucket.submitted.append(time.perf_counter())
        tracer = current_tracer()
        bucket.parents.append(
            _NO_PARENT if tracer is None else (tracer, current_span())
        )
        if len(bucket.payloads) >= self.max_batch_size:
            self._flush(key, "full")
        elif not bucket.scheduled:
            bucket.scheduled = True
            if self.adaptive and self._active < self.concurrency:
                # A worker slot is free: flush on the next tick so requests
                # submitted in the same tick still coalesce, but nobody
                # waits out a deadline for company that is not coming.
                loop.call_soon(self._flush_bucket, key, bucket, "idle")
            else:
                bucket.timer = loop.call_later(
                    self.max_delay_s, self._flush_bucket, key, bucket,
                    "deadline",
                )
        return future

    async def submit(self, key: Hashable, payload: Any) -> Any:
        """Enqueue one request under ``key``; await its individual result."""
        return await self.submit_nowait(key, payload)

    def _flush_bucket(self, key: Hashable, bucket: _Pending, reason: str) -> None:
        """Flush ``bucket`` if it is still the pending bucket for ``key``.

        A scheduled idle flush (or a deadline timer) can race a size-cap
        flush that already replaced the bucket under the same key; passing
        the bucket identity makes the stale callback a no-op.
        """
        if self._pending.get(key) is bucket:
            self._flush(key, reason)

    def _flush(self, key: Hashable, reason: str) -> None:
        bucket = self._pending.pop(key, None)
        if bucket is None:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        loop = asyncio.get_running_loop()
        self._active += 1
        task = loop.create_task(self._run_batch(key, bucket, reason))
        # Keep a reference so the task is not garbage collected mid-flight.
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    def _kick(self) -> None:
        """A worker slot freed: flush waiting buckets into it immediately."""
        while self.adaptive and self._active < self.concurrency and self._pending:
            self._flush(next(iter(self._pending)), "idle")

    def _dispatch(self, key: Hashable, payloads: list) -> tuple:
        """Run the handler on the worker thread, timing its actual window.

        Invoked through a :class:`contextvars.Context` captured at flush
        time, so the ambient tracer — which ``run_in_executor`` would drop —
        is live here and the ``batch.execute`` span nests where it belongs.
        """
        started = time.perf_counter()
        with obs_span(
            "batch.execute", batch_size=len(payloads), key=self._label(key)
        ):
            results = self._handler(key, payloads)
        return results, started, time.perf_counter()

    def _label(self, key: Hashable) -> str:
        if self._key_label is not None:
            try:
                return str(self._key_label(key))
            except Exception:  # labels are best-effort; never fail a batch
                return "unknown"
        return str(key)

    async def _run_batch(self, key: Hashable, bucket: _Pending, reason: str) -> None:
        loop = asyncio.get_running_loop()
        flushed = time.perf_counter()
        context = contextvars.copy_context()
        try:
            results, started, executed = await loop.run_in_executor(
                self._executor, context.run, self._dispatch, key, bucket.payloads
            )
            if len(results) != len(bucket.payloads):
                raise RuntimeError(
                    f"batch handler returned {len(results)} results "
                    f"for {len(bucket.payloads)} payloads"
                )
        except Exception as exc:  # propagate to every waiter, visibly
            self.metrics.counter("batcher.errors").inc()
            self.metrics.counter("batcher.failed_requests").inc(
                len(bucket.futures)
            )
            for future in bucket.futures:
                if not future.done():
                    future.set_exception(exc)
            self._active -= 1
            self._kick()
            return
        finished = time.perf_counter()
        self.stats.record_batch(
            len(bucket.payloads), finished - flushed, reason=reason
        )
        self._observe(key, bucket, flushed, started, executed, finished)
        for future, result in zip(bucket.futures, results):
            if not future.done():
                future.set_result(result)
        self._active -= 1
        self._kick()

    def _observe(
        self,
        key: Hashable,
        bucket: _Pending,
        flushed: float,
        started: float,
        executed: float,
        finished: float,
    ) -> None:
        """Feed the batch's timing breakdown into metrics and the trace."""
        label = self._label(key) if self._key_label is not None else None
        prefixes = ["batcher"] if label is None else ["batcher", f"batcher.{label}"]
        size = len(bucket.payloads)
        submitted = np.asarray(bucket.submitted)
        queue_waits = 1e3 * (flushed - submitted)
        latencies = 1e3 * (finished - submitted)
        for prefix in prefixes:
            hist = self.metrics.histogram
            hist(f"{prefix}.pool_wait_ms").observe(1e3 * (started - flushed))
            hist(f"{prefix}.execute_ms").observe(1e3 * (executed - started))
            hist(
                f"{prefix}.batch_size", buckets=DEFAULT_SIZE_BUCKETS
            ).observe(size)
            hist(f"{prefix}.queue_wait_ms").observe_many(queue_waits)
            hist(f"{prefix}.latency_ms").observe_many(latencies)
        self.metrics.counter("batcher.requests").inc(size)
        self.metrics.counter("batcher.batches").inc()
        for submitted, (tracer, parent) in zip(bucket.submitted, bucket.parents):
            if tracer is None:
                continue
            tracer.record(
                "batch.request",
                submitted,
                finished,
                {
                    "key": label if label is not None else str(key),
                    "batch_size": size,
                    "queue_wait_ms": round(1e3 * (flushed - submitted), 4),
                    "pool_wait_ms": round(1e3 * (started - flushed), 4),
                    "execute_ms": round(1e3 * (executed - started), 4),
                },
                parent=parent,
            )

    async def drain(self) -> None:
        """Flush every pending bucket and wait for all in-flight batches."""
        for key in list(self._pending):
            self._flush(key, "drain")
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    def shutdown(self, exc: Exception | None = None) -> int:
        """Fail every pending, not-yet-flushed request; returns the count.

        A request submitted just before the owning service closes must not
        hang on a future nobody will ever resolve: every pending bucket's
        futures get ``exc`` (default: a :class:`RuntimeError`), the failures
        are counted under ``batcher.errors`` / ``batcher.failed_requests``,
        and the armed timers are cancelled.  In-flight batches (already on
        the executor) are unaffected — shut the executor down with
        ``wait=True`` to let them finish.  Idempotent.
        """
        error = exc if exc is not None else RuntimeError(
            "MicroBatcher shut down with pending requests"
        )
        failed = 0
        for key in list(self._pending):
            bucket = self._pending.pop(key)
            if bucket.timer is not None:
                bucket.timer.cancel()
            for future in bucket.futures:
                if future.done():
                    continue
                try:
                    future.set_exception(error)
                    if future.get_loop().is_closed():
                        # Nobody can await this future any more; mark the
                        # exception retrieved so GC does not log it.
                        future.exception()
                except RuntimeError:  # pragma: no cover - loop torn down
                    pass
                failed += 1
        if failed:
            self.metrics.counter("batcher.errors").inc()
            self.metrics.counter("batcher.failed_requests").inc(failed)
        return failed
