"""Asyncio micro-batching: coalesce concurrent requests into grouped calls.

Serving effective-resistance queries one pair at a time wastes the dominant
cost structure of the backend — a multi-RHS Laplacian solve amortises its
factorisation traversal over the whole right-hand-side block, so ``B``
queries solved together cost far less than ``B`` queries solved alone.  The
:class:`MicroBatcher` implements the standard inference-serving answer:
requests arriving concurrently on the event loop are appended to a pending
bucket per batch key; the first request arms a deadline timer
(``max_delay_s``); the bucket is flushed to a worker pool either when it
reaches ``max_batch_size`` or when the deadline fires, whichever comes
first.  Callers just ``await submit(...)`` single requests and receive
their individual results — the batching is invisible except in throughput.

The handler runs in an executor (default: a thread pool — the batched
numpy/BLAS/SuperLU work releases the GIL), keeping the event loop free to
keep accepting and coalescing requests while a batch computes.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Sequence

__all__ = ["BatchStats", "MicroBatcher", "latency_percentiles_ms"]


def latency_percentiles_ms(latencies: Sequence[float]) -> tuple[float, float]:
    """Nearest-rank p50/p99 of a latency sample, in milliseconds.

    Nearest-rank: the p-th percentile is the ``ceil(p * n)``-th smallest
    sample (1-indexed), so p99 of 100 samples is the 99th value — the
    second largest — not the maximum.  Shared by the batcher stats and the
    serve benchmark so the two can never disagree on the definition.

    Examples
    --------
    >>> from repro.serve.batching import latency_percentiles_ms
    >>> latency_percentiles_ms([i / 1000 for i in range(1, 101)])
    (50.0, 99.0)
    """
    if not latencies:
        raise ValueError("need at least one latency sample")
    ordered = sorted(latencies)
    n = len(ordered)
    p50 = ordered[max(0, -(-50 * n // 100) - 1)]
    p99 = ordered[max(0, -(-99 * n // 100) - 1)]
    return 1e3 * p50, 1e3 * p99


@dataclass
class BatchStats:
    """Counters describing how requests were coalesced."""

    n_requests: int = 0
    n_batches: int = 0
    n_full_flushes: int = 0
    n_deadline_flushes: int = 0
    max_batch_size: int = 0
    batch_seconds: float = 0.0
    #: Per-request latencies (submit -> result), seconds.  Kept bounded.
    latencies: list[float] = field(default_factory=list)

    @property
    def mean_batch_size(self) -> float:
        """Average coalesced batch size."""
        return self.n_requests / self.n_batches if self.n_batches else 0.0

    def record_batch(self, size: int, seconds: float, *, full: bool) -> None:
        """Account one flushed batch."""
        self.n_requests += size
        self.n_batches += 1
        self.max_batch_size = max(self.max_batch_size, size)
        self.batch_seconds += seconds
        if full:
            self.n_full_flushes += 1
        else:
            self.n_deadline_flushes += 1

    def as_dict(self) -> dict:
        """JSON-ready summary (latency percentiles in milliseconds)."""
        out = {
            "n_requests": self.n_requests,
            "n_batches": self.n_batches,
            "n_full_flushes": self.n_full_flushes,
            "n_deadline_flushes": self.n_deadline_flushes,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "batch_seconds": self.batch_seconds,
        }
        if self.latencies:
            out["p50_ms"], out["p99_ms"] = latency_percentiles_ms(self.latencies)
        return out


class _Pending:
    __slots__ = ("payloads", "futures", "submitted", "timer")

    def __init__(self) -> None:
        self.payloads: list[Any] = []
        self.futures: list[asyncio.Future] = []
        self.submitted: list[float] = []
        self.timer: asyncio.TimerHandle | None = None


class MicroBatcher:
    """Coalesce awaited single requests into batched handler calls.

    Parameters
    ----------
    handler:
        ``handler(key, payloads) -> sequence`` mapping a batch key and the
        list of coalesced payloads to one result per payload, in order.
        Runs inside ``executor`` — it must be thread-safe for distinct
        keys and must not touch the event loop.
    max_batch_size:
        Flush as soon as a bucket reaches this many requests.
    max_delay_s:
        Deadline: the longest a request waits for co-batching company.
        0 still coalesces requests that arrive on the same loop tick.
    executor:
        Where handler batches run; ``None`` uses the loop's default
        thread pool.
    max_recorded_latencies:
        Cap on the per-request latency samples kept for percentile stats.

    Examples
    --------
    >>> import asyncio
    >>> from repro.serve.batching import MicroBatcher
    >>> def double(key, payloads):
    ...     return [2 * p for p in payloads]
    >>> async def run():
    ...     batcher = MicroBatcher(double, max_batch_size=8, max_delay_s=0.005)
    ...     results = await asyncio.gather(*(batcher.submit("x", i) for i in range(10)))
    ...     return results, batcher.stats.n_batches
    >>> results, n_batches = asyncio.run(run())
    >>> results == [2 * i for i in range(10)] and n_batches <= 3
    True
    """

    def __init__(
        self,
        handler: Callable[[Hashable, list], Sequence],
        *,
        max_batch_size: int = 64,
        max_delay_s: float = 0.002,
        executor: Executor | None = None,
        max_recorded_latencies: int = 100_000,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        self._handler = handler
        self.max_batch_size = int(max_batch_size)
        self.max_delay_s = float(max_delay_s)
        self._executor = executor
        self._pending: dict[Hashable, _Pending] = {}
        self._inflight: set[asyncio.Task] = set()
        self._max_recorded = int(max_recorded_latencies)
        self.stats = BatchStats()

    # ------------------------------------------------------------------
    async def submit(self, key: Hashable, payload: Any) -> Any:
        """Enqueue one request under ``key``; await its individual result."""
        loop = asyncio.get_running_loop()
        bucket = self._pending.get(key)
        if bucket is None:
            bucket = self._pending[key] = _Pending()
        future: asyncio.Future = loop.create_future()
        bucket.payloads.append(payload)
        bucket.futures.append(future)
        bucket.submitted.append(time.perf_counter())
        if len(bucket.payloads) >= self.max_batch_size:
            self._flush(key, full=True)
        elif bucket.timer is None:
            bucket.timer = loop.call_later(
                self.max_delay_s, self._flush, key, False
            )
        return await future

    def _flush(self, key: Hashable, full: bool) -> None:
        bucket = self._pending.pop(key, None)
        if bucket is None:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        loop = asyncio.get_running_loop()
        task = loop.create_task(self._run_batch(key, bucket, full))
        # Keep a reference so the task is not garbage collected mid-flight.
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, key: Hashable, bucket: _Pending, full: bool) -> None:
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        try:
            results = await loop.run_in_executor(
                self._executor, self._handler, key, bucket.payloads
            )
            if len(results) != len(bucket.payloads):
                raise RuntimeError(
                    f"batch handler returned {len(results)} results "
                    f"for {len(bucket.payloads)} payloads"
                )
        except Exception as exc:  # propagate to every waiter
            for future in bucket.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        finished = time.perf_counter()
        self.stats.record_batch(
            len(bucket.payloads), finished - start, full=full
        )
        if len(self.stats.latencies) < self._max_recorded:
            self.stats.latencies.extend(finished - t for t in bucket.submitted)
        for future, result in zip(bucket.futures, results):
            if not future.done():
                future.set_result(result)

    async def drain(self) -> None:
        """Flush every pending bucket and wait for all in-flight batches."""
        for key in list(self._pending):
            self._flush(key, full=False)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
