"""The query-serving front end: LRU session cache + micro-batched dispatch.

:class:`GraphService` is the piece a server process holds on to.  It owns

* an **LRU session cache** — artifact path -> :class:`~repro.serve.
  GraphSession`, keyed by the artifact's payload *checksum* (the same model
  reached through two paths shares one session), bounded by
  ``max_sessions`` with least-recently-used eviction (evicting a session
  drops its Laplacian factorisation and index).  The query path trusts the
  path -> checksum mapping established at first load; a file replaced
  on disk is picked up by the next :meth:`~GraphService.warm` call (the
  TCP protocol exposes a ``warm`` request for exactly this);
* one :class:`~repro.serve.MicroBatcher` — concurrent ``query()`` calls
  against the same ``(session, kind, k/...)`` signature coalesce into one
  batched session call, executed on a shared worker pool.

Query kinds map 1:1 onto the session's batched primitives:

===============  ==========================  ===============================
kind             payload (one request)       result (one request)
===============  ==========================  ===============================
``resistance``   ``(s, t)`` node pair        effective resistance (float)
``neighbors``    node id                     ``k`` nearest node ids (list)
``labels``       node id                     spectral-cluster label (int)
===============  ==========================  ===============================

:func:`serve_forever` wraps the service in a newline-delimited-JSON TCP
protocol (stdlib asyncio only), which is what ``repro-serve serve`` runs.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.artifacts.store import load_result
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import span as obs_span
from repro.serve.batching import MicroBatcher
from repro.serve.session import GraphSession

__all__ = ["GraphService", "serve_forever"]

_KINDS = ("resistance", "neighbors", "labels")


class GraphService:
    """Micro-batched query service over a bounded cache of loaded models.

    Parameters
    ----------
    max_sessions:
        LRU capacity: how many loaded models (factorisations + indexes) are
        kept warm at once.
    max_batch_size, max_delay_s:
        Coalescing knobs forwarded to the :class:`~repro.serve.MicroBatcher`
        (flush on size, or on deadline, whichever first).
    max_workers:
        Worker threads executing batched session calls.
    session_options:
        Extra keyword arguments for every :class:`~repro.serve.GraphSession`
        (e.g. ``knn_backend``, ``resistance_block``).
    metrics:
        :class:`~repro.obs.MetricsRegistry` the service (and its batcher)
        records into; ``None`` creates a private one.  Always available as
        ``service.metrics``; a snapshot rides along in :meth:`stats`, so
        the TCP ``stats`` request exposes it remotely.

    Examples
    --------
    >>> import asyncio, tempfile, os
    >>> from repro import learn_graph, simulate_measurements
    >>> from repro.artifacts import save_result
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.serve import GraphService
    >>> data = simulate_measurements(grid_2d(6, 6), n_measurements=30, seed=0)
    >>> path = os.path.join(tempfile.mkdtemp(), "grid.npz")
    >>> _ = save_result(learn_graph(data, beta=0.05), path)
    >>> service = GraphService(max_batch_size=16, max_delay_s=0.002)
    >>> async def run():
    ...     pairs = [(0, 35), (1, 7), (3, 3)]
    ...     return await asyncio.gather(
    ...         *(service.query(path, "resistance", pair) for pair in pairs)
    ...     )
    >>> resistances = asyncio.run(run())
    >>> len(resistances), float(resistances[2])
    (3, 0.0)
    >>> service.stats()["sessions"]["loaded"]
    1
    """

    def __init__(
        self,
        *,
        max_sessions: int = 4,
        max_batch_size: int = 64,
        max_delay_s: float = 0.002,
        max_workers: int = 2,
        session_options: dict | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        self._max_sessions = int(max_sessions)
        self._sessions: OrderedDict[str, GraphSession] = OrderedDict()
        self._path_keys: dict[str, str] = {}
        # Guards _sessions/_path_keys/_loads/_evictions: the event loop's
        # cache-hit path and executor-thread cold loads touch them
        # concurrently.  Never held while loading or factorising a model.
        self._cache_lock = threading.Lock()
        self._session_options = dict(session_options or {})
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._batcher = MicroBatcher(
            self._run_batch,
            max_batch_size=max_batch_size,
            max_delay_s=max_delay_s,
            executor=self._executor,
            metrics=self.metrics,
            # Batch keys are (checksum, kind, options); the query kind is
            # the natural per-histogram label (batcher.resistance.*, ...).
            key_label=lambda key: key[1],
        )
        self._evictions = 0
        self._loads = 0

    # ------------------------------------------------------------------
    # Session cache
    # ------------------------------------------------------------------
    def warm(self, path: str | Path) -> GraphSession:
        """Load an artifact into the session cache (or refresh its LRU slot).

        Always re-reads (and re-validates) the file, so ``warm`` is also how
        a replaced artifact under a known path gets picked up.  Returns the
        (possibly pre-existing) session, so it doubles as the synchronous
        entry point for in-process callers that want the session object.
        """
        path = str(Path(path))
        artifact = load_result(path)
        cached = self._cache_hit(artifact.checksum, remember_path=path)
        if cached is not None:
            return cached
        # Build outside the lock — factorising can take seconds.  Two
        # concurrent cold loads of the same model may both build; the
        # loser's session is discarded below, which only wastes work.
        session = GraphSession(artifact, **self._session_options)
        with self._cache_lock:
            existing = self._sessions.get(artifact.checksum)
            if existing is not None:
                self._sessions.move_to_end(artifact.checksum)
                self._path_keys[path] = artifact.checksum
                return existing
            self._sessions[artifact.checksum] = session
            self._path_keys[path] = artifact.checksum
            self._loads += 1
            evicted = 0
            while len(self._sessions) > self._max_sessions:
                evicted_key, _ = self._sessions.popitem(last=False)
                for p in [p for p, c in self._path_keys.items() if c == evicted_key]:
                    del self._path_keys[p]
                self._evictions += 1
                evicted += 1
            loaded = len(self._sessions)
        self.metrics.counter("serve.cache.loads").inc()
        if evicted:
            self.metrics.counter("serve.cache.evictions").inc(evicted)
        self.metrics.gauge("serve.cache.sessions").set(loaded)
        return session

    def _cache_hit(self, checksum: str, *, remember_path: str | None = None):
        with self._cache_lock:
            session = self._sessions.get(checksum)
            if session is not None:
                self._sessions.move_to_end(checksum)
                if remember_path is not None:
                    self._path_keys[remember_path] = checksum
            return session

    def session(self, path: str | Path) -> GraphSession:
        """The cached session for ``path``, loading it on first use.

        The cache hit path trusts the path -> checksum mapping established
        by the first load; re-reading the checksum from disk on every query
        would defeat the cache.  Call :meth:`warm` to re-validate a path
        whose file may have been replaced.
        """
        with self._cache_lock:
            key = self._path_keys.get(str(Path(path)))
            session = self._sessions.get(key) if key is not None else None
            if session is not None:
                self._sessions.move_to_end(key)
                return session
        return self.warm(path)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    async def query(self, path: str | Path, kind: str, payload, **options):
        """Submit one request; it is micro-batched with concurrent peers.

        ``kind`` is one of ``resistance`` / ``neighbors`` / ``labels``;
        ``options`` become part of the batch signature (``k=...`` for
        neighbours, ``n_clusters=...`` for labels), so only requests with
        identical options share a batch.
        """
        if kind not in _KINDS:
            raise ValueError(f"unknown query kind {kind!r}; available: {_KINDS}")
        with self._cache_lock:
            cached = self._path_keys.get(str(Path(path)))
            session = self._sessions.get(cached) if cached is not None else None
            if session is not None:
                self._sessions.move_to_end(cached)
        if session is None:
            # Cache miss: loading + factorising a model can take seconds on
            # large graphs — do it on the worker pool, not the event loop.
            self.metrics.counter("serve.cache.misses").inc()
            loop = asyncio.get_running_loop()
            session = await loop.run_in_executor(self._executor, self.session, path)
        else:
            self.metrics.counter("serve.cache.hits").inc()
        key = (session.checksum, kind, tuple(sorted(options.items())))
        return await self._batcher.submit(key, (session, payload))

    def _run_batch(self, key, payloads):
        _, kind, options = key
        options = dict(options)
        session: GraphSession = payloads[0][0]
        values = [payload for _, payload in payloads]
        if kind == "resistance":
            pairs = np.asarray(values, dtype=np.int64).reshape(-1, 2)
            raw = session.effective_resistance(pairs)
            convert = raw.tolist
        elif kind == "neighbors":
            nodes = np.asarray(values, dtype=np.int64)
            _, indices = session.nearest_neighbors(nodes, k=options.get("k", 5))
            convert = lambda: [row.tolist() for row in indices]  # noqa: E731
        else:
            nodes = np.asarray(values, dtype=np.int64)
            labels = session.cluster_labels(
                nodes, n_clusters=options.get("n_clusters", 8)
            )
            convert = lambda: [int(label) for label in labels]  # noqa: E731
        # The numpy -> JSON-ready conversion is the "serialize" share of a
        # batch; split it out so traced runs can attribute it separately
        # from the solve itself.
        start = time.perf_counter()
        with obs_span("serialize", kind=kind, batch_size=len(values)):
            out = convert()
        self.metrics.histogram("serve.serialize_ms").observe(
            1e3 * (time.perf_counter() - start)
        )
        return out

    async def drain(self) -> None:
        """Flush pending batches and wait for in-flight work."""
        await self._batcher.drain()

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Service statistics: cache state, batching counters, per-session."""
        with self._cache_lock:
            sessions = dict(self._sessions)
            loads, evictions = self._loads, self._evictions
        return {
            "sessions": {
                "loaded": len(sessions),
                "capacity": self._max_sessions,
                "loads": loads,
                "evictions": evictions,
                "checksums": list(sessions),
            },
            "batching": self._batcher.stats.as_dict(),
            "per_session": {
                checksum: session.stats() for checksum, session in sessions.items()
            },
            "metrics": self.metrics.snapshot(),
        }


# ----------------------------------------------------------------------
# Newline-delimited JSON TCP front end
# ----------------------------------------------------------------------
async def _handle_request(service: GraphService, request: dict) -> dict:
    kind = request.get("kind")
    if kind == "stats":
        return {"ok": True, "result": service.stats()}
    if kind != "warm" and kind not in _KINDS:
        raise ValueError(f"unknown request kind {kind!r}")
    path = request.get("artifact")
    if not isinstance(path, str):
        raise ValueError("request must carry an 'artifact' path")
    if kind == "warm":
        # Re-read + re-validate the file (picks up a replaced artifact);
        # the load runs on the worker pool, off the event loop.
        loop = asyncio.get_running_loop()
        session = await loop.run_in_executor(service._executor, service.warm, path)
        return {"ok": True, "result": session.stats()}
    if kind == "resistance":
        pairs = request.get("pairs")
        if not isinstance(pairs, list) or not pairs:
            raise ValueError("'resistance' requests need a non-empty 'pairs' list")
        results = await asyncio.gather(
            *(service.query(path, "resistance", tuple(pair)) for pair in pairs)
        )
        return {"ok": True, "result": list(results)}
    if kind == "neighbors":
        nodes = request.get("nodes")
        if not isinstance(nodes, list) or not nodes:
            raise ValueError("'neighbors' requests need a non-empty 'nodes' list")
        k = int(request.get("k", 5))
        results = await asyncio.gather(
            *(service.query(path, "neighbors", int(node), k=k) for node in nodes)
        )
        return {"ok": True, "result": list(results)}
    if kind == "labels":
        nodes = request.get("nodes")
        if not isinstance(nodes, list) or not nodes:
            raise ValueError("'labels' requests need a non-empty 'nodes' list")
        n_clusters = int(request.get("n_clusters", 8))
        results = await asyncio.gather(
            *(
                service.query(path, "labels", int(node), n_clusters=n_clusters)
                for node in nodes
            )
        )
        return {"ok": True, "result": list(results)}
    raise AssertionError(f"unhandled request kind {kind!r}")  # pragma: no cover


async def _client_connected(
    service: GraphService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            request: dict | None = None
            try:
                decoded = json.loads(line)
                if not isinstance(decoded, dict):
                    raise ValueError("request must be a JSON object")
                request = decoded
                response = await _handle_request(service, request)
            except Exception as exc:  # protocol errors go back to the client
                response = {"ok": False, "error": str(exc)}
            if request is not None and "id" in request:
                response["id"] = request["id"]
            encode_start = time.perf_counter()
            encoded = json.dumps(response).encode("utf-8") + b"\n"
            service.metrics.histogram("serve.tcp.serialize_ms").observe(
                1e3 * (time.perf_counter() - encode_start)
            )
            service.metrics.counter("serve.tcp.requests").inc()
            writer.write(encoded)
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def serve_forever(
    service: GraphService,
    host: str = "127.0.0.1",
    port: int = 8642,
    *,
    ready: "asyncio.Event | None" = None,
    bound_addresses: list | None = None,
) -> None:
    """Run the newline-delimited JSON TCP server until cancelled.

    One request per line, one JSON response per line (``{"ok": true,
    "result": ...}`` or ``{"ok": false, "error": "..."}``; an ``id`` field
    is echoed back).  Every multi-item request fans out through the
    micro-batcher, so two clients querying the same model coalesce into
    shared solver batches.  ``ready`` (if given) is set once the socket is
    listening, after the actually bound ``(host, port)`` tuples have been
    appended to ``bound_addresses`` — lets tests bind port 0 and discover
    the kernel-assigned port.
    """
    server = await asyncio.start_server(
        lambda r, w: _client_connected(service, r, w), host, port
    )
    async with server:
        addresses = [sock.getsockname()[:2] for sock in server.sockets]
        if bound_addresses is not None:
            bound_addresses.extend(addresses)
        if ready is not None:
            ready.set()
        listening = ", ".join(f"{h}:{p}" for h, p in addresses)
        print(f"repro-serve listening on {listening}")
        await server.serve_forever()
