"""The query-serving front end: LRU session cache + micro-batched dispatch.

:class:`GraphService` is the piece a server process holds on to.  It owns

* an **LRU session cache** — artifact path -> :class:`~repro.serve.
  GraphSession`, keyed by the artifact's payload *checksum* (the same model
  reached through two paths shares one session), bounded by
  ``max_sessions`` with least-recently-used eviction (evicting a session
  drops its Laplacian factorisation and index).  The query path trusts the
  path -> checksum mapping established at first load; a file replaced
  on disk is picked up by the next :meth:`~GraphService.warm` call (the
  TCP protocol exposes a ``warm`` request for exactly this), which also
  *invalidates* the superseded session so a re-saved path can never keep
  serving the stale model, and :meth:`~GraphService.invalidate` drops a
  mapping explicitly.  With a :class:`~repro.artifacts.ModelRegistry`
  attached, ``name@version`` references resolve through the registry and
  :meth:`~GraphService.follow` hot-swaps to newly published versions
  without dropping in-flight queries;
* one :class:`~repro.serve.MicroBatcher` — concurrent ``query()`` calls
  against the same ``(session, kind, options)`` signature coalesce into one
  batched session call, executed on the **compute pool**;
* a separate single-purpose **loader pool** — multi-second cold artifact
  loads (a ``query()`` cache miss, a TCP ``warm``) run there, so loading
  and factorising a model can never starve the threads that execute
  batches.  Before the split, one slow ``warm`` froze every in-flight
  query behind it.

The query hot path is deliberately cheap: :meth:`GraphService.query` is a
plain function returning an awaitable — an :class:`asyncio.Future` on the
cache-hit path — so fanning out tens of thousands of concurrent requests
costs one future each instead of one coroutine + task each.  Batch keys
normalise option defaults (an explicit ``k=5`` and an omitted ``k`` are the
*same* signature), so identical queries never fragment into separate
batches.

Query kinds map 1:1 onto the session's batched primitives:

===============  ==========================  ===============================
kind             payload (one request)       result (one request)
===============  ==========================  ===============================
``resistance``   ``(s, t)`` node pair        effective resistance (float)
``neighbors``    node id                     ``k`` nearest node ids
``labels``       node id                     spectral-cluster label (int)
===============  ==========================  ===============================

Results are returned as numpy scalars / row views — the wire boundary
(:func:`serve_forever`) converts them once per response, either to JSON or
to a raw little-endian buffer on the binary frame path (see
:mod:`repro.serve.frames`), instead of boxing every value eagerly.

:func:`serve_forever` speaks two protocols on the same port, sniffed per
message: newline-delimited JSON (one request object per line) and the
length-prefixed binary frame format of :mod:`repro.serve.frames`
(msgpack-encoded metadata when msgpack is importable, JSON otherwise, with
array results shipped as raw numpy bytes).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.artifacts.registry import is_model_ref
from repro.artifacts.store import load_result
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import span as obs_span
from repro.serve.batching import MicroBatcher
from repro.serve.frames import FRAME_MAGIC, FrameError, read_frame_body, write_frame
from repro.serve.session import GraphSession

__all__ = ["GraphService", "ServiceClosedError", "jsonable", "serve_forever"]

_KINDS = ("resistance", "neighbors", "labels")

#: Per-kind option defaults.  These are *normalised into the batch key*:
#: ``query(..., "neighbors", n)`` and ``query(..., "neighbors", n, k=5)``
#: produce the identical key and coalesce into one batch.
_OPTION_DEFAULTS: dict[str, dict[str, int]] = {
    "resistance": {},
    "neighbors": {"k": 5},
    "labels": {"n_clusters": 8},
}
_DEFAULT_KEYS = {
    kind: tuple(sorted(defaults.items()))
    for kind, defaults in _OPTION_DEFAULTS.items()
}


class ServiceClosedError(RuntimeError):
    """Raised by queries submitted to (or stranded in) a closed service."""


def _json_default(value):
    """``json.dumps(..., default=...)`` hook for numpy scalars and arrays."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(
        f"object of type {type(value).__name__} is not JSON serializable"
    )


def jsonable(value):
    """Recursively coerce numpy scalars/arrays to JSON-ready builtins.

    Session statistics legitimately carry numpy scalars (counter sums,
    array-derived sizes); ``json.dumps`` raises on ``np.int64``.  This is
    the boundary coercion applied to every stats payload before it leaves
    the process.
    """
    if isinstance(value, dict):
        return {key: jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (np.integer, np.floating, np.bool_, np.ndarray)):
        return _json_default(value)
    return value


class GraphService:
    """Micro-batched query service over a bounded cache of loaded models.

    Parameters
    ----------
    max_sessions:
        LRU capacity: how many loaded models (factorisations + indexes) are
        kept warm at once.
    max_batch_size, max_delay_s:
        Coalescing knobs forwarded to the :class:`~repro.serve.MicroBatcher`
        (flush on size, on worker-idle, or on deadline — see ``adaptive``).
    max_workers:
        Compute threads executing batched session calls.
    loader_workers:
        Threads of the dedicated artifact-loading pool (cache-miss loads
        and TCP ``warm`` requests); kept separate so a multi-second cold
        load cannot starve the compute pool.
    adaptive_flush:
        Forwarded to the batcher: flush as soon as a compute worker is
        idle instead of always waiting out ``max_delay_s`` (default True).
    session_options:
        Extra keyword arguments for every :class:`~repro.serve.GraphSession`
        (e.g. ``knn_backend``, ``resistance_block``).
    metrics:
        :class:`~repro.obs.MetricsRegistry` the service (and its batcher)
        records into; ``None`` creates a private one.  Always available as
        ``service.metrics``; a snapshot rides along in :meth:`stats`, so
        the TCP ``stats`` request exposes it remotely.
    registry:
        Optional :class:`~repro.artifacts.ModelRegistry`.  When given,
        ``name@version`` / ``name@latest`` / ``name@tag`` references are
        accepted wherever an artifact path is (``query``, ``warm``, the TCP
        protocol) and resolve through the registry index; :meth:`follow`
        polls a reference and hot-swaps to new versions as they publish.
    mmap_mode:
        Forwarded to :func:`~repro.artifacts.load_result`; ``"r"``
        memory-maps the read-only model arrays of uncompressed artifacts
        instead of copying them into RAM (large models load in
        milliseconds; the OS pages data in on demand).

    Examples
    --------
    >>> import asyncio, tempfile, os
    >>> from repro import learn_graph, simulate_measurements
    >>> from repro.artifacts import save_result
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.serve import GraphService
    >>> data = simulate_measurements(grid_2d(6, 6), n_measurements=30, seed=0)
    >>> path = os.path.join(tempfile.mkdtemp(), "grid.npz")
    >>> _ = save_result(learn_graph(data, beta=0.05), path)
    >>> service = GraphService(max_batch_size=16, max_delay_s=0.002)
    >>> async def run():
    ...     pairs = [(0, 35), (1, 7), (3, 3)]
    ...     return await asyncio.gather(
    ...         *(service.query(path, "resistance", pair) for pair in pairs)
    ...     )
    >>> resistances = asyncio.run(run())
    >>> len(resistances), float(resistances[2])
    (3, 0.0)
    >>> service.stats()["sessions"]["loaded"]
    1
    """

    def __init__(
        self,
        *,
        max_sessions: int = 4,
        max_batch_size: int = 64,
        max_delay_s: float = 0.002,
        max_workers: int = 2,
        loader_workers: int = 1,
        adaptive_flush: bool = True,
        session_options: dict | None = None,
        metrics: MetricsRegistry | None = None,
        registry=None,
        mmap_mode: str | None = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if loader_workers < 1:
            raise ValueError("loader_workers must be at least 1")
        self._max_sessions = int(max_sessions)
        self._sessions: OrderedDict[str, GraphSession] = OrderedDict()
        self._path_keys: dict[str, str] = {}
        self._norm_paths: dict = {}  # raw path argument -> normalised str
        # Guards _sessions/_path_keys/_loads/_evictions: the event loop's
        # cache-hit path and loader-thread cold loads touch them
        # concurrently.  Never held while loading or factorising a model.
        self._cache_lock = threading.Lock()
        self._registry = registry
        self._mmap_mode = mmap_mode
        self._session_options = dict(session_options or {})
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve-compute"
        )
        self._loader = ThreadPoolExecutor(
            max_workers=loader_workers, thread_name_prefix="repro-serve-loader"
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._batcher = MicroBatcher(
            self._run_batch,
            max_batch_size=max_batch_size,
            max_delay_s=max_delay_s,
            executor=self._executor,
            concurrency=max_workers,
            adaptive=adaptive_flush,
            metrics=self.metrics,
            # Batch keys are (checksum, kind, options); the query kind is
            # the natural per-histogram label (batcher.resistance.*, ...).
            key_label=lambda key: key[1],
        )
        # The hot path touches these once per request; resolving the
        # instrument names every time would put a registry lookup on the
        # event loop's critical path.
        self._hits = self.metrics.counter("serve.cache.hits")
        self._misses = self.metrics.counter("serve.cache.misses")
        self._evictions = 0
        self._loads = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Session cache
    # ------------------------------------------------------------------
    def _norm_path(self, path) -> str:
        """Normalised string form of ``path``, memoised per raw argument.

        ``str(Path(path))`` costs ~2 µs — enough to dominate a hot loop at
        100k q/s — so the mapping is cached (bounded; a service sees few
        distinct path spellings).
        """
        cached = self._norm_paths.get(path)
        if cached is None:
            cached = str(Path(path))
            if len(self._norm_paths) >= 4096:
                self._norm_paths.clear()
            self._norm_paths[path] = cached
        return cached

    def _set_cache_gauge(self, loaded: int) -> None:
        self.metrics.gauge("serve.cache.sessions").set(loaded)

    def _resolve(self, target: str) -> str:
        """Resolve a registry reference to its artifact path (no-op for paths).

        ``name@latest`` and friends re-read the registry index first, so a
        version published by another process (the stream loop) is visible to
        the very next ``warm``.
        """
        if self._registry is not None and is_model_ref(target):
            self._registry.reload()
            return str(self._registry.resolve(target))
        return target

    def _remember(self, key: str, checksum: str) -> int:
        """Map ``key`` -> ``checksum`` (cache lock held by the caller).

        When the key previously pointed at a *different* model and no other
        key still references the old session, the old session is dropped —
        this is the invalidation that keeps a re-saved path or republished
        reference from silently serving the stale version.  In-flight
        batches hold their own session reference and finish unaffected.
        Returns the number of sessions dropped (0 or 1).
        """
        old = self._path_keys.get(key)
        self._path_keys[key] = checksum
        if old is None or old == checksum or old in self._path_keys.values():
            return 0
        return 1 if self._sessions.pop(old, None) is not None else 0

    def warm(self, path: str | Path) -> GraphSession:
        """Load an artifact (or registry reference) into the session cache.

        Always re-resolves the reference and re-reads (and re-validates)
        the file, so ``warm`` is also how a replaced artifact under a known
        path — or a newly published registry version — gets picked up; the
        superseded session is invalidated in the same step.  Returns the
        (possibly pre-existing) session, so it doubles as the synchronous
        entry point for in-process callers that want the session object.
        """
        target = self._norm_path(path)
        file_path = self._resolve(target)
        artifact = load_result(file_path, mmap_mode=self._mmap_mode)
        checksum = artifact.checksum
        stale = 0
        with self._cache_lock:
            cached = self._sessions.get(checksum)
            if cached is not None:
                self._sessions.move_to_end(checksum)
                stale += self._remember(target, checksum)
                if file_path != target:
                    stale += self._remember(file_path, checksum)
            loaded = len(self._sessions)
        if cached is not None:
            self._set_cache_gauge(loaded)
            if stale:
                self.metrics.counter("serve.cache.invalidations").inc(stale)
            return cached
        # Build outside the lock — factorising can take seconds.  Two
        # concurrent cold loads of the same model may both build; the
        # loser's session is discarded below, which only wastes work.
        session = GraphSession(artifact, **self._session_options)
        evicted = 0
        with self._cache_lock:
            existing = self._sessions.get(checksum)
            if existing is not None:
                # Lost the build race: adopt the winner's session.
                self._sessions.move_to_end(checksum)
                session = existing
            else:
                self._sessions[checksum] = session
                self._loads += 1
            stale += self._remember(target, checksum)
            if file_path != target:
                stale += self._remember(file_path, checksum)
            if existing is None:
                while len(self._sessions) > self._max_sessions:
                    evicted_key, _ = self._sessions.popitem(last=False)
                    for p in [
                        p for p, c in self._path_keys.items() if c == evicted_key
                    ]:
                        del self._path_keys[p]
                    self._evictions += 1
                    evicted += 1
            loaded = len(self._sessions)
        # The gauge mirrors the cache on *every* exit path (fresh load,
        # lost race, evictions) — a stale gauge after evict-then-rewarm
        # was exactly the bug this guards against.
        self._set_cache_gauge(loaded)
        if existing is None:
            self.metrics.counter("serve.cache.loads").inc()
        if evicted:
            self.metrics.counter("serve.cache.evictions").inc(evicted)
        if stale:
            self.metrics.counter("serve.cache.invalidations").inc(stale)
        return session

    def invalidate(self, path: str | Path) -> bool:
        """Forget the cached mapping for a path or reference.

        The next query through this key reloads from disk.  The session
        object itself is dropped when no other key still references it;
        in-flight batches hold their own reference and finish unaffected.
        Returns whether a mapping existed.
        """
        target = self._norm_path(path)
        with self._cache_lock:
            checksum = self._path_keys.pop(target, None)
            dropped = 0
            if (
                checksum is not None
                and checksum not in self._path_keys.values()
                and self._sessions.pop(checksum, None) is not None
            ):
                dropped = 1
            loaded = len(self._sessions)
        self._set_cache_gauge(loaded)
        if dropped:
            self.metrics.counter("serve.cache.invalidations").inc(dropped)
        return checksum is not None

    async def follow(
        self,
        ref: str,
        *,
        poll_interval: float = 1.0,
        stop: "asyncio.Event | None" = None,
        on_swap=None,
    ) -> None:
        """Hot-follow a registry reference, swapping as versions publish.

        Re-resolves ``ref`` (e.g. ``"online@latest"``) every
        ``poll_interval`` seconds.  When it resolves to a new artifact the
        session is built on the loader pool and the reference mapping is
        swapped under the cache lock, so queries addressed to ``ref`` move
        to the new version atomically: requests already batched finish on
        the session object they hold, later ones see the new model — no
        request ever fails because of the swap.  ``on_swap(session)`` is
        called after each swap (the initial load included); ``stop`` ends
        the loop.  A reference that does not resolve yet (name not
        published) is retried, so a follower may start before the first
        publish.
        """
        if self._registry is None:
            raise ValueError("follow() requires a GraphService(registry=...)")
        loop = asyncio.get_running_loop()
        current: str | None = None
        while not self._closed and (stop is None or not stop.is_set()):
            try:
                session = await loop.run_in_executor(self._loader, self.warm, ref)
            except Exception:
                # Not published yet, torn read, transient IO — retry.
                self.metrics.counter("serve.follow.errors").inc()
            else:
                if session.checksum != current:
                    current = session.checksum
                    self.metrics.counter("serve.follow.swaps").inc()
                    if on_swap is not None:
                        on_swap(session)
            if stop is None:
                await asyncio.sleep(poll_interval)
            else:
                try:
                    await asyncio.wait_for(stop.wait(), timeout=poll_interval)
                except asyncio.TimeoutError:
                    pass

    def session(self, path: str | Path) -> GraphSession:
        """The cached session for ``path``, loading it on first use.

        The cache hit path trusts the path -> checksum mapping established
        by the first load; re-reading the checksum from disk on every query
        would defeat the cache.  Call :meth:`warm` to re-validate a path
        whose file may have been replaced.
        """
        path = self._norm_path(path)
        with self._cache_lock:
            key = self._path_keys.get(path)
            session = self._sessions.get(key) if key is not None else None
            if session is not None:
                self._sessions.move_to_end(key)
                return session
        return self.warm(path)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _option_key(self, kind: str, options: dict) -> tuple:
        """Batch-key tuple for ``options`` with defaults normalised in.

        An explicit default (``k=5``) and an omitted option must hash to
        the *same* key, or identical queries fragment into separate
        batches; unknown options are rejected instead of silently creating
        singleton batch signatures.
        """
        if not options:
            return _DEFAULT_KEYS[kind]
        defaults = _OPTION_DEFAULTS[kind]
        merged = dict(defaults)
        for name, value in options.items():
            if name not in defaults:
                raise ValueError(
                    f"unknown option {name!r} for query kind {kind!r}; "
                    f"available: {sorted(defaults) or 'none'}"
                )
            merged[name] = int(value)
        return tuple(sorted(merged.items()))

    def query(self, path: str | Path, kind: str, payload, **options):
        """Submit one request; it is micro-batched with concurrent peers.

        ``kind`` is one of ``resistance`` / ``neighbors`` / ``labels``;
        ``options`` become part of the batch signature (``k=...`` for
        neighbours, ``n_clusters=...`` for labels) with defaults normalised
        in, so requests that *mean* the same thing share a batch.

        Returns an awaitable — an :class:`asyncio.Future` on the cache-hit
        fast path (no per-request coroutine or task), a coroutine when the
        session must first be loaded on the loader pool.  Must be called
        with a running event loop.  Results are numpy scalars / row views;
        convert at your boundary if you need builtins.
        """
        if kind not in _OPTION_DEFAULTS:
            raise ValueError(f"unknown query kind {kind!r}; available: {_KINDS}")
        if self._closed:
            raise ServiceClosedError("GraphService is closed")
        key_options = self._option_key(kind, options)
        path = self._norm_path(path)
        with self._cache_lock:
            checksum = self._path_keys.get(path)
            session = self._sessions.get(checksum) if checksum is not None else None
            if session is not None and len(self._sessions) > 1:
                # LRU touch matters only once something could be evicted.
                self._sessions.move_to_end(checksum)
        if session is None:
            self._misses.inc()
            return self._query_cold(path, kind, key_options, payload)
        # Relaxed: only the event-loop thread takes the hit path, and the
        # locked increment is measurable at 100k q/s.
        self._hits.inc_relaxed()
        return self._batcher.submit_nowait(
            (session.checksum, kind, key_options), (session, payload)
        )

    async def _query_cold(self, path: str, kind: str, key_options: tuple, payload):
        # Cache miss: loading + factorising a model can take seconds on
        # large graphs — run it on the dedicated loader pool so it cannot
        # starve the compute workers executing batches.
        loop = asyncio.get_running_loop()
        session = await loop.run_in_executor(self._loader, self.session, path)
        return await self._batcher.submit_nowait(
            (session.checksum, kind, key_options), (session, payload)
        )

    def _run_batch(self, key, payloads):
        _, kind, options = key
        options = dict(options)
        session: GraphSession = payloads[0][0]
        values = [payload for _, payload in payloads]
        if kind == "resistance":
            pairs = np.asarray(values, dtype=np.int64).reshape(-1, 2)
            raw = session.effective_resistance(pairs)
        elif kind == "neighbors":
            nodes = np.asarray(values, dtype=np.int64)
            _, raw = session.nearest_neighbors(nodes, k=options["k"])
        else:
            nodes = np.asarray(values, dtype=np.int64)
            raw = session.cluster_labels(nodes, n_clusters=options["n_clusters"])
        # Splitting the batch result into per-request values is the
        # "serialize" share of a batch.  It stays cheap on purpose: results
        # are handed back as numpy scalars / row views, and the *wire*
        # encoding (JSON text or zero-copy binary frames) happens once per
        # response at the protocol boundary, not once per value here.
        start = time.perf_counter()
        with obs_span("serialize", kind=kind, batch_size=len(values)):
            out = list(raw)
        self.metrics.histogram("serve.serialize_ms").observe(
            1e3 * (time.perf_counter() - start)
        )
        return out

    async def drain(self) -> None:
        """Flush pending batches and wait for in-flight work."""
        await self._batcher.drain()

    async def aclose(self) -> None:
        """Drain gracefully, then shut the pools down."""
        await self.drain()
        self.close()

    def close(self) -> None:
        """Shut down the service (idempotent).

        Queries that were submitted but not yet flushed fail with
        :class:`ServiceClosedError` instead of hanging on futures nobody
        will resolve; batches already in flight finish (the pools shut
        down with ``wait=True``).  Prefer :meth:`aclose` from async code
        to drain gracefully first.
        """
        self._closed = True
        self._batcher.shutdown(
            ServiceClosedError("GraphService closed with pending queries")
        )
        self._executor.shutdown(wait=True)
        self._loader.shutdown(wait=True)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Service statistics: cache state, batching counters, per-session.

        Numpy scalars are coerced to builtins at this boundary, so the
        result is always ``json.dumps``-able (the TCP ``stats`` reply
        relies on that).
        """
        with self._cache_lock:
            sessions = dict(self._sessions)
            loads, evictions = self._loads, self._evictions
        return jsonable({
            "sessions": {
                "loaded": len(sessions),
                "capacity": self._max_sessions,
                "loads": loads,
                "evictions": evictions,
                "checksums": list(sessions),
            },
            "batching": self._batcher.stats.as_dict(),
            "per_session": {
                checksum: session.stats() for checksum, session in sessions.items()
            },
            "metrics": self.metrics.snapshot(),
        })


# ----------------------------------------------------------------------
# TCP front end: newline-delimited JSON and binary frames on one port
# ----------------------------------------------------------------------
async def _execute_request(
    service: GraphService, request: dict
) -> tuple[dict, np.ndarray | None]:
    """Run one request; returns ``(response_meta, array_result_or_None)``.

    Array-valued results (resistance / neighbors / labels) come back as a
    numpy array so the caller picks the wire encoding: ``.tolist()`` into
    the JSON reply, or the raw buffer on the binary frame path.
    """
    kind = request.get("kind")
    if kind == "stats":
        return {"ok": True, "result": service.stats()}, None
    if kind != "warm" and kind not in _KINDS:
        raise ValueError(f"unknown request kind {kind!r}")
    path = request.get("artifact")
    if not isinstance(path, str):
        raise ValueError("request must carry an 'artifact' path")
    if kind == "warm":
        # Re-read + re-validate the file (picks up a replaced artifact);
        # the load runs on the loader pool, off the event loop and away
        # from the compute workers.
        loop = asyncio.get_running_loop()
        session = await loop.run_in_executor(service._loader, service.warm, path)
        return {"ok": True, "result": jsonable(session.stats())}, None
    if kind == "resistance":
        pairs = request.get("pairs")
        if not isinstance(pairs, list) or not pairs:
            raise ValueError("'resistance' requests need a non-empty 'pairs' list")
        results = await asyncio.gather(
            *(service.query(path, "resistance", tuple(pair)) for pair in pairs)
        )
        return {"ok": True}, np.asarray(results, dtype=np.float64)
    if kind == "neighbors":
        nodes = request.get("nodes")
        if not isinstance(nodes, list) or not nodes:
            raise ValueError("'neighbors' requests need a non-empty 'nodes' list")
        k = int(request.get("k", 5))
        results = await asyncio.gather(
            *(service.query(path, "neighbors", int(node), k=k) for node in nodes)
        )
        return {"ok": True}, np.asarray(results, dtype=np.int64)
    if kind == "labels":
        nodes = request.get("nodes")
        if not isinstance(nodes, list) or not nodes:
            raise ValueError("'labels' requests need a non-empty 'nodes' list")
        n_clusters = int(request.get("n_clusters", 8))
        results = await asyncio.gather(
            *(
                service.query(path, "labels", int(node), n_clusters=n_clusters)
                for node in nodes
            )
        )
        return {"ok": True}, np.asarray(results, dtype=np.int64)
    raise AssertionError(f"unhandled request kind {kind!r}")  # pragma: no cover


async def _serve_json_message(
    service: GraphService,
    line: bytes,
    writer: asyncio.StreamWriter,
) -> None:
    request: dict | None = None
    try:
        decoded = json.loads(line)
        if not isinstance(decoded, dict):
            raise ValueError("request must be a JSON object")
        request = decoded
        response, array = await _execute_request(service, request)
    except Exception as exc:  # protocol errors go back to the client
        response, array = {"ok": False, "error": str(exc)}, None
    if request is not None and "id" in request:
        response["id"] = request["id"]
    encode_start = time.perf_counter()
    if array is not None:
        response["result"] = array.tolist()
    encoded = json.dumps(response, default=_json_default).encode("utf-8") + b"\n"
    service.metrics.histogram("serve.tcp.serialize_ms").observe(
        1e3 * (time.perf_counter() - encode_start)
    )
    service.metrics.counter("serve.tcp.requests").inc()
    writer.write(encoded)
    await writer.drain()


async def _serve_binary_message(
    service: GraphService,
    first_byte: bytes,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    request, encoding, _ = await read_frame_body(reader, first=first_byte)
    try:
        if not isinstance(request, dict):
            raise ValueError("request must be an object")
        response, array = await _execute_request(service, request)
    except Exception as exc:
        response, array = {"ok": False, "error": str(exc)}, None
    if isinstance(request, dict) and "id" in request:
        response["id"] = request["id"]
    encode_start = time.perf_counter()
    # Zero-copy on the result: the numpy buffer goes to the transport as a
    # memoryview — no per-value boxing, no text encoding.
    write_frame(writer, response, array=array, encoding=encoding)
    service.metrics.histogram("serve.tcp.serialize_ms").observe(
        1e3 * (time.perf_counter() - encode_start)
    )
    service.metrics.counter("serve.tcp.requests").inc()
    service.metrics.counter("serve.tcp.binary_frames").inc()
    await writer.drain()


async def _client_connected(
    service: GraphService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            # Sniff the protocol per message: binary frames open with the
            # magic byte pair, JSON lines with '{' (or whitespace).  One
            # connection may interleave both.
            first = await reader.read(1)
            if not first:
                break
            if first == FRAME_MAGIC[:1]:
                try:
                    await _serve_binary_message(service, first, reader, writer)
                except (FrameError, asyncio.IncompleteReadError) as exc:
                    write_frame(
                        writer, {"ok": False, "error": f"bad frame: {exc}"}
                    )
                    await writer.drain()
            else:
                line = first + await reader.readline()
                await _serve_json_message(service, line, writer)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def serve_forever(
    service: GraphService,
    host: str = "127.0.0.1",
    port: int = 8642,
    *,
    ready: "asyncio.Event | None" = None,
    bound_addresses: list | None = None,
) -> None:
    """Run the TCP server (JSON lines + binary frames) until cancelled.

    JSON protocol: one request per line, one JSON response per line
    (``{"ok": true, "result": ...}`` or ``{"ok": false, "error": "..."}``;
    an ``id`` field is echoed back).  Binary protocol: length-prefixed
    frames (:mod:`repro.serve.frames`) whose responses carry array results
    as raw numpy bytes — the format is sniffed per message from the first
    byte.  Every multi-item request fans out through the micro-batcher, so
    two clients querying the same model coalesce into shared solver
    batches.  ``ready`` (if given) is set once the socket is listening,
    after the actually bound ``(host, port)`` tuples have been appended to
    ``bound_addresses`` — lets tests bind port 0 and discover the
    kernel-assigned port.
    """
    server = await asyncio.start_server(
        lambda r, w: _client_connected(service, r, w), host, port
    )
    async with server:
        addresses = [sock.getsockname()[:2] for sock in server.sockets]
        if bound_addresses is not None:
            bound_addresses.extend(addresses)
        if ready is not None:
            ready.set()
        listening = ", ".join(f"{h}:{p}" for h, p in addresses)
        print(f"repro-serve listening on {listening}")
        await server.serve_forever()
