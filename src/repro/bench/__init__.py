"""Benchmark harness: scenario registry, timed runner, artifacts, gating.

The subsystem has four layers (see DESIGN.md, "benchmark harness"):

* :mod:`repro.bench.registry`  -- declarative, seeded scenario specs crossing
  every graph family in the repo with scale tiers, measurement counts and
  noise levels, grouped into suites (``smoke``, ``full``, ``scaling``);
* :mod:`repro.bench.runner`    -- warmup + repeated timed runs of the SGL
  learner with per-stage counters and peak-memory tracking, plus quality
  metrics against the ground truth;
* :mod:`repro.bench.baselines` -- adapters running the repo's reference
  methods (scaled kNN, graphical Lasso, spectral sparsification, Kron
  reduction) on the same scenarios for a quality-vs-time frontier;
* :mod:`repro.bench.results`   -- the versioned ``BENCH_<tag>.json`` artifact
  schema and :func:`~repro.bench.results.compare`, the regression gate;
* :mod:`repro.bench.serving`   -- the serve benchmark: queries/sec and
  p50/p99 latency of :mod:`repro.serve` vs a naive per-query-solve
  baseline, written as ``BENCH_serving.json``.

Drive it from the command line::

    python -m repro.bench list
    python -m repro.bench run --suite smoke --out BENCH_smoke.json
    python -m repro.bench run --suite paper --jobs 4
    python -m repro.bench serve --scenario circuit/medium
    python -m repro.bench compare BENCH_main.json BENCH_pr.json
"""

from repro.bench.registry import (
    FAMILIES,
    ScenarioSpec,
    get_scenario,
    iter_suite,
    list_scenarios,
    list_suites,
    register_scenario,
)
from repro.bench.baselines import BaselineOutcome, available_baselines, run_baseline
from repro.bench.runner import BenchRecord, quality_metrics, run_scenario, run_suite
from repro.bench.results import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    ArtifactError,
    ComparisonReport,
    Regression,
    compare,
    load_artifact,
    make_artifact,
    save_artifact,
    validate_artifact,
)
from repro.bench.serving import run_serve_bench, serve_records_for_scenario

__all__ = [
    "FAMILIES",
    "ScenarioSpec",
    "get_scenario",
    "iter_suite",
    "list_scenarios",
    "list_suites",
    "register_scenario",
    "BaselineOutcome",
    "available_baselines",
    "run_baseline",
    "BenchRecord",
    "quality_metrics",
    "run_scenario",
    "run_suite",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "ArtifactError",
    "ComparisonReport",
    "Regression",
    "compare",
    "load_artifact",
    "make_artifact",
    "save_artifact",
    "validate_artifact",
    "run_serve_bench",
    "serve_records_for_scenario",
]
