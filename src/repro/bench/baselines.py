"""Baseline adapters: run the repo's reference methods on bench scenarios.

Each adapter takes the same inputs as the SGL run (the ground-truth graph and
the simulated measurement set) and returns a learned/derived graph plus its
wall-clock cost, so the benchmark artifacts contain a quality-vs-time frontier
across methods:

``knn_baseline``
    The paper's experimental comparator — a spectrally scaled kNN graph
    built from the voltage measurements.
``glasso``
    The dense projected-gradient graphical-Lasso reference.  O(N^3) per
    iteration, so it is *skipped* (with a recorded reason) above a node cap.
``spectral_sparsify``
    Spielman-Srivastava sparsification of the ground-truth graph — the
    "dual" of SGL's densification; measures what a spectral sparsifier
    achieves when it is allowed to see the true graph.
``kron``
    Kron reduction onto a random half of the nodes.  The reduced graph lives
    on a node subset, so the adapter also returns the ``node_map`` from
    reduced to original ids; quality metrics compare effective resistances
    of kept-node pairs against the full ground truth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.glasso import gsp_graphical_lasso
from repro.baselines.knn_baseline import scaled_knn_baseline
from repro.baselines.kron import kron_reduction
from repro.baselines.spectral_sparsify import spectral_sparsify
from repro.graphs.graph import WeightedGraph
from repro.measurements.generator import MeasurementSet
from repro.measurements.reduction import sample_node_subset

__all__ = ["BaselineOutcome", "available_baselines", "run_baseline", "GLASSO_NODE_CAP"]

#: gsp_graphical_lasso is a dense O(N^3)-per-iteration reference; above this
#: node count the adapter records a skip instead of stalling the suite.
GLASSO_NODE_CAP = 400


@dataclass
class BaselineOutcome:
    """Result of one baseline adapter on one scenario."""

    method: str
    graph: WeightedGraph | None = None
    node_map: np.ndarray | None = None
    seconds: float = 0.0
    info: dict = field(default_factory=dict)
    skipped: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the baseline actually produced a graph."""
        return self.graph is not None


def available_baselines() -> list[str]:
    """Names accepted by :func:`run_baseline`."""
    return ["knn_baseline", "glasso", "spectral_sparsify", "kron"]


def run_baseline(
    name: str,
    truth: WeightedGraph,
    measurements: MeasurementSet,
    *,
    seed: int = 0,
) -> BaselineOutcome:
    """Run one baseline method on a scenario's inputs, timing it.

    Parameters
    ----------
    name:
        One of :func:`available_baselines`.
    truth:
        The scenario's ground-truth graph (used directly by the
        sparsification/reduction baselines, and for context only by the
        measurement-driven ones).
    measurements:
        The simulated measurement set fed to SGL.
    seed:
        Seed for the stochastic baselines (sparsifier sampling, Kron node
        subset).
    """
    if name == "knn_baseline":
        start = time.perf_counter()
        graph = scaled_knn_baseline(measurements)
        elapsed = time.perf_counter() - start
        return BaselineOutcome(method=name, graph=graph, seconds=elapsed)

    if name == "glasso":
        n = measurements.n_nodes
        if n > GLASSO_NODE_CAP:
            return BaselineOutcome(
                method=name,
                skipped=f"n_nodes={n} exceeds glasso cap of {GLASSO_NODE_CAP}",
            )
        start = time.perf_counter()
        result = gsp_graphical_lasso(
            measurements.voltages, max_iterations=60, seed=seed
        )
        elapsed = time.perf_counter() - start
        return BaselineOutcome(
            method=name,
            graph=result.graph,
            seconds=elapsed,
            info={
                "converged": result.converged,
                "n_iterations": result.n_iterations,
            },
        )

    if name == "spectral_sparsify":
        start = time.perf_counter()
        graph = spectral_sparsify(truth, epsilon=0.5, seed=seed)
        elapsed = time.perf_counter() - start
        return BaselineOutcome(method=name, graph=graph, seconds=elapsed)

    if name == "kron":
        keep = sample_node_subset(truth.n_nodes, 0.5, seed=seed)
        start = time.perf_counter()
        graph = kron_reduction(truth, keep)
        elapsed = time.perf_counter() - start
        return BaselineOutcome(
            method=name,
            graph=graph,
            node_map=keep,
            seconds=elapsed,
            info={"n_kept_nodes": int(keep.size)},
        )

    raise KeyError(f"unknown baseline {name!r}; available: {available_baselines()}")
