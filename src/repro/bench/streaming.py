"""Stream benchmark: incremental update latency vs full-refit quality.

``python -m repro.bench stream`` measures the online learning story of
:mod:`repro.stream` over one or more registry scenarios.  For each scenario
it

1. learns the initial graph from the scenario's measurement set through
   :class:`~repro.stream.OnlineSGLearner` (publishing snapshot v1 into a
   :class:`~repro.artifacts.ModelRegistry`);
2. drives ``n_batches`` measurement batches from a drifting
   :class:`~repro.stream.MeasurementStream` through ``update()``, timing
   every update and publishing one lineage-chained snapshot each;
3. re-fits the batch learner from scratch on the exact final window, the
   reference an incremental update chain is judged against.

Three records per scenario ride the existing artifact/compare machinery:

* ``stream_fit`` — the initial full fit (wall, quality vs the initial
  truth);
* ``stream_update`` — one wall-clock entry *per incremental update* (so
  the compare gate's fastest-repeat statistic gates the cheapest update,
  and ``mean_update_seconds`` in ``info`` tracks the typical one), scored
  against the **final drifted truth**;
* ``stream_refit`` — the from-scratch refit on the final window, also
  scored against the final truth.  ``quality["speedup_vs_refit"]`` on the
  ``stream_update`` record is the refit wall over the mean incremental
  wall — the number the acceptance bar (>= 3x at <= 0.05 correlation
  loss) reads.

With ``trace_dir`` the whole run is traced: ``stream.update`` spans carry
the per-update stage tree, and each record's ``info`` names the trace
artifact plus the registry index for lineage inspection.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.artifacts.registry import ModelRegistry
from repro.bench import registry as scenario_registry
from repro.bench.runner import BenchRecord, quality_metrics, trace_prefix_for
from repro.core.instrumentation import StageTimings
from repro.core.sgl import SGLearner
from repro.obs.session import ObsSession
from repro.stream.drift import DriftDetector
from repro.stream.generators import MeasurementStream
from repro.stream.learner import OnlineSGLearner

__all__ = ["run_stream_bench", "stream_records_for_scenario"]


def _model_name_for(scenario: str) -> str:
    return trace_prefix_for(scenario)


def stream_records_for_scenario(
    scenario: str,
    *,
    n_batches: int = 5,
    batch_size: int | None = None,
    mode: str = "drift",
    drift_rate: float = 0.02,
    incremental_iterations: int = 2,
    max_updates_between_refits: int = 0,
    seed: int = 0,
    registry_dir: str | Path | None = None,
    trace_dir: str | Path | None = None,
) -> list[BenchRecord]:
    """Benchmark online learning on one scenario (see module docstring).

    The registry the snapshots publish into lives under ``registry_dir``
    (kept in place when given, temporary otherwise; ``info["registry"]``
    names it either way, and ``info["lineage"]`` always carries the
    version chain).
    """
    spec = scenario_registry.get_scenario(scenario)
    cleanup: tempfile.TemporaryDirectory | None = None
    if registry_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-stream-bench-")
        registry_dir = cleanup.name
    try:
        obs = ObsSession() if trace_dir is not None else None
        if obs is not None:
            obs.__enter__()
        try:
            records = _stream_records_body(
                spec,
                ModelRegistry(registry_dir),
                n_batches=n_batches,
                batch_size=batch_size,
                mode=mode,
                drift_rate=drift_rate,
                incremental_iterations=incremental_iterations,
                max_updates_between_refits=max_updates_between_refits,
                seed=seed,
            )
        finally:
            if obs is not None:
                obs.__exit__(None, None, None)
        if obs is not None:
            paths = obs.save(trace_dir, prefix="stream_" + trace_prefix_for(spec.name))
            for record in records:
                record.info["trace"] = str(paths["trace"])
        return records
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def _stream_records_body(
    spec,
    model_registry: ModelRegistry,
    *,
    n_batches: int,
    batch_size: int | None,
    mode: str,
    drift_rate: float,
    incremental_iterations: int,
    max_updates_between_refits: int,
    seed: int,
) -> list[BenchRecord]:
    truth = spec.build_graph()
    initial = spec.build_measurements(truth)
    if batch_size is None:
        batch_size = max(4, initial.n_measurements // 5)
    config = spec.make_config(initial.n_nodes)
    model_name = _model_name_for(spec.name)

    stream = MeasurementStream(
        truth,
        batch_size,
        mode=mode,
        drift_rate=drift_rate,
        seed=seed + 1,
    )
    learner = OnlineSGLearner(
        config,
        drift=DriftDetector(max_updates_between_refits=max_updates_between_refits),
        registry=model_registry,
        model_name=model_name,
        incremental_iterations=incremental_iterations,
    )

    first = learner.fit(initial)
    base_info = {
        "registry": str(model_registry.root),
        "model": model_name,
        "mode": mode,
        "drift_rate": drift_rate,
        "n_batches": n_batches,
        "batch_size": batch_size,
    }
    records = [
        BenchRecord(
            scenario=spec.name,
            method="stream_fit",
            n_nodes=truth.n_nodes,
            n_edges_true=truth.n_edges,
            n_measurements=initial.n_measurements,
            noise_level=spec.noise_level,
            wall_seconds=[first.wall_seconds],
            stage_seconds=first.timings.as_dict(),
            quality=quality_metrics(truth, first.graph, initial.voltages, seed=seed),
            info={**base_info, "version": first.version.version},
        )
    ]

    updates = [learner.update(batch) for batch in stream.batches(n_batches)]
    incremental = [u for u in updates if u.mode == "incremental"]
    refits = [u for u in updates if u.mode == "refit"]

    # The stream's truth has drifted under the updates: quality is always
    # judged against the network the *latest* batch was measured on.
    final_truth = stream.truth
    window = learner.window
    merged = StageTimings()
    for update in updates:
        merged.merge(update.timings)
    update_quality = quality_metrics(final_truth, learner.graph, window.voltages, seed=seed)

    # Reference: the batch learner from scratch on the exact same window.
    refit_timings = StageTimings()
    refit_start = time.perf_counter()
    refit_result = SGLearner(config).fit(window, timings=refit_timings)
    refit_seconds = time.perf_counter() - refit_start
    refit_quality = quality_metrics(
        final_truth, refit_result.graph, window.voltages, seed=seed
    )

    update_walls = [u.wall_seconds for u in incremental] or [
        u.wall_seconds for u in updates
    ]
    mean_update = float(np.mean(update_walls))
    speedup = refit_seconds / mean_update if mean_update > 0 else float("inf")
    lineage = [v.version for v in model_registry.lineage(f"{model_name}@latest")]

    records.append(
        BenchRecord(
            scenario=spec.name,
            method="stream_update",
            n_nodes=truth.n_nodes,
            n_edges_true=truth.n_edges,
            n_measurements=window.n_measurements,
            noise_level=spec.noise_level,
            wall_seconds=update_walls,
            stage_seconds=merged.as_dict(),
            quality={**update_quality, "speedup_vs_refit": speedup},
            info={
                **base_info,
                "n_updates": len(updates),
                "n_incremental": len(incremental),
                "n_refits": len(refits),
                "mean_update_seconds": mean_update,
                "refit_seconds": refit_seconds,
                "reasons": [u.decision.reason for u in updates],
                "lineage": lineage,
                "latest_version": learner.last_version.version,
            },
        )
    )
    records.append(
        BenchRecord(
            scenario=spec.name,
            method="stream_refit",
            n_nodes=truth.n_nodes,
            n_edges_true=truth.n_edges,
            n_measurements=window.n_measurements,
            noise_level=spec.noise_level,
            wall_seconds=[refit_seconds],
            stage_seconds=refit_timings.as_dict(),
            quality=refit_quality,
            info=dict(base_info),
        )
    )
    return records


def run_stream_bench(
    scenarios: list[str],
    *,
    n_batches: int = 5,
    batch_size: int | None = None,
    mode: str = "drift",
    drift_rate: float = 0.02,
    incremental_iterations: int = 2,
    max_updates_between_refits: int = 0,
    seed: int = 0,
    registry_dir: str | Path | None = None,
    trace_dir: str | Path | None = None,
    progress=None,
) -> list[BenchRecord]:
    """Run the stream benchmark over several scenarios (see module docs)."""
    all_records: list[BenchRecord] = []
    for name in scenarios:
        records = stream_records_for_scenario(
            name,
            n_batches=n_batches,
            batch_size=batch_size,
            mode=mode,
            drift_rate=drift_rate,
            incremental_iterations=incremental_iterations,
            max_updates_between_refits=max_updates_between_refits,
            seed=seed,
            registry_dir=registry_dir,
            trace_dir=trace_dir,
        )
        all_records.extend(records)
        if progress is not None:
            progress(name, records)
    return all_records
