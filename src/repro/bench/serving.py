"""Serve benchmark: queries/sec and latency of the serving stack.

``python -m repro.bench serve`` measures the end-to-end serving story over
one or more registry scenarios.  For each scenario it

1. learns the graph (timed, reported under ``info`` — learning cost is not
   part of serving throughput);
2. persists the result with :func:`repro.artifacts.save_result` and loads
   it back (exercising the validated round trip every run);
3. answers the same ``n_queries`` effective-resistance queries three ways:

   * ``serve_naive`` — one Laplacian solve per query pair
     (:func:`repro.linalg.effective_resistance`; it still reuses the
     session's factorisation, so the measured gap is the serving layer's
     batched query engine, not factorisation caching);
   * ``serve_batched`` — the session's batched engine: the exact
     tree-plus-low-rank :class:`~repro.serve.ResistanceOracle` on
     tree-like graphs, grouped multi-RHS solves otherwise;
   * ``serve_service`` — the full asyncio stack: concurrent single-pair
     requests coalesced by the micro-batcher and dispatched to the worker
     pool (per-request p50/p99 latency comes from here).

Records carry ``qps`` / ``p50_ms`` / ``p99_ms`` in ``quality`` and the
total wall time in ``wall_seconds``, so the existing
``python -m repro.bench compare`` regression gate applies unchanged to
``BENCH_serving.json`` artifacts.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench import registry
from repro.bench.runner import BenchRecord, trace_prefix_for
from repro.core.sgl import SGLearner
from repro.obs.session import ObsSession
from repro.obs.tracing import span as obs_span
from repro.linalg.pseudoinverse import effective_resistance
from repro.metrics.resistance import sample_node_pairs
from repro.serve.batching import latency_percentiles_ms
from repro.serve.service import GraphService
from repro.serve.session import GraphSession

__all__ = ["run_serve_bench", "serve_records_for_scenario"]

#: Default concurrency sweep for ``--load`` (clients driving the service
#: closed-loop at once).  Spans idle (adaptive flush dominates) through
#: saturated (size-cap flushes dominate).
DEFAULT_LOAD_CONCURRENCY: tuple[int, ...] = (8, 64, 512)

#: Mixed-workload composition for ``--load``: share of resistance /
#: neighbors / labels requests.
LOAD_MIX: tuple[float, float, float] = (0.5, 0.25, 0.25)


def _record(
    spec,
    method: str,
    truth_nodes: int,
    truth_edges: int,
    *,
    seconds: float,
    n_queries: int,
    p50_ms: float,
    p99_ms: float,
    info: dict,
) -> BenchRecord:
    return BenchRecord(
        scenario=spec.name,
        method=method,
        n_nodes=truth_nodes,
        n_edges_true=truth_edges,
        n_measurements=spec.n_measurements,
        noise_level=spec.noise_level,
        wall_seconds=[seconds],
        quality={
            "qps": n_queries / seconds if seconds > 0 else float("inf"),
            "p50_ms": p50_ms,
            "p99_ms": p99_ms,
        },
        info=info,
    )


def serve_records_for_scenario(
    scenario: str,
    *,
    n_queries: int = 512,
    batch_size: int = 64,
    max_delay_ms: float = 2.0,
    workers: int = 2,
    seed: int = 0,
    artifact_dir: str | Path | None = None,
    trace_dir: str | Path | None = None,
    load_concurrency: tuple[int, ...] | list[int] | None = None,
) -> list[BenchRecord]:
    """Benchmark serving one scenario; returns naive/batched/service records.

    With ``load_concurrency`` (a list of client counts), a load-test sweep
    runs after the three standard paths: for each level ``C``, ``C``
    closed-loop clients drive a *mixed* resistance/neighbors/labels
    workload (:data:`LOAD_MIX`) through the service, producing one
    ``serve_load_c<C>`` record with qps / p50 / p99 per level.

    The learned artifact is written under ``artifact_dir`` as
    ``<scenario>.npz`` and left in place when an explicit directory was
    given; without one it goes to a temporary directory that is removed
    when the benchmark finishes (``info["artifact"]`` then names a path
    that no longer exists).  With ``trace_dir``, the three serving paths
    run traced: the span tree attributes the batched-vs-service gap to
    queue wait / pool wait / execute / serialize, the artifacts land in
    ``<trace_dir>/serve_<scenario>.jsonl`` (+ siblings) and each record's
    ``info`` carries the trace path and a metrics snapshot.
    """
    spec = registry.get_scenario(scenario)
    truth = spec.build_graph()
    measurements = spec.build_measurements(truth)

    cleanup_dir: tempfile.TemporaryDirectory | None = None
    if artifact_dir is None:
        cleanup_dir = tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
        artifact_dir = cleanup_dir.name
    artifact_path = Path(artifact_dir) / (spec.name.replace("/", "_") + ".npz")
    try:
        return _serve_records(
            spec, truth, measurements, artifact_path,
            n_queries=n_queries, batch_size=batch_size,
            max_delay_ms=max_delay_ms, workers=workers, seed=seed,
            trace_dir=trace_dir, load_concurrency=load_concurrency,
        )
    finally:
        if cleanup_dir is not None:
            cleanup_dir.cleanup()


def _serve_records(
    spec,
    truth,
    measurements,
    artifact_path: Path,
    *,
    n_queries: int,
    batch_size: int,
    max_delay_ms: float,
    workers: int,
    seed: int,
    trace_dir: str | Path | None = None,
    load_concurrency: tuple[int, ...] | list[int] | None = None,
) -> list[BenchRecord]:
    obs = ObsSession() if trace_dir is not None else None
    if obs is not None:
        obs.__enter__()
    try:
        records = _serve_records_body(
            spec, truth, measurements, artifact_path,
            n_queries=n_queries, batch_size=batch_size,
            max_delay_ms=max_delay_ms, workers=workers, seed=seed,
            metrics=obs.metrics if obs is not None else None,
            load_concurrency=load_concurrency,
        )
    finally:
        if obs is not None:
            obs.__exit__(None, None, None)
    if obs is not None:
        paths = obs.save(trace_dir, prefix="serve_" + trace_prefix_for(spec.name))
        snapshot = obs.metrics.snapshot()
        for record in records:
            record.info["trace"] = str(paths["trace"])
            record.info["metrics"] = snapshot
    return records


def _serve_records_body(
    spec,
    truth,
    measurements,
    artifact_path: Path,
    *,
    n_queries: int,
    batch_size: int,
    max_delay_ms: float,
    workers: int,
    seed: int,
    metrics=None,
    load_concurrency: tuple[int, ...] | list[int] | None = None,
) -> list[BenchRecord]:

    learn_start = time.perf_counter()
    with obs_span("learn", scenario=spec.name):
        result = SGLearner(spec.make_config(measurements.n_nodes)).fit(
            measurements, checkpoint_path=artifact_path
        )
    learn_seconds = time.perf_counter() - learn_start

    session = GraphSession.from_file(
        artifact_path, resistance_block=batch_size, seed=seed
    )
    pairs = sample_node_pairs(session.n_nodes, n_queries, seed=seed)
    base_info = {
        "learn_seconds": learn_seconds,
        "artifact": str(artifact_path),
        "checksum": session.checksum,
        "learned_edges": result.graph.n_edges,
        "n_queries": n_queries,
        "batch_size": batch_size,
        "resistance_engine": session.resistance_engine,
    }

    # --- naive: one solve per pair (per-query latency = its own solve) ----
    naive_values = np.empty(n_queries)
    naive_latencies = []
    naive_start = time.perf_counter()
    with obs_span("serve_naive", n_queries=n_queries):
        for idx, pair in enumerate(pairs):
            t0 = time.perf_counter()
            naive_values[idx] = effective_resistance(
                session.graph, pair[None, :], solver=session.solver
            )[0]
            naive_latencies.append(time.perf_counter() - t0)
    naive_seconds = time.perf_counter() - naive_start
    p50, p99 = latency_percentiles_ms(naive_latencies)
    records = [
        _record(
            spec, "serve_naive", truth.n_nodes, truth.n_edges,
            seconds=naive_seconds, n_queries=n_queries,
            p50_ms=p50, p99_ms=p99, info=dict(base_info),
        )
    ]

    # --- batched: grouped-RHS session fast path ---------------------------
    batched_values = np.empty(n_queries)
    batch_latencies = []
    batched_start = time.perf_counter()
    with obs_span("serve_batched", n_queries=n_queries, batch_size=batch_size):
        for start in range(0, n_queries, batch_size):
            t0 = time.perf_counter()
            chunk = pairs[start:start + batch_size]
            batched_values[start:start + batch_size] = session.effective_resistance(chunk)
            dt = time.perf_counter() - t0
            batch_latencies.extend([dt] * chunk.shape[0])  # all pairs wait for the block
    batched_seconds = time.perf_counter() - batched_start
    if not np.allclose(batched_values, naive_values, rtol=1e-7, atol=1e-10):
        raise RuntimeError("batched resistances diverged from the naive solves")
    p50, p99 = latency_percentiles_ms(batch_latencies)
    speedup = naive_seconds / batched_seconds if batched_seconds > 0 else float("inf")
    records.append(
        _record(
            spec, "serve_batched", truth.n_nodes, truth.n_edges,
            seconds=batched_seconds, n_queries=n_queries,
            p50_ms=p50, p99_ms=p99,
            info={**base_info, "speedup_vs_naive": speedup},
        )
    )
    records[-1].quality["speedup_vs_naive"] = speedup

    # --- service: asyncio micro-batching end to end -----------------------
    service = GraphService(
        max_batch_size=batch_size,
        max_delay_s=max_delay_ms / 1e3,
        max_workers=workers,
        session_options={"resistance_block": batch_size, "seed": seed},
        metrics=metrics,
    )
    service.warm(artifact_path)

    async def run_service():
        start = time.perf_counter()
        values = await asyncio.gather(
            *(
                service.query(artifact_path, "resistance", tuple(pair))
                for pair in pairs
            )
        )
        await service.drain()
        return values, time.perf_counter() - start

    with obs_span("serve_service", n_queries=n_queries, batch_size=batch_size):
        service_values, service_seconds = asyncio.run(run_service())
    if not np.allclose(service_values, naive_values, rtol=1e-7, atol=1e-10):
        raise RuntimeError("service resistances diverged from the naive solves")
    batching = service.stats()["batching"]
    records.append(
        _record(
            spec, "serve_service", truth.n_nodes, truth.n_edges,
            seconds=service_seconds, n_queries=n_queries,
            p50_ms=batching.get("p50_ms", 0.0), p99_ms=batching.get("p99_ms", 0.0),
            info={
                **base_info,
                "speedup_vs_naive": naive_seconds / service_seconds
                if service_seconds > 0
                else float("inf"),
                "n_batches": batching["n_batches"],
                "mean_batch_size": batching["mean_batch_size"],
            },
        )
    )

    # --- load sweep: mixed workload at controlled concurrency -------------
    if load_concurrency:
        session = service.session(artifact_path)
        requests = _mixed_workload(
            session.n_nodes, n_queries, seed=seed,
            with_neighbors=session.has_embedding,
        )
        for level in load_concurrency:
            level = int(level)
            with obs_span("serve_load", n_queries=n_queries, concurrency=level):
                latencies, wall = asyncio.run(
                    _drive_load(service, artifact_path, requests, level)
                )
            p50, p99 = latency_percentiles_ms(latencies)
            mix = {
                kind: sum(1 for k, _, _ in requests if k == kind)
                for kind in ("resistance", "neighbors", "labels")
            }
            records.append(
                _record(
                    spec, f"serve_load_c{level}", truth.n_nodes, truth.n_edges,
                    seconds=wall, n_queries=n_queries,
                    p50_ms=p50, p99_ms=p99,
                    info={**base_info, "concurrency": level, "mix": mix},
                )
            )
            records[-1].quality["concurrency"] = level
    service.close()
    return records


def _mixed_workload(
    n_nodes: int, n_queries: int, *, seed: int, with_neighbors: bool = True
) -> list[tuple]:
    """The ``--load`` request mix: ``(kind, payload, options)`` triples.

    Composition follows :data:`LOAD_MIX`; artifacts saved without an
    embedding fold the neighbors share into resistance.  Half the
    non-default-free requests pass their options explicitly (``k=5``,
    ``n_clusters=8``) — identical in meaning to the omitted form, and the
    batcher's key normalisation must coalesce both spellings into the same
    batches.
    """
    rng = np.random.default_rng(seed)
    probs = list(LOAD_MIX)
    if not with_neighbors:
        probs = [probs[0] + probs[1], 0.0, probs[2]]
    kinds = rng.choice(3, size=n_queries, p=probs)
    pairs = sample_node_pairs(n_nodes, n_queries, seed=seed + 1)
    nodes = rng.integers(0, n_nodes, size=n_queries)
    explicit = rng.random(n_queries) < 0.5
    requests: list[tuple] = []
    for idx in range(n_queries):
        if kinds[idx] == 0:
            requests.append(
                ("resistance", (int(pairs[idx, 0]), int(pairs[idx, 1])), {})
            )
        elif kinds[idx] == 1:
            options = {"k": 5} if explicit[idx] else {}
            requests.append(("neighbors", int(nodes[idx]), options))
        else:
            options = {"n_clusters": 8} if explicit[idx] else {}
            requests.append(("labels", int(nodes[idx]), options))
    return requests


async def _drive_load(
    service: GraphService, path, requests: list[tuple], concurrency: int
) -> tuple[list[float], float]:
    """Drive ``requests`` through ``service`` with ``concurrency`` clients.

    Closed-loop load generation: each of the ``concurrency`` worker
    coroutines claims the next request, awaits its result, then claims
    another — so at most ``concurrency`` requests are in flight, and the
    measured per-request latency includes queue wait under exactly that
    offered load.  Returns ``(per-request latencies in seconds, wall)``.
    """
    latencies = [0.0] * len(requests)
    pending = iter(range(len(requests)))

    async def client():
        for idx in pending:  # shared iterator: each index claimed once
            kind, payload, options = requests[idx]
            t0 = time.perf_counter()
            await service.query(path, kind, payload, **options)
            latencies[idx] = time.perf_counter() - t0

    start = time.perf_counter()
    await asyncio.gather(
        *(client() for _ in range(max(1, min(concurrency, len(requests)))))
    )
    await service.drain()
    return latencies, time.perf_counter() - start


def run_serve_bench(
    scenarios: list[str],
    *,
    n_queries: int = 512,
    batch_size: int = 64,
    max_delay_ms: float = 2.0,
    workers: int = 2,
    seed: int = 0,
    artifact_dir: str | Path | None = None,
    trace_dir: str | Path | None = None,
    load_concurrency: tuple[int, ...] | list[int] | None = None,
    progress=None,
) -> list[BenchRecord]:
    """Run the serve benchmark over several scenarios (see module docs)."""
    all_records: list[BenchRecord] = []
    for name in scenarios:
        records = serve_records_for_scenario(
            name,
            n_queries=n_queries,
            batch_size=batch_size,
            max_delay_ms=max_delay_ms,
            workers=workers,
            seed=seed,
            artifact_dir=artifact_dir,
            trace_dir=trace_dir,
            load_concurrency=load_concurrency,
        )
        all_records.extend(records)
        if progress is not None:
            progress(name, records)
    return all_records
