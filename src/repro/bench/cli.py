"""Command-line interface: ``python -m repro.bench list|run|compare``.

Examples
--------
List scenarios and suites::

    python -m repro.bench list
    python -m repro.bench list --suite smoke

Run the smoke suite (learner + kNN baseline) and write an artifact::

    python -m repro.bench run --suite smoke --out BENCH_smoke.json

A/B the Step-1 search backends, with per-scenario cProfile dumps::

    python -m repro.bench run --suite scaling --knn-backend jl --profile

Run the opt-in paper-scale suite (scenarios are independent, so a process
pool is safe — records come back in scenario order either way)::

    python -m repro.bench run --suite paper --jobs 4 --out BENCH_paper.json

Fit the million-node tier with the partition-parallel engine (--jobs
becomes the shard-pool width; scenarios run one at a time)::

    python -m repro.bench run --suite huge --engine sharded --parts 16 --jobs 4

Benchmark the serving stack (learn, persist, reload, then answer the same
query set naive / batched / through the asyncio service)::

    python -m repro.bench serve --scenario circuit/medium --queries 512

Benchmark online learning (initial fit, drifting update stream with
versioned registry snapshots, from-scratch refit reference)::

    python -m repro.bench stream --scenario circuit/medium --batches 5

Gate a candidate artifact against a stored baseline (exit code 1 on any
regression beyond the thresholds)::

    python -m repro.bench compare BENCH_main.json BENCH_pr.json
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from pathlib import Path

from repro.bench import registry
from repro.bench.baselines import available_baselines
from repro.bench.results import (
    ArtifactError,
    compare,
    load_artifact,
    make_artifact,
    save_artifact,
)
from repro.bench.runner import run_suite
from repro.experiments.reporting import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.bench`` argument parser (exposed for --help tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="SGL benchmark harness: scenario registry, timed runner, "
        "JSON artifacts and regression gating.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered scenarios and suites")
    p_list.add_argument("--suite", default=None, help="restrict to one suite")

    p_run = sub.add_parser("run", help="run scenarios and write a JSON artifact")
    p_run.add_argument("--suite", default=None, help="run every scenario of a suite")
    p_run.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="run a single scenario (repeatable; combines with --suite)",
    )
    p_run.add_argument("--out", default=None, metavar="PATH",
                       help="artifact path (default: BENCH_<tag>.json)")
    p_run.add_argument("--tag", default=None,
                       help="artifact tag (default: the suite name or 'custom')")
    p_run.add_argument("--repeats", type=int, default=1,
                       help="timed repeats per scenario (default 1)")
    p_run.add_argument("--warmup", type=int, default=0,
                       help="untimed warmup runs per scenario (default 0)")
    p_run.add_argument(
        "--baselines",
        default="knn_baseline",
        help="comma-separated baselines to run alongside SGL "
        f"(default knn_baseline; available: {','.join(available_baselines())}; "
        "'none' disables)",
    )
    p_run.add_argument(
        "--engine",
        choices=("stateless", "incremental", "multilevel", "sharded"),
        default=None,
        help="override SGLConfig.embedding_engine for every scenario "
        "(A/B the warm-started incremental engine and the multilevel "
        "coarsen-solve-refine engine against the recompute-from-scratch "
        "path; 'sharded' selects the partition-parallel ShardedSGLearner "
        "with --parts shards — per-shard embedding engines follow the "
        "scenario settings, and --jobs workers fit shards concurrently; "
        "default: scenario settings)",
    )
    p_run.add_argument(
        "--parts",
        type=int,
        default=4,
        metavar="N",
        help="shards for --engine sharded (default 4; ignored otherwise)",
    )
    p_run.add_argument(
        "--refinement-backend",
        choices=("lobpcg", "inverse-power", "chebyshev"),
        default=None,
        help="override SGLConfig.refinement_backend for every scenario "
        "(A/B the multilevel engine's per-level refinement: preconditioned "
        "LOBPCG, block PINVIT, or mixed-precision Chebyshev-filtered "
        "subspace iteration; only meaningful with --engine multilevel; "
        "default: scenario settings)",
    )
    p_run.add_argument(
        "--linalg-backend",
        choices=("auto", "numpy", "cupy"),
        default=None,
        help="override SGLConfig.linalg_backend for every scenario "
        "(compute backend for the chebyshev filter primitives: 'numpy' "
        "always available, 'cupy' when the GPU stack is importable, "
        "'auto' probes and degrades to numpy; default: scenario settings)",
    )
    p_run.add_argument(
        "--refine-dtype",
        choices=("float32", "float64"),
        default=None,
        help="override SGLConfig.refine_dtype for every scenario (the "
        "chebyshev filter's working precision — acceptance checks always "
        "run in float64; default: scenario settings)",
    )
    p_run.add_argument(
        "--knn-backend",
        choices=("auto", "brute", "kdtree", "jl", "nsw"),
        default=None,
        help="override SGLConfig.knn_backend for every scenario "
        "(A/B the Step-1 search backends: exact KD-tree, blocked-BLAS "
        "brute force, JL-projected search; default: scenario settings)",
    )
    p_run.add_argument(
        "--profile",
        action="store_true",
        help="additionally run each scenario once under cProfile and dump "
        "binary stats to <artifact>_profiles/<scenario>.prof",
    )
    p_run.add_argument("--no-memory", action="store_true",
                       help="skip the tracemalloc peak-memory pass")
    p_run.add_argument("--quality-pairs", type=int, default=120,
                       help="node pairs sampled for the resistance metric")
    p_run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run independent scenarios in an N-process pool (records come "
        "back in scenario order with identical quality/graph fields; "
        "co-scheduled wall timings contend for cores — prefer --jobs 1 "
        "for timing baselines)",
    )
    p_run.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="trace every scenario's timed fits with repro.obs: per-scenario "
        "span/metrics/resource artifacts land in DIR (plus a merged "
        "suite_metrics.json; works with --jobs — worker snapshots merge "
        "exactly); inspect with `python -m repro.obs report`",
    )

    p_serve = sub.add_parser(
        "serve",
        help="benchmark the repro.serve stack: save/load a learned artifact, "
        "then measure batched vs naive per-pair query throughput",
    )
    p_serve.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="scenario(s) to learn and serve "
        "(repeatable; default: circuit/tiny and circuit/medium)",
    )
    p_serve.add_argument("--queries", type=int, default=512,
                         help="effective-resistance queries per scenario (default 512)")
    p_serve.add_argument("--batch-size", type=int, default=64,
                         help="pairs per grouped solve / micro-batch (default 64)")
    p_serve.add_argument("--max-delay-ms", type=float, default=2.0,
                         help="micro-batch deadline in ms (default 2)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="service worker threads (default 2)")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="query-pair sampling seed (default 0)")
    p_serve.add_argument("--artifact-dir", default=None, metavar="DIR",
                         help="keep the learned .npz artifacts here "
                         "(default: a temporary directory)")
    p_serve.add_argument("--out", default=None, metavar="PATH",
                         help="artifact path (default: BENCH_serving.json)")
    p_serve.add_argument("--tag", default="serving", help="artifact tag")
    p_serve.add_argument("--trace", default=None, metavar="DIR",
                         help="trace the serving paths with repro.obs; "
                         "per-scenario artifacts land in DIR "
                         "(serve_<scenario>.jsonl + metrics/resources)")
    p_serve.add_argument(
        "--load",
        action="store_true",
        help="after the standard three paths, run a load-test sweep: mixed "
        "resistance/neighbors/labels workloads driven closed-loop at each "
        "--concurrency level, one serve_load_c<N> record (qps/p50/p99) per "
        "level",
    )
    p_serve.add_argument(
        "--concurrency",
        default="8,64,512",
        metavar="N,N,...",
        help="comma-separated concurrent-client counts for the --load sweep "
        "(default 8,64,512)",
    )

    p_stream = sub.add_parser(
        "stream",
        help="benchmark repro.stream: incremental update latency and quality "
        "vs a from-scratch refit on a drifting measurement stream",
    )
    p_stream.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="scenario(s) to stream "
        "(repeatable; default: circuit/tiny and circuit/medium)",
    )
    p_stream.add_argument("--batches", type=int, default=5,
                          help="measurement batches to stream (default 5)")
    p_stream.add_argument("--batch-size", type=int, default=None,
                          help="measurements per batch "
                          "(default: a fifth of the initial window)")
    p_stream.add_argument("--mode", choices=("additive", "drift", "shift"),
                          default="drift",
                          help="stream regime (default drift)")
    p_stream.add_argument("--drift-rate", type=float, default=0.02,
                          help="per-batch log-normal weight drift (default 0.02)")
    p_stream.add_argument("--refit-every", type=int, default=0, metavar="N",
                          help="force a full refit after N incremental updates "
                          "(default 0 = only when the detector fires)")
    p_stream.add_argument("--seed", type=int, default=0,
                          help="stream seed (default 0)")
    p_stream.add_argument("--registry-dir", default=None, metavar="DIR",
                          help="publish snapshots into this model registry "
                          "(default: a temporary one)")
    p_stream.add_argument("--out", default=None, metavar="PATH",
                          help="artifact path (default: BENCH_streaming.json)")
    p_stream.add_argument("--tag", default="streaming", help="artifact tag")
    p_stream.add_argument("--trace", default=None, metavar="DIR",
                          help="trace the run with repro.obs; per-scenario "
                          "artifacts land in DIR (stream_<scenario>.jsonl "
                          "+ metrics/resources)")

    p_cmp = sub.add_parser(
        "compare",
        help="diff two artifacts; exit 1 on regressions beyond the thresholds",
    )
    p_cmp.add_argument("baseline", help="reference artifact (e.g. from main)")
    p_cmp.add_argument("candidate", help="artifact under test")
    p_cmp.add_argument("--time-threshold", type=float, default=0.20,
                       help="max relative slowdown of the fastest-repeat wall time "
                       "(default 0.20)")
    p_cmp.add_argument("--quality-threshold", type=float, default=0.05,
                       help="max absolute resistance-correlation drop (default 0.05)")
    return parser


def _cmd_list(args) -> int:
    try:
        names = registry.list_scenarios(args.suite)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    rows = []
    for name in names:
        spec = registry.get_scenario(name)
        member_of = [s for s in registry.list_suites() if name in registry.list_scenarios(s)]
        rows.append(
            [
                name,
                spec.tier,
                spec.n_measurements,
                f"{spec.noise_level:g}",
                ",".join(member_of) or "-",
                spec.description,
            ]
        )
    print(format_table(
        ["scenario", "tier", "M", "noise", "suites", "description"], rows
    ))
    print(f"\n{len(names)} scenario(s); suites: {', '.join(registry.list_suites())}")
    return 0


def _cmd_run(args) -> int:
    if not args.suite and not args.scenario:
        print("error: provide --suite and/or --scenario", file=sys.stderr)
        return 2
    names: list[str] = []
    try:
        if args.suite:
            names.extend(registry.list_scenarios(args.suite))
        for name in args.scenario or ():
            if name not in names:
                names.append(name)
        specs = [registry.get_scenario(name) for name in names]
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    # --engine sharded is a learner selection, not an SGLConfig value: the
    # scenarios keep their per-shard embedding engines and --jobs moves
    # from the scenario pool to the shard pool.
    sharded_parts = None
    shard_jobs = 1
    suite_jobs = args.jobs
    if args.engine == "sharded":
        if args.parts < 1:
            print("error: --parts must be at least 1", file=sys.stderr)
            return 2
        sharded_parts = args.parts
        shard_jobs = args.jobs
        suite_jobs = 1
    sgl_overrides = {}
    if args.engine is not None and args.engine != "sharded":
        sgl_overrides["embedding_engine"] = args.engine
    if args.knn_backend is not None:
        sgl_overrides["knn_backend"] = args.knn_backend
    if args.refinement_backend is not None:
        sgl_overrides["refinement_backend"] = args.refinement_backend
    if args.linalg_backend is not None:
        sgl_overrides["linalg_backend"] = args.linalg_backend
    if args.refine_dtype is not None:
        sgl_overrides["refine_dtype"] = args.refine_dtype
    if sgl_overrides:
        specs = [
            dataclasses.replace(spec, sgl={**spec.sgl, **sgl_overrides})
            for spec in specs
        ]

    baselines: tuple[str, ...] = ()
    if args.baselines and args.baselines.lower() != "none":
        baselines = tuple(name.strip() for name in args.baselines.split(",") if name.strip())
        unknown = set(baselines) - set(available_baselines())
        if unknown:
            print(
                f"error: unknown baseline(s) {sorted(unknown)}; "
                f"available: {available_baselines()}",
                file=sys.stderr,
            )
            return 2

    tag = args.tag or args.suite or "custom"
    out = args.out or f"BENCH_{tag}.json"
    profile_dir = None
    if args.profile:
        out_path = Path(out)
        profile_dir = out_path.with_name(f"{out_path.stem}_profiles")

    def progress(spec, records):
        sgl = records[0]
        print(
            f"  {spec.name:28s} N={sgl.n_nodes:6d}  "
            f"sgl {sgl.mean_seconds:7.3f}s  "
            f"corr={sgl.quality.get('resistance_correlation', float('nan')):.4f}  "
            f"density={sgl.quality.get('density', float('nan')):.3f}"
        )

    print(
        f"running {len(specs)} scenario(s) "
        f"(repeats={args.repeats}, warmup={args.warmup}, "
        f"baselines={list(baselines) or 'none'}, jobs={args.jobs})"
    )
    start = time.perf_counter()
    records = run_suite(
        specs,
        warmup=args.warmup,
        repeats=args.repeats,
        baselines=baselines,
        track_memory=not args.no_memory,
        n_quality_pairs=args.quality_pairs,
        profile_dir=profile_dir,
        trace_dir=args.trace,
        jobs=suite_jobs,
        sharded_parts=sharded_parts,
        shard_jobs=shard_jobs,
        progress=progress,
    )
    elapsed = time.perf_counter() - start

    artifact = make_artifact(
        tag,
        records,
        run_config={
            "suite": args.suite,
            "scenarios": names,
            "repeats": args.repeats,
            "warmup": args.warmup,
            "baselines": list(baselines),
            "track_memory": not args.no_memory,
            "quality_pairs": args.quality_pairs,
            "embedding_engine": args.engine,
            "sharded_parts": sharded_parts,
            "knn_backend": args.knn_backend,
            "refinement_backend": args.refinement_backend,
            "linalg_backend": args.linalg_backend,
            "refine_dtype": args.refine_dtype,
            "profile": str(profile_dir) if profile_dir is not None else None,
            "trace": args.trace,
        },
    )
    path = save_artifact(artifact, out)
    print(f"wrote {len(records)} record(s) to {path} in {elapsed:.1f}s")
    if profile_dir is not None:
        print(f"cProfile dumps in {profile_dir}/ (load with `python -m pstats`)")
    if args.trace is not None:
        merged_path = _merge_suite_metrics(records, args.trace)
        print(
            f"trace artifacts in {args.trace}/ "
            f"(merged metrics: {merged_path}; "
            "inspect with `python -m repro.obs report`)"
        )
    return 0


def _merge_suite_metrics(records, trace_dir) -> Path:
    """Fold every record's per-scenario metrics snapshot into one registry.

    Scenario runs (possibly in ``--jobs`` worker processes) each carry a
    snapshot under ``info["metrics"]``; counters and histograms merge
    exactly, so the suite-level file answers "where did the whole suite's
    time go" regardless of process placement.
    """
    from repro.obs.metrics import MetricsRegistry

    suite = MetricsRegistry()
    for record in records:
        snapshot = record.info.get("metrics")
        if snapshot:
            suite.merge(snapshot)
    return suite.save(Path(trace_dir) / "suite_metrics.json")


def _cmd_serve(args) -> int:
    from repro.bench.serving import run_serve_bench

    scenarios = args.scenario or ["circuit/tiny", "circuit/medium"]
    try:
        for name in scenarios:
            registry.get_scenario(name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    load_concurrency = None
    if args.load:
        try:
            load_concurrency = [
                int(level) for level in args.concurrency.split(",") if level.strip()
            ]
            if not load_concurrency or min(load_concurrency) < 1:
                raise ValueError
        except ValueError:
            print(
                "error: --concurrency must be a comma-separated list of "
                "positive integers",
                file=sys.stderr,
            )
            return 2

    def progress(name, records):
        by_method = {record.method: record for record in records}
        naive = by_method["serve_naive"]
        batched = by_method["serve_batched"]
        service = by_method["serve_service"]
        print(
            f"  {name:28s} N={naive.n_nodes:6d}  "
            f"naive {naive.quality['qps']:8.1f} q/s  "
            f"batched {batched.quality['qps']:8.1f} q/s "
            f"({batched.info['speedup_vs_naive']:.1f}x)  "
            f"service {service.quality['qps']:8.1f} q/s "
            f"p99={service.quality['p99_ms']:.2f}ms"
        )
        for record in records:
            if record.method.startswith("serve_load_c"):
                print(
                    f"    load c={record.info['concurrency']:<5d} "
                    f"{record.quality['qps']:8.1f} q/s  "
                    f"p50={record.quality['p50_ms']:.2f}ms  "
                    f"p99={record.quality['p99_ms']:.2f}ms"
                )

    print(
        f"serve bench: {len(scenarios)} scenario(s), "
        f"{args.queries} queries, batch={args.batch_size}, "
        f"deadline={args.max_delay_ms}ms, workers={args.workers}"
    )
    start = time.perf_counter()
    records = run_serve_bench(
        scenarios,
        n_queries=args.queries,
        batch_size=args.batch_size,
        max_delay_ms=args.max_delay_ms,
        workers=args.workers,
        seed=args.seed,
        artifact_dir=args.artifact_dir,
        trace_dir=args.trace,
        load_concurrency=load_concurrency,
        progress=progress,
    )
    elapsed = time.perf_counter() - start
    out = args.out or "BENCH_serving.json"
    artifact = make_artifact(
        args.tag,
        records,
        run_config={
            "scenarios": scenarios,
            "queries": args.queries,
            "batch_size": args.batch_size,
            "max_delay_ms": args.max_delay_ms,
            "workers": args.workers,
            "seed": args.seed,
            "trace": args.trace,
            "load_concurrency": load_concurrency,
        },
    )
    path = save_artifact(artifact, out)
    print(f"wrote {len(records)} record(s) to {path} in {elapsed:.1f}s")
    if args.trace is not None:
        print(
            f"trace artifacts in {args.trace}/ "
            "(inspect with `python -m repro.obs report`)"
        )
    return 0


def _cmd_stream(args) -> int:
    from repro.bench.streaming import run_stream_bench

    scenarios = args.scenario or ["circuit/tiny", "circuit/medium"]
    try:
        for name in scenarios:
            registry.get_scenario(name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    def progress(name, records):
        by_method = {record.method: record for record in records}
        update = by_method["stream_update"]
        refit = by_method["stream_refit"]
        print(
            f"  {name:28s} N={update.n_nodes:6d}  "
            f"updates {update.info['n_incremental']}/{update.info['n_updates']} incr  "
            f"mean {1e3 * update.info['mean_update_seconds']:7.1f}ms  "
            f"refit {1e3 * update.info['refit_seconds']:7.1f}ms "
            f"({update.quality['speedup_vs_refit']:.1f}x)  "
            f"corr {update.quality['resistance_correlation']:.3f} "
            f"(refit {refit.quality['resistance_correlation']:.3f})  "
            f"v{update.info['latest_version']}"
        )

    print(
        f"stream bench: {len(scenarios)} scenario(s), "
        f"{args.batches} batches, mode={args.mode}, drift={args.drift_rate}"
    )
    start = time.perf_counter()
    records = run_stream_bench(
        scenarios,
        n_batches=args.batches,
        batch_size=args.batch_size,
        mode=args.mode,
        drift_rate=args.drift_rate,
        max_updates_between_refits=args.refit_every,
        seed=args.seed,
        registry_dir=args.registry_dir,
        trace_dir=args.trace,
        progress=progress,
    )
    elapsed = time.perf_counter() - start
    out = args.out or "BENCH_streaming.json"
    artifact = make_artifact(
        args.tag,
        records,
        run_config={
            "scenarios": scenarios,
            "batches": args.batches,
            "batch_size": args.batch_size,
            "mode": args.mode,
            "drift_rate": args.drift_rate,
            "refit_every": args.refit_every,
            "seed": args.seed,
            "trace": args.trace,
        },
    )
    path = save_artifact(artifact, out)
    print(f"wrote {len(records)} record(s) to {path} in {elapsed:.1f}s")
    if args.trace is not None:
        print(
            f"trace artifacts in {args.trace}/ "
            "(inspect with `python -m repro.obs report`)"
        )
    return 0


def _cmd_compare(args) -> int:
    try:
        baseline = load_artifact(args.baseline)
        candidate = load_artifact(args.candidate)
    except (OSError, ArtifactError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = compare(
        baseline,
        candidate,
        time_threshold=args.time_threshold,
        quality_threshold=args.quality_threshold,
    )
    print(report.format())
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "compare":
        return _cmd_compare(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
