"""Timed benchmark runner: scenarios in, structured records out.

For each :class:`~repro.bench.registry.ScenarioSpec` the runner

1. builds the ground-truth graph and simulates the measurement set (timed,
   but reported separately — setup cost is not part of the learner's time);
2. runs the SGL learner ``warmup + repeats`` times, recording wall-clock
   seconds per repeat and the per-stage counters the learner threads through
   its hot path (kNN, MST, embedding, sensitivity, selection, scaling);
   the recorded stage counters come from the fastest repeat — the
   least scheduler-contaminated measurement of a deterministic fit,
   consistent with the fastest-repeat wall statistic the gate compares;
3. optionally re-runs once under :mod:`tracemalloc` to record the peak
   traced allocation (kept out of the timed repeats — tracing skews time);
4. scores the learned graph against the ground truth (density, effective-
   resistance correlation, measured-signal smoothness);
5. repeats steps 2-4 for any requested baseline adapters.

Every record is JSON-ready (see :mod:`repro.bench.results` for the artifact
schema and the regression gate built on top of it).
"""

from __future__ import annotations

import cProfile
import re
import time
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.bench.baselines import run_baseline
from repro.bench.registry import ScenarioSpec
from repro.core.instrumentation import STAGE_NAMES, StageTimings
from repro.obs.session import ObsSession
from repro.core.sgl import SGLearner, SGLResult
from repro.graphs.graph import WeightedGraph
from repro.measurements.generator import MeasurementSet
from repro.metrics.resistance import effective_resistance_batched, sample_node_pairs
from repro.metrics.smoothness import signal_smoothness

__all__ = [
    "BenchRecord",
    "profile_path_for",
    "quality_metrics",
    "run_scenario",
    "run_suite",
]


@dataclass
class BenchRecord:
    """One (scenario, method) benchmark measurement, JSON-ready."""

    scenario: str
    method: str
    n_nodes: int
    n_edges_true: int
    n_measurements: int
    noise_level: float
    wall_seconds: list[float]
    stage_seconds: dict = field(default_factory=dict)
    quality: dict = field(default_factory=dict)
    peak_memory_bytes: int | None = None
    info: dict = field(default_factory=dict)

    @property
    def mean_seconds(self) -> float:
        """Mean wall-clock seconds across repeats."""
        return float(np.mean(self.wall_seconds)) if self.wall_seconds else 0.0

    @property
    def min_seconds(self) -> float:
        """Fastest repeat (the usual benchmarking statistic)."""
        return float(np.min(self.wall_seconds)) if self.wall_seconds else 0.0

    def as_dict(self) -> dict:
        """JSON-ready mapping (inverse of :meth:`from_dict`)."""
        return {
            "scenario": self.scenario,
            "method": self.method,
            "n_nodes": self.n_nodes,
            "n_edges_true": self.n_edges_true,
            "n_measurements": self.n_measurements,
            "noise_level": self.noise_level,
            "wall_seconds": list(self.wall_seconds),
            "stage_seconds": dict(self.stage_seconds),
            "quality": dict(self.quality),
            "peak_memory_bytes": self.peak_memory_bytes,
            "info": dict(self.info),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchRecord":
        """Rebuild a record from its :meth:`as_dict` form."""
        return cls(
            scenario=data["scenario"],
            method=data["method"],
            n_nodes=int(data["n_nodes"]),
            n_edges_true=int(data["n_edges_true"]),
            n_measurements=int(data["n_measurements"]),
            noise_level=float(data.get("noise_level", 0.0)),
            wall_seconds=[float(v) for v in data["wall_seconds"]],
            stage_seconds=dict(data.get("stage_seconds", {})),
            quality=dict(data.get("quality", {})),
            peak_memory_bytes=data.get("peak_memory_bytes"),
            info=dict(data.get("info", {})),
        )


# ----------------------------------------------------------------------
def quality_metrics(
    truth: WeightedGraph,
    learned: WeightedGraph,
    voltages: np.ndarray,
    *,
    node_map: np.ndarray | None = None,
    n_pairs: int = 120,
    seed: int = 0,
) -> dict:
    """Score a learned graph against the ground truth.

    Parameters
    ----------
    truth, learned:
        The ground-truth network and the method's output.  When ``node_map``
        is given, ``learned`` lives on a node subset and ``node_map[i]`` is
        the original id of reduced node ``i``.
    voltages:
        The measured voltage matrix (rows are original node ids).
    n_pairs, seed:
        Sampling controls for the effective-resistance comparison.

    Returns
    -------
    dict with keys ``density``, ``n_edges``, ``resistance_correlation`` and
    ``smoothness`` (mean normalised Rayleigh quotient of the measured
    voltages on the learned graph; lower = smoother).
    """
    if node_map is None:
        if learned.n_nodes != truth.n_nodes:
            raise ValueError("learned graph must share the truth's node set")
        pairs = sample_node_pairs(truth.n_nodes, n_pairs, seed=seed)
        truth_pairs = pairs
        learned_pairs = pairs
        learned_voltages = voltages
    else:
        node_map = np.asarray(node_map, dtype=np.int64)
        if learned.n_nodes != node_map.size:
            raise ValueError("node_map must have one entry per learned node")
        pairs = sample_node_pairs(learned.n_nodes, n_pairs, seed=seed)
        truth_pairs = node_map[pairs]
        learned_pairs = pairs
        learned_voltages = voltages[node_map]

    # Grouped-RHS solves (one factorisation traversal per block) — the same
    # fast path the serve layer and compare_effective_resistances use.
    truth_r = effective_resistance_batched(truth, truth_pairs)
    learned_r = effective_resistance_batched(learned, learned_pairs)
    if truth_r.size < 2 or np.std(truth_r) == 0 or np.std(learned_r) == 0:
        correlation = 1.0 if np.allclose(truth_r, learned_r) else 0.0
    else:
        correlation = float(np.corrcoef(truth_r, learned_r)[0, 1])

    smooth = float(np.mean(signal_smoothness(learned, learned_voltages)))
    return {
        "density": float(learned.density),
        "n_edges": int(learned.n_edges),
        "resistance_correlation": correlation,
        "smoothness": smooth,
    }


def _make_learner(
    spec: ScenarioSpec,
    n_nodes: int,
    *,
    sharded_parts: int | None = None,
    shard_jobs: int = 1,
):
    """The scenario's learner: serial, or partition-parallel when requested."""
    config = spec.make_config(n_nodes)
    if sharded_parts is not None:
        from repro.partition import ShardedSGLearner

        return ShardedSGLearner(config, num_parts=sharded_parts, jobs=shard_jobs)
    return SGLearner(config)


def _timed_sgl_runs(
    spec: ScenarioSpec,
    measurements: MeasurementSet,
    *,
    warmup: int,
    repeats: int,
    sharded_parts: int | None = None,
    shard_jobs: int = 1,
) -> tuple[list[float], StageTimings, SGLResult]:
    """Run the learner ``warmup + repeats`` times; time the last ``repeats``.

    The reported stage counters are those of the *fastest* repeat, matching
    the fastest-repeat wall-time statistic the regression gate uses: the
    learner is deterministic, so repeats only differ by scheduler
    interference, and the fastest repeat is the least contaminated
    measurement of each stage.
    """
    learner = _make_learner(
        spec,
        measurements.n_nodes,
        sharded_parts=sharded_parts,
        shard_jobs=shard_jobs,
    )
    for _ in range(warmup):
        learner.fit(measurements)
    wall: list[float] = []
    best_stages: StageTimings | None = None
    result: SGLResult | None = None
    for _ in range(max(repeats, 1)):
        repeat_timings = StageTimings()
        start = time.perf_counter()
        result = learner.fit(measurements, timings=repeat_timings)
        wall.append(time.perf_counter() - start)
        if wall[-1] == min(wall):
            best_stages = repeat_timings
    assert result is not None and best_stages is not None
    return wall, best_stages, result


def _peak_memory_of(fn) -> int:
    """Peak traced allocation (bytes) while running ``fn()``."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def profile_path_for(profile_dir: str | Path, scenario_name: str) -> Path:
    """The ``.prof`` dump path of one scenario inside ``profile_dir``."""
    safe = re.sub(r"[^A-Za-z0-9_.+-]", "_", scenario_name)
    return Path(profile_dir) / f"{safe}.prof"


def trace_prefix_for(scenario_name: str) -> str:
    """Artifact file prefix of one scenario's trace inside ``--trace DIR``."""
    return re.sub(r"[^A-Za-z0-9_.+-]", "_", scenario_name)


def _profile_scenario(
    spec: ScenarioSpec,
    measurements: MeasurementSet,
    profile_dir: str | Path,
    *,
    sharded_parts: int | None = None,
    shard_jobs: int = 1,
) -> Path:
    """Run one untimed learner fit under :mod:`cProfile`; dump binary stats.

    The dump lands next to the JSON artifact (``repro.bench run --profile``)
    and loads back with :mod:`pstats`::

        python -m pstats BENCH_smoke_profiles/grid_2d_tiny.prof
    """
    learner = _make_learner(
        spec,
        measurements.n_nodes,
        sharded_parts=sharded_parts,
        shard_jobs=shard_jobs,
    )
    path = profile_path_for(profile_dir, spec.name)
    path.parent.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        learner.fit(measurements)
    finally:
        profiler.disable()
    profiler.dump_stats(path)
    return path


def run_scenario(
    spec: ScenarioSpec,
    *,
    warmup: int = 0,
    repeats: int = 1,
    baselines: tuple[str, ...] | list[str] = (),
    track_memory: bool = False,
    n_quality_pairs: int = 120,
    profile_dir: str | Path | None = None,
    trace_dir: str | Path | None = None,
    sharded_parts: int | None = None,
    shard_jobs: int = 1,
) -> list[BenchRecord]:
    """Benchmark one scenario: the SGL learner plus any requested baselines.

    With ``sharded_parts`` set, the learner is the partition-parallel
    :class:`~repro.partition.ShardedSGLearner` over that many shards
    (``shard_jobs`` workers fit shards concurrently); the record's
    ``info.engine`` is ``"sharded"`` and partition/stitch statistics ride
    along under ``info``.

    Returns one :class:`BenchRecord` per method (skipped baselines produce a
    record with empty ``wall_seconds`` and the skip reason under
    ``info["skipped"]``).  With ``profile_dir`` set, one extra untimed
    learner fit runs under :mod:`cProfile` and its binary stats are dumped
    to ``<profile_dir>/<scenario>.prof`` (recorded under
    ``info["profile"]``).  With ``trace_dir`` set, the timed learner runs
    execute under an ambient :class:`~repro.obs.Tracer`: the hierarchical
    trace, metrics and resource samples land in
    ``<trace_dir>/<scenario>.jsonl`` (+ siblings), the trace path under
    ``info["trace"]`` and the metrics snapshot under ``info["metrics"]``.
    """
    setup_start = time.perf_counter()
    truth = spec.build_graph()
    graph_seconds = time.perf_counter() - setup_start
    measurements = spec.build_measurements(truth)
    setup_seconds = time.perf_counter() - setup_start

    obs = ObsSession() if trace_dir is not None else None
    if obs is not None:
        with obs:
            with obs.tracer.span(
                "scenario", scenario=spec.name, repeats=max(repeats, 1), warmup=warmup
            ):
                wall, stage_totals, result = _timed_sgl_runs(
                    spec,
                    measurements,
                    warmup=warmup,
                    repeats=repeats,
                    sharded_parts=sharded_parts,
                    shard_jobs=shard_jobs,
                )
        # Per-call stage durations feed the fit.<stage>_ms histograms, so a
        # merged suite metrics file keeps per-stage latency distributions.
        for span in obs.tracer.spans():
            if span.name in STAGE_NAMES:
                obs.metrics.histogram(f"fit.{span.name}_ms").observe(
                    1e3 * span.duration
                )
        obs.metrics.counter("fit.runs").inc(max(repeats, 1))
        trace_paths = obs.save(trace_dir, prefix=trace_prefix_for(spec.name))
    else:
        wall, stage_totals, result = _timed_sgl_runs(
            spec,
            measurements,
            warmup=warmup,
            repeats=repeats,
            sharded_parts=sharded_parts,
            shard_jobs=shard_jobs,
        )
        trace_paths = None
    quality = quality_metrics(
        truth,
        result.graph,
        measurements.voltages,
        n_pairs=n_quality_pairs,
        seed=spec.seed,
    )
    peak_memory = None
    if track_memory:
        learner = _make_learner(
            spec,
            measurements.n_nodes,
            sharded_parts=sharded_parts,
            shard_jobs=shard_jobs,
        )
        peak_memory = _peak_memory_of(lambda: learner.fit(measurements))
    profile_file = None
    if profile_dir is not None:
        profile_file = str(
            _profile_scenario(
                spec,
                measurements,
                profile_dir,
                sharded_parts=sharded_parts,
                shard_jobs=shard_jobs,
            )
        )

    engine_stats = result.engine_stats or {}
    sharded_info = {}
    if sharded_parts is not None:
        sharded_info = {
            "engine": "sharded",
            "sharded_parts": sharded_parts,
            "shard_jobs": shard_jobs,
            "partition": result.partition.as_dict(),
            "stitch_stats": result.stitch_stats,
        }
    records = [
        BenchRecord(
            scenario=spec.name,
            method="sgl",
            n_nodes=truth.n_nodes,
            n_edges_true=truth.n_edges,
            n_measurements=spec.n_measurements,
            noise_level=spec.noise_level,
            wall_seconds=wall,
            stage_seconds=stage_totals.as_dict(),
            quality=quality,
            peak_memory_bytes=peak_memory,
            info={
                "converged": result.converged,
                "n_iterations": result.n_iterations,
                "scaling_factor": result.scaling_factor,
                "graph_build_seconds": graph_seconds,
                "setup_seconds": setup_seconds,
                "warmup": warmup,
                "repeats": repeats,
                "embedding_engine": result.config.embedding_engine,
                "knn_backend": result.config.knn_backend,
                "refinement_backend": result.config.refinement_backend,
                "engine_stats": result.engine_stats,
                # One number for "how often did the fast path bail": dense
                # fallbacks (incremental engine) + churn rebuilds + rejected
                # mixed-precision refinement levels (multilevel).
                "engine_fallbacks": int(engine_stats.get("fallbacks", 0) or 0)
                + int(engine_stats.get("churn_rebuilds", 0) or 0)
                + int(engine_stats.get("chebyshev_fallbacks", 0) or 0),
                "profile": profile_file,
                "trace": (
                    str(trace_paths["trace"]) if trace_paths is not None else None
                ),
                "metrics": (
                    obs.metrics.snapshot() if obs is not None else None
                ),
                **sharded_info,
            },
        )
    ]

    for name in baselines:
        outcome = run_baseline(name, truth, measurements, seed=spec.seed)
        if not outcome.ok:
            records.append(
                BenchRecord(
                    scenario=spec.name,
                    method=name,
                    n_nodes=truth.n_nodes,
                    n_edges_true=truth.n_edges,
                    n_measurements=spec.n_measurements,
                    noise_level=spec.noise_level,
                    wall_seconds=[],
                    info={"skipped": outcome.skipped},
                )
            )
            continue
        baseline_quality = quality_metrics(
            truth,
            outcome.graph,
            measurements.voltages,
            node_map=outcome.node_map,
            n_pairs=n_quality_pairs,
            seed=spec.seed,
        )
        records.append(
            BenchRecord(
                scenario=spec.name,
                method=name,
                n_nodes=truth.n_nodes,
                n_edges_true=truth.n_edges,
                n_measurements=spec.n_measurements,
                noise_level=spec.noise_level,
                wall_seconds=[outcome.seconds],
                quality=baseline_quality,
                info=dict(outcome.info),
            )
        )
    return records


def run_suite(
    specs,
    *,
    warmup: int = 0,
    repeats: int = 1,
    baselines: tuple[str, ...] | list[str] = (),
    track_memory: bool = False,
    n_quality_pairs: int = 120,
    profile_dir: str | Path | None = None,
    trace_dir: str | Path | None = None,
    jobs: int = 1,
    sharded_parts: int | None = None,
    shard_jobs: int = 1,
    progress=None,
) -> list[BenchRecord]:
    """Run a sequence of scenarios; ``progress`` is an optional callable
    invoked as ``progress(spec, records)`` after each scenario finishes.

    With ``jobs > 1`` independent scenarios run in a process pool
    (scenarios never share state — every spec rebuilds its graph and
    measurements from seeds).  The records are reassembled in spec order
    regardless of completion order, so record ordering and every
    deterministic field (learned graphs, quality metrics, iteration
    counts) are identical to a serial run; only the ``progress`` callbacks
    may fire out of order.  *Measured* fields (``wall_seconds``, peak
    memory) are never run-reproducible, and co-scheduled scenarios contend
    for cores — use ``jobs`` for quality sweeps and coverage runs, not for
    publishing timing baselines.
    """
    specs = list(specs)
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    kwargs = dict(
        warmup=warmup,
        repeats=repeats,
        baselines=tuple(baselines),
        track_memory=track_memory,
        n_quality_pairs=n_quality_pairs,
        profile_dir=profile_dir,
        trace_dir=trace_dir,
        sharded_parts=sharded_parts,
        shard_jobs=shard_jobs,
    )
    if jobs == 1 or len(specs) <= 1:
        all_records: list[BenchRecord] = []
        for spec in specs:
            records = run_scenario(spec, **kwargs)
            all_records.extend(records)
            if progress is not None:
                progress(spec, records)
        return all_records

    from concurrent.futures import ProcessPoolExecutor, as_completed

    ordered: list[list[BenchRecord] | None] = [None] * len(specs)
    with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
        futures = {
            pool.submit(run_scenario, spec, **kwargs): idx
            for idx, spec in enumerate(specs)
        }
        for future in as_completed(futures):
            idx = futures[future]
            ordered[idx] = future.result()
            if progress is not None:
                progress(specs[idx], ordered[idx])
    return [record for records in ordered for record in records]
