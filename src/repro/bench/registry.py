"""Declarative scenario registry for the benchmark harness.

A *scenario* is a fully specified, seeded, reproducible benchmark input: a
graph family (one of the generators shipped with the library) crossed with a
scale tier, a measurement count and a noise level.  Scenarios are named
``family/tier`` with optional variant suffixes (``+noise0.05``, ``+m25``) and
grouped into *suites*:

``smoke``
    Tiny instances of every family; the whole suite (learner + one baseline)
    finishes in well under two minutes and is run in CI on every PR.
``full``
    Small-tier instances plus noise and sample-count variants — the default
    quality/performance tracking suite.
``scaling``
    One structured and one irregular family swept across tiers, reproducing
    the runtime-scalability axis of the paper's Fig. 11.
``paper``
    The paper's five structural classes at the paper's node counts
    (10k-150k nodes; Table of Sec. III-A).  Long-running and therefore
    opt-in: it is only executed via ``repro.bench run --suite paper``.
``huge``
    Million-node instances (grid / circuit / geometric) beyond the paper's
    scale, intended for the partition-parallel engine
    (``repro.bench run --suite huge --engine sharded --parts N``), plus a
    ~100k-node smoke variant the CI sharded job runs.  Opt-in like
    ``paper``.

The registry is *declarative*: a :class:`ScenarioSpec` stores only JSON-ready
builder parameters, never live graph objects, so specs can be embedded in
benchmark artifacts and rebuilt bit-identically later (see DESIGN.md,
"benchmark harness").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.config import SGLConfig
from repro.graphs.graph import WeightedGraph
from repro.graphs.generators import (
    airfoil_mesh,
    circuit_grid,
    cracked_plate_mesh,
    erdos_renyi_graph,
    fe_mesh,
    grid_2d,
    grid_3d,
    random_geometric_graph,
    watts_strogatz_graph,
)
from repro.knn.knn_graph import knn_graph
from repro.measurements.generator import MeasurementSet, simulate_measurements
from repro.measurements.noise import add_measurement_noise

__all__ = [
    "ScenarioSpec",
    "FAMILIES",
    "get_scenario",
    "iter_suite",
    "list_scenarios",
    "list_suites",
    "register_scenario",
]


def _knn_point_cloud(
    n_points: int,
    *,
    n_clusters: int = 4,
    dim: int = 3,
    k: int = 6,
    seed: int = 0,
) -> WeightedGraph:
    """kNN graph over a Gaussian-mixture point cloud (the "kNN cloud" family)."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-4.0, 4.0, size=(n_clusters, dim))
    assignment = rng.integers(0, n_clusters, size=n_points)
    points = centers[assignment] + rng.standard_normal((n_points, dim))
    return knn_graph(points, k, weight_scheme="gaussian", ensure_connected=True)


#: Graph families available to scenarios: name -> builder(**params).
FAMILIES: dict[str, Callable[..., WeightedGraph]] = {
    "grid_2d": grid_2d,
    "grid_3d": grid_3d,
    "circuit": circuit_grid,
    "airfoil": airfoil_mesh,
    "crack": cracked_plate_mesh,
    "fem": fe_mesh,
    "erdos_renyi": erdos_renyi_graph,
    "watts_strogatz": watts_strogatz_graph,
    "geometric": random_geometric_graph,
    "knn_cloud": _knn_point_cloud,
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, seeded, reproducible benchmark scenario.

    Attributes
    ----------
    name:
        Unique registry key, e.g. ``"grid_2d/tiny"`` or
        ``"airfoil/small+noise0.05"``.
    family:
        Key into :data:`FAMILIES` selecting the graph builder.
    tier:
        Scale tier label (``tiny`` / ``small`` / ``medium`` / ``paper`` /
        ``huge``; see DESIGN.md).
    params:
        Keyword arguments for the family builder (JSON-ready scalars only).
    n_measurements:
        Number of simulated (voltage, current) measurement pairs.
    noise_level:
        Multiplicative voltage-noise level ``zeta`` (0 = noiseless).
    seed:
        Master seed for measurement simulation (noise uses ``seed + 1``).
    sgl:
        :class:`~repro.core.SGLConfig` field overrides.  When ``beta`` is
        absent it defaults to ``10 / N`` (the same per-iteration edge budget
        rationale as :func:`repro.experiments.default_workload`).
    description:
        One-line human description shown by ``repro.bench list``.
    """

    name: str
    family: str
    tier: str
    params: dict = field(default_factory=dict)
    n_measurements: int = 50
    noise_level: float = 0.0
    seed: int = 0
    sgl: dict = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise KeyError(
                f"unknown graph family {self.family!r}; available: {sorted(FAMILIES)}"
            )
        if self.n_measurements < 1:
            raise ValueError("n_measurements must be at least 1")
        if self.noise_level < 0:
            raise ValueError("noise_level must be non-negative")

    # ------------------------------------------------------------------
    def build_graph(self) -> WeightedGraph:
        """Build the scenario's ground-truth graph (deterministic)."""
        return FAMILIES[self.family](**self.params)

    def build_measurements(self, graph: WeightedGraph | None = None) -> MeasurementSet:
        """Simulate the scenario's measurement set (deterministic)."""
        if graph is None:
            graph = self.build_graph()
        data = simulate_measurements(graph, self.n_measurements, seed=self.seed)
        if self.noise_level > 0:
            data = add_measurement_noise(data, self.noise_level, seed=self.seed + 1)
        return data

    def make_config(self, n_nodes: int) -> SGLConfig:
        """The scenario's SGL configuration (``beta`` defaults to ``10/N``)."""
        overrides = dict(self.sgl)
        if "beta" not in overrides:
            overrides["beta"] = min(1.0, max(1e-3, 10.0 / max(n_nodes, 1)))
        return SGLConfig(**overrides)

    def as_dict(self) -> dict:
        """JSON-ready description embedded in benchmark artifacts."""
        return {
            "name": self.name,
            "family": self.family,
            "tier": self.tier,
            "params": dict(self.params),
            "n_measurements": self.n_measurements,
            "noise_level": self.noise_level,
            "seed": self.seed,
            "sgl": dict(self.sgl),
        }


# ----------------------------------------------------------------------
# Default registry
# ----------------------------------------------------------------------
#: Builder parameters per family and tier (approximate node counts:
#: tiny ~200-350, small ~1.6k-2.5k, medium ~4k-6.5k, paper = the node
#: counts of the paper's five test cases, 10k-150k).
_TIER_PARAMS: dict[str, dict[str, dict]] = {
    "grid_2d": {
        "tiny": {"n_rows": 15},
        "small": {"n_rows": 40},
        "medium": {"n_rows": 70},
        "paper": {"n_rows": 100},
        "huge": {"n_rows": 1024},
    },
    "grid_3d": {
        "tiny": {"nx": 7, "ny": 7, "nz": 5},
        "small": {"nx": 13, "ny": 13, "nz": 10},
        "medium": {"nx": 18, "ny": 18, "nz": 13},
    },
    "circuit": {
        "tiny": {"n_rows": 16, "seed": 4},
        "small": {"n_rows": 40, "seed": 4},
        "medium": {"n_rows": 70, "seed": 4},
        "paper": {"n_rows": 388, "seed": 4},
        "huge": {"n_rows": 1024, "seed": 4},
    },
    "airfoil": {
        "tiny": {"n_points": 260, "seed": 1},
        "small": {"n_points": 1500, "seed": 1},
        "medium": {"n_points": 3000, "seed": 1},
        "paper": {"n_points": 4253, "seed": 1},
    },
    "crack": {
        "tiny": {"n_points": 260, "seed": 2},
        "small": {"n_points": 1600, "seed": 2},
        "medium": {"n_points": 4000, "seed": 2},
        "paper": {"n_points": 10240, "seed": 2},
    },
    "fem": {
        "tiny": {"n_points": 260, "seed": 3},
        "small": {"n_points": 1600, "seed": 3},
        "medium": {"n_points": 4000, "seed": 3},
        "paper": {"n_points": 11143, "seed": 3},
    },
    "erdos_renyi": {
        "tiny": {"n_nodes": 250, "edge_probability": 0.02, "seed": 5},
        "small": {"n_nodes": 1600, "edge_probability": 0.004, "seed": 5},
        "medium": {"n_nodes": 4000, "edge_probability": 0.0016, "seed": 5},
    },
    "watts_strogatz": {
        "tiny": {"n_nodes": 250, "k": 4, "rewire_probability": 0.1, "seed": 6},
        "small": {"n_nodes": 1600, "k": 4, "rewire_probability": 0.1, "seed": 6},
        "medium": {"n_nodes": 4000, "k": 4, "rewire_probability": 0.1, "seed": 6},
    },
    "geometric": {
        "tiny": {"n_nodes": 250, "seed": 7},
        "small": {"n_nodes": 1600, "seed": 7},
        "medium": {"n_nodes": 4000, "seed": 7},
        "huge": {"n_nodes": 1_000_000, "radius": 0.0024, "seed": 7},
    },
    "knn_cloud": {
        "tiny": {"n_points": 250, "seed": 8},
        "small": {"n_points": 1600, "seed": 8},
        "medium": {"n_points": 4000, "seed": 8},
    },
}

_FAMILY_BLURB = {
    "grid_2d": "regular 2-D grid mesh (paper '2D mesh')",
    "grid_3d": "3-D grid mesh (3-D power-delivery network)",
    "circuit": "irregular circuit grid (paper 'G2_circuit' analogue)",
    "airfoil": "airfoil FEM triangulation analogue",
    "crack": "cracked-plate FEM triangulation analogue",
    "fem": "graded FEM triangulation analogue",
    "erdos_renyi": "connected Erdos-Renyi random graph",
    "watts_strogatz": "Watts-Strogatz small-world graph",
    "geometric": "random geometric graph in the unit square",
    "knn_cloud": "kNN graph over a Gaussian-mixture point cloud",
}

_REGISTRY: dict[str, ScenarioSpec] = {}
_SUITES: dict[str, list[str]] = {}


def register_scenario(
    spec: ScenarioSpec,
    *,
    suites: tuple[str, ...] | list[str] = (),
    overwrite: bool = False,
) -> ScenarioSpec:
    """Add a scenario to the registry (and optionally to suites)."""
    if spec.name in _REGISTRY and not overwrite:
        raise KeyError(f"scenario {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    for suite in suites:
        members = _SUITES.setdefault(suite, [])
        if spec.name not in members:
            members.append(spec.name)
    return spec


def _populate_default_registry() -> None:
    smoke_families = (
        "grid_2d",
        "grid_3d",
        "circuit",
        "airfoil",
        "erdos_renyi",
        "knn_cloud",
    )
    # Million-node scenarios need a bounded workload: few measurements, the
    # multilevel engine, a handful of densification rounds.  The per-shard
    # fits of the sharded engine inherit these too.
    huge_sgl = {
        "embedding_engine": "multilevel",
        "r": 6,
        "max_iterations": 4,
        "beta": 2e-3,
    }
    for family, tiers in _TIER_PARAMS.items():
        for tier, params in tiers.items():
            suites = []
            if tier == "tiny" and family in smoke_families:
                suites.append("smoke")
            if tier == "small":
                suites.append("full")
            if family in ("grid_2d", "circuit") and tier not in ("paper", "huge"):
                suites.append("scaling")
            if tier == "paper":
                # Opt-in long-running suite at the paper's node counts.
                suites.append("paper")
            if tier == "huge":
                suites.append("huge")
            register_scenario(
                ScenarioSpec(
                    name=f"{family}/{tier}",
                    family=family,
                    tier=tier,
                    params=params,
                    n_measurements=8 if tier == "huge" else 50,
                    sgl=dict(huge_sgl) if tier == "huge" else {},
                    description=f"{_FAMILY_BLURB[family]}, {tier} tier",
                ),
                suites=suites,
            )

    # Variant scenarios: measurement noise and reduced sample counts.
    register_scenario(
        ScenarioSpec(
            name="grid_2d/tiny+noise0.05",
            family="grid_2d",
            tier="tiny",
            params=_TIER_PARAMS["grid_2d"]["tiny"],
            noise_level=0.05,
            description="tiny 2-D grid with 5% multiplicative voltage noise",
        ),
        suites=("smoke",),
    )
    register_scenario(
        ScenarioSpec(
            name="grid_2d/small+noise0.05",
            family="grid_2d",
            tier="small",
            params=_TIER_PARAMS["grid_2d"]["small"],
            noise_level=0.05,
            description="small 2-D grid with 5% multiplicative voltage noise",
        ),
        suites=("full",),
    )
    register_scenario(
        ScenarioSpec(
            name="grid_2d/huge+smoke100k",
            family="grid_2d",
            tier="huge",
            params={"n_rows": 316},
            n_measurements=12,
            sgl=dict(huge_sgl),
            description="~100k-node 2-D grid: the CI-sized sharded-engine smoke",
        ),
        suites=("huge",),
    )
    register_scenario(
        ScenarioSpec(
            name="grid_2d/small+m25",
            family="grid_2d",
            tier="small",
            params=_TIER_PARAMS["grid_2d"]["small"],
            n_measurements=25,
            description="small 2-D grid learned from only 25 measurements",
        ),
        suites=("full",),
    )


_populate_default_registry()


# ----------------------------------------------------------------------
# Lookup API
# ----------------------------------------------------------------------
def list_scenarios(suite: str | None = None) -> list[str]:
    """Registered scenario names, optionally restricted to one suite."""
    if suite is None:
        return sorted(_REGISTRY)
    if suite not in _SUITES:
        raise KeyError(f"unknown suite {suite!r}; available: {list_suites()}")
    return list(_SUITES[suite])


def list_suites() -> list[str]:
    """Names of the registered suites."""
    return sorted(_SUITES)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; see `python -m repro.bench list`"
        ) from None


def iter_suite(suite: str) -> list[ScenarioSpec]:
    """The specs of one suite, in registration order."""
    return [_REGISTRY[name] for name in list_scenarios(suite)]
