"""Versioned JSON benchmark artifacts and the regression gate.

Artifact layout (``BENCH_<tag>.json``, schema v1)::

    {
      "schema": "repro.bench",
      "schema_version": 1,
      "tag": "smoke",
      "created_at": "2026-07-30T12:00:00+00:00",
      "environment": {"python": ..., "numpy": ..., "scipy": ..., "platform": ...},
      "run_config": {"warmup": 0, "repeats": 1, ...},
      "results": [ <BenchRecord.as_dict()>, ... ]
    }

:func:`compare` diffs two artifacts record-by-record (keyed on
``(scenario, method)``) and flags

* *time regressions*: the fastest repeat's wall-clock slowed down by more
  than ``time_threshold`` (relative, default 20 % — so an injected 25 %
  slowdown fails the gate; the fastest repeat is used because the mean is
  dominated by scheduler interference on busy machines);
* *stage regressions*: any individual pipeline stage's accumulated seconds
  slowed down by more than ``time_threshold`` — total wall time can hide a
  stage-level regression offset by a win elsewhere;
* *quality regressions*: effective-resistance correlation dropped by more
  than ``quality_threshold`` (absolute), or learned density grew by more
  than ``time_threshold`` (relative).

Records present on only one side are reported as notes, not failures, so
adding scenarios never breaks the gate; so is engine-provenance drift (a
changed ``resistance_engine`` / ``embedding_engine`` or a moved
``engine_fallbacks`` count in a record's ``info`` block).  Few-millisecond
timings are exempt
from the time gate (``min_seconds``) — they are dominated by timer noise.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from repro.bench.runner import BenchRecord

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "ArtifactError",
    "ComparisonReport",
    "Regression",
    "compare",
    "environment_info",
    "load_artifact",
    "make_artifact",
    "save_artifact",
    "validate_artifact",
]

SCHEMA_NAME = "repro.bench"
SCHEMA_VERSION = 1


class ArtifactError(ValueError):
    """A benchmark artifact does not conform to the schema."""


def environment_info() -> dict:
    """Interpreter / library / platform provenance embedded in artifacts."""
    import numpy
    import scipy

    return {
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def make_artifact(
    tag: str,
    records: list[BenchRecord] | list[dict],
    *,
    run_config: dict | None = None,
) -> dict:
    """Assemble a schema-v1 artifact from benchmark records."""
    results = [
        record.as_dict() if isinstance(record, BenchRecord) else dict(record)
        for record in records
    ]
    artifact = {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "tag": tag,
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "environment": environment_info(),
        "run_config": dict(run_config or {}),
        "results": results,
    }
    validate_artifact(artifact)
    return artifact


def validate_artifact(artifact: object) -> dict:
    """Check an artifact against schema v1; return it on success.

    Raises
    ------
    ArtifactError
        On any structural violation, with a message naming the offending
        field.
    """
    if not isinstance(artifact, dict):
        raise ArtifactError("artifact must be a JSON object")
    if artifact.get("schema") != SCHEMA_NAME:
        raise ArtifactError(
            f"schema must be {SCHEMA_NAME!r}, got {artifact.get('schema')!r}"
        )
    if artifact.get("schema_version") != SCHEMA_VERSION:
        raise ArtifactError(
            f"unsupported schema_version {artifact.get('schema_version')!r} "
            f"(this reader supports {SCHEMA_VERSION})"
        )
    for key, kind in (
        ("tag", str),
        ("created_at", str),
        ("environment", dict),
        ("run_config", dict),
        ("results", list),
    ):
        if not isinstance(artifact.get(key), kind):
            raise ArtifactError(f"artifact[{key!r}] must be a {kind.__name__}")
    for idx, record in enumerate(artifact["results"]):
        where = f"results[{idx}]"
        if not isinstance(record, dict):
            raise ArtifactError(f"{where} must be an object")
        for key, kind in (
            ("scenario", str),
            ("method", str),
            ("n_nodes", int),
            ("n_edges_true", int),
            ("n_measurements", int),
            ("wall_seconds", list),
            ("stage_seconds", dict),
            ("quality", dict),
            ("info", dict),
        ):
            if not isinstance(record.get(key), kind):
                raise ArtifactError(f"{where}[{key!r}] must be a {kind.__name__}")
        if record["n_nodes"] <= 0:
            raise ArtifactError(f"{where}['n_nodes'] must be positive")
        for value in record["wall_seconds"]:
            if not isinstance(value, (int, float)) or value < 0:
                raise ArtifactError(f"{where}['wall_seconds'] entries must be >= 0")
        for name, value in record["quality"].items():
            if not isinstance(value, (int, float)):
                raise ArtifactError(f"{where}['quality'][{name!r}] must be a number")
        for name, stat in record["stage_seconds"].items():
            if not isinstance(stat, dict) or "seconds" not in stat:
                raise ArtifactError(
                    f"{where}['stage_seconds'][{name!r}] must be "
                    "{'seconds': ..., 'calls': ...}"
                )
    return artifact


def save_artifact(artifact: dict, path: str | Path) -> Path:
    """Validate and write an artifact to ``path`` (pretty-printed JSON)."""
    validate_artifact(artifact)
    path = Path(path)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=False) + "\n")
    return path


def load_artifact(path: str | Path) -> dict:
    """Read and validate an artifact from disk."""
    path = Path(path)
    try:
        artifact = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: not valid JSON ({exc})") from exc
    return validate_artifact(artifact)


# ----------------------------------------------------------------------
# Regression gating
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Regression:
    """One flagged regression between two artifacts."""

    scenario: str
    method: str
    kind: str  # "time" | "stage" | "quality" | "density"
    baseline: float
    candidate: float
    message: str


@dataclass
class ComparisonReport:
    """Outcome of :func:`compare`: regressions fail the gate, notes do not."""

    regressions: list[Regression] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    n_compared: int = 0

    @property
    def ok(self) -> bool:
        """True when no regression was flagged."""
        return not self.regressions

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"compared {self.n_compared} (scenario, method) records: "
            + ("OK" if self.ok else f"{len(self.regressions)} regression(s)")
        ]
        for reg in self.regressions:
            lines.append(f"  REGRESSION [{reg.kind}] {reg.scenario} ({reg.method}): {reg.message}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def compare(
    baseline: dict,
    candidate: dict,
    *,
    time_threshold: float = 0.20,
    quality_threshold: float = 0.05,
    min_seconds: float = 1e-2,
) -> ComparisonReport:
    """Diff two artifacts and flag regressions beyond the thresholds.

    Parameters
    ----------
    baseline, candidate:
        Validated artifacts (see :func:`load_artifact`); ``candidate`` is the
        run under test, ``baseline`` the reference it must not regress from.
    time_threshold:
        Maximum tolerated relative slowdown of the *fastest repeat* wall
        time (0.20 = 20 %) — the fastest repeat is far less sensitive to
        scheduler interference than the mean.  Also used as the relative
        bound on density growth.
    quality_threshold:
        Maximum tolerated absolute drop in ``resistance_correlation``.
    min_seconds:
        Records whose baseline wall time is below this are exempt from the
        time gate (timer noise dominates few-millisecond records).
    """
    validate_artifact(baseline)
    validate_artifact(candidate)
    report = ComparisonReport()

    base_index = {(r["scenario"], r["method"]): r for r in baseline["results"]}
    cand_index = {(r["scenario"], r["method"]): r for r in candidate["results"]}

    for key in sorted(base_index.keys() - cand_index.keys()):
        report.notes.append(f"{key[0]} ({key[1]}): missing from candidate")
    for key in sorted(cand_index.keys() - base_index.keys()):
        report.notes.append(f"{key[0]} ({key[1]}): new in candidate")

    for key in sorted(base_index.keys() & cand_index.keys()):
        scenario, method = key
        base, cand = base_index[key], cand_index[key]
        report.n_compared += 1

        base_time = min(base["wall_seconds"], default=0.0)
        cand_time = min(cand["wall_seconds"], default=0.0)
        if base_time >= min_seconds and cand_time > base_time * (1.0 + time_threshold):
            slowdown = cand_time / base_time - 1.0
            report.regressions.append(
                Regression(
                    scenario=scenario,
                    method=method,
                    kind="time",
                    baseline=base_time,
                    candidate=cand_time,
                    message=(
                        f"fastest wall time {base_time:.4f}s -> {cand_time:.4f}s "
                        f"(+{slowdown:.0%}, threshold {time_threshold:.0%})"
                    ),
                )
            )

        # Per-stage gate: total wall time can hide a stage-level regression
        # offset by a win elsewhere (e.g. refine 2x slower behind a faster
        # sensitivity pass), so every stage shared by both records is gated
        # with the same relative threshold.  Stages present on only one
        # side are a note — pipelines are allowed to add or drop stages.
        base_stages = base.get("stage_seconds", {})
        cand_stages = cand.get("stage_seconds", {})
        for stage in sorted(base_stages.keys() - cand_stages.keys()):
            report.notes.append(f"{scenario} ({method}): stage {stage!r} missing from candidate")
        for stage in sorted(cand_stages.keys() - base_stages.keys()):
            report.notes.append(f"{scenario} ({method}): stage {stage!r} new in candidate")
        for stage in sorted(base_stages.keys() & cand_stages.keys()):
            base_stage = float(base_stages[stage].get("seconds", 0.0))
            cand_stage = float(cand_stages[stage].get("seconds", 0.0))
            if base_stage >= min_seconds and cand_stage > base_stage * (1.0 + time_threshold):
                slowdown = cand_stage / base_stage - 1.0
                report.regressions.append(
                    Regression(
                        scenario=scenario,
                        method=method,
                        kind="stage",
                        baseline=base_stage,
                        candidate=cand_stage,
                        message=(
                            f"stage {stage!r} {base_stage:.4f}s -> {cand_stage:.4f}s "
                            f"(+{slowdown:.0%}, threshold {time_threshold:.0%})"
                        ),
                    )
                )

        base_corr = base["quality"].get("resistance_correlation")
        cand_corr = cand["quality"].get("resistance_correlation")
        if base_corr is not None and cand_corr is not None:
            if cand_corr < base_corr - quality_threshold:
                report.regressions.append(
                    Regression(
                        scenario=scenario,
                        method=method,
                        kind="quality",
                        baseline=base_corr,
                        candidate=cand_corr,
                        message=(
                            f"resistance correlation {base_corr:.4f} -> {cand_corr:.4f} "
                            f"(drop > {quality_threshold})"
                        ),
                    )
                )

        # Provenance drift is worth a note even when the numbers pass: a
        # changed resistance engine or a warm path that started falling
        # back explains timing shifts the thresholds might just absorb.
        for info_key, label in (
            ("resistance_engine", "resistance engine"),
            ("engine_fallbacks", "engine fallbacks"),
            ("embedding_engine", "embedding engine"),
        ):
            base_val = base.get("info", {}).get(info_key)
            cand_val = cand.get("info", {}).get(info_key)
            if info_key == "engine_fallbacks":
                # Pre-PR 6 artifacts never recorded fallback counts; an
                # absent value means "none observed", not a provenance
                # change — treat it as zero on either side.
                base_val = int(base_val or 0)
                cand_val = int(cand_val or 0)
            if base_val is not None and cand_val is not None and base_val != cand_val:
                report.notes.append(
                    f"{scenario} ({method}): {label} changed "
                    f"{base_val!r} -> {cand_val!r}"
                )

        base_density = base["quality"].get("density")
        cand_density = cand["quality"].get("density")
        if base_density is not None and cand_density is not None and base_density > 0:
            if cand_density > base_density * (1.0 + time_threshold):
                report.regressions.append(
                    Regression(
                        scenario=scenario,
                        method=method,
                        kind="density",
                        baseline=base_density,
                        candidate=cand_density,
                        message=(
                            f"learned density {base_density:.3f} -> {cand_density:.3f} "
                            f"(grew > {time_threshold:.0%})"
                        ),
                    )
                )
    return report
