"""Spectral graph drawing (paper Sec. III-A visualisation, Koren [6]).

The paper draws every graph by placing node ``i`` at coordinates
``(u_2[i], u_3[i])`` -- the entries of the first two nontrivial Laplacian
eigenvectors -- and colours nodes by spectral cluster.  :func:`spectral_layout`
reproduces those coordinates so the learned and original graphs can be
compared visually (or programmatically via layout correlation in tests).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.linalg.eigen import laplacian_eigenpairs

__all__ = ["spectral_layout"]


def spectral_layout(
    graph: WeightedGraph,
    *,
    dimensions: int = 2,
    method: str = "auto",
    seed: int | None = 0,
) -> np.ndarray:
    """Node coordinates from the first nontrivial Laplacian eigenvectors.

    Parameters
    ----------
    graph:
        Connected graph to draw.
    dimensions:
        Number of coordinates per node; 2 (``u_2``, ``u_3``) matches the
        paper's figures.
    method:
        Eigensolver backend forwarded to
        :func:`repro.linalg.laplacian_eigenpairs`.

    Returns
    -------
    numpy.ndarray
        ``(N, dimensions)`` array of node coordinates.

    Examples
    --------
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.embedding import spectral_layout
    >>> spectral_layout(grid_2d(5, 5)).shape
    (25, 2)
    """
    if dimensions < 1:
        raise ValueError("dimensions must be at least 1")
    k = min(dimensions, graph.n_nodes - 1)
    _, vectors = laplacian_eigenpairs(graph, k, method=method, seed=seed)
    coords = vectors[:, :dimensions]
    if coords.shape[1] < dimensions:
        pad = np.zeros((graph.n_nodes, dimensions - coords.shape[1]))
        coords = np.hstack([coords, pad])
    return coords
