"""Spectral embedding of graph nodes (paper Eq. 12).

The embedding matrix used by SGL is

    U_r = [ u_2 / sqrt(lambda_2 + 1/sigma^2), ..., u_r / sqrt(lambda_r + 1/sigma^2) ],

whose rows place each node in an (r-1)-dimensional space where squared
Euclidean distances approximate effective resistances (exactly so when
``sigma^2 -> inf`` and ``r -> N``).  :class:`SpectralEmbedding` wraps the
eigenpairs, the scaled subspace matrix and the node-pair distance queries the
sensitivity computation needs.

:func:`spectral_embedding_matrix` is the *stateless* entry point: every call
solves the eigenproblem from scratch.  The SGL densification loop, which
re-embeds an only-slightly-changed graph every iteration, uses the stateful
warm-started :class:`~repro.embedding.engine.EmbeddingEngine` instead and
only falls back to this function for cold solves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.linalg.eigen import laplacian_eigenpairs
from repro.linalg.multilevel import MultilevelEigensolver

__all__ = ["SpectralEmbedding", "embedding_from_eigenpairs", "spectral_embedding_matrix"]


@dataclass(frozen=True)
class SpectralEmbedding:
    """Scaled spectral embedding of a graph.

    Attributes
    ----------
    eigenvalues:
        The nontrivial eigenvalues ``lambda_2 <= ... <= lambda_r`` used.
    eigenvectors:
        The matching unit eigenvectors as columns, shape ``(N, r-1)``.
    coordinates:
        The rows of ``U_r`` (Eq. 12): eigenvectors scaled by
        ``1/sqrt(lambda_i + 1/sigma^2)``, shape ``(N, r-1)``.
    sigma_sq:
        The prior variance used for the scaling (``inf`` by default).

    Examples
    --------
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.embedding import spectral_embedding_matrix
    >>> emb = spectral_embedding_matrix(grid_2d(6, 6), r=4)
    >>> emb.n_nodes, emb.dimension
    (36, 3)
    >>> int(emb.pair_distances_squared([(0, 35)]).argmax())
    0
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    coordinates: np.ndarray
    sigma_sq: float

    @property
    def n_nodes(self) -> int:
        """Number of embedded nodes."""
        return self.coordinates.shape[0]

    @property
    def dimension(self) -> int:
        """Embedding dimension ``r - 1``."""
        return self.coordinates.shape[1]

    def pair_distances_squared(self, pairs: np.ndarray) -> np.ndarray:
        """Squared embedding distances ``z_emb = ||U_r^T (e_s - e_t)||^2`` (Eq. 13)."""
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        diffs = self.coordinates[pairs[:, 0]] - self.coordinates[pairs[:, 1]]
        return np.einsum("ij,ij->i", diffs, diffs)


def embedding_from_eigenpairs(
    values: np.ndarray,
    vectors: np.ndarray,
    sigma_sq: float = np.inf,
) -> SpectralEmbedding:
    """Wrap precomputed nontrivial eigenpairs into a :class:`SpectralEmbedding`.

    Applies the Eq. (12) scaling ``u_i / sqrt(lambda_i + 1/sigma^2)``.  This
    is the shared final step of the stateless path
    (:func:`spectral_embedding_matrix`) and the warm-started incremental
    engine (:class:`~repro.embedding.engine.EmbeddingEngine`), which obtain
    the eigenpairs differently but scale them identically.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.embedding.spectral import embedding_from_eigenpairs
    >>> values = np.array([1.0, 4.0])
    >>> vectors = np.eye(3)[:, :2]
    >>> emb = embedding_from_eigenpairs(values, vectors)
    >>> emb.coordinates[0, 0], emb.coordinates[1, 1]  # 1/sqrt(1), 1/sqrt(4)
    (np.float64(1.0), np.float64(0.5))
    """
    values = np.asarray(values, dtype=np.float64)
    vectors = np.asarray(vectors, dtype=np.float64)
    shift = 0.0 if not np.isfinite(sigma_sq) else 1.0 / sigma_sq
    denom = np.sqrt(np.maximum(values + shift, 1e-300))
    coordinates = vectors / denom[None, :]
    return SpectralEmbedding(
        eigenvalues=values,
        eigenvectors=vectors,
        coordinates=coordinates,
        sigma_sq=float(sigma_sq) if np.isfinite(sigma_sq) else np.inf,
    )


def spectral_embedding_matrix(
    graph: WeightedGraph,
    r: int = 5,
    *,
    sigma_sq: float = np.inf,
    method: Literal["auto", "dense", "shift-invert", "lobpcg", "multilevel"] = "auto",
    seed: int | None = 0,
    multilevel_coarse_size: int = 200,
) -> SpectralEmbedding:
    """Compute the spectral embedding ``U_r`` of Eq. (12).

    Parameters
    ----------
    graph:
        Connected graph to embed.
    r:
        Number of eigenvectors as in the paper: the embedding uses the
        ``r - 1`` nontrivial eigenvectors ``u_2 ... u_r`` (the paper sets
        ``r = 5``).
    sigma_sq:
        Prior feature variance; ``inf`` (default) scales by ``1/sqrt(lambda)``
        so squared distances converge to effective resistances.
    method:
        Eigensolver backend.  ``"multilevel"`` uses the coarsen-solve-refine
        solver (near-linear time); the others are forwarded to
        :func:`repro.linalg.laplacian_eigenpairs`.

    Examples
    --------
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.embedding.spectral import spectral_embedding_matrix
    >>> emb = spectral_embedding_matrix(grid_2d(5, 5), r=3)
    >>> emb.n_nodes, emb.dimension
    (25, 2)
    """
    if r < 2:
        raise ValueError("r must be at least 2 (at least one nontrivial eigenvector)")
    k = min(r - 1, graph.n_nodes - 1)
    if method == "multilevel":
        result = MultilevelEigensolver(coarse_size=multilevel_coarse_size, seed=seed).solve(
            graph, k
        )
        values, vectors = result.eigenvalues, result.eigenvectors
    else:
        values, vectors = laplacian_eigenpairs(
            graph, k, method=method, drop_trivial=True, seed=seed
        )
    return embedding_from_eigenpairs(values, vectors, sigma_sq)
