"""Minimal k-means clustering (Lloyd's algorithm with k-means++ seeding).

Spectral clustering (used by the paper for colouring nodes in its graph
drawings) needs a k-means step on the spectral coordinates; scikit-learn is
not a dependency of this library, so a small, well-tested implementation is
provided here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KMeansResult", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Result of a k-means run.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.embedding import kmeans
    >>> points = np.array([[0.0], [0.1], [5.0], [5.1]])
    >>> result = kmeans(points, 2, seed=0)
    >>> result.converged, int(result.labels[0] != result.labels[2])
    (True, 1)
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    iterations: int
    converged: bool


def _kmeans_plus_plus(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ initial centres."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]))
    first = rng.integers(0, n)
    centers[0] = points[first]
    closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with chosen centres.
            centers[i:] = points[rng.integers(0, n, size=k - i)]
            break
        probs = closest_sq / total
        choice = rng.choice(n, p=probs)
        centers[i] = points[choice]
        dist_sq = np.sum((points - centers[i]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
    return centers


def kmeans(
    points: np.ndarray,
    k: int,
    *,
    max_iter: int = 100,
    tol: float = 1e-7,
    n_init: int = 4,
    seed: int | None = 0,
) -> KMeansResult:
    """Cluster ``points`` into ``k`` groups with Lloyd's algorithm.

    Parameters
    ----------
    points:
        ``(N, d)`` data matrix.
    k:
        Number of clusters (``1 <= k <= N``).
    max_iter, tol:
        Lloyd iteration cap and centre-movement convergence tolerance.
    n_init:
        Number of k-means++ restarts; the lowest-inertia run is returned.
    seed:
        Seed for the restarts.

    Examples
    --------
    Two well-separated 1-D blobs are recovered exactly:

    >>> import numpy as np
    >>> from repro.embedding import kmeans
    >>> points = np.array([[0.0], [0.2], [9.8], [10.0]])
    >>> labels = kmeans(points, 2, seed=0).labels
    >>> bool(labels[0] == labels[1]) and bool(labels[2] == labels[3])
    True
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError("k must satisfy 1 <= k <= number of points")
    rng = np.random.default_rng(seed)

    best: KMeansResult | None = None
    for _ in range(max(1, n_init)):
        centers = _kmeans_plus_plus(points, k, rng)
        labels = np.zeros(n, dtype=np.int64)
        converged = False
        iterations = 0
        for iterations in range(1, max_iter + 1):
            # Assignment step.
            distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
            labels = np.argmin(distances, axis=1)
            # Update step.
            new_centers = centers.copy()
            for cluster in range(k):
                members = points[labels == cluster]
                if members.shape[0]:
                    new_centers[cluster] = members.mean(axis=0)
                else:
                    # Re-seed empty clusters at the farthest point.
                    farthest = np.argmax(np.min(distances, axis=1))
                    new_centers[cluster] = points[farthest]
            movement = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
            centers = new_centers
            if movement <= tol:
                converged = True
                break
        distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        labels = np.argmin(distances, axis=1)
        inertia = float(np.sum(np.min(distances, axis=1) ** 2))
        result = KMeansResult(labels, centers, inertia, iterations, converged)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best
