"""Spectral clustering of graph nodes (Laplacian eigenmaps + k-means).

Used by the paper purely for visualisation (nodes in the same spectral cluster
share a colour in the graph drawings), but also a convenient downstream task
for checking that SGL-learned graphs preserve community structure: clustering
the learned graph should give nearly the same partition as clustering the
original graph.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.embedding.kmeans import kmeans
from repro.linalg.eigen import laplacian_eigenpairs

__all__ = ["spectral_clustering", "clustering_agreement"]


def spectral_clustering(
    graph: WeightedGraph,
    n_clusters: int,
    *,
    n_eigenvectors: int | None = None,
    normalize_rows: bool = True,
    method: str = "auto",
    seed: int | None = 0,
) -> np.ndarray:
    """Partition graph nodes into ``n_clusters`` spectral clusters.

    Parameters
    ----------
    graph:
        Connected graph to cluster.
    n_clusters:
        Number of clusters.
    n_eigenvectors:
        Number of nontrivial eigenvectors used as features (defaults to
        ``n_clusters``).
    normalize_rows:
        Normalise each node's spectral feature vector to unit length before
        k-means (the standard Ng-Jordan-Weiss step; improves robustness on
        graphs with unbalanced clusters).

    Returns
    -------
    numpy.ndarray
        Length-``N`` integer cluster labels.

    Examples
    --------
    Two triangles joined by a single weak edge split cleanly in two:

    >>> from repro.graphs.graph import WeightedGraph
    >>> from repro.embedding import spectral_clustering
    >>> barbell = WeightedGraph(
    ...     6,
    ...     [0, 0, 1, 3, 3, 4, 2],
    ...     [1, 2, 2, 4, 5, 5, 3],
    ...     [1, 1, 1, 1, 1, 1, 0.05],
    ... )
    >>> labels = spectral_clustering(barbell, 2, seed=0)
    >>> bool(labels[0] == labels[1] == labels[2] != labels[3])
    True
    """
    if n_clusters < 1:
        raise ValueError("n_clusters must be at least 1")
    if n_clusters == 1:
        return np.zeros(graph.n_nodes, dtype=np.int64)
    k = n_eigenvectors if n_eigenvectors is not None else n_clusters
    k = min(k, graph.n_nodes - 1)
    _, vectors = laplacian_eigenpairs(graph, k, method=method, seed=seed)
    features = vectors
    if normalize_rows:
        norms = np.linalg.norm(features, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        features = features / norms
    return kmeans(features, n_clusters, seed=seed).labels


def clustering_agreement(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Best-match clustering agreement in [0, 1] between two labelings.

    Uses a greedy label matching (sufficient for the small cluster counts used
    in the experiments) and returns the fraction of nodes whose clusters agree
    under that matching.
    """
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    if labels_a.shape != labels_b.shape:
        raise ValueError("labelings must have the same length")
    clusters_a = np.unique(labels_a)
    clusters_b = list(np.unique(labels_b))
    matched = 0
    used: set[int] = set()
    for ca in clusters_a:
        best_overlap, best_cb = 0, None
        mask_a = labels_a == ca
        for cb in clusters_b:
            if cb in used:
                continue
            overlap = int(np.sum(mask_a & (labels_b == cb)))
            if overlap > best_overlap:
                best_overlap, best_cb = overlap, cb
        if best_cb is not None:
            used.add(best_cb)
            matched += best_overlap
    return matched / labels_a.size
