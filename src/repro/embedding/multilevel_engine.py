"""Multilevel coarsen-solve-refine embedding engine for the SGL loop.

The third ``SGLConfig.embedding_engine`` mode (after ``"stateless"`` and the
warm-started ``"incremental"`` engine).  Where the incremental engine reuses
*eigenpairs* across densification iterations, this engine reuses the
*coarsening hierarchy*: heavy-edge matching — the expensive, sequential part
of a multilevel solve — is computed once and then kept while the SGL loop
adds its ``ceil(N beta)`` edges per iteration.  Every refresh

1. **coarsen**: Galerkin-reprojects the current graph through the stored
   matchings (one vectorised edge contraction per level, exact for the
   current Laplacian), re-running the matching itself only when the edge
   churn since the last build exceeds ``churn_threshold``;
2. **refine**: solves the dense eigenproblem on the coarsest level,
   prolongates through the hierarchy and refines per level with the
   preconditioned LOBPCG / inverse-power machinery of
   :class:`~repro.linalg.MultilevelEigensolver`, warm-starting the finest
   level with the previous iteration's eigenvectors.

The two phases are timed into the ``coarsen`` and ``refine`` stages of the
learner's :class:`~repro.core.instrumentation.StageTimings`, so benchmark
artifacts break the multilevel embedding cost down the same way they split
``embedding`` / ``embedding_warm`` for the incremental engine.

Accuracy note: the refined eigenvectors are approximate (residuals around
``1e-3``-relative at default settings), which is embedding-grade — the
embedding only feeds a *ranking* of candidate edges, and the acceptance
benchmark requires the learned graph's resistance correlation to stay within
0.01 of the stateless engine's.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.embedding.spectral import SpectralEmbedding, embedding_from_eigenpairs
from repro.graphs.graph import WeightedGraph
from repro.obs.tracing import set_attributes
from repro.linalg.coarsening import CoarseningHierarchy
from repro.linalg.eigen import laplacian_eigenpairs
from repro.linalg.multilevel import MultilevelEigensolver

__all__ = ["MultilevelEmbeddingEngine", "MultilevelEngineStats"]


@dataclass
class MultilevelEngineStats:
    """Per-refresh outcome counters of a :class:`MultilevelEmbeddingEngine`.

    Attributes
    ----------
    refreshes:
        Total :meth:`MultilevelEmbeddingEngine.refresh` calls.
    hierarchy_builds:
        Full coarsening builds (heavy-edge matching from scratch; always
        includes the first refresh on a large-enough graph).
    churn_rebuilds:
        Builds forced by edge churn exceeding the threshold (a subset of
        ``hierarchy_builds``).
    reprojections:
        Refreshes that reused the stored matchings and only Galerkin-
        reprojected the current graph through them.
    dense_solves:
        Refreshes on graphs too small to coarsen, served by a direct dense
        eigensolve.
    n_levels:
        Depth of the most recent hierarchy (0 for dense solves).
    chebyshev_accepts:
        Levels whose mixed-precision Chebyshev refinement passed the
        float64 acceptance residual (summed over refreshes; stays 0 for
        the lobpcg / inverse-power backends).
    chebyshev_fallbacks:
        Levels rejected by the acceptance check and re-refined by the
        float64 LOBPCG path.
    chebyshev_bypasses:
        Levels whose spectrum was detected as polynomial-intractable up
        front (wanted eigenvalues so far below the spectral bound that the
        required filter degree exceeds the affordable cap — the near-tree
        SGL regime) and rerouted to float64 LOBPCG on the orthonormalised
        full basis without paying any filter cost.  An *explained*
        reroute, reported separately from the quality ``fallbacks``.
    refresh_skips:
        Refreshes answered from the cached previous embedding because the
        edge churn since the last full V-cycle was below the engine's
        ``refresh_skip_churn`` threshold (chebyshev backend only; a subset
        of ``refreshes``).
    """

    refreshes: int = 0
    hierarchy_builds: int = 0
    churn_rebuilds: int = 0
    reprojections: int = 0
    dense_solves: int = 0
    n_levels: int = 0
    chebyshev_accepts: int = 0
    chebyshev_fallbacks: int = 0
    chebyshev_bypasses: int = 0
    refresh_skips: int = 0

    def as_dict(self) -> dict:
        """JSON-ready mapping embedded in benchmark artifacts."""
        return {
            "refreshes": self.refreshes,
            "hierarchy_builds": self.hierarchy_builds,
            "churn_rebuilds": self.churn_rebuilds,
            "reprojections": self.reprojections,
            "dense_solves": self.dense_solves,
            "n_levels": self.n_levels,
            "chebyshev_accepts": self.chebyshev_accepts,
            "chebyshev_fallbacks": self.chebyshev_fallbacks,
            "chebyshev_bypasses": self.chebyshev_bypasses,
            "refresh_skips": self.refresh_skips,
        }


class MultilevelEmbeddingEngine:
    """Stateful coarsen-solve-refine spectral embedding engine.

    Parameters
    ----------
    r:
        Number of eigenvectors as in the paper (the embedding uses the
        ``r - 1`` nontrivial vectors ``u_2 .. u_r``).
    sigma_sq:
        Prior feature variance forwarded to the Eq. (12) scaling.
    coarse_size:
        Coarsen until the graph has at most this many nodes (the coarsest
        eigenproblem is solved densely).
    refinement_steps:
        Per-level refinement iterations for *cold* V-cycles (hierarchy
        builds and churn rebuilds; see
        :class:`~repro.linalg.MultilevelEigensolver`).
    warm_refinement_steps:
        Finest-level refinement budget when the previous iteration's
        eigenvectors are available as a warm start (the common case inside
        the SGL loop).  The warm block doubles the finest basis width, so a
        half budget there recovers the same embedding-grade subspace at
        roughly half the refresh cost (measured on the paper-tier circuit:
        no resistance-correlation regression vs the stateless engine).
    warm_coarse_steps:
        Coarse-level budget on warm refreshes.  Warm finest-level vectors
        already anchor the subspace, so the coarse sweep only needs token
        smoothing; cutting it is where the engine's per-iteration win over
        a cold V-cycle comes from (coarse levels jointly cost 2-3x the
        finest one).
    refinement, preconditioner:
        Refinement backend (``"lobpcg"`` / ``"inverse-power"`` /
        ``"chebyshev"``) and preconditioner forwarded to the multilevel
        solver.  The chebyshev backend is matrix-free mixed-precision
        Chebyshev-filtered subspace iteration on warm refreshes; cold
        V-cycles (hierarchy builds and churn rebuilds) are seeded with the
        float64 LOBPCG reference path, because they run once per build but
        anchor the whole densification trajectory.  A warm level whose
        float64 acceptance residual rejects the filtered subspace falls
        back to preconditioned LOBPCG (counted in ``stats``).  The engine
        defaults to ``"spanning-tree"`` support-graph preconditioning: the
        graphs the SGL loop embeds are a spanning tree plus a handful of
        added edges, on which tree preconditioners are near-exact (jacobi
        refinement stalls there, overestimating the small eigenvalues and
        silently shrinking every embedding distance).  The per-level
        preconditioners are built once per hierarchy build and reused
        across refreshes — valid because densification only ever adds
        edges, so a stored spanning tree keeps spanning every later graph.
    guard_vectors:
        Extra trailing eigenpairs carried through the V-cycle beyond the
        ``r - 1`` the embedding needs.  Same rationale as the incremental
        engine's guard block: eigenvalue clusters straddling the block
        boundary rotate freely, and keeping them inside the refined
        subspace keeps the leading pairs stable across refreshes.
    churn_threshold:
        Re-run heavy-edge matching once the fine edge count has drifted by
        more than this fraction since the hierarchy was built; below it the
        stored matchings are reused and only the Galerkin coarse graphs are
        recomputed.  ``0`` rebuilds on every refresh that changed the graph.
    refine_dtype, linalg_backend, chebyshev_degree:
        Chebyshev knobs forwarded to the solver: filtering precision
        (``"float32"`` default), compute backend name for
        :func:`repro.linalg.backends.get_backend`, and filter polynomial
        degree.  Ignored by the other refinement backends.
    refresh_skip_churn:
        Chebyshev-backend-only refresh elision: when the caller reports
        ``added_edges`` and the relative churn ``len(added_edges) /
        graph.n_edges`` is at or below this fraction, the refresh returns
        the cached previous embedding without running a V-cycle.  In the
        SGL densification tail the loop adds a handful of edges per
        iteration (relative churn around ``5e-5`` at the paper tier) whose
        effect on the embedding is far below refinement accuracy, so the
        stale embedding ranks the next candidate batch identically while
        saving a full finest-level solve.  ``0`` disables skipping.  The
        lobpcg / inverse-power backends never skip, keeping the default
        engine bit-compatible with earlier releases.
    max_levels, min_coarsening_ratio:
        Hierarchy stopping controls.
    seed:
        Seed for the coarsening order.

    Examples
    --------
    >>> from repro.embedding import MultilevelEmbeddingEngine
    >>> from repro.graphs.generators import grid_2d
    >>> graph = grid_2d(20, 20)
    >>> engine = MultilevelEmbeddingEngine(r=3, coarse_size=50)
    >>> first = engine.refresh(graph)
    >>> engine.stats.hierarchy_builds
    1
    >>> denser = graph.add_edges([(0, 399)], [1.0])
    >>> second = engine.refresh(denser)      # reuses the stored matchings
    >>> engine.stats.reprojections, second.n_nodes, second.dimension
    (1, 400, 2)
    """

    def __init__(
        self,
        r: int = 5,
        *,
        sigma_sq: float = np.inf,
        coarse_size: int = 400,
        refinement_steps: int = 10,
        warm_refinement_steps: int | None = 5,
        warm_coarse_steps: int = 1,
        refinement: Literal["lobpcg", "inverse-power", "chebyshev"] = "lobpcg",
        preconditioner: Literal["jacobi", "spanning-tree"] = "spanning-tree",
        refine_dtype: str = "float32",
        linalg_backend: str = "numpy",
        chebyshev_degree: int = 10,
        refresh_skip_churn: float = 5.5e-5,
        guard_vectors: int = 2,
        churn_threshold: float = 0.1,
        max_levels: int = 30,
        min_coarsening_ratio: float = 0.9,
        seed: int | None = 0,
    ) -> None:
        if r < 2:
            raise ValueError("r must be at least 2 (at least one nontrivial eigenvector)")
        if churn_threshold < 0:
            raise ValueError("churn_threshold must be non-negative")
        if warm_refinement_steps is None:
            warm_refinement_steps = refinement_steps
        if warm_refinement_steps < 0 or warm_coarse_steps < 0:
            raise ValueError("warm refinement budgets must be non-negative")
        if guard_vectors < 0:
            raise ValueError("guard_vectors must be non-negative")
        if refresh_skip_churn < 0:
            raise ValueError("refresh_skip_churn must be non-negative")
        self.refresh_skip_churn = float(refresh_skip_churn)
        self.guard_vectors = int(guard_vectors)
        self.warm_refinement_steps = int(warm_refinement_steps)
        self.warm_coarse_steps = int(warm_coarse_steps)
        self.r = int(r)
        self.sigma_sq = sigma_sq
        self.churn_threshold = float(churn_threshold)
        self.seed = seed
        self.solver = MultilevelEigensolver(
            coarse_size=coarse_size,
            refinement_steps=refinement_steps,
            refinement=refinement,
            preconditioner=preconditioner,
            refine_dtype=refine_dtype,
            linalg_backend=linalg_backend,
            chebyshev_degree=chebyshev_degree,
            max_levels=max_levels,
            min_coarsening_ratio=min_coarsening_ratio,
            seed=seed,
        )
        self.stats = MultilevelEngineStats()
        self.last_mode: str | None = None
        self._hierarchy: CoarseningHierarchy | None = None
        self._preconditioners: list | None = None
        self._last_graph: WeightedGraph | None = None
        self._vectors: np.ndarray | None = None
        self._n_nodes: int | None = None
        self._cached_embedding: SpectralEmbedding | None = None

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget the hierarchy and warm-start state."""
        self._hierarchy = None
        self._preconditioners = None
        self._last_graph = None
        self._vectors = None
        self._n_nodes = None
        self._cached_embedding = None
        self.last_mode = None

    @property
    def has_hierarchy(self) -> bool:
        """Whether a reusable coarsening hierarchy is currently stored."""
        return self._hierarchy is not None

    # ------------------------------------------------------------------
    def _build(self, graph: WeightedGraph) -> CoarseningHierarchy:
        self._hierarchy = self.solver.build_hierarchy(graph)
        # Built for every backend: the chebyshev path needs them too, for
        # the cold reference V-cycle that seeds each hierarchy and for any
        # level whose spectrum bypasses (or falls back from) the filter.
        self._preconditioners = self.solver.build_preconditioners(
            graph, self._hierarchy
        )
        self.stats.hierarchy_builds += 1
        return self._hierarchy

    def _ensure_hierarchy(self, graph: WeightedGraph) -> CoarseningHierarchy:
        """Return a hierarchy whose coarse graphs are exact for ``graph``.

        The cached per-level preconditioners are kept across reprojections
        (a stored spanning tree keeps spanning once edges are only added)
        and rebuilt together with the matchings.
        """
        hierarchy = self._hierarchy
        if hierarchy is None or hierarchy.fine_n_nodes != graph.n_nodes:
            self.last_mode = "build"
            return self._build(graph)
        if graph is self._last_graph:
            self.last_mode = "reuse"
            return hierarchy
        if self.churn_threshold > 0 and hierarchy.edge_churn(graph) <= self.churn_threshold:
            self._hierarchy = hierarchy.reproject(graph)
            self.stats.reprojections += 1
            self.last_mode = "reproject"
            return self._hierarchy
        self.stats.churn_rebuilds += 1
        self.last_mode = "rebuild"
        return self._build(graph)

    # ------------------------------------------------------------------
    def refresh(
        self,
        graph: WeightedGraph,
        added_edges: np.ndarray | None = None,
        *,
        timings=None,
    ) -> SpectralEmbedding:
        """Return the spectral embedding of ``graph`` via the multilevel path.

        Parameters
        ----------
        graph:
            The current (connected) graph.
        added_edges:
            Optional ``(m, 2)`` array of edges added since the previous
            refresh.  Informational only: hierarchy staleness is decided
            from the edge-count churn, not from this argument.
        timings:
            Optional :class:`~repro.core.instrumentation.StageTimings`; when
            given, the two phases are recorded under the ``coarsen`` and
            ``refine`` stage names.
        """
        n = graph.n_nodes
        k = min(self.r - 1, n - 1)
        if k < 1:
            raise ValueError("graph too small to embed (need at least two nodes)")
        k_work = min(k + self.guard_vectors, n - 1)
        self.stats.refreshes += 1

        if (
            self.solver.refinement == "chebyshev"
            and self.refresh_skip_churn > 0
            and self._cached_embedding is not None
            and self._n_nodes == n
            and added_edges is not None
            and 0 < len(added_edges) <= self.refresh_skip_churn * graph.n_edges
        ):
            # Densification-tail elision: the reported batch perturbs the
            # Laplacian by less than refinement accuracy, so the previous
            # embedding still ranks candidates identically.  Warm vectors
            # and hierarchy are left untouched — the next non-trivial
            # refresh reprojects from them exactly as it would have.
            self.stats.refresh_skips += 1
            self.last_mode = "skip"
            set_attributes(mode="skip", refresh_skips=self.stats.refresh_skips)
            return self._cached_embedding

        coarsen_stage = nullcontext() if timings is None else timings.stage("coarsen")
        refine_stage = nullcontext() if timings is None else timings.stage("refine")

        if n <= max(self.solver.coarse_size, k_work + 2):
            # Too small to coarsen: a dense solve is cheaper than bookkeeping.
            with refine_stage:
                set_attributes(mode="dense", n_levels=0)
                values, vectors = laplacian_eigenpairs(graph, k_work, method="dense")
            self.stats.dense_solves += 1
            self.stats.n_levels = 0
            self.last_mode = "dense"
        else:
            with coarsen_stage:
                hierarchy = self._ensure_hierarchy(graph)
                # Tag the traced span (no-op without an active tracer) with
                # what this coarsen actually did — build/reuse/reproject and
                # the resulting hierarchy depth.
                set_attributes(mode=self.last_mode, n_levels=hierarchy.n_levels)
            self.stats.n_levels = hierarchy.n_levels
            warm = self._vectors if self._n_nodes == n else None
            steps = None  # solver default (cold budget, every level)
            if warm is not None and self.last_mode in ("reuse", "reproject"):
                steps = [self.warm_refinement_steps, self.warm_coarse_steps]
            refinement = None
            if self.solver.refinement == "chebyshev" and steps is None:
                # Cold V-cycles run once per hierarchy build but seed the
                # whole densification trajectory the warm refreshes then
                # follow; spend the float64 reference path there and keep
                # the mixed-precision filter for the repeated warm solves,
                # where the refresh cost actually lives.
                refinement = "lobpcg"
            with refine_stage:
                set_attributes(
                    n_levels=hierarchy.n_levels,
                    warm=warm is not None,
                    churn_rebuilds=self.stats.churn_rebuilds,
                )
                result = self.solver.solve(
                    graph,
                    k_work,
                    hierarchy=hierarchy,
                    initial_vectors=warm,
                    preconditioners=self._preconditioners,
                    refinement_steps=steps,
                    refinement=refinement,
                )
                rstats = result.refine_stats
                if self.solver.refinement == "chebyshev":
                    self.stats.chebyshev_accepts += int(rstats.get("accepts", 0))
                    self.stats.chebyshev_fallbacks += int(rstats.get("fallbacks", 0))
                    self.stats.chebyshev_bypasses += int(rstats.get("bypasses", 0))
                    set_attributes(
                        filter_degree=rstats.get(
                            "filter_degree", self.solver.chebyshev_degree
                        ),
                        refine_dtype=rstats.get("dtype", str(self.solver.refine_dtype)),
                        acceptance_residual=float(rstats.get("residual", 0.0)),
                        chebyshev_fallbacks=int(rstats.get("fallbacks", 0)),
                        chebyshev_bypasses=int(rstats.get("bypasses", 0)),
                    )
            values, vectors = result.eigenvalues, result.eigenvectors

        self._last_graph = graph
        self._vectors = vectors
        self._n_nodes = n
        embedding = embedding_from_eigenpairs(values[:k], vectors[:, :k], self.sigma_sq)
        if self.solver.refinement == "chebyshev":
            self._cached_embedding = embedding
        return embedding
