"""Warm-started incremental spectral engine for the SGL densification loop.

Every iteration of :meth:`repro.core.sgl.SGLearner.fit` needs the spectral
embedding of the *current* graph — but consecutive iterations differ only by
the ``ceil(N beta)`` edges added in between, which is exactly the low-rank
update regime where warm-started eigensolvers converge in a handful of
iterations.  Re-solving from scratch (the stateless
:func:`~repro.embedding.spectral.spectral_embedding_matrix` path) pays a full
sparse factorisation plus a Lanczos run per iteration.

:class:`EmbeddingEngine` owns the eigenpair state across iterations and
refreshes it with an escalation ladder, cheapest first:

1. **Rayleigh-Ritz residual check**: the stored eigenpairs are re-tested
   against the updated Laplacian (``k`` sparse matvecs); tiny or empty edge
   updates are accepted outright.
2. **Warm-started block-Krylov inverse iteration**: an inverse-power tower
   ``[V, L^-1 V, L^-2 V, ...]`` grown from the previous eigenvectors with
   *exact* solves against the current Laplacian, served by a stale grounded
   LU factorisation plus a Woodbury low-rank correction for the edges added
   since (:class:`_IncrementalLaplacianInverse`) — no per-iteration
   refactorisation.  The tower depth is adaptive (remembered across
   refreshes), and one Rayleigh-Ritz projection per convergence check turns
   the tower into eigenpairs plus a built-in Ritz-value-drift estimate.
3. **Cold solve fallback**: the stateless path, also used for the first
   refresh and whenever the warm residuals fail the acceptance test — so a
   convergence failure can never produce a worse embedding than the
   stateless engine, only a slower iteration.

The acceptance test is *eigenvalue-relative* (``||L u - theta u|| <=
warm_tol * theta``), because the embedding scales coordinates by
``1/sqrt(lambda)``: an absolute residual that is small next to ``lambda_max``
can still bias ``lambda_2`` — and hence every embedding distance and edge
sensitivity — enough to derail the densification trajectory.

Per-refresh outcomes are tallied in :class:`EngineStats`, which the learner
attaches to :class:`~repro.core.sgl.SGLResult` and the benchmark harness
embeds in ``BENCH_<tag>.json`` artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.embedding.spectral import (
    SpectralEmbedding,
    embedding_from_eigenpairs,
    spectral_embedding_matrix,
)
from repro.graphs.graph import WeightedGraph
from repro.linalg.eigen import laplacian_eigenpairs
from repro.linalg.solvers import grounded_splu

__all__ = ["EmbeddingEngine", "EngineStats"]

#: Failures the warm ladder treats as "fall back to a cold solve": numerical
#: breakdowns of the factorisation / small dense solves.  Deliberately NOT a
#: blanket Exception, so programming errors surface instead of silently
#: degrading every refresh to the stateless path.
_NUMERICAL_FAILURES = (RuntimeError, ValueError, ArithmeticError, np.linalg.LinAlgError)


def _mean_free(block: np.ndarray) -> np.ndarray:
    return block - block.mean(axis=0, keepdims=True)


class _IncrementalLaplacianInverse:
    """Exact mean-free solves with an incrementally updated Laplacian.

    Holds a grounded sparse LU factorisation of a *base* Laplacian plus a
    Woodbury correction for the rank-``m`` edge update accumulated since:

        (L_base + U diag(w) U^T)^+ b
            = L_base^+ b - Z (diag(1/w) + U^T Z)^{-1} U^T L_base^+ b

    with ``U`` the oriented incidence columns of the updated edges and
    ``Z = L_base^+ U`` cached.  ``update`` appends whatever changed between
    the previous and the current Laplacian (additions, removals or weight
    changes all become signed ``w`` entries), and refactorises from scratch
    once the correction rank exceeds ``max_corrections`` — keeping every
    solve exact while amortising factorisations over many small updates.
    """

    def __init__(self, graph: WeightedGraph, *, max_corrections: int | None = None) -> None:
        n = graph.n_nodes
        if max_corrections is None:
            max_corrections = max(48, n // 48)
        self.max_corrections = int(max_corrections)
        self.n_factorizations = 0
        self._n = n
        self._keep = np.ones(n, dtype=bool)
        self._keep[0] = False
        self._refactorize(graph.laplacian().tocsr())

    # -- base factorisation -------------------------------------------------
    def _refactorize(self, lap: sp.csr_matrix) -> None:
        self._lu = grounded_splu(lap[self._keep][:, self._keep])
        self._current_lap = lap
        # Preallocated correction buffers; only the first `_m` entries are
        # live, so growing by a batch never re-copies the accumulated state.
        cap = self.max_corrections
        self._src = np.empty(cap, dtype=np.int64)
        self._dst = np.empty(cap, dtype=np.int64)
        self._weights = np.empty(cap, dtype=np.float64)
        self._Z = np.empty((self._n, cap), dtype=np.float64)
        self._m = 0
        self._capacitance_lu = None
        self.n_factorizations += 1

    def _base_solve(self, block: np.ndarray, *, project_input: bool = True) -> np.ndarray:
        block = np.asarray(block, dtype=np.float64).reshape(self._n, -1)
        if project_input:
            block = _mean_free(block)
        out = np.zeros_like(block)
        out[self._keep] = self._lu.solve(block[self._keep])
        return _mean_free(out)

    @property
    def n_corrections(self) -> int:
        """Current rank of the Woodbury correction."""
        return self._m

    # -- incremental update -------------------------------------------------
    def update(self, graph: WeightedGraph) -> bool:
        """Absorb the difference between ``graph`` and the last seen graph.

        Additions, removals and weight changes all become signed correction
        columns.  Returns True when a batch was absorbed incrementally;
        False when nothing changed or when the correction budget overflowed
        and a full refactorisation swallowed the difference instead (either
        way, subsequent solves are exact for ``graph``).
        """
        lap = graph.laplacian().tocsr()
        delta = (lap - self._current_lap).tocoo()
        upper = (delta.row < delta.col) & (delta.data != 0)
        src, dst = delta.row[upper].astype(np.int64), delta.col[upper].astype(np.int64)
        weights = -delta.data[upper]  # off-diagonal of L is -w
        if src.size == 0:
            self._current_lap = lap
            return False
        if self._m + src.size > self.max_corrections:
            self._refactorize(lap)
            return False
        self._current_lap = lap
        new_u = np.zeros((self._n, src.size))
        new_u[src, np.arange(src.size)] = 1.0
        new_u[dst, np.arange(src.size)] = -1.0
        lo, hi = self._m, self._m + src.size
        self._src[lo:hi] = src
        self._dst[lo:hi] = dst
        self._weights[lo:hi] = weights
        # Edge-difference columns are mean-free by construction.
        self._Z[:, lo:hi] = self._base_solve(new_u, project_input=False)
        self._m = hi
        # Capacitance matrix S = diag(1/w) + U^T Z; U^T picks endpoint rows.
        live = self._Z[:, :hi]
        capacitance = live[self._src[:hi]] - live[self._dst[:hi]]
        capacitance = capacitance + np.diag(1.0 / self._weights[:hi])
        self._capacitance_lu = scipy.linalg.lu_factor(capacitance)
        return True

    # -- solves -------------------------------------------------------------
    def solve(self, block: np.ndarray, *, project_input: bool = True) -> np.ndarray:
        """Exact mean-free solution of the *current* Laplacian system.

        Pass ``project_input=False`` when the right-hand sides are already
        mean-free (e.g. inside the engine's inverse-power tower, whose
        vectors stay mean-free by construction) to skip a projection pass.
        """
        x0 = self._base_solve(block, project_input=project_input)
        m = self._m
        if m == 0:
            return x0
        rhs_small = x0[self._src[:m]] - x0[self._dst[:m]]
        correction = scipy.linalg.lu_solve(self._capacitance_lu, rhs_small)
        out = x0
        out -= self._Z[:, :m] @ correction
        return _mean_free(out)


@dataclass
class EngineStats:
    """Per-refresh outcome counters of an :class:`EmbeddingEngine`.

    Attributes
    ----------
    cold_solves:
        Full stateless solves (always includes the first refresh).
    warm_rayleigh_ritz:
        Refreshes settled by Rayleigh-Ritz subspace refinement alone.
    warm_inverse:
        Refreshes that needed warm-started inverse-iteration sweeps.
    fallbacks:
        Warm attempts whose residuals failed the acceptance test, forcing a
        cold re-solve (these are counted in ``cold_solves`` too).
    factorizations:
        Sparse LU factorisations performed by the incremental solver.
    """

    cold_solves: int = 0
    warm_rayleigh_ritz: int = 0
    warm_inverse: int = 0
    fallbacks: int = 0
    factorizations: int = 0

    @property
    def refreshes(self) -> int:
        """Total number of :meth:`EmbeddingEngine.refresh` calls recorded."""
        return self.cold_solves + self.warm_rayleigh_ritz + self.warm_inverse

    @property
    def warm_refreshes(self) -> int:
        """Refreshes served from warm state (no full eigensolve)."""
        return self.warm_rayleigh_ritz + self.warm_inverse

    def as_dict(self) -> dict:
        """JSON-ready mapping embedded in benchmark artifacts."""
        return {
            "refreshes": self.refreshes,
            "cold_solves": self.cold_solves,
            "warm_rayleigh_ritz": self.warm_rayleigh_ritz,
            "warm_inverse": self.warm_inverse,
            "fallbacks": self.fallbacks,
            "factorizations": self.factorizations,
        }


class EmbeddingEngine:
    """Stateful spectral-embedding engine with warm-started refreshes.

    Parameters
    ----------
    r:
        Number of eigenvectors as in the paper (the embedding uses the
        ``r - 1`` nontrivial vectors ``u_2 .. u_r``).
    sigma_sq:
        Prior feature variance forwarded to the Eq. (12) scaling.
    method:
        Eigensolver backend for *cold* solves (``"auto"``, ``"dense"``,
        ``"shift-invert"``, ``"lobpcg"`` or ``"multilevel"``); warm refreshes
        always use Rayleigh-Ritz / inverse iteration regardless.
    seed:
        Seed forwarded to the iterative cold backends.
    multilevel_coarse_size:
        Coarse-level size for the ``"multilevel"`` cold backend.
    warm_tol:
        Strict eigenvalue-relative residual acceptance threshold: a tower
        check is accepted outright when ``||L u_i - theta_i u_i|| <=
        warm_tol * theta_i`` for every kept pair.  ``0`` disables warm
        starts entirely.
    drift_tol:
        Ritz-value-stability acceptance threshold: a check is also accepted
        when every kept Ritz value moved by at most ``drift_tol * theta_i``
        relative to the tower's one-level-shallower subspace and the
        residuals stay below ``residual_cap``.  Ritz-value stability is the
        criterion that matters for the embedding: coordinates scale by
        ``1/sqrt(lambda)``, and leftover vector error at a stabilised Ritz
        value is rotation within an eigenvalue cluster, which barely moves
        embedding distances.  The drift estimate lags the true Ritz error
        by roughly an order of magnitude, hence the default an order looser
        than the ~1e-3 accuracy it corresponds to in practice.
    residual_cap:
        Hard eigenvalue-relative residual bound that must hold even when
        accepting on Ritz-value stability (guards against accepting a
        stagnated, not-yet-converged tower).
    cold_tol:
        ARPACK tolerance for the engine's cold solves.  The stateless path
        keeps its machine-precision default; the engine targets
        embedding-grade accuracy throughout, so spending Lanczos restarts
        beyond ``cold_tol`` would buy nothing the warm path preserves.
    guard_vectors:
        Extra trailing eigenpairs tracked beyond the ``r - 1`` the embedding
        needs.  They keep eigenvalue clusters at the block boundary inside
        the iterated subspace, which is what makes the tower converge fast.
    max_depth:
        Deepest inverse-power Krylov tower grown before declaring a
        fallback.  The engine remembers the depth the previous refresh
        needed and lifts straight to it, extending two levels at a time
        when the convergence check fails.
    warm_min_nodes:
        Below this many nodes the engine always solves cold — dense solves
        on tiny graphs are cheaper than bookkeeping.
    max_corrections:
        Woodbury correction rank after which the incremental solver
        refactorises (default ``max(48, n_nodes // 48)``).
    max_consecutive_fallbacks:
        After this many warm failures in a row the engine stops attempting
        warm starts for the rest of its lifetime (automatic degradation to
        the stateless behaviour).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.embedding.engine import EmbeddingEngine
    >>> from repro.graphs.generators import grid_2d
    >>> graph = grid_2d(12, 12)
    >>> engine = EmbeddingEngine(r=3, warm_min_nodes=16)
    >>> first = engine.refresh(graph)          # first refresh is a cold solve
    >>> engine.last_mode
    'cold'
    >>> denser = graph.add_edges([(0, 50)], [1.0])
    >>> second = engine.refresh(denser, added_edges=np.array([[0, 50]]))
    >>> engine.stats.warm_refreshes
    1
    >>> second.n_nodes, second.dimension
    (144, 2)
    """

    #: Refresh outcomes reported by :attr:`last_mode`.
    MODES = ("cold", "warm-rr", "warm-inverse", "fallback")

    def __init__(
        self,
        r: int = 5,
        *,
        sigma_sq: float = np.inf,
        method: Literal["auto", "dense", "shift-invert", "lobpcg", "multilevel"] = "auto",
        seed: int | None = 0,
        multilevel_coarse_size: int = 200,
        warm_tol: float = 1e-3,
        drift_tol: float = 0.02,
        residual_cap: float = 0.2,
        cold_tol: float = 1e-7,
        guard_vectors: int = 2,
        max_depth: int = 8,
        warm_min_nodes: int = 128,
        max_corrections: int | None = None,
        max_consecutive_fallbacks: int = 3,
    ) -> None:
        if r < 2:
            raise ValueError("r must be at least 2 (at least one nontrivial eigenvector)")
        if warm_tol < 0:
            raise ValueError("warm_tol must be non-negative")
        if drift_tol <= 0:
            raise ValueError("drift_tol must be positive")
        if residual_cap <= 0:
            raise ValueError("residual_cap must be positive")
        if guard_vectors < 0:
            raise ValueError("guard_vectors must be non-negative")
        if max_depth < 2:
            raise ValueError("max_depth must be at least 2")
        self.r = int(r)
        self.sigma_sq = sigma_sq
        self.method = method
        self.seed = seed
        self.multilevel_coarse_size = int(multilevel_coarse_size)
        self.warm_tol = float(warm_tol)
        self.drift_tol = float(drift_tol)
        self.residual_cap = float(residual_cap)
        self.cold_tol = float(cold_tol)
        self.guard_vectors = int(guard_vectors)
        self.max_depth = int(max_depth)
        self.warm_min_nodes = int(warm_min_nodes)
        self.max_corrections = max_corrections
        self.max_consecutive_fallbacks = int(max_consecutive_fallbacks)

        self.stats = EngineStats()
        self.last_mode: str | None = None
        self._values: np.ndarray | None = None
        self._vectors: np.ndarray | None = None
        self._n_nodes: int | None = None
        self._inverse: _IncrementalLaplacianInverse | None = None
        self._inverse_factorizations_seen = 0
        self._krylov_depth = 2
        self._consecutive_fallbacks = 0
        self._warm_disabled = False

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget all eigenpair state; the next refresh solves cold."""
        self._values = None
        self._vectors = None
        self._n_nodes = None
        self._sync_factorizations()
        self._inverse = None
        self._inverse_factorizations_seen = 0
        self._krylov_depth = 2
        self._consecutive_fallbacks = 0
        self._warm_disabled = False
        self.last_mode = None

    def _sync_factorizations(self) -> None:
        """Fold the live inverse's factorisation count into the stats.

        Accumulates deltas rather than overwriting, so factorisations done
        by inverses later discarded (e.g. replaced after a fallback cold
        solve) stay counted.
        """
        if self._inverse is None:
            return
        delta = self._inverse.n_factorizations - self._inverse_factorizations_seen
        if delta > 0:
            self.stats.factorizations += delta
            self._inverse_factorizations_seen = self._inverse.n_factorizations

    @property
    def has_state(self) -> bool:
        """Whether a previous refresh left warm-startable eigenpairs behind."""
        return self._vectors is not None

    # ------------------------------------------------------------------
    def _relative_residuals(
        self,
        lap: sp.csr_matrix,
        values: np.ndarray,
        vectors: np.ndarray,
        scale: float,
        k: int,
    ) -> np.ndarray:
        """``||L u_i - theta_i u_i|| / theta_i`` for the first ``k`` pairs."""
        values, vectors = values[:k], vectors[:, :k]
        residual = lap @ vectors - vectors * values[None, :]
        norms = np.linalg.norm(residual, axis=0)
        return norms / np.maximum(values, 1e-14 * scale)

    def _cold_solve(
        self, graph: WeightedGraph, k_work: int
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.method == "multilevel":
            embedding = spectral_embedding_matrix(
                graph,
                k_work + 1,
                sigma_sq=self.sigma_sq,
                method=self.method,
                seed=self.seed,
                multilevel_coarse_size=self.multilevel_coarse_size,
            )
            return embedding.eigenvalues[:k_work], embedding.eigenvectors[:, :k_work]
        # The engine targets embedding-grade accuracy (warm_tol), so its cold
        # solves request a finite ARPACK tolerance instead of the stateless
        # path's machine-precision default — several Lanczos restarts cheaper
        # at identical embedding quality.
        return laplacian_eigenpairs(
            graph,
            k_work,
            method=self.method,
            drop_trivial=True,
            tol=self.cold_tol,
            seed=self.seed,
        )

    def _warm_solve(
        self,
        graph: WeightedGraph,
        lap: sp.csr_matrix,
        k: int,
        k_work: int,
        scale: float,
    ) -> tuple[np.ndarray, np.ndarray, str] | None:
        """Try the warm ladder (Rayleigh-Ritz check, then block-Krylov tower)."""
        try:
            absorbed_batch = self._inverse.update(graph)
        except _NUMERICAL_FAILURES:
            return None

        vectors = _mean_free(self._vectors)
        if not absorbed_batch:
            # Nothing changed (or a refactorisation absorbed the batch): the
            # stored eigenpairs may pass the strict residual test as-is.
            values = self._values
            residuals = self._relative_residuals(lap, values, vectors, scale, k)
            if np.all(np.isfinite(residuals)) and bool(
                (residuals <= self.warm_tol).all()
            ):
                return values, vectors, "warm-rr"

        # Grow one inverse-power Krylov tower [V, L^-1 V_k, L^-2 V_k, ...]
        # and Rayleigh-Ritz over it.  The depth a refresh needs is strongly
        # correlated with the previous refresh's (consecutive batches have
        # similar weight), so lift straight to the remembered depth and only
        # then run the (QR + projection) check — skipping the intermediate
        # checks is what keeps hard refreshes cheap.  Because Householder QR
        # is column-progressive, the projected matrix's leading principal
        # block is the projection onto the tower minus its last level —
        # comparing Ritz values between the two gives a free convergence
        # estimate (Krylov saturation <=> eigenvalues stabilised).  The
        # estimate lags the true error by an order of magnitude (it measures
        # what the last level still contributed), hence drift_tol being
        # looser than warm_tol.
        blocks = [vectors]
        current = vectors[:, :k]
        depth = 0
        target = min(max(2, self._krylov_depth), self.max_depth)
        while True:
            try:
                while depth < target:
                    current = self._inverse.solve(current, project_input=False)
                    # Per-column renormalisation: the inverse-power
                    # recurrence grows columns by ~1/lambda_2 per level, and
                    # the span is scaling-invariant.
                    col_norms = np.linalg.norm(current, axis=0)
                    current = current / np.maximum(col_norms, 1e-300)[None, :]
                    blocks.append(current)
                    depth += 1
            except _NUMERICAL_FAILURES:
                return None
            subspace = _mean_free(np.hstack(blocks))
            q, _ = np.linalg.qr(subspace)
            projected = q.T @ (lap @ q)
            projected = 0.5 * (projected + projected.T)
            inner = subspace.shape[1] - k
            inner_values = np.linalg.eigvalsh(projected[:inner, :inner])[:k]
            all_values, small_vectors = np.linalg.eigh(projected)
            values = all_values[:k_work]
            if not np.all(np.isfinite(values)):
                return None

            drift = np.abs(inner_values - values[:k]) / np.maximum(values[:k], 1e-300)
            candidate = q @ small_vectors[:, :k_work]
            residuals = self._relative_residuals(lap, values, candidate, scale, k)
            if not np.all(np.isfinite(residuals)):
                return None
            by_residual = residuals <= self.warm_tol
            stable = (drift <= self.drift_tol) & (residuals <= self.residual_cap)
            if bool((by_residual | stable).all()):
                # Let the remembered depth decay when the tower was deeper
                # than this batch needed, so easy stretches stay cheap.
                margin = float(np.maximum(drift, residuals / 10.0).max())
                self._krylov_depth = (
                    max(2, depth - 1) if margin <= 0.1 * self.drift_tol else depth
                )
                return values, candidate, "warm-inverse"
            if depth >= self.max_depth:
                self._krylov_depth = 2
                return None
            target = min(depth + 2, self.max_depth)
            self._krylov_depth = target

    # ------------------------------------------------------------------
    def refresh(
        self,
        graph: WeightedGraph,
        added_edges: np.ndarray | None = None,
    ) -> SpectralEmbedding:
        """Return the spectral embedding of ``graph``, reusing warm state.

        Parameters
        ----------
        graph:
            The current (connected) graph.  Must keep the node set of the
            previous refresh for warm starts to apply; a changed node count
            resets the engine to a cold solve.
        added_edges:
            Optional ``(m, 2)`` array of the edges added since the previous
            refresh, recorded for bookkeeping.  The warm path does not trust
            it for correctness: the incremental solver diffs the Laplacians
            itself, so removals and weight changes are absorbed exactly too.

        Returns
        -------
        SpectralEmbedding
            Identical in structure to the stateless
            :func:`~repro.embedding.spectral.spectral_embedding_matrix`
            output.
        """
        n = graph.n_nodes
        k = min(self.r - 1, n - 1)
        if k < 1:
            raise ValueError("graph too small to embed (need at least two nodes)")
        k_work = min(k + self.guard_vectors, n - 1)

        warm_possible = (
            not self._warm_disabled
            and self.warm_tol > 0
            and self._vectors is not None
            and self._n_nodes == n
            and self._vectors.shape[1] == k_work
            and self._inverse is not None
            and n >= self.warm_min_nodes
        )

        mode = "cold"
        values = vectors = None
        if warm_possible:
            lap = graph.laplacian()
            scale = max(float(lap.diagonal().max()), 1e-300)
            warm = self._warm_solve(graph, lap, k, k_work, scale)
            if warm is not None:
                values, vectors, mode = warm
                self._consecutive_fallbacks = 0
            else:
                mode = "fallback"
                self._consecutive_fallbacks += 1
                if self._consecutive_fallbacks >= self.max_consecutive_fallbacks:
                    self._warm_disabled = True

        if values is None:
            values, vectors = self._cold_solve(graph, k_work)
            self.stats.cold_solves += 1
            if mode == "fallback":
                self.stats.fallbacks += 1
            if n >= self.warm_min_nodes and not self._warm_disabled and self.warm_tol > 0:
                self._sync_factorizations()  # count the discarded inverse's work
                try:
                    self._inverse = _IncrementalLaplacianInverse(
                        graph, max_corrections=self.max_corrections
                    )
                except _NUMERICAL_FAILURES:
                    self._inverse = None
                self._inverse_factorizations_seen = 0
        elif mode == "warm-rr":
            self.stats.warm_rayleigh_ritz += 1
        else:
            self.stats.warm_inverse += 1

        self._sync_factorizations()

        self.last_mode = mode
        self._values = values
        self._vectors = vectors
        self._n_nodes = n
        return embedding_from_eigenpairs(values[:k], vectors[:, :k], self.sigma_sq)
