"""Spectral graph embedding, drawing and clustering.

Step 2 of SGL embeds graph nodes with the first ``r - 1`` nontrivial Laplacian
eigenvectors scaled by ``1 / sqrt(lambda_i + 1/sigma^2)`` (Eq. 12).  The same
eigenvectors also drive the paper's visualisation methodology: spectral graph
drawing (u2/u3 as 2-D node coordinates, Koren [6]) and spectral clustering for
node colouring [15].
"""

from repro.embedding.spectral import SpectralEmbedding, spectral_embedding_matrix
from repro.embedding.drawing import spectral_layout
from repro.embedding.kmeans import KMeansResult, kmeans
from repro.embedding.clustering import spectral_clustering

__all__ = [
    "SpectralEmbedding",
    "spectral_embedding_matrix",
    "spectral_layout",
    "KMeansResult",
    "kmeans",
    "spectral_clustering",
]
