"""Spectral graph embedding, drawing and clustering.

Step 2 of SGL embeds graph nodes with the first ``r - 1`` nontrivial Laplacian
eigenvectors scaled by ``1 / sqrt(lambda_i + 1/sigma^2)`` (Eq. 12).  Two entry
points compute that embedding:

* :func:`spectral_embedding_matrix` -- stateless, solves the eigenproblem
  from scratch on every call;
* :class:`EmbeddingEngine` -- stateful and warm-started, reusing the previous
  call's eigenvectors to refresh the embedding of an incrementally densified
  graph in a few iterations (the default inside the SGL learner's loop);
* :class:`MultilevelEmbeddingEngine` -- stateful coarsen-solve-refine path
  that reuses the coarsening hierarchy across densification iterations (the
  near-linear-time multilevel machinery of the paper, engine mode
  ``"multilevel"``).

The same eigenvectors also drive the paper's visualisation methodology:
spectral graph drawing (u2/u3 as 2-D node coordinates, Koren [6]) and spectral
clustering for node colouring [15].
"""

from repro.embedding.spectral import (
    SpectralEmbedding,
    embedding_from_eigenpairs,
    spectral_embedding_matrix,
)
from repro.embedding.engine import EmbeddingEngine, EngineStats
from repro.embedding.multilevel_engine import (
    MultilevelEmbeddingEngine,
    MultilevelEngineStats,
)
from repro.embedding.drawing import spectral_layout
from repro.embedding.kmeans import KMeansResult, kmeans
from repro.embedding.clustering import spectral_clustering

__all__ = [
    "SpectralEmbedding",
    "EmbeddingEngine",
    "EngineStats",
    "MultilevelEmbeddingEngine",
    "MultilevelEngineStats",
    "embedding_from_eigenpairs",
    "spectral_embedding_matrix",
    "spectral_layout",
    "KMeansResult",
    "kmeans",
    "spectral_clustering",
]
