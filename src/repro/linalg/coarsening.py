"""Graph coarsening by heavy-edge matching.

The paper achieves near-linear-time spectral embedding by relying on
multilevel eigensolvers [16], which coarsen the graph, solve a small dense
eigenproblem and interpolate back.  This module provides the coarsening
substrate: a greedy heavy-edge matching (the classic multigrid/METIS
aggregation rule -- each node is merged with its heaviest unmatched
neighbour), the induced piecewise-constant prolongation operator and the
Galerkin coarse Laplacian ``L_c = P^T L P``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import WeightedGraph

__all__ = ["CoarseLevel", "heavy_edge_matching", "coarsen_graph", "coarsening_hierarchy"]


@dataclass(frozen=True)
class CoarseLevel:
    """One level of a coarsening hierarchy.

    Attributes
    ----------
    graph:
        The coarse graph (Galerkin product of the finer graph).
    aggregates:
        Length-``N_fine`` array mapping each fine node to its coarse node.
    prolongation:
        Sparse ``(N_fine, N_coarse)`` piecewise-constant interpolation matrix
        with unit entries, so ``L_coarse = P^T L_fine P``.

    Examples
    --------
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.linalg import coarsen_graph
    >>> level = coarsen_graph(grid_2d(6, 6))
    >>> level.aggregates.shape, level.prolongation.shape[0]
    ((36,), 36)
    """

    graph: WeightedGraph
    aggregates: np.ndarray
    prolongation: sp.csr_matrix


def heavy_edge_matching(graph: WeightedGraph, *, seed: int | None = 0) -> np.ndarray:
    """Greedy heavy-edge matching.

    Visits nodes in random order; each unmatched node is merged with its
    heaviest unmatched neighbour (or left as a singleton aggregate).  Returns
    an array mapping every node to a contiguous aggregate id.

    Examples
    --------
    Matching roughly halves the node count of a mesh:

    >>> from repro.graphs.generators import grid_2d
    >>> from repro.linalg import heavy_edge_matching
    >>> aggregates = heavy_edge_matching(grid_2d(8, 8), seed=0)
    >>> bool(32 <= aggregates.max() + 1 <= 40)
    True
    """
    n = graph.n_nodes
    rng = np.random.default_rng(seed)
    adjacency = graph.adjacency()
    matched = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    next_aggregate = 0
    for node in order:
        if matched[node] >= 0:
            continue
        start, end = adjacency.indptr[node], adjacency.indptr[node + 1]
        neighbors = adjacency.indices[start:end]
        weights = adjacency.data[start:end]
        best = -1
        best_weight = -np.inf
        for nb, w in zip(neighbors, weights):
            if matched[nb] < 0 and nb != node and w > best_weight:
                best, best_weight = int(nb), float(w)
        matched[node] = next_aggregate
        if best >= 0:
            matched[best] = next_aggregate
        next_aggregate += 1
    return matched


def _prolongation_from_aggregates(aggregates: np.ndarray, n_coarse: int) -> sp.csr_matrix:
    n_fine = aggregates.size
    data = np.ones(n_fine)
    return sp.csr_matrix(
        (data, (np.arange(n_fine), aggregates)), shape=(n_fine, n_coarse)
    )


def coarsen_graph(graph: WeightedGraph, *, seed: int | None = 0) -> CoarseLevel:
    """Coarsen ``graph`` one level via heavy-edge matching.

    The coarse Laplacian is the Galerkin product ``P^T L P``; since ``P`` is
    a partition indicator matrix this is exactly the graph obtained by
    contracting each aggregate and summing parallel edge weights.

    Examples
    --------
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.linalg import coarsen_graph
    >>> fine = grid_2d(8, 8)
    >>> level = coarsen_graph(fine, seed=0)
    >>> bool(level.graph.n_nodes < fine.n_nodes)
    True
    >>> bool(level.graph.total_weight <= fine.total_weight)
    True
    """
    aggregates = heavy_edge_matching(graph, seed=seed)
    n_coarse = int(aggregates.max()) + 1 if aggregates.size else 0
    prolongation = _prolongation_from_aggregates(aggregates, n_coarse)
    coarse_adj = (prolongation.T @ graph.adjacency() @ prolongation).tocoo()
    mask = coarse_adj.row < coarse_adj.col
    coarse = WeightedGraph(
        n_coarse,
        coarse_adj.row[mask],
        coarse_adj.col[mask],
        coarse_adj.data[mask],
    )
    return CoarseLevel(graph=coarse, aggregates=aggregates, prolongation=prolongation)


def coarsening_hierarchy(
    graph: WeightedGraph,
    *,
    target_size: int = 200,
    max_levels: int = 30,
    seed: int | None = 0,
) -> list[CoarseLevel]:
    """Repeatedly coarsen until the graph has at most ``target_size`` nodes.

    Coarsening stops early if a level fails to shrink the graph by at least
    10% (which can happen on star-like graphs where matching saturates).
    Returns the list of levels from finest to coarsest; an empty list means
    the input graph was already small enough.
    """
    if target_size < 2:
        raise ValueError("target_size must be at least 2")
    levels: list[CoarseLevel] = []
    current = graph
    for level_index in range(max_levels):
        if current.n_nodes <= target_size:
            break
        level = coarsen_graph(current, seed=None if seed is None else seed + level_index)
        if level.graph.n_nodes >= int(0.9 * current.n_nodes):
            break
        levels.append(level)
        current = level.graph
    return levels
