"""Graph coarsening by heavy-edge matching.

The paper achieves near-linear-time spectral embedding by relying on
multilevel eigensolvers [16], which coarsen the graph, solve a small dense
eigenproblem and interpolate back.  This module provides the coarsening
substrate: a greedy heavy-edge matching (the classic multigrid/METIS
aggregation rule -- each node is merged with its heaviest unmatched
neighbour), the induced piecewise-constant prolongation operator and the
Galerkin coarse Laplacian ``L_c = P^T L P``.

Because ``P`` is a partition-indicator matrix, the Galerkin product is
*weight-preserving*: the coarse graph is exactly the contraction of the fine
graph (parallel inter-aggregate edges have their conductances summed,
intra-aggregate edges disappear into the contracted node), and
``L_coarse = P^T L_fine P`` holds identically -- no mass is invented.

:class:`CoarseningHierarchy` stacks levels into a reusable object: the
matchings (the expensive, sequential part) are computed once, while the
coarse graphs can be cheaply re-projected from an updated fine graph via
:meth:`CoarseningHierarchy.reproject` -- the substrate for hierarchy reuse
across the SGL densification loop, which only changes a fraction of the
edges per iteration.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Iterator

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import WeightedGraph

__all__ = [
    "CoarseLevel",
    "CoarseningHierarchy",
    "contract_graph",
    "heavy_edge_matching",
    "coarsen_graph",
    "coarsening_hierarchy",
]


@dataclass(frozen=True)
class CoarseLevel:
    """One level of a coarsening hierarchy.

    Attributes
    ----------
    graph:
        The coarse graph (Galerkin product of the finer graph).
    aggregates:
        Length-``N_fine`` array mapping each fine node to its coarse node.
    prolongation:
        Sparse ``(N_fine, N_coarse)`` piecewise-constant interpolation matrix
        with unit entries, so ``L_coarse = P^T L_fine P``.

    Examples
    --------
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.linalg import coarsen_graph
    >>> level = coarsen_graph(grid_2d(6, 6))
    >>> level.aggregates.shape, level.prolongation.shape[0]
    ((36,), 36)
    """

    graph: WeightedGraph
    aggregates: np.ndarray
    prolongation: sp.csr_matrix


def heavy_edge_matching(graph: WeightedGraph, *, seed: int | None = 0) -> np.ndarray:
    """Greedy heavy-edge matching.

    Visits nodes in random order; each unmatched node is merged with its
    heaviest unmatched neighbour (or left as a singleton aggregate).  Returns
    an array mapping every node to a contiguous aggregate id.

    Examples
    --------
    Matching roughly halves the node count of a mesh:

    >>> from repro.graphs.generators import grid_2d
    >>> from repro.linalg import heavy_edge_matching
    >>> aggregates = heavy_edge_matching(grid_2d(8, 8), seed=0)
    >>> bool(32 <= aggregates.max() + 1 <= 40)
    True
    """
    n = graph.n_nodes
    rng = np.random.default_rng(seed)
    adjacency = graph.adjacency()
    matched = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    next_aggregate = 0
    for node in order:
        if matched[node] >= 0:
            continue
        start, end = adjacency.indptr[node], adjacency.indptr[node + 1]
        neighbors = adjacency.indices[start:end]
        weights = adjacency.data[start:end]
        best = -1
        best_weight = -np.inf
        for nb, w in zip(neighbors, weights):
            if matched[nb] < 0 and nb != node and w > best_weight:
                best, best_weight = int(nb), float(w)
        matched[node] = next_aggregate
        if best >= 0:
            matched[best] = next_aggregate
        next_aggregate += 1
    return matched


def _prolongation_from_aggregates(aggregates: np.ndarray, n_coarse: int) -> sp.csr_matrix:
    n_fine = aggregates.size
    data = np.ones(n_fine)
    return sp.csr_matrix(
        (data, (np.arange(n_fine), aggregates)), shape=(n_fine, n_coarse)
    )


def contract_graph(
    graph: WeightedGraph, aggregates: np.ndarray, n_coarse: int
) -> WeightedGraph:
    """Contract ``graph`` along an aggregate map (the Galerkin coarse graph).

    Equivalent to building ``P^T A P`` and dropping the diagonal, but done
    directly on the edge arrays: relabel both endpoints by their aggregate id
    and let the :class:`~repro.graphs.graph.WeightedGraph` constructor merge
    parallel edges (conductances sum) and drop the self loops that contracted
    intra-aggregate edges become.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.graphs.graph import WeightedGraph
    >>> from repro.linalg.coarsening import contract_graph
    >>> square = WeightedGraph(4, [0, 1, 2, 0], [1, 2, 3, 3])
    >>> coarse = contract_graph(square, np.array([0, 0, 1, 1]), 2)
    >>> coarse.n_nodes, coarse.n_edges, coarse.total_weight  # two parallel edges merge
    (2, 1, 2.0)
    """
    aggregates = np.asarray(aggregates, dtype=np.int64)
    if aggregates.size != graph.n_nodes:
        raise ValueError("aggregates must assign every fine node to a coarse node")
    return WeightedGraph(
        n_coarse, aggregates[graph.rows], aggregates[graph.cols], graph.weights
    )


def coarsen_graph(graph: WeightedGraph, *, seed: int | None = 0) -> CoarseLevel:
    """Coarsen ``graph`` one level via heavy-edge matching.

    The coarse Laplacian is the Galerkin product ``P^T L P``; since ``P`` is
    a partition indicator matrix this is exactly the graph obtained by
    contracting each aggregate and summing parallel edge weights.

    Examples
    --------
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.linalg import coarsen_graph
    >>> fine = grid_2d(8, 8)
    >>> level = coarsen_graph(fine, seed=0)
    >>> bool(level.graph.n_nodes < fine.n_nodes)
    True
    >>> bool(level.graph.total_weight <= fine.total_weight)
    True
    """
    aggregates = heavy_edge_matching(graph, seed=seed)
    n_coarse = int(aggregates.max()) + 1 if aggregates.size else 0
    prolongation = _prolongation_from_aggregates(aggregates, n_coarse)
    coarse = contract_graph(graph, aggregates, n_coarse)
    return CoarseLevel(graph=coarse, aggregates=aggregates, prolongation=prolongation)


class CoarseningHierarchy(Sequence):
    """A reusable stack of :class:`CoarseLevel` objects, finest to coarsest.

    Behaves like the plain list of levels it used to be (``len``, indexing,
    iteration, truthiness), plus hierarchy-level services:

    * :meth:`reproject` rebuilds every coarse graph from an *updated* fine
      graph through the **stored** matchings -- one vectorised contraction
      per level, no new heavy-edge matching.  This is what makes the
      hierarchy reusable across SGL densification iterations: the matching
      (sequential, the dominant build cost) is amortised while the Galerkin
      coarse Laplacians stay exact for the current graph.
    * :meth:`edge_churn` measures how much the fine edge set grew since the
      matchings were computed, so callers can re-coarsen only when the stale
      matching would start to hurt aggregate quality.

    Examples
    --------
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.linalg import coarsening_hierarchy
    >>> hierarchy = coarsening_hierarchy(grid_2d(16, 16), target_size=32)
    >>> hierarchy.fine_n_nodes, hierarchy.coarsest.n_nodes <= 32
    (256, True)
    >>> denser = grid_2d(16, 16).add_edges([(0, 255)], [2.0])
    >>> refreshed = hierarchy.reproject(denser)
    >>> bool(refreshed.edge_churn(denser) > 0), refreshed.n_levels == hierarchy.n_levels
    (True, True)
    """

    def __init__(
        self,
        fine_graph: WeightedGraph,
        levels: Sequence[CoarseLevel],
        *,
        baseline_n_edges: int | None = None,
    ) -> None:
        self._levels = list(levels)
        self._fine_n_nodes = fine_graph.n_nodes
        # Edge count the *matchings* were computed for.  reproject() carries
        # it over unchanged, so edge_churn keeps measuring drift since the
        # last matching build — not since the last reprojection (which would
        # make a small-batch caller's churn threshold unreachable).
        self._baseline_n_edges = (
            fine_graph.n_edges if baseline_n_edges is None else int(baseline_n_edges)
        )

    # -- sequence protocol (backwards compatible with the old list return) --
    def __len__(self) -> int:
        return len(self._levels)

    def __getitem__(self, index):
        return self._levels[index]

    def __iter__(self) -> Iterator[CoarseLevel]:
        return iter(self._levels)

    # -- introspection ------------------------------------------------------
    @property
    def n_levels(self) -> int:
        """Number of coarse levels (0 when the fine graph was small enough)."""
        return len(self._levels)

    @property
    def fine_n_nodes(self) -> int:
        """Node count of the fine graph the hierarchy was built for."""
        return self._fine_n_nodes

    @property
    def fine_n_edges(self) -> int:
        """Fine edge count the matchings were built for (reproject keeps it)."""
        return self._baseline_n_edges

    @property
    def level_sizes(self) -> tuple[int, ...]:
        """Node counts from finest to coarsest (fine graph included)."""
        return (self._fine_n_nodes,) + tuple(level.graph.n_nodes for level in self._levels)

    @property
    def coarsest(self) -> WeightedGraph:
        """The coarsest graph (raises on an empty hierarchy)."""
        if not self._levels:
            raise ValueError("hierarchy has no coarse levels")
        return self._levels[-1].graph

    # -- reuse services -----------------------------------------------------
    def edge_churn(self, graph: WeightedGraph) -> float:
        """Relative fine-edge-count change since the matchings were built.

        Reprojection does *not* reset the baseline — churn accumulates over
        many small batches until the caller decides to re-match.  The SGL
        loop only ever adds edges, so edge-count growth is a faithful churn
        measure; the absolute value guards callers that also remove.
        """
        if graph.n_nodes != self._fine_n_nodes:
            raise ValueError("graph does not match the hierarchy's node set")
        baseline = max(self._baseline_n_edges, 1)
        return abs(graph.n_edges - self._baseline_n_edges) / baseline

    def reproject(self, graph: WeightedGraph) -> "CoarseningHierarchy":
        """Galerkin-project an updated fine graph through the stored matchings.

        Returns a new hierarchy whose coarse graphs are the exact
        contractions of ``graph`` (level by level), while the aggregate maps
        and prolongation operators are shared with ``self``.  Cost is one
        vectorised edge contraction per level -- orders of magnitude cheaper
        than re-running heavy-edge matching.
        """
        if graph.n_nodes != self._fine_n_nodes:
            raise ValueError("graph does not match the hierarchy's node set")
        current = graph
        levels: list[CoarseLevel] = []
        for level in self._levels:
            coarse = contract_graph(
                current, level.aggregates, level.prolongation.shape[1]
            )
            levels.append(
                CoarseLevel(
                    graph=coarse,
                    aggregates=level.aggregates,
                    prolongation=level.prolongation,
                )
            )
            current = coarse
        return CoarseningHierarchy(
            graph, levels, baseline_n_edges=self._baseline_n_edges
        )


def coarsening_hierarchy(
    graph: WeightedGraph,
    *,
    target_size: int = 200,
    max_levels: int = 30,
    min_coarsening_ratio: float = 0.9,
    seed: int | None = 0,
) -> CoarseningHierarchy:
    """Repeatedly coarsen until the graph has at most ``target_size`` nodes.

    Parameters
    ----------
    target_size:
        Stop once a level has at most this many nodes (the coarsest problem
        is meant to be solved densely).
    max_levels:
        Hard cap on the number of levels.
    min_coarsening_ratio:
        Stop early when a level fails to shrink the graph below this
        fraction of its parent (matching saturates on star-like graphs;
        piling on non-shrinking levels would only add refinement cost).
    seed:
        Seed for the per-level matching order (level ``i`` uses ``seed + i``).

    Returns the :class:`CoarseningHierarchy` from finest to coarsest; an
    empty hierarchy means the input graph was already small enough.
    """
    if target_size < 2:
        raise ValueError("target_size must be at least 2")
    if max_levels < 1:
        raise ValueError("max_levels must be at least 1")
    if not 0.0 < min_coarsening_ratio <= 1.0:
        raise ValueError("min_coarsening_ratio must be in (0, 1]")
    levels: list[CoarseLevel] = []
    current = graph
    for level_index in range(max_levels):
        if current.n_nodes <= target_size:
            break
        level = coarsen_graph(current, seed=None if seed is None else seed + level_index)
        if level.graph.n_nodes >= int(min_coarsening_ratio * current.n_nodes):
            break
        levels.append(level)
        current = level.graph
    return CoarseningHierarchy(graph, levels)
