"""Eigensolvers for the smallest nontrivial Laplacian eigenpairs.

Step 2 of the SGL algorithm needs the first ``r`` nontrivial eigenvectors of
the current graph Laplacian.  :func:`laplacian_eigenpairs` provides a single
entry point with three backends:

* ``"dense"``        -- ``numpy.linalg.eigh`` on the full matrix (small N,
  also the reference the other backends are tested against);
* ``"shift-invert"`` -- Lanczos (ARPACK ``eigsh``) in shift-invert mode with a
  tiny positive shift, the workhorse for medium/large sparse Laplacians;
* ``"lobpcg"``       -- LOBPCG with Jacobi preconditioning and explicit
  deflation of the all-one null vector, useful when a good initial subspace
  is available (the multilevel solver uses it for refinement).

Both iterative backends accept ``initial_vectors=`` warm starts for callers
that already hold approximate eigenvectors — e.g. re-solving after a small
graph update.  (The incremental engine in :mod:`repro.embedding.engine`
keeps eigenpair state across the SGL densification loop with its own
Woodbury-corrected inverse-iteration ladder, and falls back to these
entry points for cold solves.)

The trivial eigenpair (eigenvalue 0, constant eigenvector) is dropped by
default, matching the paper's use of ``u_2 ... u_r``.
"""

from __future__ import annotations

from typing import Literal

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.graph import WeightedGraph

__all__ = ["laplacian_eigenpairs", "rayleigh_ritz"]


def _as_laplacian(graph_or_laplacian: WeightedGraph | sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    if isinstance(graph_or_laplacian, WeightedGraph):
        return graph_or_laplacian.laplacian()
    return sp.csr_matrix(graph_or_laplacian)


def rayleigh_ritz(
    laplacian: sp.spmatrix | np.ndarray,
    basis: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Rayleigh-Ritz extraction of approximate eigenpairs from a subspace.

    Orthonormalises ``basis`` (columns), projects the Laplacian onto it and
    solves the small dense eigenproblem.  Returns Ritz values (ascending) and
    Ritz vectors lifted back to the full space.

    Examples
    --------
    Feeding exact eigenvectors back in reproduces the eigenvalues (path graph
    on three nodes, nontrivial spectrum ``{1, 3}``):

    >>> import numpy as np
    >>> from repro.graphs.graph import WeightedGraph
    >>> from repro.linalg.eigen import laplacian_eigenpairs, rayleigh_ritz
    >>> path = WeightedGraph(3, [0, 1], [1, 2])
    >>> _, vectors = laplacian_eigenpairs(path, 2, method="dense")
    >>> values, _ = rayleigh_ritz(path.laplacian(), vectors)
    >>> np.round(values, 6).tolist()
    [1.0, 3.0]
    """
    lap = _as_laplacian(laplacian)
    q, _ = np.linalg.qr(np.asarray(basis, dtype=np.float64))
    small = q.T @ (lap @ q)
    small = 0.5 * (small + small.T)
    values, vectors = np.linalg.eigh(small)
    return values, q @ vectors


def _dense_eigenpairs(lap: sp.csr_matrix, k: int) -> tuple[np.ndarray, np.ndarray]:
    values, vectors = np.linalg.eigh(lap.toarray())
    return values[: k], vectors[:, : k]


def _shift_invert_eigenpairs(
    lap: sp.csr_matrix,
    k: int,
    tol: float,
    seed: int | None,
    initial_vectors: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    n = lap.shape[0]
    # Shift-invert around a tiny negative sigma keeps (L - sigma I) SPD and
    # factorisable even though L itself is singular.
    scale = float(lap.diagonal().max()) if n else 1.0
    sigma = -1e-6 * max(scale, 1.0)
    if initial_vectors is not None and initial_vectors.size:
        # ARPACK accepts a single starting vector; a good warm start is the
        # sum of the previous eigenvectors (it overlaps every wanted mode).
        v0 = np.asarray(initial_vectors, dtype=np.float64).reshape(n, -1).sum(axis=1)
        norm = np.linalg.norm(v0)
        if not norm > 0:
            v0 = np.random.default_rng(seed).standard_normal(n)
        else:
            # Blend in the constant mode: warm vectors are typically the
            # *nontrivial* eigenvectors (orthogonal to the all-one vector),
            # but shift-invert Lanczos must also resolve the trivial pair —
            # starting orthogonal to it would leave its convergence to
            # round-off leakage alone.
            v0 = v0 + (norm / np.sqrt(n)) * np.ones(n)
    else:
        rng = np.random.default_rng(seed)
        v0 = rng.standard_normal(n)
    values, vectors = spla.eigsh(
        lap.tocsc(), k=min(k, n - 1), sigma=sigma, which="LM", tol=tol, v0=v0
    )
    order = np.argsort(values)
    return values[order], vectors[:, order]


def _lobpcg_eigenpairs(
    lap: sp.csr_matrix,
    k: int,
    tol: float,
    seed: int | None,
    initial_vectors: np.ndarray | None,
    maxiter: int | None = None,
    locked_vectors: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    n = lap.shape[0]
    if initial_vectors is None:
        rng = np.random.default_rng(seed)
        initial_vectors = rng.standard_normal((n, k))
    else:
        initial_vectors = np.asarray(initial_vectors, dtype=np.float64).reshape(n, -1)
        if initial_vectors.shape[1] < k:
            rng = np.random.default_rng(seed)
            extra = rng.standard_normal((n, k - initial_vectors.shape[1]))
            initial_vectors = np.hstack([initial_vectors, extra])
        elif initial_vectors.shape[1] > k:
            initial_vectors = initial_vectors[:, :k]
    ones = np.ones((n, 1)) / np.sqrt(n)
    constraints = ones
    if locked_vectors is not None and np.size(locked_vectors):
        locked = np.asarray(locked_vectors, dtype=np.float64).reshape(n, -1)
        constraints = np.hstack([ones, locked])
        # Start the iteration in the orthogonal complement of the locked block.
        initial_vectors = initial_vectors - locked @ (locked.T @ initial_vectors)
    diag = lap.diagonal()
    inv_diag = np.where(diag > 0, 1.0 / np.maximum(diag, 1e-300), 0.0)
    precond = spla.LinearOperator(
        (n, n), matvec=lambda v: inv_diag * np.asarray(v).reshape(-1)
    )
    values, vectors = spla.lobpcg(
        lap,
        initial_vectors,
        M=precond,
        Y=constraints,
        tol=tol if tol > 0 else 1e-8,
        maxiter=maxiter if maxiter is not None else max(200, 4 * k),
        largest=False,
    )
    order = np.argsort(values)
    return values[order], vectors[:, order]


def _locked_eigenpairs(
    lap: sp.csr_matrix,
    k: int,
    locked_vectors: np.ndarray,
    tol: float,
    seed: int | None,
    initial_vectors: np.ndarray | None,
    maxiter: int | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Deflated solve: freeze converged eigenvectors, compute only the rest.

    The locked block is orthonormalised and kept verbatim (its eigenvalues
    are re-read as Rayleigh quotients); the remaining pairs are computed by
    LOBPCG constrained to the orthogonal complement of the locked block and
    the constant vector, then the two sets are merged in ascending order.
    """
    n = lap.shape[0]
    locked, _ = np.linalg.qr(
        np.asarray(locked_vectors, dtype=np.float64).reshape(n, -1)
    )
    locked_values = np.einsum("ij,ij->j", locked, lap @ locked)
    remaining = k - locked.shape[1]
    if remaining <= 0:
        order = np.argsort(locked_values)[:k]
        return locked_values[order], locked[:, order]
    new_values, new_vectors = _lobpcg_eigenpairs(
        lap, remaining, tol, seed, initial_vectors, maxiter, locked_vectors=locked
    )
    values = np.concatenate([locked_values, new_values[:remaining]])
    vectors = np.hstack([locked, new_vectors[:, :remaining]])
    order = np.argsort(values)
    return values[order], vectors[:, order]


def laplacian_eigenpairs(
    graph_or_laplacian: WeightedGraph | sp.spmatrix | np.ndarray,
    k: int,
    *,
    method: Literal["auto", "dense", "shift-invert", "lobpcg"] = "auto",
    drop_trivial: bool = True,
    tol: float = 0.0,
    seed: int | None = 0,
    initial_vectors: np.ndarray | None = None,
    maxiter: int | None = None,
    locked_vectors: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Smallest Laplacian eigenpairs, ascending.

    Parameters
    ----------
    graph_or_laplacian:
        Graph or sparse/dense Laplacian (assumed connected for the trivial
        eigenpair conventions to hold).
    k:
        Number of *nontrivial* eigenpairs requested when ``drop_trivial`` is
        True (the default); otherwise the total number of smallest eigenpairs.
    method:
        Backend; ``"auto"`` picks dense for small problems and shift-invert
        Lanczos otherwise.
    drop_trivial:
        Drop the near-zero eigenvalue and its constant eigenvector, returning
        ``lambda_2 <= ... <= lambda_{k+1}`` and ``u_2 ... u_{k+1}``.
    tol:
        Backend tolerance (0 means backend default / machine precision).
    seed:
        Seed for the iterative backends' random starting vectors.
    initial_vectors:
        Optional ``(N, k)`` warm-start subspace for the iterative backends.
        The LOBPCG backend uses it as its full initial block (padding with
        random columns when fewer than ``k`` are supplied); the shift-invert
        backend collapses it into its single ARPACK starting vector (with a
        constant-mode component blended in so the trivial pair stays
        reachable).
    maxiter:
        Iteration cap for the LOBPCG backend (default ``max(200, 4k)``).
        Warm-started calls typically pass a small cap since they only need a
        few iterations to re-converge.
    locked_vectors:
        Optional ``(N, m)`` block of already-converged nontrivial
        eigenvectors to *lock*: they are returned verbatim (eigenvalues
        re-read as Rayleigh quotients) and only the remaining ``k - m``
        pairs are computed, by LOBPCG constrained to their orthogonal
        complement.  Requires ``drop_trivial=True`` (the locked block is
        assumed orthogonal to the constant vector).

    Returns
    -------
    (eigenvalues, eigenvectors):
        ``eigenvalues`` has shape ``(k,)``; ``eigenvectors`` has shape
        ``(N, k)`` with unit-norm columns.

    Examples
    --------
    The path graph on three nodes has Laplacian spectrum ``{0, 1, 3}``; the
    trivial eigenpair is dropped by default:

    >>> import numpy as np
    >>> from repro.graphs.graph import WeightedGraph
    >>> from repro.linalg.eigen import laplacian_eigenpairs
    >>> path = WeightedGraph(3, [0, 1], [1, 2])
    >>> values, vectors = laplacian_eigenpairs(path, 2, method="dense")
    >>> np.round(values, 6).tolist()
    [1.0, 3.0]
    >>> vectors.shape
    (3, 2)

    Warm-starting LOBPCG from already-converged vectors reproduces them:

    >>> from repro.graphs.generators import grid_2d
    >>> grid = grid_2d(5, 5)
    >>> exact, exact_vectors = laplacian_eigenpairs(grid, 2, method="dense")
    >>> warm, _ = laplacian_eigenpairs(
    ...     grid, 2, method="lobpcg", initial_vectors=exact_vectors, maxiter=10
    ... )
    >>> bool(np.allclose(warm, exact, atol=1e-6))
    True

    Locked vectors are frozen: they come back verbatim and only the missing
    pairs are solved for in their orthogonal complement:

    >>> exact3, exact3_vectors = laplacian_eigenpairs(grid, 3, method="dense")
    >>> locked_vals, locked_vecs = laplacian_eigenpairs(
    ...     grid, 3, locked_vectors=exact3_vectors[:, :2]
    ... )
    >>> bool(np.allclose(locked_vecs[:, :2], exact3_vectors[:, :2]))
    True
    >>> bool(np.allclose(locked_vals, exact3, atol=1e-5))
    True
    """
    lap = _as_laplacian(graph_or_laplacian).tocsr()
    n = lap.shape[0]
    if n < 2:
        raise ValueError("need at least two nodes for nontrivial eigenpairs")
    if k < 1:
        raise ValueError("k must be at least 1")
    if locked_vectors is not None and np.size(locked_vectors):
        if not drop_trivial:
            raise ValueError("locked_vectors requires drop_trivial=True")
        return _locked_eigenpairs(
            lap, k, locked_vectors, tol, seed, initial_vectors, maxiter
        )

    n_wanted = k + 1 if drop_trivial else k
    n_wanted = min(n_wanted, n)

    if method == "auto":
        method = "dense" if (n <= 600 or n_wanted >= n - 2) else "shift-invert"

    if method == "dense":
        values, vectors = _dense_eigenpairs(lap, n_wanted)
    elif method == "shift-invert":
        values, vectors = _shift_invert_eigenpairs(lap, n_wanted, tol, seed, initial_vectors)
    elif method == "lobpcg":
        if drop_trivial:
            # LOBPCG deflates the constant vector explicitly, so it already
            # returns nontrivial pairs; request exactly k of them.
            values, vectors = _lobpcg_eigenpairs(lap, k, tol, seed, initial_vectors, maxiter)
            return values[:k], vectors[:, :k]
        values, vectors = _lobpcg_eigenpairs(lap, n_wanted, tol, seed, initial_vectors, maxiter)
    else:
        raise ValueError(f"unknown method {method!r}")

    if drop_trivial:
        values, vectors = values[1:], vectors[:, 1:]
    return values[:k], vectors[:, :k]
