"""Sparse linear algebra substrate for Laplacian matrices.

The SGL algorithm needs three numerical kernels, all centred on graph
Laplacians (singular, symmetric, diagonally dominant M-matrices):

* solving ``L x = b`` for right-hand sides orthogonal to the all-one vector
  (voltage simulation, Step 5 edge scaling) -- :mod:`repro.linalg.solvers`,
  :mod:`repro.linalg.conjugate_gradient`, :mod:`repro.linalg.preconditioners`;
* computing the first few nontrivial Laplacian eigenpairs (Step 2 spectral
  embedding) -- :mod:`repro.linalg.eigen` and the nearly-linear-time
  :mod:`repro.linalg.multilevel` solver built on
  :mod:`repro.linalg.coarsening`;
* effective-resistance computations (exact and Johnson-Lindenstrauss
  approximated) -- :mod:`repro.linalg.pseudoinverse`.

The dense/sparse primitives behind the multilevel refinement inner loops are
pluggable through :mod:`repro.linalg.backends` (numpy default, cupy when
available), and :mod:`repro.linalg.chebyshev` provides the mixed-precision
Chebyshev-filtered subspace iteration built on them.
"""

from repro.linalg.backends import (
    LinalgBackend,
    LinalgBackendError,
    available_backends,
    get_backend,
)
from repro.linalg.chebyshev import (
    ChebyshevOutcome,
    chebyshev_filter,
    chebyshev_refine,
    lanczos_spectral_bound,
)
from repro.linalg.solvers import LaplacianSolver
from repro.linalg.conjugate_gradient import conjugate_gradient
from repro.linalg.preconditioners import (
    jacobi_preconditioner,
    spanning_tree_preconditioner,
)
from repro.linalg.eigen import laplacian_eigenpairs
from repro.linalg.coarsening import (
    CoarseLevel,
    CoarseningHierarchy,
    coarsen_graph,
    coarsening_hierarchy,
    contract_graph,
    heavy_edge_matching,
)
from repro.linalg.multilevel import REFINEMENT_BACKENDS, MultilevelEigensolver
from repro.linalg.pseudoinverse import (
    effective_resistance,
    effective_resistance_matrix,
    effective_resistances_jl,
    laplacian_pseudoinverse,
)

__all__ = [
    "ChebyshevOutcome",
    "LinalgBackend",
    "LinalgBackendError",
    "REFINEMENT_BACKENDS",
    "available_backends",
    "chebyshev_filter",
    "chebyshev_refine",
    "get_backend",
    "lanczos_spectral_bound",
    "LaplacianSolver",
    "conjugate_gradient",
    "jacobi_preconditioner",
    "spanning_tree_preconditioner",
    "laplacian_eigenpairs",
    "CoarseLevel",
    "CoarseningHierarchy",
    "coarsen_graph",
    "coarsening_hierarchy",
    "contract_graph",
    "heavy_edge_matching",
    "MultilevelEigensolver",
    "effective_resistance",
    "effective_resistance_matrix",
    "effective_resistances_jl",
    "laplacian_pseudoinverse",
]
