"""Multilevel (coarsen - solve - refine) Laplacian eigensolver.

This mirrors the nearly-linear-time spectral embedding machinery the paper
relies on for Step 2 [13], [16]: instead of running Lanczos on the full graph,
the graph is coarsened by heavy-edge matching until it is small, the dense
eigenproblem is solved at the coarsest level, the eigenvectors are
interpolated back level by level and smoothed/refined on each finer level with
a few LOBPCG (or Rayleigh-Ritz) steps.  In practice this gives accurate
leading eigenvectors at a cost dominated by a handful of sparse matrix-vector
products per level -- i.e. near-linear in the number of edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.graph import WeightedGraph
from repro.linalg.coarsening import CoarseLevel, coarsening_hierarchy
from repro.linalg.eigen import laplacian_eigenpairs, rayleigh_ritz

__all__ = ["MultilevelEigensolver", "MultilevelResult"]


@dataclass(frozen=True)
class MultilevelResult:
    """Approximate eigenpairs plus hierarchy statistics."""

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    level_sizes: tuple[int, ...]


class MultilevelEigensolver:
    """Approximate smallest nontrivial Laplacian eigenpairs via a V-cycle.

    Parameters
    ----------
    coarse_size:
        Coarsen until the graph has at most this many nodes; the coarsest
        problem is solved densely.
    refinement_steps:
        Number of LOBPCG refinement iterations applied on each finer level
        after interpolation.  ``0`` falls back to a single Rayleigh-Ritz
        projection per level (cheapest, least accurate).
    seed:
        Seed for the coarsening order.

    Examples
    --------
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.linalg import MultilevelEigensolver
    >>> graph = grid_2d(12, 12)
    >>> result = MultilevelEigensolver(coarse_size=32, seed=0).solve(graph, 2)
    >>> result.eigenvalues.shape, result.eigenvectors.shape
    ((2,), (144, 2))
    >>> result.level_sizes[0], bool((result.eigenvalues > 0).all())
    (144, True)
    """

    def __init__(
        self,
        *,
        coarse_size: int = 200,
        refinement_steps: int = 10,
        seed: int | None = 0,
    ) -> None:
        if coarse_size < 4:
            raise ValueError("coarse_size must be at least 4")
        if refinement_steps < 0:
            raise ValueError("refinement_steps must be non-negative")
        self.coarse_size = int(coarse_size)
        self.refinement_steps = int(refinement_steps)
        self.seed = seed

    # ------------------------------------------------------------------
    def _refine(
        self,
        laplacian: sp.csr_matrix,
        basis: np.ndarray,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Refine an interpolated eigenvector basis on the current level."""
        n = laplacian.shape[0]
        ones = np.ones((n, 1)) / np.sqrt(n)
        # Remove the component along the constant vector before refining.
        basis = basis - ones @ (ones.T @ basis)
        if self.refinement_steps == 0 or n <= basis.shape[1] + 2:
            values, vectors = rayleigh_ritz(laplacian, basis)
            return values[:k], vectors[:, :k]
        diag = laplacian.diagonal()
        inv_diag = np.where(diag > 0, 1.0 / np.maximum(diag, 1e-300), 0.0)
        precond = spla.LinearOperator((n, n), matvec=lambda v: inv_diag * v)
        try:
            values, vectors = spla.lobpcg(
                laplacian,
                basis,
                M=precond,
                Y=ones,
                maxiter=self.refinement_steps,
                tol=1e-8,
                largest=False,
            )
        except Exception:
            # LOBPCG can fail on ill-conditioned bases; Rayleigh-Ritz is a
            # safe (if less accurate) fallback.
            values, vectors = rayleigh_ritz(laplacian, basis)
        order = np.argsort(values)
        return np.asarray(values)[order][:k], np.asarray(vectors)[:, order][:, :k]

    # ------------------------------------------------------------------
    def solve(
        self,
        graph: WeightedGraph,
        k: int,
    ) -> MultilevelResult:
        """Compute the ``k`` smallest nontrivial eigenpairs of ``graph``'s Laplacian."""
        if k < 1:
            raise ValueError("k must be at least 1")
        n = graph.n_nodes
        if n <= max(self.coarse_size, k + 2):
            values, vectors = laplacian_eigenpairs(graph, k, method="dense")
            return MultilevelResult(values, vectors, (n,))

        levels = coarsening_hierarchy(
            graph, target_size=self.coarse_size, seed=self.seed
        )
        if not levels:
            values, vectors = laplacian_eigenpairs(graph, k, method="auto", seed=self.seed)
            return MultilevelResult(values, vectors, (n,))

        coarsest = levels[-1].graph
        k_coarse = min(k, max(coarsest.n_nodes - 2, 1))
        values, vectors = laplacian_eigenpairs(coarsest, k_coarse, method="dense")

        # Interpolate back up the hierarchy, refining at every level.
        graphs = [graph] + [level.graph for level in levels]
        for level_index in range(len(levels) - 1, -1, -1):
            level: CoarseLevel = levels[level_index]
            fine_graph = graphs[level_index]
            basis = level.prolongation @ vectors
            if basis.shape[1] < k and fine_graph.n_nodes > k + 2:
                # Augment with random vectors if the coarse level could not
                # support k nontrivial modes.
                rng = np.random.default_rng(self.seed)
                extra = rng.standard_normal((fine_graph.n_nodes, k - basis.shape[1]))
                basis = np.hstack([basis, extra])
            values, vectors = self._refine(fine_graph.laplacian(), basis, k)

        sizes = tuple(g.n_nodes for g in graphs)
        return MultilevelResult(values[:k], vectors[:, :k], sizes)
