"""Multilevel (coarsen - solve - refine) Laplacian eigensolver.

This mirrors the nearly-linear-time spectral embedding machinery the paper
relies on for Step 2 [13], [16]: instead of running Lanczos on the full graph,
the graph is coarsened by heavy-edge matching until it is small, the dense
eigenproblem is solved at the coarsest level, the eigenvectors are
interpolated back level by level and smoothed/refined on each finer level.

Three refinement backends are available.  The first two reuse the library's
existing preconditioning machinery (:func:`repro.linalg.jacobi_preconditioner`,
:func:`repro.linalg.spanning_tree_preconditioner`):

* ``"lobpcg"`` -- a few LOBPCG iterations per level with the chosen
  preconditioner and explicit deflation of the constant vector;
* ``"inverse-power"`` -- block preconditioned inverse iteration (PINVIT):
  each sweep applies the preconditioner to the eigen-residual block and
  re-extracts Ritz pairs with :func:`repro.linalg.eigen.rayleigh_ritz`,
  freezing (locking) converged Ritz vectors out of later sweeps;
* ``"chebyshev"`` -- matrix-free mixed-precision Chebyshev-filtered subspace
  iteration (:mod:`repro.linalg.chebyshev`): float32 filtering on a pluggable
  :mod:`repro.linalg.backends` compute backend, float64 Rayleigh-Ritz
  acceptance, automatic fall back to the float64 LOBPCG path when the
  acceptance residual fails (counted in :attr:`MultilevelResult.refine_stats`).

In practice this gives accurate leading eigenvectors at a cost dominated by a
handful of sparse matrix-vector products per level -- i.e. near-linear in the
number of edges.  :meth:`MultilevelEigensolver.solve` accepts a prebuilt
:class:`~repro.linalg.coarsening.CoarseningHierarchy` so callers embedding a
slowly changing graph (the SGL densification loop) can amortise the matching
cost across many solves; see :class:`repro.embedding.MultilevelEmbeddingEngine`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Literal, Sequence

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.graph import WeightedGraph
from repro.linalg.backends import LinalgBackend, get_backend
from repro.linalg.chebyshev import chebyshev_refine
from repro.linalg.coarsening import CoarseningHierarchy, coarsening_hierarchy
from repro.linalg.eigen import laplacian_eigenpairs, rayleigh_ritz
from repro.linalg.preconditioners import (
    jacobi_preconditioner,
    spanning_tree_preconditioner,
)

__all__ = ["MultilevelEigensolver", "MultilevelResult", "REFINEMENT_BACKENDS"]

#: Refinement backends accepted by :class:`MultilevelEigensolver`,
#: ``SGLConfig.refinement_backend`` and ``repro.bench run --refinement-backend``.
REFINEMENT_BACKENDS: tuple[str, ...] = ("lobpcg", "inverse-power", "chebyshev")


@dataclass(frozen=True)
class MultilevelResult:
    """Approximate eigenpairs plus hierarchy and refinement statistics.

    ``refine_stats`` aggregates the per-level refinement outcomes of the
    V-cycle.  It always carries ``backend``; the chebyshev backend adds
    ``accepts`` / ``fallbacks`` / ``bypasses`` (levels whose float64
    acceptance residual passed / failed after filtering / were detected as
    polynomial-intractable up front and routed straight to float64 LOBPCG
    without paying any filter cost), the largest acceptance ``residual``,
    the ``filter_degree`` and filtering ``dtype``; the inverse-power
    backend adds ``locked`` (Ritz vectors frozen by the PINVIT convergence
    lock, summed over levels and sweeps).
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    level_sizes: tuple[int, ...]
    refine_stats: dict = field(default_factory=dict)


def _apply_columns(
    apply: Callable[[np.ndarray], np.ndarray], block: np.ndarray
) -> np.ndarray:
    """Apply a vector preconditioner to every column of a block."""
    out = np.empty_like(block)
    for j in range(block.shape[1]):
        out[:, j] = apply(block[:, j])
    return out


class MultilevelEigensolver:
    """Approximate smallest nontrivial Laplacian eigenpairs via a V-cycle.

    Parameters
    ----------
    coarse_size:
        Coarsen until the graph has at most this many nodes; the coarsest
        problem is solved densely.
    refinement_steps:
        Number of refinement iterations applied on each finer level after
        interpolation.  ``0`` falls back to a single Rayleigh-Ritz
        projection per level (cheapest, least accurate).
    refinement:
        ``"lobpcg"`` (default), ``"inverse-power"`` (block PINVIT sweeps
        built from :func:`~repro.linalg.eigen.rayleigh_ritz`) or
        ``"chebyshev"`` (mixed-precision Chebyshev-filtered subspace
        iteration; see :func:`repro.linalg.chebyshev.chebyshev_refine`).
    preconditioner:
        ``"jacobi"`` (default; diagonal scaling) or ``"spanning-tree"``
        (support-graph preconditioning with the level's maximum spanning
        tree, exact O(N) tree solves).  Unused by ``"chebyshev"``, which
        is matrix-free; the engine skips building preconditioners there.
    refine_dtype:
        Filtering precision for the chebyshev backend (``"float32"``
        default, ``"float64"`` for a full-precision filter); the
        Rayleigh-Ritz acceptance step is always float64.
    linalg_backend:
        Compute backend name for the chebyshev filter, resolved through
        :func:`repro.linalg.backends.get_backend` (``"numpy"`` default,
        ``"auto"`` prefers cupy when importable).
    chebyshev_degree:
        Polynomial degree of each filter application.
    chebyshev_accept_tol:
        Bound-normalised residual above which a chebyshev-refined level is
        rejected and re-refined by the float64 LOBPCG path.
    lock_tol:
        Relative eigen-residual below which the PINVIT loop locks a Ritz
        vector (freezes it out of subsequent correction sweeps).
    max_levels, min_coarsening_ratio:
        Hierarchy stopping controls forwarded to
        :func:`~repro.linalg.coarsening.coarsening_hierarchy`.
    seed:
        Seed for the coarsening order.

    Examples
    --------
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.linalg import MultilevelEigensolver
    >>> graph = grid_2d(12, 12)
    >>> result = MultilevelEigensolver(coarse_size=32, seed=0).solve(graph, 2)
    >>> result.eigenvalues.shape, result.eigenvectors.shape
    ((2,), (144, 2))
    >>> result.level_sizes[0], bool((result.eigenvalues > 0).all())
    (144, True)

    A prebuilt hierarchy is reused instead of re-coarsening (the SGL loop
    exploits this to amortise matching across densification iterations):

    >>> from repro.linalg import coarsening_hierarchy
    >>> hierarchy = coarsening_hierarchy(graph, target_size=32)
    >>> reused = MultilevelEigensolver(coarse_size=32).solve(graph, 2, hierarchy=hierarchy)
    >>> bool(abs(reused.eigenvalues[0] - result.eigenvalues[0]) < 1e-6)
    True
    """

    #: Per-round matvec-row budget for the chebyshev filter: the adaptive
    #: degree cap on an n-node level is ``max(120, budget // n)``, so small
    #: levels may run the deep filters their spectra require while
    #: paper-scale levels stay at the cheap floor.
    CHEBYSHEV_WORK_BUDGET: int = 4_000_000

    #: Slack allowed between the degree a level's spectral window *needs*
    #: and the degree the work budget affords before the filter declares
    #: the spectrum polynomial-intractable and bypasses to LOBPCG.  1.0
    #: means "only filter when the affordable degree resolves the window":
    #: an underpowered filter can still scrape past the acceptance residual
    #: while converging more slowly than the preconditioned path it
    #: displaced, which is exactly the marginal regime paper-scale finest
    #: levels sit in.
    CHEBYSHEV_DEGREE_HEADROOM: float = 1.0

    def __init__(
        self,
        *,
        coarse_size: int = 200,
        refinement_steps: int = 10,
        refinement: Literal["lobpcg", "inverse-power", "chebyshev"] = "lobpcg",
        preconditioner: Literal["jacobi", "spanning-tree"] = "jacobi",
        refine_dtype: str = "float32",
        linalg_backend: str = "numpy",
        chebyshev_degree: int = 10,
        chebyshev_accept_tol: float = 5e-2,
        lock_tol: float = 1e-6,
        max_levels: int = 30,
        min_coarsening_ratio: float = 0.9,
        seed: int | None = 0,
    ) -> None:
        if coarse_size < 4:
            raise ValueError("coarse_size must be at least 4")
        if refinement_steps < 0:
            raise ValueError("refinement_steps must be non-negative")
        if refinement not in REFINEMENT_BACKENDS:
            raise ValueError(f"refinement must be one of {REFINEMENT_BACKENDS}")
        if preconditioner not in {"jacobi", "spanning-tree"}:
            raise ValueError("preconditioner must be 'jacobi' or 'spanning-tree'")
        if chebyshev_degree < 1:
            raise ValueError("chebyshev_degree must be at least 1")
        self.coarse_size = int(coarse_size)
        self.refinement_steps = int(refinement_steps)
        self.refinement = refinement
        self.preconditioner = preconditioner
        self.refine_dtype = np.dtype(refine_dtype)
        self.linalg_backend = str(linalg_backend)
        self.chebyshev_degree = int(chebyshev_degree)
        self.chebyshev_accept_tol = float(chebyshev_accept_tol)
        self.lock_tol = float(lock_tol)
        self.max_levels = int(max_levels)
        self.min_coarsening_ratio = float(min_coarsening_ratio)
        self.seed = seed
        self._backend: LinalgBackend | None = None

    @property
    def backend(self) -> LinalgBackend:
        """The resolved :class:`~repro.linalg.backends.LinalgBackend` (lazy)."""
        if self._backend is None:
            self._backend = get_backend(self.linalg_backend)
        return self._backend

    # ------------------------------------------------------------------
    def build_hierarchy(self, graph: WeightedGraph) -> CoarseningHierarchy:
        """Build the coarsening hierarchy this solver would use for ``graph``."""
        return coarsening_hierarchy(
            graph,
            target_size=self.coarse_size,
            max_levels=self.max_levels,
            min_coarsening_ratio=self.min_coarsening_ratio,
            seed=self.seed,
        )

    def build_preconditioners(
        self, graph: WeightedGraph, hierarchy: CoarseningHierarchy
    ) -> list[Callable[[np.ndarray], np.ndarray]]:
        """Per-refined-level preconditioner applies, finest first.

        Entry ``i`` preconditions the level refined at hierarchy position
        ``i`` (the fine graph at 0, then each coarse graph except the
        coarsest, which is solved densely).  Callers that reuse a hierarchy
        across many solves can cache this list and pass it to :meth:`solve`
        -- a spanning-tree preconditioner stays a valid support graph as
        long as level node sets are unchanged and no tree edge is removed,
        which is exactly the SGL densification regime (edges are only ever
        added).
        """
        graphs = [graph] + [level.graph for level in hierarchy[:-1]]
        return [self._preconditioner_apply(g, g.laplacian()) for g in graphs]

    def _preconditioner_apply(
        self, graph: WeightedGraph, laplacian: sp.csr_matrix
    ) -> Callable[[np.ndarray], np.ndarray]:
        if self.preconditioner == "spanning-tree":
            return spanning_tree_preconditioner(graph)
        return jacobi_preconditioner(laplacian)

    # ------------------------------------------------------------------
    def _refine_lobpcg(
        self,
        laplacian: sp.csr_matrix,
        basis: np.ndarray,
        apply: Callable[[np.ndarray], np.ndarray],
        k: int,
        steps: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        n = laplacian.shape[0]
        ones = np.ones((n, 1)) / np.sqrt(n)
        # Both preconditioner families accept (n,) and (n, m) inputs, so the
        # same callable serves as matvec and matmat; providing the matmat
        # keeps LOBPCG's block preconditioning out of SciPy's per-column
        # fallback loop.
        precond = spla.LinearOperator((n, n), matvec=apply, matmat=apply)
        try:
            with warnings.catch_warnings():
                # The iteration budget is deliberately tiny (refinement, not
                # a from-scratch solve); LOBPCG's "did not reach tolerance"
                # warnings are expected and not actionable.
                warnings.simplefilter("ignore", UserWarning)
                values, vectors = spla.lobpcg(
                    laplacian,
                    basis,
                    M=precond,
                    Y=ones,
                    maxiter=steps,
                    tol=1e-8,
                    largest=False,
                )
        except Exception:
            # LOBPCG can fail on ill-conditioned bases; Rayleigh-Ritz is a
            # safe (if less accurate) fallback.
            values, vectors = rayleigh_ritz(laplacian, basis)
        order = np.argsort(values)
        return np.asarray(values)[order][:k], np.asarray(vectors)[:, order][:, :k]

    def _refine_pinvit(
        self,
        laplacian: sp.csr_matrix,
        basis: np.ndarray,
        apply: Callable[[np.ndarray], np.ndarray],
        k: int,
        steps: int,
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """Block preconditioned inverse iteration (PINVIT) with Rayleigh-Ritz.

        Each sweep corrects the block by the preconditioned eigen-residual
        ``V <- V - M^+ (L V - V diag(theta))`` and re-extracts Ritz pairs
        from the span of the old and corrected blocks.  Ritz vectors whose
        relative eigen-residual falls below ``lock_tol`` are *locked*:
        they stay in the Rayleigh-Ritz subspace (so later extractions keep
        orthogonality against them) but no correction column is computed
        for them, saving a preconditioner apply per locked column per sweep.
        """
        values, vectors = rayleigh_ritz(laplacian, basis)
        values, vectors = values[:k], vectors[:, :k]
        locked_sweeps = 0
        for _ in range(steps):
            residual = laplacian @ vectors - vectors * values[None, :]
            res_norms = np.linalg.norm(residual, axis=0)
            # Residual scale relative to the largest retained Ritz value (a
            # shared scale, so a near-zero eigenvalue cannot lock on noise).
            scale = max(float(values[-1]), np.finfo(np.float64).tiny)
            active = res_norms > self.lock_tol * scale
            locked_sweeps += int(k - np.count_nonzero(active))
            if not active.any():
                break
            correction = _apply_columns(apply, residual[:, active])
            candidate = np.hstack([vectors, vectors[:, active] - correction])
            candidate -= candidate.mean(axis=0, keepdims=True)
            values, vectors = rayleigh_ritz(laplacian, candidate)
            values, vectors = values[:k], vectors[:, :k]
        return values, vectors, {"locked": locked_sweeps}

    def _refine_chebyshev(
        self,
        graph: WeightedGraph,
        laplacian: sp.csr_matrix,
        basis: np.ndarray,
        apply: Callable[[np.ndarray], np.ndarray] | None,
        k: int,
        steps: int,
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """Mixed-precision Chebyshev filtering with float64 acceptance.

        The per-level ``steps`` budget (sized for LOBPCG/PINVIT sweeps) maps
        to filter rounds at roughly one round per five sweeps — a single
        adaptive-degree filter application replaces several preconditioned
        iterations.  Budgets below one round (the token smoothing a warm
        V-cycle assigns to its coarse levels) reduce to a plain
        Rayleigh-Ritz projection: a partial filter there costs spmm's
        without advancing convergence.

        Rejections route by reason: a polynomial-intractable spectrum
        (``reason="window"``, detected before any filter cost) reroutes to
        float64 LOBPCG on the orthonormalised full basis, while a quality
        rejection after filtering (acceptance residual above
        ``chebyshev_accept_tol``, or a non-finite float32 block) falls
        back to the float64 LOBPCG path on the same uncompressed basis.
        """
        rounds = steps // 5
        if rounds == 0:
            values, vectors = rayleigh_ritz(laplacian, basis)
            return values[:k], vectors[:, :k], {}
        # Cost-aware degree cap: allow high-degree filters where matvecs are
        # cheap (small levels need degree ~ 1/sqrt(window/bound) to resolve
        # their windows) but bound the per-round spmm work at scale — a
        # degree-d filter costs d * nnz per column, so the cap shrinks like
        # budget / n with a floor that keeps the filter effective.
        n = laplacian.shape[0]
        max_degree = max(120, int(self.CHEBYSHEV_WORK_BUDGET // max(n, 1)))
        outcome = chebyshev_refine(
            laplacian,
            basis,
            k,
            steps=rounds,
            degree=self.chebyshev_degree,
            dtype=self.refine_dtype,
            backend=self.backend,
            accept_tol=self.chebyshev_accept_tol,
            max_degree=max_degree,
            degree_headroom=self.CHEBYSHEV_DEGREE_HEADROOM,
            seed=self.seed,
        )
        info = {
            "residual": outcome.residual,
            "filter_degree": outcome.degree,
            "dtype": str(np.dtype(self.refine_dtype)),
        }
        if outcome.accepted:
            info["accepts"] = 1
            return outcome.eigenvalues, outcome.eigenvectors, info
        if apply is None:
            apply = self._preconditioner_apply(graph, laplacian)
        if outcome.reason == "window":
            # Polynomial-intractable spectrum detected up front: an
            # *explained* bypass, no filter cost paid.  The LOBPCG reroute
            # keeps the full interpolated + warm span — compressing it to k
            # Ritz vectors was measured to derail the densification loop's
            # edge selection at paper scale — but orthonormalises it first:
            # warm columns nearly duplicate their interpolated counterparts,
            # and feeding the raw ill-conditioned block to LOBPCG wastes its
            # internal restarts.  Pivoted QR gives a well-conditioned basis
            # with the same span.
            info["bypasses"] = 1
            ortho, _, _ = sla.qr(basis, mode="economic", pivoting=True)
            values, vectors = self._refine_lobpcg(laplacian, ortho, apply, k, steps)
            return values, vectors, info
        # Quality rejection after filtering: the full-strength float64
        # LOBPCG path re-refines the same (uncompressed) basis.
        info["fallbacks"] = 1
        values, vectors = self._refine_lobpcg(laplacian, basis, apply, k, steps)
        return values, vectors, info

    def _refine(
        self,
        graph: WeightedGraph,
        basis: np.ndarray,
        k: int,
        apply: Callable[[np.ndarray], np.ndarray] | None = None,
        steps: int | None = None,
        refinement: str | None = None,
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """Refine an interpolated eigenvector basis on the current level."""
        if steps is None:
            steps = self.refinement_steps
        if refinement is None:
            refinement = self.refinement
        laplacian = graph.laplacian()
        n = laplacian.shape[0]
        ones = np.ones((n, 1)) / np.sqrt(n)
        # Remove the component along the constant vector before refining.
        basis = basis - ones @ (ones.T @ basis)
        if steps == 0 or n <= basis.shape[1] + 2:
            values, vectors = rayleigh_ritz(laplacian, basis)
            return values[:k], vectors[:, :k], {}
        if refinement == "chebyshev":
            return self._refine_chebyshev(graph, laplacian, basis, apply, k, steps)
        if apply is None:
            apply = self._preconditioner_apply(graph, laplacian)
        if refinement == "inverse-power":
            return self._refine_pinvit(laplacian, basis, apply, k, steps)
        values, vectors = self._refine_lobpcg(laplacian, basis, apply, k, steps)
        return values, vectors, {}

    # ------------------------------------------------------------------
    def solve(
        self,
        graph: WeightedGraph,
        k: int,
        *,
        hierarchy: CoarseningHierarchy | None = None,
        initial_vectors: np.ndarray | None = None,
        preconditioners: list[Callable[[np.ndarray], np.ndarray]] | None = None,
        refinement_steps: int | Sequence[int] | None = None,
        refinement: str | None = None,
    ) -> MultilevelResult:
        """Compute the ``k`` smallest nontrivial eigenpairs of ``graph``'s Laplacian.

        Parameters
        ----------
        hierarchy:
            Optional prebuilt coarsening hierarchy whose coarse graphs are
            the Galerkin contractions of ``graph`` (see
            :meth:`~repro.linalg.coarsening.CoarseningHierarchy.reproject`).
            When omitted, a fresh hierarchy is built.
        initial_vectors:
            Optional ``(N, >=k)`` warm-start block merged into the
            finest-level refinement basis (e.g. the previous densification
            iteration's eigenvectors).
        preconditioners:
            Optional cached per-level preconditioner applies from
            :meth:`build_preconditioners` (finest first); when omitted each
            level builds its own.
        refinement_steps:
            Optional per-call override of the configured refinement budget:
            an int applies to every level, a sequence assigns budgets
            finest-first (the last entry repeats for deeper levels).  Warm
            callers use this to spend iterations where they matter — the
            finest level, whose Rayleigh-Ritz extraction decides the
            returned eigenvalues — while coarse levels get token sweeps.
        refinement:
            Optional per-call override of the refinement backend.  The
            multilevel embedding engine uses this to seed each hierarchy's
            *cold* V-cycle with the float64 ``"lobpcg"`` reference path
            under the chebyshev backend: the cold solve runs once per build
            but anchors the whole densification trajectory, while the
            mixed-precision filter serves the repeated warm refreshes.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        if refinement is not None and refinement not in REFINEMENT_BACKENDS:
            raise ValueError(
                f"unknown refinement override {refinement!r}; "
                f"expected one of {sorted(REFINEMENT_BACKENDS)}"
            )
        n = graph.n_nodes
        if n <= max(self.coarse_size, k + 2):
            values, vectors = laplacian_eigenpairs(graph, k, method="dense")
            return MultilevelResult(values, vectors, (n,), {"backend": "dense"})

        if hierarchy is None:
            hierarchy = self.build_hierarchy(graph)
        elif hierarchy.fine_n_nodes != n:
            raise ValueError("hierarchy does not match the graph's node set")
        if not len(hierarchy):
            values, vectors = laplacian_eigenpairs(graph, k, method="auto", seed=self.seed)
            return MultilevelResult(values, vectors, (n,), {"backend": "direct"})

        coarsest = hierarchy[-1].graph
        k_coarse = min(k, max(coarsest.n_nodes - 2, 1))
        values, vectors = laplacian_eigenpairs(coarsest, k_coarse, method="dense")

        # Interpolate back up the hierarchy, refining at every level.
        stats: dict = {"backend": refinement or self.refinement, "levels": 0}
        graphs = [graph] + [level.graph for level in hierarchy]
        for level_index in range(len(hierarchy) - 1, -1, -1):
            level = hierarchy[level_index]
            fine_graph = graphs[level_index]
            basis = level.prolongation @ vectors
            if level_index == 0 and initial_vectors is not None and initial_vectors.size:
                warm = np.asarray(initial_vectors, dtype=np.float64).reshape(n, -1)
                basis = np.hstack([basis, warm])
            if basis.shape[1] < k and fine_graph.n_nodes > k + 2:
                # Augment with random vectors if the coarse level could not
                # support k nontrivial modes.
                rng = np.random.default_rng(self.seed)
                extra = rng.standard_normal((fine_graph.n_nodes, k - basis.shape[1]))
                basis = np.hstack([basis, extra])
            apply = None
            if preconditioners is not None and level_index < len(preconditioners):
                apply = preconditioners[level_index]
            if refinement_steps is None or isinstance(refinement_steps, int):
                steps = refinement_steps
            else:
                steps = refinement_steps[min(level_index, len(refinement_steps) - 1)]
            values, vectors, info = self._refine(
                fine_graph, basis, k, apply, steps, refinement
            )
            stats["levels"] += 1
            for key in ("accepts", "fallbacks", "bypasses", "locked"):
                if key in info:
                    stats[key] = stats.get(key, 0) + info[key]
            if "residual" in info:
                stats["residual"] = max(stats.get("residual", 0.0), info["residual"])
            for key in ("filter_degree", "dtype"):
                if key in info:
                    stats[key] = info[key]

        sizes = tuple(g.n_nodes for g in graphs)
        return MultilevelResult(values[:k], vectors[:, :k], sizes, stats)
