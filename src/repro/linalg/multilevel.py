"""Multilevel (coarsen - solve - refine) Laplacian eigensolver.

This mirrors the nearly-linear-time spectral embedding machinery the paper
relies on for Step 2 [13], [16]: instead of running Lanczos on the full graph,
the graph is coarsened by heavy-edge matching until it is small, the dense
eigenproblem is solved at the coarsest level, the eigenvectors are
interpolated back level by level and smoothed/refined on each finer level.

Two refinement backends are available, both reusing the library's existing
preconditioning machinery (:func:`repro.linalg.jacobi_preconditioner`,
:func:`repro.linalg.spanning_tree_preconditioner`):

* ``"lobpcg"`` -- a few LOBPCG iterations per level with the chosen
  preconditioner and explicit deflation of the constant vector;
* ``"inverse-power"`` -- block preconditioned inverse iteration (PINVIT):
  each sweep applies the preconditioner to the eigen-residual block and
  re-extracts Ritz pairs with :func:`repro.linalg.eigen.rayleigh_ritz`.

In practice this gives accurate leading eigenvectors at a cost dominated by a
handful of sparse matrix-vector products per level -- i.e. near-linear in the
number of edges.  :meth:`MultilevelEigensolver.solve` accepts a prebuilt
:class:`~repro.linalg.coarsening.CoarseningHierarchy` so callers embedding a
slowly changing graph (the SGL densification loop) can amortise the matching
cost across many solves; see :class:`repro.embedding.MultilevelEmbeddingEngine`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Literal, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.graph import WeightedGraph
from repro.linalg.coarsening import CoarseningHierarchy, coarsening_hierarchy
from repro.linalg.eigen import laplacian_eigenpairs, rayleigh_ritz
from repro.linalg.preconditioners import (
    jacobi_preconditioner,
    spanning_tree_preconditioner,
)

__all__ = ["MultilevelEigensolver", "MultilevelResult"]


@dataclass(frozen=True)
class MultilevelResult:
    """Approximate eigenpairs plus hierarchy statistics."""

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    level_sizes: tuple[int, ...]


def _apply_columns(
    apply: Callable[[np.ndarray], np.ndarray], block: np.ndarray
) -> np.ndarray:
    """Apply a vector preconditioner to every column of a block."""
    out = np.empty_like(block)
    for j in range(block.shape[1]):
        out[:, j] = apply(block[:, j])
    return out


class MultilevelEigensolver:
    """Approximate smallest nontrivial Laplacian eigenpairs via a V-cycle.

    Parameters
    ----------
    coarse_size:
        Coarsen until the graph has at most this many nodes; the coarsest
        problem is solved densely.
    refinement_steps:
        Number of refinement iterations applied on each finer level after
        interpolation.  ``0`` falls back to a single Rayleigh-Ritz
        projection per level (cheapest, least accurate).
    refinement:
        ``"lobpcg"`` (default) or ``"inverse-power"`` (block PINVIT sweeps
        built from :func:`~repro.linalg.eigen.rayleigh_ritz`).
    preconditioner:
        ``"jacobi"`` (default; diagonal scaling) or ``"spanning-tree"``
        (support-graph preconditioning with the level's maximum spanning
        tree, exact O(N) tree solves).
    max_levels, min_coarsening_ratio:
        Hierarchy stopping controls forwarded to
        :func:`~repro.linalg.coarsening.coarsening_hierarchy`.
    seed:
        Seed for the coarsening order.

    Examples
    --------
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.linalg import MultilevelEigensolver
    >>> graph = grid_2d(12, 12)
    >>> result = MultilevelEigensolver(coarse_size=32, seed=0).solve(graph, 2)
    >>> result.eigenvalues.shape, result.eigenvectors.shape
    ((2,), (144, 2))
    >>> result.level_sizes[0], bool((result.eigenvalues > 0).all())
    (144, True)

    A prebuilt hierarchy is reused instead of re-coarsening (the SGL loop
    exploits this to amortise matching across densification iterations):

    >>> from repro.linalg import coarsening_hierarchy
    >>> hierarchy = coarsening_hierarchy(graph, target_size=32)
    >>> reused = MultilevelEigensolver(coarse_size=32).solve(graph, 2, hierarchy=hierarchy)
    >>> bool(abs(reused.eigenvalues[0] - result.eigenvalues[0]) < 1e-6)
    True
    """

    def __init__(
        self,
        *,
        coarse_size: int = 200,
        refinement_steps: int = 10,
        refinement: Literal["lobpcg", "inverse-power"] = "lobpcg",
        preconditioner: Literal["jacobi", "spanning-tree"] = "jacobi",
        max_levels: int = 30,
        min_coarsening_ratio: float = 0.9,
        seed: int | None = 0,
    ) -> None:
        if coarse_size < 4:
            raise ValueError("coarse_size must be at least 4")
        if refinement_steps < 0:
            raise ValueError("refinement_steps must be non-negative")
        if refinement not in {"lobpcg", "inverse-power"}:
            raise ValueError("refinement must be 'lobpcg' or 'inverse-power'")
        if preconditioner not in {"jacobi", "spanning-tree"}:
            raise ValueError("preconditioner must be 'jacobi' or 'spanning-tree'")
        self.coarse_size = int(coarse_size)
        self.refinement_steps = int(refinement_steps)
        self.refinement = refinement
        self.preconditioner = preconditioner
        self.max_levels = int(max_levels)
        self.min_coarsening_ratio = float(min_coarsening_ratio)
        self.seed = seed

    # ------------------------------------------------------------------
    def build_hierarchy(self, graph: WeightedGraph) -> CoarseningHierarchy:
        """Build the coarsening hierarchy this solver would use for ``graph``."""
        return coarsening_hierarchy(
            graph,
            target_size=self.coarse_size,
            max_levels=self.max_levels,
            min_coarsening_ratio=self.min_coarsening_ratio,
            seed=self.seed,
        )

    def build_preconditioners(
        self, graph: WeightedGraph, hierarchy: CoarseningHierarchy
    ) -> list[Callable[[np.ndarray], np.ndarray]]:
        """Per-refined-level preconditioner applies, finest first.

        Entry ``i`` preconditions the level refined at hierarchy position
        ``i`` (the fine graph at 0, then each coarse graph except the
        coarsest, which is solved densely).  Callers that reuse a hierarchy
        across many solves can cache this list and pass it to :meth:`solve`
        -- a spanning-tree preconditioner stays a valid support graph as
        long as level node sets are unchanged and no tree edge is removed,
        which is exactly the SGL densification regime (edges are only ever
        added).
        """
        graphs = [graph] + [level.graph for level in hierarchy[:-1]]
        return [self._preconditioner_apply(g, g.laplacian()) for g in graphs]

    def _preconditioner_apply(
        self, graph: WeightedGraph, laplacian: sp.csr_matrix
    ) -> Callable[[np.ndarray], np.ndarray]:
        if self.preconditioner == "spanning-tree":
            return spanning_tree_preconditioner(graph)
        return jacobi_preconditioner(laplacian)

    # ------------------------------------------------------------------
    def _refine_lobpcg(
        self,
        laplacian: sp.csr_matrix,
        basis: np.ndarray,
        apply: Callable[[np.ndarray], np.ndarray],
        k: int,
        steps: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        n = laplacian.shape[0]
        ones = np.ones((n, 1)) / np.sqrt(n)
        precond = spla.LinearOperator(
            (n, n), matvec=lambda v: apply(np.asarray(v).ravel())
        )
        try:
            with warnings.catch_warnings():
                # The iteration budget is deliberately tiny (refinement, not
                # a from-scratch solve); LOBPCG's "did not reach tolerance"
                # warnings are expected and not actionable.
                warnings.simplefilter("ignore", UserWarning)
                values, vectors = spla.lobpcg(
                    laplacian,
                    basis,
                    M=precond,
                    Y=ones,
                    maxiter=steps,
                    tol=1e-8,
                    largest=False,
                )
        except Exception:
            # LOBPCG can fail on ill-conditioned bases; Rayleigh-Ritz is a
            # safe (if less accurate) fallback.
            values, vectors = rayleigh_ritz(laplacian, basis)
        order = np.argsort(values)
        return np.asarray(values)[order][:k], np.asarray(vectors)[:, order][:, :k]

    def _refine_pinvit(
        self,
        laplacian: sp.csr_matrix,
        basis: np.ndarray,
        apply: Callable[[np.ndarray], np.ndarray],
        k: int,
        steps: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Block preconditioned inverse iteration (PINVIT) with Rayleigh-Ritz.

        Each sweep corrects the block by the preconditioned eigen-residual
        ``V <- V - M^+ (L V - V diag(theta))`` and re-extracts Ritz pairs
        from the span of the old and corrected blocks.
        """
        n = laplacian.shape[0]
        values, vectors = rayleigh_ritz(laplacian, basis)
        values, vectors = values[:k], vectors[:, :k]
        for _ in range(steps):
            residual = laplacian @ vectors - vectors * values[None, :]
            correction = _apply_columns(apply, residual)
            candidate = np.hstack([vectors, vectors - correction])
            candidate -= candidate.mean(axis=0, keepdims=True)
            values, vectors = rayleigh_ritz(laplacian, candidate)
            values, vectors = values[:k], vectors[:, :k]
        return values, vectors

    def _refine(
        self,
        graph: WeightedGraph,
        basis: np.ndarray,
        k: int,
        apply: Callable[[np.ndarray], np.ndarray] | None = None,
        steps: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Refine an interpolated eigenvector basis on the current level."""
        if steps is None:
            steps = self.refinement_steps
        laplacian = graph.laplacian()
        n = laplacian.shape[0]
        ones = np.ones((n, 1)) / np.sqrt(n)
        # Remove the component along the constant vector before refining.
        basis = basis - ones @ (ones.T @ basis)
        if steps == 0 or n <= basis.shape[1] + 2:
            values, vectors = rayleigh_ritz(laplacian, basis)
            return values[:k], vectors[:, :k]
        if apply is None:
            apply = self._preconditioner_apply(graph, laplacian)
        if self.refinement == "inverse-power":
            return self._refine_pinvit(laplacian, basis, apply, k, steps)
        return self._refine_lobpcg(laplacian, basis, apply, k, steps)

    # ------------------------------------------------------------------
    def solve(
        self,
        graph: WeightedGraph,
        k: int,
        *,
        hierarchy: CoarseningHierarchy | None = None,
        initial_vectors: np.ndarray | None = None,
        preconditioners: list[Callable[[np.ndarray], np.ndarray]] | None = None,
        refinement_steps: int | Sequence[int] | None = None,
    ) -> MultilevelResult:
        """Compute the ``k`` smallest nontrivial eigenpairs of ``graph``'s Laplacian.

        Parameters
        ----------
        hierarchy:
            Optional prebuilt coarsening hierarchy whose coarse graphs are
            the Galerkin contractions of ``graph`` (see
            :meth:`~repro.linalg.coarsening.CoarseningHierarchy.reproject`).
            When omitted, a fresh hierarchy is built.
        initial_vectors:
            Optional ``(N, >=k)`` warm-start block merged into the
            finest-level refinement basis (e.g. the previous densification
            iteration's eigenvectors).
        preconditioners:
            Optional cached per-level preconditioner applies from
            :meth:`build_preconditioners` (finest first); when omitted each
            level builds its own.
        refinement_steps:
            Optional per-call override of the configured refinement budget:
            an int applies to every level, a sequence assigns budgets
            finest-first (the last entry repeats for deeper levels).  Warm
            callers use this to spend iterations where they matter — the
            finest level, whose Rayleigh-Ritz extraction decides the
            returned eigenvalues — while coarse levels get token sweeps.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        n = graph.n_nodes
        if n <= max(self.coarse_size, k + 2):
            values, vectors = laplacian_eigenpairs(graph, k, method="dense")
            return MultilevelResult(values, vectors, (n,))

        if hierarchy is None:
            hierarchy = self.build_hierarchy(graph)
        elif hierarchy.fine_n_nodes != n:
            raise ValueError("hierarchy does not match the graph's node set")
        if not len(hierarchy):
            values, vectors = laplacian_eigenpairs(graph, k, method="auto", seed=self.seed)
            return MultilevelResult(values, vectors, (n,))

        coarsest = hierarchy[-1].graph
        k_coarse = min(k, max(coarsest.n_nodes - 2, 1))
        values, vectors = laplacian_eigenpairs(coarsest, k_coarse, method="dense")

        # Interpolate back up the hierarchy, refining at every level.
        graphs = [graph] + [level.graph for level in hierarchy]
        for level_index in range(len(hierarchy) - 1, -1, -1):
            level = hierarchy[level_index]
            fine_graph = graphs[level_index]
            basis = level.prolongation @ vectors
            if level_index == 0 and initial_vectors is not None and initial_vectors.size:
                warm = np.asarray(initial_vectors, dtype=np.float64).reshape(n, -1)
                basis = np.hstack([basis, warm])
            if basis.shape[1] < k and fine_graph.n_nodes > k + 2:
                # Augment with random vectors if the coarse level could not
                # support k nontrivial modes.
                rng = np.random.default_rng(self.seed)
                extra = rng.standard_normal((fine_graph.n_nodes, k - basis.shape[1]))
                basis = np.hstack([basis, extra])
            apply = None
            if preconditioners is not None and level_index < len(preconditioners):
                apply = preconditioners[level_index]
            if refinement_steps is None or isinstance(refinement_steps, int):
                steps = refinement_steps
            else:
                steps = refinement_steps[min(level_index, len(refinement_steps) - 1)]
            values, vectors = self._refine(fine_graph, basis, k, apply, steps)

        sizes = tuple(g.n_nodes for g in graphs)
        return MultilevelResult(values[:k], vectors[:, :k], sizes)
