"""Preconditioners for Laplacian conjugate-gradient solves.

Two classical choices are provided:

* :func:`jacobi_preconditioner` -- diagonal scaling, cheap and always
  applicable;
* :func:`spanning_tree_preconditioner` -- support-graph preconditioning with a
  (maximum-weight) spanning tree, the simple ancestor of the
  Koutis-Miller-Peng style solvers the paper cites [7]; tree systems are
  solved exactly by a grounded sparse factorisation, which is O(N) because
  tree Laplacians have perfect elimination orderings.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.graph import WeightedGraph

__all__ = ["jacobi_preconditioner", "spanning_tree_preconditioner"]


def jacobi_preconditioner(matrix: sp.spmatrix | np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
    """Return a callable applying ``diag(A)^{-1}`` (zeros left untouched).

    The apply accepts a single vector ``(n,)`` or a block ``(n, m)`` of
    right-hand sides and preserves the input's shape, so it can serve as
    both the ``matvec`` and ``matmat`` of a ``LinearOperator``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.linalg import jacobi_preconditioner
    >>> apply = jacobi_preconditioner(np.diag([2.0, 4.0]))
    >>> apply(np.array([2.0, 4.0])).tolist()
    [1.0, 1.0]
    """
    mat = sp.csr_matrix(matrix)
    diag = mat.diagonal().astype(np.float64)
    inv_diag = np.where(diag > 0, 1.0 / np.maximum(diag, 1e-300), 0.0)

    def apply(vector: np.ndarray) -> np.ndarray:
        v = np.asarray(vector, dtype=np.float64)
        if v.ndim == 1:
            return inv_diag * v
        return inv_diag[:, None] * v

    return apply


def spanning_tree_preconditioner(
    graph: WeightedGraph,
    *,
    tree: WeightedGraph | None = None,
    ground_node: int = 0,
) -> Callable[[np.ndarray], np.ndarray]:
    """Return a callable applying the pseudo-inverse of a spanning-tree Laplacian.

    Parameters
    ----------
    graph:
        The graph whose Laplacian system is being preconditioned.
    tree:
        Optional explicit spanning tree; by default the maximum-weight
        spanning tree of ``graph`` is used (the heaviest edges support the
        most "current", making the tree the best single-tree approximation of
        the graph in the support-theory sense).
    ground_node:
        Node grounded when factorising the tree Laplacian.

    The returned apply accepts a single vector ``(n,)`` or a block
    ``(n, m)`` of right-hand sides and preserves the input's shape.  Block
    applies go through one grounded factorisation solve, which keeps a
    block eigensolver's preconditioning out of the per-column Python
    dispatch a ``LinearOperator`` falls back to without a ``matmat``.

    Examples
    --------
    On a tree the preconditioner *is* the exact pseudo-inverse:

    >>> import numpy as np
    >>> from repro.graphs.graph import WeightedGraph
    >>> from repro.linalg import spanning_tree_preconditioner
    >>> tree = WeightedGraph(3, [0, 1], [1, 2])
    >>> apply = spanning_tree_preconditioner(tree)
    >>> v = np.array([1.0, 0.0, -1.0])
    >>> bool(np.allclose(tree.laplacian() @ apply(v), v))
    True
    """
    from repro.knn.mst import maximum_spanning_tree

    if tree is None:
        tree = maximum_spanning_tree(graph)
    if tree.n_nodes != graph.n_nodes:
        raise ValueError("tree must span the same node set as graph")

    n = graph.n_nodes
    keep = np.ones(n, dtype=bool)
    keep[ground_node] = False
    tree_lap = tree.laplacian()
    if n == 1:
        return lambda v: np.zeros_like(np.asarray(v, dtype=np.float64))
    reduced = tree_lap[keep][:, keep].tocsc()
    lu = spla.splu(reduced)

    def apply(vector: np.ndarray) -> np.ndarray:
        v = np.asarray(vector, dtype=np.float64)
        one_d = v.ndim == 1
        if one_d:
            v = v[:, None]
        v = v - v.mean(axis=0, keepdims=True)
        out = np.zeros_like(v)
        out[keep] = lu.solve(v[keep])
        out -= out.mean(axis=0, keepdims=True)
        return out[:, 0] if one_d else out

    return apply
