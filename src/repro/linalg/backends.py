"""Pluggable dense/sparse compute backends for the linalg layer.

The refinement inner loops of the multilevel eigensolver are a handful of
array primitives — sparse-matrix-times-block products, tall-skinny QR, small
dense eigenproblems and solves — applied to backend-native arrays.  This
module factors those primitives into a :class:`LinalgBackend` protocol with
two implementations:

* :class:`NumpyBackend` -- numpy + scipy.sparse, always available, the
  default and the reference the others are tested against;
* :class:`CupyBackend` -- cupy + cupyx.scipy.sparse, registered lazily and
  *detected* at lookup time: on machines without a GPU stack the backend is
  simply listed as unavailable (``available_backends()["cupy"] is False``)
  and requesting it raises :class:`LinalgBackendError` with an actionable
  message — importing this module never fails.

The design follows :mod:`repro.knn.backends` (the Step-1 search backends):
one name per strategy, a :func:`get_backend` entry point with an ``"auto"``
policy, and every consumer (the Chebyshev filter in
:mod:`repro.linalg.chebyshev`, ``SGLConfig.linalg_backend``) speaking the
same names.  Arrays cross the boundary through :meth:`LinalgBackend.asarray`
/ :meth:`LinalgBackend.to_numpy`, so a caller holding numpy data runs
unchanged on any backend.

Examples
--------
>>> from repro.linalg.backends import available_backends, get_backend
>>> available_backends()["numpy"]
True
>>> backend = get_backend("auto")   # cupy when importable, else numpy
>>> backend.name in {"numpy", "cupy"}
True
>>> import numpy as np
>>> q, r = backend.qr(backend.asarray(np.eye(3)[:, :2]))
>>> backend.to_numpy(q).shape
(3, 2)
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np
import scipy.sparse as sp

__all__ = [
    "BACKEND_NAMES",
    "CupyBackend",
    "LinalgBackend",
    "LinalgBackendError",
    "NumpyBackend",
    "available_backends",
    "get_backend",
]

#: Names accepted by :func:`get_backend` and ``SGLConfig.linalg_backend``.
BACKEND_NAMES: tuple[str, ...] = ("auto", "numpy", "cupy")


class LinalgBackendError(RuntimeError):
    """A requested compute backend is unknown or not usable on this machine."""


@runtime_checkable
class LinalgBackend(Protocol):
    """Array-API-style primitives the linalg inner loops are written against.

    Implementations operate on *backend-native* arrays (numpy ``ndarray``,
    cupy ``ndarray``); only :meth:`asarray` and :meth:`sparse` ingest foreign
    data and only :meth:`to_numpy` exports it.
    """

    name: str

    def asarray(self, array, dtype=None):
        """Backend-native dense array (copying only when needed)."""
        ...

    def to_numpy(self, array) -> np.ndarray:
        """Export a backend-native dense array as numpy."""
        ...

    def sparse(self, matrix: sp.spmatrix, dtype=None):
        """Backend-native CSR copy of a scipy sparse matrix."""
        ...

    def matvec(self, matrix, vector):
        """``matrix @ vector`` for a backend-native sparse matrix."""
        ...

    def spmm(self, matrix, block):
        """``matrix @ block`` (sparse times dense block)."""
        ...

    def qr(self, block):
        """Reduced QR of a tall-skinny block: ``(q, r)``."""
        ...

    def eigh(self, matrix):
        """Eigendecomposition of a small symmetric dense matrix."""
        ...

    def solve(self, matrix, rhs):
        """Dense solve ``matrix x = rhs`` (small systems)."""
        ...


class NumpyBackend:
    """The default CPU backend: numpy dense + scipy.sparse CSR."""

    name = "numpy"

    def asarray(self, array, dtype=None):
        return np.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        return np.asarray(array)

    def sparse(self, matrix: sp.spmatrix, dtype=None):
        csr = sp.csr_matrix(matrix)
        if dtype is not None and csr.dtype != np.dtype(dtype):
            csr = csr.astype(dtype)
        return csr

    def matvec(self, matrix, vector):
        return matrix @ vector

    def spmm(self, matrix, block):
        return matrix @ block

    def qr(self, block):
        return np.linalg.qr(block)

    def eigh(self, matrix):
        return np.linalg.eigh(matrix)

    def solve(self, matrix, rhs):
        return np.linalg.solve(matrix, rhs)


class CupyBackend:
    """GPU backend over cupy; constructing it requires a working CUDA stack."""

    name = "cupy"

    def __init__(self) -> None:
        try:
            import cupy
            import cupyx.scipy.sparse as cusparse
        except Exception as exc:  # pragma: no cover - exercised without cupy
            raise LinalgBackendError(
                "the 'cupy' linalg backend needs cupy (and a CUDA runtime); "
                f"import failed: {exc!r}. Use linalg_backend='numpy' or 'auto'."
            ) from exc
        self._cupy = cupy
        self._cusparse = cusparse

    # Everything below runs only when cupy imported successfully, which no
    # CI machine of this repo has — keep the mapping straightforward.
    def asarray(self, array, dtype=None):  # pragma: no cover
        return self._cupy.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:  # pragma: no cover
        return self._cupy.asnumpy(array)

    def sparse(self, matrix: sp.spmatrix, dtype=None):  # pragma: no cover
        csr = sp.csr_matrix(matrix)
        if dtype is not None and csr.dtype != np.dtype(dtype):
            csr = csr.astype(dtype)
        return self._cusparse.csr_matrix(csr)

    def matvec(self, matrix, vector):  # pragma: no cover
        return matrix @ vector

    def spmm(self, matrix, block):  # pragma: no cover
        return matrix @ block

    def qr(self, block):  # pragma: no cover
        return self._cupy.linalg.qr(block)

    def eigh(self, matrix):  # pragma: no cover
        return self._cupy.linalg.eigh(matrix)

    def solve(self, matrix, rhs):  # pragma: no cover
        return self._cupy.linalg.solve(matrix, rhs)


_FACTORIES = {"numpy": NumpyBackend, "cupy": CupyBackend}
_CACHE: dict[str, LinalgBackend] = {}


def _probe(name: str) -> LinalgBackend | None:
    """Construct-and-cache a backend, or None when it cannot be built."""
    if name in _CACHE:
        return _CACHE[name]
    try:
        backend = _FACTORIES[name]()
    except LinalgBackendError:
        return None
    _CACHE[name] = backend
    return backend


def available_backends() -> dict[str, bool]:
    """Usability of every known backend on this machine.

    Examples
    --------
    >>> from repro.linalg.backends import available_backends
    >>> sorted(available_backends())
    ['cupy', 'numpy']
    """
    return {name: _probe(name) is not None for name in _FACTORIES}


def get_backend(name: str = "auto") -> LinalgBackend:
    """Resolve a backend by name.

    ``"auto"`` prefers cupy when it is importable (GPU memory bandwidth is
    what the Chebyshev filter's spmm loop scales with) and falls back to
    numpy otherwise.  Requesting ``"cupy"`` explicitly on a machine without
    it raises :class:`LinalgBackendError` instead of an ImportError at some
    distant call site.

    Examples
    --------
    >>> from repro.linalg.backends import get_backend
    >>> get_backend("numpy").name
    'numpy'
    """
    if name == "auto":
        backend = _probe("cupy")
        return backend if backend is not None else get_backend("numpy")
    if name not in _FACTORIES:
        raise LinalgBackendError(
            f"unknown linalg backend {name!r}; available: {sorted(_FACTORIES)}"
        )
    backend = _probe(name)
    if backend is None:
        # Re-construct for the informative error message.
        _FACTORIES[name]()
        raise LinalgBackendError(f"backend {name!r} probe failed")  # pragma: no cover
    return backend
