"""Matrix-free Chebyshev-filtered subspace iteration for Laplacian eigenpairs.

The fourth refinement path of the multilevel V-cycle (after LOBPCG, block
PINVIT and plain Rayleigh-Ritz).  Instead of preconditioned corrections, the
interpolated basis is passed through a degree-``d`` Chebyshev polynomial
filter ``p(L)`` scaled to damp the unwanted spectral interval ``[a, b]``
(``b`` = an upper bound on ``lambda_max`` from a few Lanczos steps, ``a`` =
the largest Ritz value of the current basis) while amplifying the wanted
low end.  Each filter application costs ``d`` sparse matrix-vector products
per basis column and *no* triangular solves, which makes it

* **matrix-free**: only ``L @ block`` is needed, so it runs unchanged on any
  :class:`~repro.linalg.backends.LinalgBackend` (numpy today, cupy when a
  GPU stack is present);
* **mixed-precision friendly**: the filter runs in float32 (half the memory
  traffic of the float64 LOBPCG path, and spmm is memory-bound), while
  acceptance runs in float64 — a Rayleigh-Ritz projection of the filtered
  basis followed by a residual check.  Rejected refinements fall back to the
  float64 LOBPCG path in :class:`~repro.linalg.MultilevelEigensolver`, so a
  failed filter can cost time but never accuracy.

This is the cheap-local-iterations / exact-global-acceptance pattern of the
divide-and-conquer convex optimisation literature (Emirov, Song & Sun,
arXiv:2510.01511), applied to the spectral-refinement wall of the SGL loop.

The recurrence is the scaled three-term form of Zhou & Saad's
Chebyshev-Davidson filter: with ``e = (b - a) / 2`` and ``c = (b + a) / 2``,

.. math::

    Y_1 = \\frac{\\sigma_1}{e} (L X - c X), \\qquad
    Y_{j} = \\frac{2 \\sigma_j}{e} (L Y_{j-1} - c Y_{j-1})
            - \\sigma_{j-1} \\sigma_j Y_{j-2},

where the ``sigma`` scalars normalise the polynomial at the amplification
point (0 for a Laplacian's low end) so intermediate blocks stay O(1) — the
property that makes the float32 loop numerically safe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import WeightedGraph
from repro.linalg.backends import LinalgBackend, get_backend
from repro.linalg.eigen import rayleigh_ritz

__all__ = [
    "ChebyshevOutcome",
    "chebyshev_filter",
    "chebyshev_refine",
    "lanczos_spectral_bound",
]


def _as_csr(graph_or_laplacian) -> sp.csr_matrix:
    if isinstance(graph_or_laplacian, WeightedGraph):
        return graph_or_laplacian.laplacian()
    return sp.csr_matrix(graph_or_laplacian)


def lanczos_spectral_bound(
    graph_or_laplacian, *, steps: int = 10, seed: int | None = 0
) -> float:
    """Upper bound on the largest Laplacian eigenvalue via ``steps`` Lanczos steps.

    Returns ``min(theta_max + ||f||, gershgorin)`` where ``theta_max`` is the
    largest Ritz value of the Lanczos tridiagonal, ``||f||`` the final
    residual norm (the classic Chebyshev-filter safeguard: the true
    ``lambda_max`` lies within the last residual of its Ritz estimate), and
    ``gershgorin`` the max absolute row sum — a guaranteed bound that caps
    the estimate whenever the short recurrence is pessimistic.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.linalg.chebyshev import lanczos_spectral_bound
    >>> graph = grid_2d(12, 12)
    >>> bound = lanczos_spectral_bound(graph, steps=8, seed=0)
    >>> exact = float(np.linalg.eigvalsh(graph.laplacian().toarray()).max())
    >>> bool(exact <= bound <= 2.0 * exact)
    True
    """
    lap = _as_csr(graph_or_laplacian)
    n = lap.shape[0]
    if steps < 1:
        raise ValueError("steps must be at least 1")
    gershgorin = float(np.abs(lap).sum(axis=1).max()) if n else 0.0
    if n <= 2:
        return gershgorin

    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    basis: list[np.ndarray] = []
    alphas: list[float] = []
    offdiag: list[float] = []
    beta = 0.0
    for j in range(min(steps, n - 1)):
        w = lap @ v
        alpha = float(v @ w)
        w -= alpha * v
        if j > 0:
            w -= beta * basis[-1]
        # Full reorthogonalisation: the basis is tiny (<= steps vectors),
        # and it keeps the tridiagonal trustworthy in the clustered-spectrum
        # cases the SGL graphs produce.
        for u in basis:
            w -= (u @ w) * u
        basis.append(v)
        alphas.append(alpha)
        beta = float(np.linalg.norm(w))
        if beta <= 1e-12 * max(gershgorin, 1.0):
            beta = 0.0
            break
        v = w / beta
        offdiag.append(beta)
    tri = np.diag(alphas)
    if len(alphas) > 1:
        off = np.asarray(offdiag[: len(alphas) - 1])
        tri += np.diag(off, 1) + np.diag(off, -1)
    theta_max = float(np.linalg.eigvalsh(tri).max())
    return float(min(theta_max + beta, gershgorin)) if gershgorin else theta_max + beta


def chebyshev_filter(
    matrix,
    block,
    degree: int,
    lower: float,
    upper: float,
    *,
    backend: LinalgBackend | None = None,
):
    """Apply the scaled degree-``degree`` Chebyshev filter ``p(matrix) @ block``.

    Damps the interval ``[lower, upper]`` and amplifies eigencomponents below
    ``lower`` (the polynomial is normalised at 0, the Laplacian's low end).
    ``matrix`` and ``block`` must be backend-native (see
    :func:`repro.linalg.backends.get_backend`); the computation stays in
    ``block``'s dtype — float32 blocks get float32 filtering.

    Examples
    --------
    The filter drives a perturbed eigenvector back towards the dominant low
    eigenspace (path graph, smallest nontrivial mode):

    >>> import numpy as np
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.linalg.chebyshev import chebyshev_filter, lanczos_spectral_bound
    >>> from repro.linalg.eigen import laplacian_eigenpairs
    >>> graph = grid_2d(10, 10)
    >>> lap = graph.laplacian()
    >>> _, exact = laplacian_eigenpairs(graph, 1, method="dense")
    >>> rng = np.random.default_rng(0)
    >>> noisy = exact + 0.1 * rng.standard_normal(exact.shape)
    >>> noisy -= noisy.mean(axis=0)        # deflate the constant null vector
    >>> filtered = chebyshev_filter(lap, noisy, 8, 0.5, lanczos_spectral_bound(graph))
    >>> cos = abs(exact[:, 0] @ filtered[:, 0]) / np.linalg.norm(filtered[:, 0])
    >>> bool(cos > 0.99)
    True
    """
    if degree < 1:
        raise ValueError("degree must be at least 1")
    if not upper > lower > 0:
        raise ValueError("need upper > lower > 0 for the damped interval")
    if backend is None:
        backend = get_backend("numpy")
    half_width = (upper - lower) / 2.0
    center = (upper + lower) / 2.0
    # sigma_1 normalises the polynomial at the amplification point 0.
    sigma_one = half_width / (0.0 - center)
    sigma = sigma_one
    prev = block
    current = (backend.spmm(matrix, block) - center * block) * (sigma_one / half_width)
    for _ in range(2, degree + 1):
        sigma_next = 1.0 / (2.0 / sigma_one - sigma)
        update = backend.spmm(matrix, current) - center * current
        new = (2.0 * sigma_next / half_width) * update - (sigma * sigma_next) * prev
        prev, current = current, new
        sigma = sigma_next
    return current


@dataclass(frozen=True)
class ChebyshevOutcome:
    """Result of one mixed-precision filtered refinement.

    Attributes
    ----------
    eigenvalues, eigenvectors:
        Float64 Ritz pairs extracted from the filtered basis (ascending;
        meaningful even when ``accepted`` is False, for diagnostics).
    residual:
        The acceptance statistic: max over the wanted pairs of
        ``||L v - lambda v|| / bound`` — a backward error relative to the
        spectral scale, so it is comparable across graphs whose edge
        weights differ by orders of magnitude.
    accepted:
        ``residual <= accept_tol`` and every value finite; rejected outcomes
        are the caller's cue to fall back to a float64 path.
    reason:
        ``"ok"`` when accepted; otherwise why not: ``"window"`` means the
        wanted eigenvalues sit so far below the spectral bound that no
        affordable polynomial degree can separate them (required degree
        above ``degree_headroom * max_degree``) — the filter was *not*
        applied and the caller should route to a preconditioned solver;
        ``"residual"`` means the filter ran but its float64 acceptance
        residual failed.
    degree, steps:
        Filter degree and number of filter+QR rounds applied.
    bound, window:
        The Lanczos upper bound ``b`` and the damped interval's lower edge
        ``a`` actually used.
    dtype:
        The filtering dtype (``"float32"`` / ``"float64"``).
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    residual: float
    accepted: bool
    reason: str
    degree: int
    steps: int
    bound: float
    window: float
    dtype: str


def chebyshev_refine(
    graph_or_laplacian,
    basis: np.ndarray,
    k: int,
    *,
    steps: int = 1,
    degree: int = 10,
    dtype=np.float32,
    backend: LinalgBackend | str | None = None,
    accept_tol: float = 5e-2,
    bound: float | None = None,
    lanczos_steps: int = 10,
    max_degree: int = 120,
    degree_headroom: float = 4.0,
    seed: int | None = 0,
) -> ChebyshevOutcome:
    """Refine an approximate low eigenbasis by filtered subspace iteration.

    Runs ``steps`` rounds of (Chebyshev filter -> constant-mode deflation ->
    QR) in ``dtype`` on the chosen backend, then extracts float64 Ritz pairs
    with an exact Rayleigh-Ritz projection and computes the acceptance
    residual.  The low-precision loop can only propose a subspace; the
    float64 projection decides what is returned, so an accepted outcome is
    exactly as trustworthy as its residual.

    Parameters
    ----------
    graph_or_laplacian:
        Graph or (sparse) Laplacian.
    basis:
        ``(n, m)`` approximate basis with ``m >= k`` (e.g. the prolongated
        coarse eigenvectors of a V-cycle).
    k:
        Number of wanted smallest nontrivial eigenpairs.
    steps, degree:
        Filter rounds and polynomial degree (``steps * degree`` spmm's per
        basis column).
    dtype:
        Filtering precision; float32 halves the spmm memory traffic.
    backend:
        A :class:`~repro.linalg.backends.LinalgBackend`, a backend name, or
        None for numpy.
    accept_tol:
        Acceptance threshold on ``residual`` (see
        :class:`ChebyshevOutcome`); NaN/Inf always reject.
    bound:
        Optional precomputed spectral upper bound; by default
        :func:`lanczos_spectral_bound` runs with ``lanczos_steps`` steps.
    max_degree:
        Cap on the adaptive per-round degree.  The degree is scaled like
        ``1 / sqrt(window / bound)`` so each round delivers an O(10)
        amplification of the wanted modes over the damped interval; the cap
        bounds the spmm cost when the spectrum is badly conditioned.
        Callers should size it against the matvec cost (``degree * nnz``).
    degree_headroom:
        Feasibility margin for the polynomial regime.  Resolving the wanted
        modes needs degree ~ ``2.5 / sqrt(window / bound)``; when that
        exceeds ``degree_headroom * max_degree`` the spectrum is declared
        polynomial-intractable for the affordable budget, the filter is
        skipped entirely (no spmm cost paid) and the outcome comes back
        rejected with ``reason="window"`` — the cue to use a preconditioned
        float64 solver instead.  SGL trajectory graphs (near-trees with
        ``lambda_2 / lambda_max ~ 1e-10``, required degree ~100k) trip
        this at any scale; meshes and circuits at a few thousand nodes
        (ratio ``>= 1e-6``, generous ``max_degree``) do not.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.graphs.generators import grid_2d
    >>> from repro.linalg.chebyshev import chebyshev_refine
    >>> from repro.linalg.eigen import laplacian_eigenpairs
    >>> graph = grid_2d(14, 14)
    >>> exact_vals, exact_vecs = laplacian_eigenpairs(graph, 3, method="dense")
    >>> rng = np.random.default_rng(1)
    >>> start = exact_vecs + 0.05 * rng.standard_normal(exact_vecs.shape)
    >>> outcome = chebyshev_refine(graph, start, 3, steps=2, degree=8)
    >>> outcome.accepted, outcome.dtype
    (True, 'float32')
    >>> bool(np.allclose(outcome.eigenvalues, exact_vals, atol=5e-3))
    True
    """
    lap = _as_csr(graph_or_laplacian)
    n = lap.shape[0]
    if k < 1:
        raise ValueError("k must be at least 1")
    basis = np.asarray(basis, dtype=np.float64).reshape(n, -1)
    if basis.shape[1] < k:
        raise ValueError("basis must have at least k columns")
    if isinstance(backend, str) or backend is None:
        backend = get_backend(backend or "numpy")
    if bound is None:
        bound = lanczos_spectral_bound(lap, steps=lanczos_steps, seed=seed)
    bound = float(bound)

    native = backend.sparse(lap, dtype=dtype)
    refined = basis - basis.mean(axis=0, keepdims=True)

    def clip_window(value: float) -> float:
        if not np.isfinite(value) or value <= 0:
            value = 0.1 * bound
        return min(max(value, 1e-6 * bound), 0.95 * bound)

    window = 0.0
    used_degree = int(degree)
    for round_index in range(max(steps, 1)):
        # Chebyshev-Davidson windowing (float64): compress to the k best
        # Ritz vectors and read the damped interval's lower edge off the
        # first *discarded* Ritz value when the basis is wider than k (the
        # prolongated + warm-start columns of a V-cycle) — everything from
        # lambda_{k+1} up is damped, not just the spectrum above the whole
        # basis.  A width-k basis falls back to its largest Ritz value.
        ritz_values, ritz_vectors = rayleigh_ritz(lap, refined)
        raw_window = float(ritz_values[k if len(ritz_values) > k else k - 1])
        if round_index == 0:
            ratio = raw_window / bound if bound > 0 else 0.0
            needed = np.inf if ratio <= 0 else 2.5 / np.sqrt(ratio)
            if needed > degree_headroom * max_degree:
                # Polynomial-intractable for the affordable budget: bail
                # out before paying any filter cost and let the caller
                # route to a preconditioned solver.  The Ritz pairs of the
                # *input* basis are still returned for diagnostics.
                values, vectors = ritz_values[:k], ritz_vectors[:, :k]
                return ChebyshevOutcome(
                    eigenvalues=values,
                    eigenvectors=vectors,
                    residual=float("inf"),
                    accepted=False,
                    reason="window",
                    degree=0,
                    steps=0,
                    bound=bound,
                    window=raw_window,
                    dtype=np.dtype(dtype).name,
                )
        window = clip_window(raw_window)
        # The filter's per-round gain over the damped interval behaves like
        # cosh(degree * sqrt(2 window / bound)): when the wanted eigenvalues
        # sit orders of magnitude below the spectral bound (the SGL regime -
        # tree-like graphs have lambda_2/lambda_max ~ 1e-3..1e-4), a fixed
        # low degree amplifies by only ~1.2x per round and refinement
        # stalls.  Scale the degree like 1/sqrt(window/bound) so every round
        # delivers an O(10) gain, capped to keep the spmm cost bounded;
        # ``degree`` acts as the floor.
        gain_degree = int(np.ceil(2.5 / np.sqrt(window / bound)))
        round_degree = int(min(max(degree, gain_degree), max(max_degree, degree)))
        used_degree = max(used_degree, round_degree)

        block = backend.asarray(ritz_vectors[:, :k], dtype=dtype)
        block = chebyshev_filter(
            native, block, round_degree, window, bound, backend=backend
        )
        # Deflate float32 leakage along the constant null vector before the
        # next round amplifies it again (p(0) is the filter's maximum).
        block = block - block.mean(axis=0, keepdims=True)
        block, _ = backend.qr(block)
        refined = np.asarray(backend.to_numpy(block), dtype=np.float64)

    # Float64 acceptance: exact Rayleigh-Ritz projection + residual check.
    values, vectors = rayleigh_ritz(lap, refined)
    values, vectors = values[:k], vectors[:, :k]
    degree = used_degree
    residual_block = lap @ vectors - vectors * values[None, :]
    residual = float(np.linalg.norm(residual_block, axis=0).max() / max(bound, 1e-300))
    accepted = bool(
        np.isfinite(residual)
        and np.isfinite(values).all()
        and residual <= accept_tol
    )
    return ChebyshevOutcome(
        eigenvalues=values,
        eigenvectors=vectors,
        residual=residual,
        accepted=accepted,
        reason="ok" if accepted else "residual",
        degree=int(degree),
        steps=int(max(steps, 1)),
        bound=bound,
        window=window,
        dtype=np.dtype(dtype).name,
    )
