"""Laplacian pseudo-inverse operations and effective-resistance computations.

Effective resistance is the central quantity of the paper: the SGL-learned
graph is built so that its effective-resistance distances encode the l2
distances between the measured voltage vectors (Secs. II-C and II-D), and
Fig. 7 evaluates learned graphs by correlating effective resistances against
the originals.  This module provides:

* :func:`laplacian_pseudoinverse` -- dense ``L^+`` for small graphs;
* :func:`effective_resistance` -- exact ``R_eff(s, t)`` for arbitrary node
  pairs via Laplacian solves;
* :func:`effective_resistance_matrix` -- all-pairs matrix (small graphs);
* :func:`effective_resistances_jl` -- the Johnson-Lindenstrauss / Spielman-
  Srivastava sketch of Sec. II-D, computing (1 +/- eps) approximations for
  all edges with only O(log N / eps^2) Laplacian solves.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import WeightedGraph
from repro.linalg.solvers import LaplacianSolver

__all__ = [
    "laplacian_pseudoinverse",
    "effective_resistance",
    "effective_resistance_matrix",
    "effective_resistances_jl",
]


def laplacian_pseudoinverse(laplacian: sp.spmatrix | np.ndarray) -> np.ndarray:
    """Dense Moore-Penrose pseudo-inverse ``L^+``.

    Intended for validation on small graphs (the matrix is dense, O(N^2)
    memory); large-graph workflows should use :class:`LaplacianSolver` or the
    JL sketch instead.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.graphs.graph import WeightedGraph
    >>> from repro.linalg import laplacian_pseudoinverse
    >>> lap = WeightedGraph(3, [0, 1], [1, 2]).laplacian()
    >>> pinv = laplacian_pseudoinverse(lap)
    >>> bool(np.allclose(lap @ pinv @ lap.toarray(), lap.toarray()))
    True
    """
    dense = np.asarray(
        laplacian.todense() if sp.issparse(laplacian) else laplacian, dtype=np.float64
    )
    n = dense.shape[0]
    # Deflation trick: (L + J/n)^{-1} - J/n equals L^+ for connected graphs,
    # where J is the all-ones matrix.  It avoids an SVD and is exact.
    ones = np.full((n, n), 1.0 / n)
    return np.linalg.inv(dense + ones) - ones


def _solver_for(
    graph_or_laplacian: WeightedGraph | sp.spmatrix | np.ndarray,
    solver: LaplacianSolver | None,
) -> LaplacianSolver:
    if solver is not None:
        return solver
    return LaplacianSolver(graph_or_laplacian)


def effective_resistance(
    graph_or_laplacian: WeightedGraph | sp.spmatrix | np.ndarray,
    pairs: np.ndarray | list[tuple[int, int]],
    *,
    solver: LaplacianSolver | None = None,
) -> np.ndarray:
    """Exact effective resistances ``R_eff(s, t) = (e_s - e_t)^T L^+ (e_s - e_t)``.

    Parameters
    ----------
    graph_or_laplacian:
        The resistor network (must be connected).
    pairs:
        ``(m, 2)`` array of node pairs.
    solver:
        Optional pre-built :class:`LaplacianSolver` to reuse its factorisation.

    Returns
    -------
    numpy.ndarray
        Length-``m`` vector of effective resistances.

    Examples
    --------
    >>> from repro.graphs.graph import WeightedGraph
    >>> from repro.linalg import effective_resistance
    >>> path = WeightedGraph(3, [0, 1], [1, 2])  # two unit resistors in series
    >>> effective_resistance(path, [(0, 2)]).round(6).tolist()
    [2.0]
    """
    solver = _solver_for(graph_or_laplacian, solver)
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    n = solver.n_nodes
    out = np.empty(pairs.shape[0])
    for idx, (s, t) in enumerate(pairs):
        if not (0 <= s < n and 0 <= t < n):
            raise ValueError(f"pair ({s}, {t}) out of range for {n} nodes")
        if s == t:
            out[idx] = 0.0
            continue
        rhs = np.zeros(n)
        rhs[s] = 1.0
        rhs[t] = -1.0
        x = solver.solve(rhs)
        out[idx] = x[s] - x[t]
    return out


def effective_resistance_matrix(
    graph_or_laplacian: WeightedGraph | sp.spmatrix | np.ndarray,
) -> np.ndarray:
    """All-pairs effective-resistance matrix (dense, small graphs only).

    Examples
    --------
    >>> from repro.graphs.graph import WeightedGraph
    >>> from repro.linalg import effective_resistance_matrix
    >>> path = WeightedGraph(3, [0, 1], [1, 2])
    >>> effective_resistance_matrix(path).round(6)[0].tolist()
    [0.0, 1.0, 2.0]
    """
    if isinstance(graph_or_laplacian, WeightedGraph):
        laplacian = graph_or_laplacian.laplacian()
    else:
        laplacian = sp.csr_matrix(graph_or_laplacian)
    pinv = laplacian_pseudoinverse(laplacian)
    diag = np.diag(pinv)
    return diag[:, None] + diag[None, :] - 2.0 * pinv


def effective_resistances_jl(
    graph: WeightedGraph,
    *,
    pairs: np.ndarray | list[tuple[int, int]] | None = None,
    epsilon: float = 0.3,
    n_projections: int | None = None,
    seed: int | None = 0,
    solver: LaplacianSolver | None = None,
) -> np.ndarray:
    """Johnson-Lindenstrauss approximation of effective resistances (Sec. II-D).

    Builds the sketch ``Z = Q W^{1/2} B L^+`` where ``Q`` is a random
    ``+/- 1/sqrt(q)`` matrix with ``q = O(log N / eps^2)`` rows, ``B`` the
    oriented incidence matrix and ``W`` the diagonal weight matrix, so that
    ``||Z (e_s - e_t)||^2`` is a ``(1 +/- eps)`` approximation of
    ``R_eff(s, t)`` with high probability (Spielman-Srivastava [10]).

    Parameters
    ----------
    pairs:
        Node pairs to evaluate; defaults to the edges of ``graph``.
    epsilon:
        Target relative accuracy (used to size ``q`` when ``n_projections``
        is not given).
    n_projections:
        Explicit number of random projections ``q`` (overrides ``epsilon``).

    Examples
    --------
    The sketch approximates the exact resistances to the requested accuracy
    (here on a path graph whose end-to-end resistance is exactly 2):

    >>> from repro.graphs.generators import grid_2d
    >>> from repro.linalg import effective_resistance, effective_resistances_jl
    >>> graph = grid_2d(6, 6)
    >>> exact = effective_resistance(graph, [(0, 35)])
    >>> approx = effective_resistances_jl(graph, pairs=[(0, 35)], seed=0)
    >>> bool(abs(approx[0] - exact[0]) <= 0.5 * exact[0])
    True
    """
    if pairs is None:
        pairs = graph.edges
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    n = graph.n_nodes
    if n_projections is None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        n_projections = max(1, int(np.ceil(24.0 * np.log(max(n, 2)) / epsilon**2)))
        # Cap the sketch size: beyond ~n rows an exact solve would be cheaper.
        n_projections = min(n_projections, max(n - 1, 1))
    rng = np.random.default_rng(seed)

    incidence = graph.incidence_matrix()  # (|E|, N), rows are e_s - e_t
    sqrt_w = np.sqrt(graph.weights)
    solver = _solver_for(graph, solver)

    # Each sketch row: solve L z = (Q W^{1/2} B)_i^T.
    sketch = np.empty((n_projections, n))
    for i in range(n_projections):
        signs = rng.choice([-1.0, 1.0], size=graph.n_edges) / np.sqrt(n_projections)
        rhs = incidence.T @ (signs * sqrt_w)
        sketch[i] = solver.solve(rhs)

    diffs = sketch[:, pairs[:, 0]] - sketch[:, pairs[:, 1]]
    return np.einsum("ij,ij->j", diffs, diffs)
