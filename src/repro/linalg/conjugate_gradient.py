"""Preconditioned conjugate-gradient solver for (possibly singular) SPD systems.

A hand-rolled PCG implementation is kept in the library (instead of calling
``scipy.sparse.linalg.cg``) for two reasons: it lets us project iterates onto
the complement of the Laplacian null space (the all-one vector) so singular
Laplacian systems converge cleanly, and it exposes iteration counts/residuals
as structured information for the runtime-scalability experiments (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

__all__ = ["CGInfo", "conjugate_gradient"]


@dataclass(frozen=True)
class CGInfo:
    """Convergence report of a conjugate-gradient solve."""

    converged: bool
    iterations: int
    residual_norm: float
    relative_residual: float


def conjugate_gradient(
    matrix: sp.spmatrix | np.ndarray,
    rhs: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int | None = None,
    preconditioner: Callable[[np.ndarray], np.ndarray] | None = None,
    project_nullspace: bool = False,
) -> tuple[np.ndarray, CGInfo]:
    """Solve ``A x = b`` with preconditioned conjugate gradients.

    Parameters
    ----------
    matrix:
        Symmetric positive (semi-)definite matrix or anything supporting
        ``matrix @ vector``.
    rhs:
        Right-hand-side vector.
    x0:
        Optional initial guess (defaults to zero).
    tol:
        Relative residual tolerance ``||b - A x|| <= tol * ||b||``.
    max_iter:
        Iteration cap (defaults to ``10 * n``).
    preconditioner:
        Callable applying ``M^{-1}`` to a vector.
    project_nullspace:
        If True, the constant component is removed from the right-hand side,
        iterates and search directions -- required for singular graph
        Laplacians whose null space is the all-one vector.

    Returns
    -------
    (x, info):
        The solution estimate and a :class:`CGInfo` convergence report.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.linalg import conjugate_gradient
    >>> matrix = np.diag([1.0, 2.0, 4.0])
    >>> x, info = conjugate_gradient(matrix, np.array([1.0, 2.0, 4.0]))
    >>> info.converged, np.round(x, 6).tolist()
    (True, [1.0, 1.0, 1.0])
    """
    b = np.asarray(rhs, dtype=np.float64).ravel()
    n = b.size
    if max_iter is None:
        max_iter = max(10 * n, 100)

    def project(v: np.ndarray) -> np.ndarray:
        return v - v.mean() if project_nullspace else v

    def matvec(v: np.ndarray) -> np.ndarray:
        return np.asarray(matrix @ v).ravel()

    b = project(b)
    x = np.zeros(n) if x0 is None else project(np.asarray(x0, dtype=np.float64).ravel().copy())
    b_norm = np.linalg.norm(b)
    if b_norm == 0.0:
        return x * 0.0, CGInfo(True, 0, 0.0, 0.0)

    r = b - matvec(x)
    r = project(r)
    z = preconditioner(r) if preconditioner is not None else r
    z = project(z)
    p = z.copy()
    rz = float(r @ z)
    residual_norm = np.linalg.norm(r)

    iterations = 0
    for iterations in range(1, max_iter + 1):
        if residual_norm <= tol * b_norm:
            iterations -= 1
            break
        ap = matvec(p)
        ap = project(ap)
        denom = float(p @ ap)
        if denom <= 0.0:
            # Numerical breakdown (can only happen for indefinite input).
            break
        alpha = rz / denom
        x += alpha * p
        r -= alpha * ap
        residual_norm = np.linalg.norm(r)
        if residual_norm <= tol * b_norm:
            break
        z = preconditioner(r) if preconditioner is not None else r
        z = project(z)
        rz_next = float(r @ z)
        beta = rz_next / rz
        rz = rz_next
        p = z + beta * p

    converged = residual_norm <= tol * b_norm
    info = CGInfo(
        converged=bool(converged),
        iterations=iterations,
        residual_norm=float(residual_norm),
        relative_residual=float(residual_norm / b_norm),
    )
    return x, info
