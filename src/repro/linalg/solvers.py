"""Direct and iterative solvers for graph Laplacian systems.

A connected graph Laplacian ``L`` is singular with null space spanned by the
all-one vector, so ``L x = b`` only has solutions when ``b`` sums to zero, and
the solution is unique only up to an additive constant.  The canonical choice
used throughout the library (and implicitly by the paper via the Moore-Penrose
pseudo-inverse) is the *mean-free* solution ``x = L^+ b``.

:class:`LaplacianSolver` wraps this convention around two backends:

* ``"direct"`` -- ground one node, factorise the reduced SPD matrix once with
  SuperLU and reuse the factorisation for many right-hand sides (this is what
  Step 5 of the SGL algorithm needs: one factorisation, ``M`` solves);
* ``"cg"``     -- preconditioned conjugate gradients on the full singular
  system with iterates kept orthogonal to the null space, for very large
  graphs where a factorisation would be too expensive.
"""

from __future__ import annotations

from typing import Literal

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.graph import WeightedGraph
from repro.linalg.conjugate_gradient import conjugate_gradient
from repro.linalg.preconditioners import jacobi_preconditioner

__all__ = ["LaplacianSolver", "grounded_splu"]


def _as_laplacian(graph_or_laplacian: WeightedGraph | sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    if isinstance(graph_or_laplacian, WeightedGraph):
        return graph_or_laplacian.laplacian()
    return sp.csr_matrix(graph_or_laplacian)


def grounded_splu(reduced: sp.spmatrix) -> spla.SuperLU:
    """Sparse LU of a grounded (ground-node-eliminated) Laplacian block.

    The grounded Laplacian is SPD with symmetric sparsity, so SuperLU runs
    in symmetric mode with minimum-degree ordering on ``A + A^T`` and no
    diagonal pivoting: markedly less fill-in (and faster factor/solve) than
    the pivoting COLAMD default — on irregular graphs pivoting fragments
    SuperLU's supernodes, costing up to an order of magnitude.  Shared by
    :class:`LaplacianSolver` and the incremental embedding engine so the
    tuning cannot drift apart.
    """
    return spla.splu(
        sp.csc_matrix(reduced),
        permc_spec="MMD_AT_PLUS_A",
        diag_pivot_thresh=0.0,
        options={"SymmetricMode": True},
    )


def _remove_mean(x: np.ndarray) -> np.ndarray:
    if x.ndim == 1:
        return x - x.mean()
    return x - x.mean(axis=0, keepdims=True)


class LaplacianSolver:
    """Reusable solver for ``L x = b`` returning the mean-free solution ``L^+ b``.

    Parameters
    ----------
    graph_or_laplacian:
        A :class:`~repro.graphs.WeightedGraph` or a sparse/dense Laplacian.
        The graph must be connected; otherwise solutions are not well defined
        and a :class:`ValueError` is raised.
    method:
        ``"direct"`` (default, grounded sparse LU), or ``"cg"`` (Jacobi
        preconditioned conjugate gradients).
    ground_node:
        Node eliminated by the direct method.  Any node works; exposed mainly
        for tests.
    cg_tol, cg_max_iter:
        Convergence controls for the ``"cg"`` backend.

    Examples
    --------
    Effective resistance across a path of two unit resistors is 2 ohms:

    >>> import numpy as np
    >>> from repro.graphs.graph import WeightedGraph
    >>> from repro.linalg import LaplacianSolver
    >>> path = WeightedGraph(3, [0, 1], [1, 2])
    >>> solver = LaplacianSolver(path)
    >>> x = solver.solve(np.array([1.0, 0.0, -1.0]))  # inject 1 A end to end
    >>> round(float(x[0] - x[2]), 6)
    2.0
    """

    def __init__(
        self,
        graph_or_laplacian: WeightedGraph | sp.spmatrix | np.ndarray,
        *,
        method: Literal["direct", "cg"] = "direct",
        ground_node: int = 0,
        cg_tol: float = 1e-10,
        cg_max_iter: int | None = None,
    ) -> None:
        laplacian = _as_laplacian(graph_or_laplacian).tocsr()
        n = laplacian.shape[0]
        if laplacian.shape[0] != laplacian.shape[1]:
            raise ValueError("Laplacian must be square")
        if n == 0:
            raise ValueError("empty Laplacian")
        n_components, _ = sp.csgraph.connected_components(
            sp.csr_matrix((np.abs(laplacian.data), laplacian.indices, laplacian.indptr), shape=laplacian.shape),
            directed=False,
        )
        if n_components != 1 and n > 1:
            raise ValueError(
                "LaplacianSolver requires a connected graph "
                f"(found {n_components} connected components)"
            )
        if not 0 <= ground_node < n:
            raise ValueError("ground_node out of range")
        if method not in {"direct", "cg"}:
            raise ValueError("method must be 'direct' or 'cg'")

        self._laplacian = laplacian
        self._n = n
        self._method = method
        self._ground = int(ground_node)
        self._cg_tol = float(cg_tol)
        self._cg_max_iter = cg_max_iter
        self._lu: spla.SuperLU | None = None
        self._keep: np.ndarray | None = None
        self._preconditioner = None
        if method == "direct":
            self._factorize()
        else:
            self._preconditioner = jacobi_preconditioner(laplacian)

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Dimension of the Laplacian."""
        return self._n

    @property
    def laplacian(self) -> sp.csr_matrix:
        """The Laplacian being solved (read-only reference)."""
        return self._laplacian

    @property
    def method(self) -> str:
        """Backend in use (``"direct"`` or ``"cg"``)."""
        return self._method

    # ------------------------------------------------------------------
    def _factorize(self) -> None:
        keep = np.ones(self._n, dtype=bool)
        keep[self._ground] = False
        self._keep = keep
        if self._n == 1:
            self._lu = None
            return
        self._lu = grounded_splu(self._laplacian[keep][:, keep])

    def _solve_vector(self, b: np.ndarray) -> np.ndarray:
        b = np.asarray(b, dtype=np.float64).ravel()
        if b.size != self._n:
            raise ValueError(f"right-hand side has length {b.size}, expected {self._n}")
        # Project the right-hand side onto the range of L (zero-sum vectors).
        b = b - b.mean()
        if self._n == 1:
            return np.zeros(1)
        if self._method == "direct":
            x = np.zeros(self._n)
            x[self._keep] = self._lu.solve(b[self._keep])
            return _remove_mean(x)
        x, info = conjugate_gradient(
            self._laplacian,
            b,
            tol=self._cg_tol,
            max_iter=self._cg_max_iter,
            preconditioner=self._preconditioner,
            project_nullspace=True,
        )
        if not info.converged:
            raise RuntimeError(
                f"CG failed to converge within {info.iterations} iterations "
                f"(residual {info.residual_norm:.3e})"
            )
        return _remove_mean(x)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``L x = rhs`` returning the mean-free solution.

        ``rhs`` may be a vector of length ``N`` or a matrix ``(N, M)`` of
        right-hand-side columns.  Right-hand sides are projected onto the
        zero-sum subspace first, matching the pseudo-inverse solution
        ``L^+ rhs``.  With the direct backend a matrix right-hand side is
        dispatched to SuperLU as *one* multi-RHS triangular solve — the
        factorisation is traversed once for the whole block instead of once
        per column, which is what makes the batched effective-resistance
        queries of :mod:`repro.serve` profitable.
        """
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.ndim == 1:
            return self._solve_vector(rhs)
        if rhs.ndim != 2 or rhs.shape[0] != self._n:
            raise ValueError(f"rhs must have shape ({self._n},) or ({self._n}, M)")
        if self._method == "direct":
            return self._solve_block(rhs)
        out = np.empty_like(rhs)
        for j in range(rhs.shape[1]):
            out[:, j] = self._solve_vector(rhs[:, j])
        return out

    def _solve_block(self, rhs: np.ndarray) -> np.ndarray:
        """Direct-backend multi-RHS solve: one SuperLU call per block.

        Column-wise identical to looping :meth:`_solve_vector` (SuperLU
        back-substitutes each column independently); only the traversal
        bookkeeping is amortised across the block.
        """
        b = rhs - rhs.mean(axis=0, keepdims=True)
        if self._n == 1:
            return np.zeros_like(b)
        x = np.zeros_like(b)
        x[self._keep] = self._lu.solve(np.ascontiguousarray(b[self._keep]))
        return _remove_mean(x)

    def solve_grounded(self, rhs: np.ndarray, ground_value: float = 0.0) -> np.ndarray:
        """Solve with the ground node pinned to ``ground_value`` instead of mean-free.

        This mirrors how circuit simulators report node voltages relative to a
        ground reference.  Only available with the direct backend.
        """
        if self._method != "direct":
            raise RuntimeError("solve_grounded requires the 'direct' backend")
        x = self._solve_vector(rhs)
        return x - x[self._ground] + ground_value

    def quadratic_form_inverse(self, vector: np.ndarray) -> float:
        """Compute ``v^T L^+ v`` (e.g. an effective resistance when ``v = e_s - e_t``)."""
        x = self.solve(vector)
        v = np.asarray(vector, dtype=np.float64).ravel()
        return float((v - v.mean()) @ x)
