"""Configuration of the SGL algorithm (Algorithm 1 inputs).

All defaults follow the paper's experimental setup (Sec. III-A): ``k = 5``
nearest neighbours for the initial graph, ``r = 5`` eigenvectors for the
spectral embedding, edge-sampling ratio ``beta = 1e-3``, sensitivity tolerance
``tol = 1e-12`` and ``sigma^2 -> inf``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SGLConfig"]


@dataclass(frozen=True)
class SGLConfig:
    """Tunable parameters of the SGL graph learner.

    Attributes
    ----------
    k:
        Number of nearest neighbours for the initial kNN graph (Step 1).
    knn_backend:
        Nearest-neighbour search backend for Step 1: ``"auto"`` (default;
        picks from the feature shape — see
        :func:`repro.knn.backends.select_backend`), ``"kdtree"``,
        ``"brute"``, ``"jl"`` or ``"nsw"``.
    r:
        Number of Laplacian eigenvectors for the spectral embedding (Eq. 12);
        the embedding uses the ``r - 1`` nontrivial vectors ``u_2 .. u_r``.
    tol:
        Maximum-edge-sensitivity convergence threshold (Step 4).  Smaller
        values add more edges and match the data distances more precisely.
    beta:
        Edge-sampling ratio: at most ``ceil(N * beta)`` of the highest-
        sensitivity off-tree edges are added per iteration (Step 3).
    sigma_sq:
        Prior feature variance in ``Theta = L + I / sigma^2``; the paper
        analyses (and we default to) the ``sigma^2 -> inf`` limit.
    max_iterations:
        Safety cap on densification iterations.
    eigensolver:
        Backend for Step 2: ``"auto"``, ``"dense"``, ``"shift-invert"``,
        ``"lobpcg"`` or ``"multilevel"`` (the paper's near-linear-time path).
        With the incremental engine this backend only serves *cold* solves;
        warm refreshes use Rayleigh-Ritz / warm-started LOBPCG.
    embedding_engine:
        ``"incremental"`` (default) keeps a warm-started
        :class:`~repro.embedding.EmbeddingEngine` alive across densification
        iterations, falling back to full solves automatically whenever warm
        residuals fail the acceptance test; ``"multilevel"`` runs the
        coarsen-solve-refine :class:`~repro.embedding.MultilevelEmbeddingEngine`
        (the paper's near-linear-time path), reusing the coarsening
        hierarchy across iterations and re-matching only when edge churn
        exceeds ``multilevel_churn_threshold``; ``"stateless"`` recomputes
        the embedding from scratch every iteration (the pre-engine
        behaviour, kept for A/B benchmarking and debugging).
    multilevel_coarse_size:
        Coarsest-level size for ``eigensolver="multilevel"`` and the
        ``"multilevel"`` embedding engine.  The 400 default balances the
        dense coarsest solve (sub-0.1 s at this size) against hierarchy
        depth; small meshes measurably prefer a relatively large coarsest
        level, and at paper scale the dense solve stays negligible.
    multilevel_churn_threshold:
        Fractional fine-edge-count drift above which the ``"multilevel"``
        engine re-runs heavy-edge matching instead of reusing the stored
        hierarchy.
    refinement_backend:
        Per-level refinement backend of the ``"multilevel"`` engine:
        ``"lobpcg"`` (default), ``"inverse-power"`` (block PINVIT) or
        ``"chebyshev"`` (mixed-precision Chebyshev-filtered subspace
        iteration with float64 acceptance; see
        :mod:`repro.linalg.chebyshev`).
    refine_dtype:
        Filtering precision for ``refinement_backend="chebyshev"``:
        ``"float32"`` (default; the memory-bound filter matvecs run at half
        traffic) or ``"float64"``.  Acceptance is always float64.
    linalg_backend:
        Compute backend for the chebyshev filter, one of
        :data:`repro.linalg.backends.BACKEND_NAMES` (``"numpy"`` default;
        ``"auto"`` prefers cupy when importable; ``"cupy"`` requires it).
    sensitivity_samples:
        ``None`` (default) keeps the paper's exact per-edge sensitivity
        pass (Step 3).  A positive int opts into the Hutchinson-style
        stochastic estimator: embedding and data distances are compared
        through that many random-sign probe columns instead of all ``r-1``
        eigenvectors / all measurement columns (see
        :func:`repro.core.sensitivity.edge_sensitivities`).
    edge_scaling:
        Whether to apply Step 5 spectral edge scaling when current
        measurements are available.
    initial_graph:
        ``"mst"`` (paper: maximum spanning tree of the kNN graph), ``"knn"``
        (use the full kNN graph, no densification candidates withheld) or
        ``"random-tree"`` (ablation).
    track_objective:
        If True, the graphical-Lasso objective (Eq. 2) is evaluated every
        iteration and stored in the history (needed for Fig. 2/4-6 but
        costly, so off by default).
    objective_eigenvalues:
        Number of smallest nonzero eigenvalues used to approximate
        ``log det`` in the objective (the paper uses 50).
    seed:
        Random seed shared by the eigensolver starts and any sampling.

    Examples
    --------
    >>> from repro import SGLConfig
    >>> config = SGLConfig(k=5, beta=0.01)
    >>> config.edges_per_iteration(1000)
    10
    >>> config.embedding_engine
    'incremental'
    >>> config.knn_backend
    'auto'
    """

    k: int = 5
    knn_backend: str = "auto"
    r: int = 5
    tol: float = 1e-12
    beta: float = 1e-3
    sigma_sq: float = np.inf
    max_iterations: int = 500
    eigensolver: str = "auto"
    embedding_engine: str = "incremental"
    multilevel_coarse_size: int = 400
    multilevel_churn_threshold: float = 0.1
    refinement_backend: str = "lobpcg"
    refine_dtype: str = "float32"
    linalg_backend: str = "numpy"
    sensitivity_samples: int | None = None
    edge_scaling: bool = True
    initial_graph: str = "mst"
    track_objective: bool = False
    objective_eigenvalues: int = 50
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.r < 2:
            raise ValueError("r must be at least 2")
        if self.tol < 0:
            raise ValueError("tol must be non-negative")
        if not 0 < self.beta <= 1:
            raise ValueError("beta must be in (0, 1]")
        if self.sigma_sq <= 0:
            raise ValueError("sigma_sq must be positive")
        if self.max_iterations < 0:
            raise ValueError("max_iterations must be non-negative")
        if self.knn_backend not in {"auto", "brute", "kdtree", "jl", "nsw"}:
            raise ValueError(f"unknown knn_backend {self.knn_backend!r}")
        if self.initial_graph not in {"mst", "knn", "random-tree"}:
            raise ValueError("initial_graph must be 'mst', 'knn' or 'random-tree'")
        if self.eigensolver not in {"auto", "dense", "shift-invert", "lobpcg", "multilevel"}:
            raise ValueError(f"unknown eigensolver {self.eigensolver!r}")
        if self.embedding_engine not in {"stateless", "incremental", "multilevel"}:
            raise ValueError(
                "embedding_engine must be 'stateless', 'incremental' or 'multilevel'"
            )
        if self.multilevel_churn_threshold < 0:
            raise ValueError("multilevel_churn_threshold must be non-negative")
        if self.refinement_backend not in {"lobpcg", "inverse-power", "chebyshev"}:
            raise ValueError(f"unknown refinement_backend {self.refinement_backend!r}")
        if self.refine_dtype not in {"float32", "float64"}:
            raise ValueError("refine_dtype must be 'float32' or 'float64'")
        if self.linalg_backend not in {"auto", "numpy", "cupy"}:
            raise ValueError(f"unknown linalg_backend {self.linalg_backend!r}")
        if self.sensitivity_samples is not None and self.sensitivity_samples < 1:
            raise ValueError("sensitivity_samples must be None or at least 1")
        if self.objective_eigenvalues < 1:
            raise ValueError("objective_eigenvalues must be at least 1")

    def edges_per_iteration(self, n_nodes: int) -> int:
        """Number of edges considered for inclusion each iteration, ``ceil(N beta)``."""
        return max(1, int(np.ceil(n_nodes * self.beta)))
