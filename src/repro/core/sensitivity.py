"""Edge sensitivities, embedding distortions and eigenvalue perturbations.

This module implements the analytical heart of the paper:

* Theorem II.1 -- the first-order eigenvalue perturbation caused by adding a
  candidate edge, ``delta lambda_i = delta_w (u_i^T e_st)^2``
  (:func:`eigenvalue_perturbations`);
* Eq. (13)    -- the edge sensitivity
  ``s_st = ||U_r^T e_st||^2 - (1/M) ||X^T e_st||^2 = z_emb - z_data / M``
  used to rank candidate edges (:func:`edge_sensitivities`);
* Eq. (14/15) -- the spectral embedding distortion
  ``eta_st = M z_emb / z_data`` which equals the edge leverage score
  ``w_st R_eff(s,t)`` in the ``sigma^2 -> inf`` limit
  (:func:`spectral_embedding_distortion`).
"""

from __future__ import annotations

import numpy as np

from repro.embedding.spectral import SpectralEmbedding

__all__ = [
    "data_distances_squared",
    "edge_sensitivities",
    "spectral_embedding_distortion",
    "eigenvalue_perturbations",
    "sgl_edge_weights",
]


def data_distances_squared(voltages: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """Squared data-space distances ``z_data = ||X^T (e_s - e_t)||^2`` (Eq. 13).

    Parameters
    ----------
    voltages:
        Measurement matrix ``X`` of shape ``(N, M)``; row ``i`` holds node
        ``i``'s voltages across the ``M`` measurements.
    pairs:
        ``(m, 2)`` array of node pairs.
    """
    voltages = np.asarray(voltages, dtype=np.float64)
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    diffs = voltages[pairs[:, 0]] - voltages[pairs[:, 1]]
    return np.einsum("ij,ij->i", diffs, diffs)


def sgl_edge_weights(voltages: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """The paper's candidate edge weights ``w_st = M / z_data`` (Eq. 15)."""
    voltages = np.asarray(voltages, dtype=np.float64)
    z_data = data_distances_squared(voltages, pairs)
    n_measurements = voltages.shape[1]
    floor = max(float(z_data.max(initial=0.0)), 1.0) * 1e-15
    return n_measurements / np.maximum(z_data, floor)


def edge_sensitivities(
    embedding: SpectralEmbedding,
    voltages: np.ndarray,
    pairs: np.ndarray,
) -> np.ndarray:
    """Edge sensitivities ``s_st = dF / dw_st ~= z_emb - z_data / M`` (Eq. 13).

    Positive sensitivity means including the edge increases the graphical-
    Lasso objective (the embedding distance between its endpoints is still
    larger than the measured data distance); the SGL loop adds the largest
    ones each iteration.
    """
    voltages = np.asarray(voltages, dtype=np.float64)
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    z_emb = embedding.pair_distances_squared(pairs)
    z_data = data_distances_squared(voltages, pairs)
    return z_emb - z_data / voltages.shape[1]


def spectral_embedding_distortion(
    embedding: SpectralEmbedding,
    voltages: np.ndarray,
    pairs: np.ndarray,
) -> np.ndarray:
    """Spectral embedding distortion ``eta_st = M z_emb / z_data`` (Eq. 14).

    At the global optimum of the learning problem the maximum distortion over
    candidate edges equals one; values above one indicate edges whose
    endpoints are still too far apart on the learned graph.
    """
    voltages = np.asarray(voltages, dtype=np.float64)
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    z_emb = embedding.pair_distances_squared(pairs)
    z_data = data_distances_squared(voltages, pairs)
    floor = max(float(z_data.max(initial=0.0)), 1.0) * 1e-15
    return voltages.shape[1] * z_emb / np.maximum(z_data, floor)


def eigenvalue_perturbations(
    eigenvectors: np.ndarray,
    edge: tuple[int, int],
    delta_weight: float,
) -> np.ndarray:
    """First-order eigenvalue shifts from adding an edge (Theorem II.1).

    ``delta lambda_i = delta_w * (u_i^T (e_s - e_t))^2`` for each eigenvector
    column ``u_i`` of ``eigenvectors``.
    """
    eigenvectors = np.asarray(eigenvectors, dtype=np.float64)
    s, t = edge
    diffs = eigenvectors[s, :] - eigenvectors[t, :]
    return delta_weight * diffs**2
