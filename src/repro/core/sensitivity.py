"""Edge sensitivities, embedding distortions and eigenvalue perturbations.

This module implements the analytical heart of the paper:

* Theorem II.1 -- the first-order eigenvalue perturbation caused by adding a
  candidate edge, ``delta lambda_i = delta_w (u_i^T e_st)^2``
  (:func:`eigenvalue_perturbations`);
* Eq. (13)    -- the edge sensitivity
  ``s_st = ||U_r^T e_st||^2 - (1/M) ||X^T e_st||^2 = z_emb - z_data / M``
  used to rank candidate edges (:func:`edge_sensitivities`);
* Eq. (14/15) -- the spectral embedding distortion
  ``eta_st = M z_emb / z_data`` which equals the edge leverage score
  ``w_st R_eff(s,t)`` in the ``sigma^2 -> inf`` limit
  (:func:`spectral_embedding_distortion`).
"""

from __future__ import annotations

import numpy as np

from repro.embedding.spectral import SpectralEmbedding
from repro.measurements.jl import jl_projection_matrix

__all__ = [
    "data_distances_squared",
    "edge_sensitivities",
    "spectral_embedding_distortion",
    "eigenvalue_perturbations",
    "sgl_edge_weights",
]


def _sketch_columns(matrix: np.ndarray, n_samples: int, seed: int | None) -> np.ndarray:
    """Hutchinson-style column sketch: ``matrix @ R`` with random-sign probes.

    ``R`` has shape ``(n_columns, n_samples)`` with entries
    ``+-1/sqrt(n_samples)``, so for any row-difference vector ``v``,
    ``E[||v @ R||^2] = ||v||^2`` — squared pair distances computed from the
    sketched matrix are unbiased estimates of the exact ones.  When the
    sketch would not shrink the matrix it is returned unchanged.
    """
    n_columns = matrix.shape[1]
    if n_samples >= n_columns:
        return matrix
    return matrix @ jl_projection_matrix(n_columns, n_samples, seed=seed)


def data_distances_squared(voltages: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """Squared data-space distances ``z_data = ||X^T (e_s - e_t)||^2`` (Eq. 13).

    Parameters
    ----------
    voltages:
        Measurement matrix ``X`` of shape ``(N, M)``; row ``i`` holds node
        ``i``'s voltages across the ``M`` measurements.
    pairs:
        ``(m, 2)`` array of node pairs.
    """
    voltages = np.asarray(voltages, dtype=np.float64)
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    diffs = voltages[pairs[:, 0]] - voltages[pairs[:, 1]]
    return np.einsum("ij,ij->i", diffs, diffs)


def sgl_edge_weights(voltages: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """The paper's candidate edge weights ``w_st = M / z_data`` (Eq. 15)."""
    voltages = np.asarray(voltages, dtype=np.float64)
    z_data = data_distances_squared(voltages, pairs)
    n_measurements = voltages.shape[1]
    floor = max(float(z_data.max(initial=0.0)), 1.0) * 1e-15
    return n_measurements / np.maximum(z_data, floor)


def edge_sensitivities(
    embedding: SpectralEmbedding,
    voltages: np.ndarray,
    pairs: np.ndarray,
    *,
    n_samples: int | None = None,
    seed: int | None = 0,
) -> np.ndarray:
    """Edge sensitivities ``s_st = dF / dw_st ~= z_emb - z_data / M`` (Eq. 13).

    Positive sensitivity means including the edge increases the graphical-
    Lasso objective (the embedding distance between its endpoints is still
    larger than the measured data distance); the SGL loop adds the largest
    ones each iteration.

    ``n_samples`` opts into the Hutchinson-style stochastic estimator
    (``SGLConfig.sensitivity_samples``): instead of touching all ``M``
    measurement columns (and all embedding coordinates) per candidate edge,
    both matrices are first compressed through random-sign probe sketches of
    that many columns, an unbiased estimate of the exact squared distances.
    ``None`` (default) keeps the exact pass.

    Examples
    --------
    The estimator is unbiased, so with enough probes the ranking agrees
    with the exact pass:

    >>> import numpy as np
    >>> from repro.core.sensitivity import edge_sensitivities
    >>> from repro.embedding.spectral import SpectralEmbedding
    >>> rng = np.random.default_rng(0)
    >>> coords = rng.standard_normal((30, 4))
    >>> emb = SpectralEmbedding(
    ...     eigenvalues=np.ones(4), eigenvectors=coords,
    ...     coordinates=coords, sigma_sq=float("inf"),
    ... )
    >>> voltages = rng.standard_normal((30, 64))
    >>> pairs = np.array([[0, 1], [2, 3], [4, 5]])
    >>> exact = edge_sensitivities(emb, voltages, pairs)
    >>> approx = edge_sensitivities(emb, voltages, pairs, n_samples=48, seed=1)
    >>> bool(np.allclose(exact, approx, atol=1.0))
    True
    """
    voltages = np.asarray(voltages, dtype=np.float64)
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    n_measurements = voltages.shape[1]
    if n_samples is not None:
        if n_samples < 1:
            raise ValueError("n_samples must be None or at least 1")
        # Sketch before differencing: z_data/M is preserved in expectation
        # because the probe matrix is scaled by 1/sqrt(n_samples) and the
        # 1/M normalisation is applied to the *exact* column count below.
        voltages_sk = _sketch_columns(voltages, n_samples, seed)
        coords_sk = _sketch_columns(
            np.asarray(embedding.coordinates, dtype=np.float64), n_samples, seed
        )
        diffs = coords_sk[pairs[:, 0]] - coords_sk[pairs[:, 1]]
        z_emb = np.einsum("ij,ij->i", diffs, diffs)
        z_data = data_distances_squared(voltages_sk, pairs)
        return z_emb - z_data / n_measurements
    z_emb = embedding.pair_distances_squared(pairs)
    z_data = data_distances_squared(voltages, pairs)
    return z_emb - z_data / n_measurements


def spectral_embedding_distortion(
    embedding: SpectralEmbedding,
    voltages: np.ndarray,
    pairs: np.ndarray,
) -> np.ndarray:
    """Spectral embedding distortion ``eta_st = M z_emb / z_data`` (Eq. 14).

    At the global optimum of the learning problem the maximum distortion over
    candidate edges equals one; values above one indicate edges whose
    endpoints are still too far apart on the learned graph.
    """
    voltages = np.asarray(voltages, dtype=np.float64)
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    z_emb = embedding.pair_distances_squared(pairs)
    z_data = data_distances_squared(voltages, pairs)
    floor = max(float(z_data.max(initial=0.0)), 1.0) * 1e-15
    return voltages.shape[1] * z_emb / np.maximum(z_data, floor)


def eigenvalue_perturbations(
    eigenvectors: np.ndarray,
    edge: tuple[int, int],
    delta_weight: float,
) -> np.ndarray:
    """First-order eigenvalue shifts from adding an edge (Theorem II.1).

    ``delta lambda_i = delta_w * (u_i^T (e_s - e_t))^2`` for each eigenvector
    column ``u_i`` of ``eigenvectors``.
    """
    eigenvectors = np.asarray(eigenvectors, dtype=np.float64)
    s, t = edge
    diffs = eigenvectors[s, :] - eigenvectors[t, :]
    return delta_weight * diffs**2
