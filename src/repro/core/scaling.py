"""Spectral edge scaling -- Step 5 of the SGL algorithm (Eqs. 21-23).

The densification loop fixes the graph *topology* and relative edge weights;
its absolute conductance scale, however, is only determined up to the constant
implied by the measurement magnitudes.  Step 5 corrects the scale by comparing
the voltage responses of the learned graph against the measured ones:

    ||x_i||^2      = y_i^T (L*^+)^2 y_i       (ground truth, Eq. 21)
    ||x~_i||^2     = y_i^T (L^+)^2  y_i       (learned graph, Eq. 22)
    w_st <- w~_st * sqrt( (1/M) sum_i ||x~_i||^2 / ||x_i||^2 )   (Eq. 23)

If the learned graph is too resistive its simulated voltages are too large,
the ratio exceeds one, and all conductances are scaled up accordingly (and
vice versa).  Only a single Laplacian factorisation and ``M`` solves are
needed, so the step is nearly linear time.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.linalg.solvers import LaplacianSolver

__all__ = ["edge_scaling_factor", "spectral_edge_scaling"]


def edge_scaling_factor(
    graph: WeightedGraph,
    voltages: np.ndarray,
    currents: np.ndarray,
    *,
    solver: LaplacianSolver | None = None,
) -> float:
    """The global conductance correction factor of Eq. (23).

    Parameters
    ----------
    graph:
        The learned graph (before scaling); must be connected.
    voltages:
        Measured voltages ``X`` of shape ``(N, M)``.
    currents:
        The corresponding current excitations ``Y`` of shape ``(N, M)``.
    solver:
        Optional pre-built solver for ``graph``'s Laplacian.
    """
    voltages = np.asarray(voltages, dtype=np.float64)
    currents = np.asarray(currents, dtype=np.float64)
    if voltages.shape != currents.shape:
        raise ValueError("voltages and currents must have the same shape")
    if voltages.shape[0] != graph.n_nodes:
        raise ValueError("measurement rows must match the graph's node count")
    if solver is None:
        solver = LaplacianSolver(graph)

    simulated = solver.solve(currents)  # x~_i columns
    measured_norms = np.einsum("ij,ij->j", voltages, voltages)
    simulated_norms = np.einsum("ij,ij->j", simulated, simulated)
    # Guard against degenerate zero-energy measurements.
    floor = max(float(measured_norms.max(initial=0.0)), 1.0) * 1e-30
    ratios = simulated_norms / np.maximum(measured_norms, floor)
    return float(np.sqrt(ratios.mean()))


def spectral_edge_scaling(
    graph: WeightedGraph,
    voltages: np.ndarray,
    currents: np.ndarray,
    *,
    solver: LaplacianSolver | None = None,
) -> tuple[WeightedGraph, float]:
    """Apply Step 5: return the rescaled graph and the factor used."""
    factor = edge_scaling_factor(graph, voltages, currents, solver=solver)
    if factor <= 0 or not np.isfinite(factor):
        # Degenerate measurements: leave the graph untouched.
        return graph, 1.0
    return graph.scaled(factor), factor
