"""The SGL algorithm: spectral graph learning from measurements.

This package implements the paper's primary contribution (Sec. II):

* :mod:`repro.core.config`       -- :class:`SGLConfig`, all tunable knobs of
  Algorithm 1 with the paper's defaults;
* :mod:`repro.core.sensitivity`  -- edge sensitivities (Eq. 13), spectral
  embedding distortions (Eq. 14) and the first-order eigenvalue perturbation
  of Theorem II.1;
* :mod:`repro.core.objective`    -- the graphical-Lasso objective (Eq. 2);
* :mod:`repro.core.scaling`      -- spectral edge scaling, Step 5
  (Eqs. 21-23);
* :mod:`repro.core.history`      -- per-iteration convergence records;
* :mod:`repro.core.sgl`          -- :class:`SGLearner` / :func:`learn_graph`,
  the densification loop of Algorithm 1.
"""

from repro.core.config import SGLConfig
from repro.core.history import IterationRecord, SGLHistory
from repro.core.instrumentation import StageStat, StageTimings
from repro.core.objective import graphical_lasso_objective, objective_terms
from repro.core.scaling import edge_scaling_factor, spectral_edge_scaling
from repro.core.sensitivity import (
    data_distances_squared,
    edge_sensitivities,
    eigenvalue_perturbations,
    spectral_embedding_distortion,
)
from repro.core.sgl import SGLearner, SGLResult, learn_graph

__all__ = [
    "SGLConfig",
    "IterationRecord",
    "SGLHistory",
    "StageStat",
    "StageTimings",
    "graphical_lasso_objective",
    "objective_terms",
    "edge_scaling_factor",
    "spectral_edge_scaling",
    "data_distances_squared",
    "edge_sensitivities",
    "eigenvalue_perturbations",
    "spectral_embedding_distortion",
    "SGLearner",
    "SGLResult",
    "learn_graph",
]
